// Table 3 reproduction: Selected Performance Metrics, the heart of the
// laboratory evaluation. Every load-dependent metric is measured on the
// testbed (zero-loss throughput via bisection, lethal dose via load
// escalation, induced latency via baseline differencing, error ratios
// via the ground-truth ledger) and anchor-scored.
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "Table 3 - Selected Performance Metrics (measured on the simulated "
      "testbed, real-time cluster profile)");

  const harness::TestbedConfig env = bench::rt_environment();
  harness::EvaluationOptions options;
  options.sensitivity = 0.5;
  options.attacks_per_kind = 3;
  options.include_load_metrics = true;

  std::vector<core::Scorecard> cards;
  std::vector<products::ProductId> ids = products::commercial_products();
  ids.push_back(products::ProductId::kAgentSwarm);

  for (const products::ProductId id : ids) {
    const products::ProductModel& model = products::product(id);
    const harness::Evaluation eval =
        harness::evaluate_product(env, model, options);
    const harness::RunResult& run = eval.measured.detection_run;
    const std::string lethal =
        eval.measured.lethal_dose_pps
            ? std::to_string(
                  static_cast<long>(*eval.measured.lethal_dose_pps)) +
                  " pps"
            : std::string("none");
    std::printf("%-12s  zero-loss=%8.0f pps  system=%8.0f pps  "
                "lethal=%s  latency=+%.1fus  FP=%.4f FN=%.4f  "
                "timeliness=%.2fs  host=%.1f%%\n",
                model.name.c_str(), eval.measured.zero_loss_pps,
                eval.measured.system_throughput_pps, lethal.c_str(),
                eval.measured.induced_latency_sec * 1e6, run.fp_ratio,
                run.fn_ratio, run.timeliness_mean_sec,
                100.0 * run.max_host_ids_cpu);
    cards.push_back(eval.card);
  }

  std::printf("\n%s\n",
              core::render_metric_table("Selected performance metrics",
                                        core::table3_performance_metrics(),
                                        cards, /*show_notes=*/true)
                  .c_str());

  std::printf("%s\n", core::render_metric_definition(
                          core::MetricId::kErrorReportingAndRecovery)
                          .c_str());
  return 0;
}
