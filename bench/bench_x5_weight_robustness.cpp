// X5: decision-robustness analysis over the requirement-derived weights —
// the paper's §3.3 future-work direction made concrete. Because Figure
// 5's total is linear in each weight, we compute exactly how far any
// single metric weight can move before the procurement winner changes.
// Fragile weights (flip factor close to 1x) are where the subjective
// requirement→weight mapping must be defended; robust ones cannot change
// the outcome no matter how the procurer re-argues them.
#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/sensitivity.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "X5 - Winner-flip analysis of the requirement-derived weights");

  const harness::TestbedConfig env = bench::rt_environment(23);
  harness::EvaluationOptions options;
  options.sensitivity = 0.5;
  options.include_load_metrics = true;

  std::vector<core::Scorecard> cards;
  for (const products::ProductModel& model : products::product_catalog()) {
    cards.push_back(harness::evaluate_product(env, model, options).card);
  }

  for (const bool realtime : {true, false}) {
    const core::WeightSet weights =
        realtime ? core::realtime_distributed_requirements().derive_weights()
                 : core::ecommerce_requirements().derive_weights();
    std::printf("--- %s profile ---\n\n",
                realtime ? "Real-time distributed" : "E-commerce");
    std::printf("%s\n", core::render_weighted_summary("Baseline ranking",
                                                      cards, weights)
                            .c_str());
    std::printf("%s\n",
                core::render_weight_robustness(cards, weights).c_str());
  }

  std::printf(
      "Reading: a flip factor of e.g. 0.40x means the winner changes if\n"
      "that metric's weight drops to 40%% of its derived value; '-' means\n"
      "no scaling in [0,100x] changes the decision. The smaller the\n"
      "|log(flip factor)|, the more the procurement outcome hinges on one\n"
      "subjective weighting judgement.\n");
  return 0;
}
