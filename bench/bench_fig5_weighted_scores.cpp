// Figure 5 reproduction: the weighted-score computation
//   S_j = sum_{i=1..n_j} (U_ij * W_ij)
// demonstrated over the evaluated products, including the two properties
// §3.1 calls out: a larger weight range separates the field more
// distinctly, and negative weights penalize counterproductive features.
#include "bench_common.hpp"
#include "core/report.hpp"

using namespace idseval;

int main() {
  bench::print_header("Figure 5 - Weighted score computation S_j");

  // Score every product from facts only (no measurement noise): the
  // algebra, not the lab, is under test here.
  std::vector<core::Scorecard> cards;
  for (const products::ProductModel& model : products::product_catalog()) {
    cards.push_back(products::facts_scorecard(model));
  }

  // (a) Uniform weights over Table 1+2+3 selected metrics.
  core::WeightSet uniform;
  for (const auto id : core::table1_logistical_metrics()) uniform.set(id, 1.0);
  for (const auto id : core::table2_architectural_metrics()) {
    uniform.set(id, 1.0);
  }
  for (const auto id : core::table3_performance_metrics()) {
    uniform.set(id, 1.0);
  }
  std::printf("%s\n", core::render_weighted_summary(
                          "(a) Uniform weights (W=1 on selected metrics)",
                          cards, uniform)
                          .c_str());

  // (b) The same weights scaled 5x: totals scale linearly, ranking is
  // unchanged — weighting systems are meaningful up to consistent scale.
  core::WeightSet scaled = uniform;
  scaled.scale(5.0);
  std::printf("%s\n", core::render_weighted_summary(
                          "(b) Same weights x5 (ranking invariant)", cards,
                          scaled)
                          .c_str());

  // (c) Wider, opinionated range separates the field more distinctly.
  core::WeightSet wide = uniform;
  wide.set(core::MetricId::kObservedFalseNegativeRatio, 8.0);
  wide.set(core::MetricId::kTimeliness, 6.0);
  wide.set(core::MetricId::kOperationalPerformanceImpact, 6.0);
  wide.set(core::MetricId::kScalableLoadBalancing, 4.0);
  std::printf("%s\n", core::render_weighted_summary(
                          "(c) Wider weight range (clearer separation)",
                          cards, wide)
                          .c_str());

  // (d) Negative weight: for a closed real-time enclave, *requiring*
  // host-based input on production machines is counterproductive — it
  // consumes monitored-host resources (§2.1). Penalize it.
  core::WeightSet negative = uniform;
  negative.set(core::MetricId::kHostBased, -2.0);
  std::printf("%s\n",
              core::render_weighted_summary(
                  "(d) Negative weight on Host-based (feature considered "
                  "counterproductive)",
                  cards, negative)
                  .c_str());
  return 0;
}
