// Shared setup for the table/figure reproduction benches. Every bench
// binary reproduces one artifact of the paper's evaluation section and
// prints it in the paper's row/column structure; EXPERIMENTS.md records
// expected vs. measured shapes.
#pragma once

#include <cstdio>
#include <string>

#include "harness/evaluate.hpp"
#include "harness/measure.hpp"
#include "harness/testbed.hpp"
#include "products/catalog.hpp"
#include "products/scoring.hpp"

namespace idseval::bench {

/// The canonical evaluation environment: a distributed real-time cluster
/// (the paper's motivating deployment), fixed seed for repeatability.
inline harness::TestbedConfig rt_environment(std::uint64_t seed = 42) {
  harness::TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 8;
  env.external_hosts = 4;
  env.seed = seed;
  return env;
}

/// The contrasting commercial environment.
inline harness::TestbedConfig ecommerce_environment(std::uint64_t seed = 42) {
  harness::TestbedConfig env;
  env.profile = traffic::ecommerce_profile();
  env.internal_hosts = 8;
  env.external_hosts = 4;
  env.seed = seed;
  return env;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace idseval::bench
