// X4: load-balancing ablation (§2.2). "Load balancing allows the IDS to
// efficiently utilize the processing power of the distributed sensors for
// scalability. ... Individual, statically placed sensors may overload or
// starve, and the protection of the network will be uneven." The bench
// holds the sensor fleet fixed (4 identical signature sensors) and sweeps
// the balancing strategy across the Scalable Load-balancing anchor points
// (none / static placement / flow hash / dynamic least-loaded), measuring
// zero-loss throughput, loss and imbalance under a fixed overload.
#include "bench_common.hpp"
#include "ids/rules.hpp"
#include "util/table.hpp"

using namespace idseval;

namespace {

products::ProductModel lb_variant(ids::LbStrategy strategy) {
  products::ProductModel model;
  model.id = products::ProductId::kSentryNid;  // unused placeholder id
  model.name = "4-sensor/" + ids::to_string(strategy);
  model.deploys_host_agents = false;
  model.make_config = [strategy](double sensitivity) {
    ids::PipelineConfig c;
    c.product = "lb-ablation";
    c.sensor_count = 4;
    c.sensor.name = "ablate-sensor";
    c.sensor.base_ops_per_packet = 3500.0;
    c.sensor.ops_per_sec = 6e7;
    c.sensor.queue_capacity = 2048;
    c.sensor.recovery = ids::RecoveryPolicy::kAppRestart;
    c.signature_engine = true;
    c.rules = ids::standard_rule_set();
    c.analyzer_count = 2;
    c.monitor.name = "ablate-monitor";
    c.use_console = false;
    c.sensitivity = sensitivity;
    if (strategy != ids::LbStrategy::kNone) {
      // kNone here means "no LB subprocess at all": the pipeline falls
      // back to static placement only when several sensors exist, so we
      // model the no-LB anchor as a single sensor fed everything.
      c.use_load_balancer = true;
      c.lb.strategy = strategy;
      c.lb.ops_per_packet = 1000.0;
      c.lb.ops_per_sec = 4e9;
      c.lb.in_line = false;
    } else {
      c.sensor_count = 1;
      c.sensor.ops_per_sec = 6e7;  // same per-box budget, one box
      c.analyzer_count = 1;
    }
    return c;
  };
  return model;
}

}  // namespace

int main() {
  bench::print_header(
      "X4 - Load-balancing strategy ablation (4 identical sensors; 'none' "
      "= single sensor, the no-LB anchor)");

  harness::TestbedConfig env = bench::rt_environment(47);
  // Skew the traffic: most flows target two busy servers, which is what
  // separates placement-based balancing from dynamic balancing.
  env.internal_hosts = 8;
  env.profile.dest_zipf_s = 1.2;  // a few busy servers dominate

  util::TextTable table(
      {"Strategy", "Zero-loss pps", "Loss @ 56x load", "Imbalance "
       "(peak/mean)", "Anchor"},
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kLeft});

  const struct {
    ids::LbStrategy strategy;
    const char* anchor;
  } kStrategies[] = {
      {ids::LbStrategy::kNone, "low (0): no load balancing"},
      {ids::LbStrategy::kStaticByHost, "average (2): static placement"},
      {ids::LbStrategy::kFlowHash, "good (3): uniform flow hash"},
      {ids::LbStrategy::kLeastLoaded, "high (4): intelligent, dynamic"},
  };

  for (const auto& [strategy, anchor] : kStrategies) {
    const products::ProductModel model = lb_variant(strategy);
    const double zero_loss =
        harness::measure_zero_loss_pps(env, model, 0.5, 64.0, 1e-4, 5);

    // Fixed overload probe for loss + imbalance.
    harness::TestbedConfig probe = env;
    probe.rate_scale = 56.0;
    probe.warmup = netsim::SimTime::from_sec(4);
    probe.measure = netsim::SimTime::from_sec(8);
    harness::Testbed bed(probe, &model, 0.5);
    const harness::RunResult r = bed.run_clean();
    double imbalance = 1.0;
    if (bed.pipeline()->load_balancer() != nullptr) {
      imbalance = bed.pipeline()->load_balancer()->stats().imbalance();
    }
    table.add_row({ids::to_string(strategy),
                   util::fmt_double(zero_loss, 0),
                   util::fmt_double(100.0 * r.ids_loss_ratio, 2) + "%",
                   util::fmt_double(imbalance, 2), anchor});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Expected shape: zero-loss throughput grows monotonically down the\n"
      "table; static placement beats a single sensor but leaves hot\n"
      "sensors overloaded (imbalance > 1) while others starve; flow hash\n"
      "evens packet counts; least-loaded tracks instantaneous queue depth\n"
      "and sustains the highest zero-loss rate.\n");
  return 0;
}
