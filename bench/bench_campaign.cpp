// Campaign engine scaling: cells/sec on a 64-cell grid as the worker
// count grows 1 -> 8. Cells are independent simulations, so throughput
// should scale close to linearly up to the machine's core count; the
// table prints the measured speedup so regressions in the scheduler
// (serialization in the store, lock contention, chunking) are visible.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>

#include "campaign/aggregate.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "campaign/store.hpp"
#include "bench_common.hpp"
#include "telemetry/trace.hpp"
#include "util/table.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "BENCH campaign — cells/sec scaling, 64-cell grid, 1..8 workers");

  campaign::CampaignSpec spec = campaign::CampaignSpec::defaults();
  spec.name = "bench64";
  spec.profiles = {"rt_cluster", "ecommerce"};
  spec.sensitivities = {0.3, 0.7};
  spec.replicates = 4;  // 4 products x 2 profiles x 2 sens x 4 = 64
  spec.base_seed = 99;
  spec.warmup_sec = 2.0;
  spec.measure_sec = 6.0;
  spec.attacks_per_kind = 1;
  spec.validate();

  std::printf("grid: %zu cells; hardware_concurrency: %u\n\n",
              spec.cell_count(), std::thread::hardware_concurrency());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "idseval_bench_campaign";
  std::filesystem::create_directories(dir);

  util::TextTable table({"Jobs", "Wall s", "Cells/sec", "Speedup"},
                        {util::Align::kRight, util::Align::kRight,
                         util::Align::kRight, util::Align::kRight});
  double base_rate = 0.0;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    const std::string path =
        (dir / ("bench64_j" + std::to_string(jobs) + ".jsonl")).string();
    campaign::ResultStore store(path, spec, /*fresh=*/true);
    campaign::RunOptions options;
    options.jobs = jobs;
    const campaign::RunStats stats =
        campaign::run_campaign(spec, store, options);
    const double rate = stats.wall_sec > 0.0
                            ? static_cast<double>(stats.executed) /
                                  stats.wall_sec
                            : 0.0;
    if (jobs == 1) base_rate = rate;
    table.add_row({std::to_string(jobs), util::fmt_double(stats.wall_sec, 2),
                   util::fmt_double(rate, 2),
                   util::fmt_double(base_rate > 0.0 ? rate / base_rate : 0.0,
                                    2)});
    if (stats.failed != 0) {
      std::printf("!! %zu cell(s) failed at jobs=%zu\n", stats.failed, jobs);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nSpeedup is bounded by physical cores; on a 1-core container the\n"
      "column stays ~1.0 by construction, not by scheduler overhead.\n");

  // Tracing overhead: the same grid with and without a --trace sink.
  // Telemetry registries are always on; a trace sink only adds JSON
  // rendering + buffered writes at cell boundaries, so the overhead
  // budget is < 3%.
  std::printf("\ntracing overhead (jobs=2, same 64-cell grid):\n");
  double plain_wall = 0.0;
  double traced_wall = 0.0;
  for (const bool traced : {false, true}) {
    const std::string tag = traced ? "traced" : "plain";
    const std::string path =
        (dir / ("bench64_" + tag + ".jsonl")).string();
    campaign::ResultStore store(path, spec, /*fresh=*/true);
    campaign::RunOptions options;
    options.jobs = 2;
    telemetry::Registry aggregate;
    std::unique_ptr<telemetry::TraceSink> sink;
    if (traced) {
      sink = std::make_unique<telemetry::TraceSink>(
          (dir / "bench64_trace.jsonl").string());
      options.telemetry = &aggregate;
      options.trace = sink.get();
    }
    const campaign::RunStats stats =
        campaign::run_campaign(spec, store, options);
    if (sink) sink->close();
    (traced ? traced_wall : plain_wall) = stats.wall_sec;
    std::printf("  %-6s %6.2fs%s\n", tag.c_str(), stats.wall_sec,
                traced ? "" : "  (baseline)");
  }
  if (plain_wall > 0.0) {
    std::printf("  overhead: %+.2f%% (budget < 3%%)\n",
                100.0 * (traced_wall - plain_wall) / plain_wall);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
