// Figure 4 reproduction: error-rate curves vs. monitoring sensitivity and
// the Equal Error Rate. For each product the harness sweeps the
// sensitivity knob, measuring the Type I curve (percent of benign
// transactions alarmed) rising and the Type II curve (percent of attacks
// missed) falling; the crossing is the EER. The paper notes users may
// prefer an operating point left or right of the crossing — for
// distributed systems, §3.3 argues for accepting extra Type I to push
// Type II down.
//
// The closing section times the legacy re-simulated sweep (one testbed
// run per grid point) against the single-pass score-ledger sweep (one
// evidence-recorded run, every point derived offline) and reports the
// wall-clock speedup and the EER delta between the two paths.
#include <chrono>
#include <cmath>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "Figure 4 - Error rate curves and Equal Error Rate vs. sensitivity");

  const harness::TestbedConfig env = bench::rt_environment(11);
  std::vector<double> sensitivities;
  for (double s = 0.0; s <= 1.0001; s += 0.1) sensitivities.push_back(s);

  for (const products::ProductModel& model : products::product_catalog()) {
    const auto sweep = harness::sensitivity_sweep(env, model,
                                                  sensitivities, 4);
    util::TextTable table(
        {"Sensitivity", "Type I (% benign alarmed)",
         "Type II (% attacks missed)", "FP ratio |D-A|/|T|",
         "FN ratio |A-D|/|T|"},
        {util::Align::kRight, util::Align::kRight, util::Align::kRight,
         util::Align::kRight, util::Align::kRight});
    table.set_title(model.name);
    for (const auto& p : sweep) {
      table.add_row({util::fmt_double(p.sensitivity, 2),
                     util::fmt_double(p.fp_percent_of_benign, 2),
                     util::fmt_double(p.fn_percent_of_attacks, 2),
                     util::fmt_double(p.fp_ratio, 5),
                     util::fmt_double(p.fn_ratio, 5)});
    }
    std::printf("%s", table.render().c_str());

    const harness::EqualErrorRate eer = harness::equal_error_rate(sweep);
    if (eer.found) {
      std::printf("Equal Error Rate: %.2f%% at sensitivity %.3f\n\n",
                  eer.error_percent, eer.sensitivity);
    } else {
      std::printf("No Type I / Type II crossing in [0,1]: the Type II "
                  "floor (structurally undetectable attacks) never meets "
                  "the Type I curve. Sensitivity cannot buy back attacks "
                  "this engine class cannot see.\n\n");
    }
  }

  // Re-simulated vs. single-pass wall time, one product. Both paths run
  // serially so the ratio is simulations-avoided, not thread count; at
  // 11 grid points the single pass should land well above 5x.
  std::printf("--- sweep cost: re-simulated vs. single-pass ---\n");
  const products::ProductModel& timed_model =
      products::product(products::ProductId::kSentryNid);
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto resim =
      harness::sensitivity_sweep(env, timed_model, sensitivities, 4);
  const auto t1 = Clock::now();
  const harness::SinglePassSweep single =
      harness::single_pass_sensitivity_sweep(env, timed_model,
                                             sensitivities, 4);
  const auto t2 = Clock::now();
  const double resim_sec = std::chrono::duration<double>(t1 - t0).count();
  const double single_sec = std::chrono::duration<double>(t2 - t1).count();
  const harness::EqualErrorRate eer_resim = harness::equal_error_rate(resim);
  const harness::EqualErrorRate eer_single =
      harness::equal_error_rate(single.points);
  std::printf("re-simulated: %zu points, %.3fs wall\n", resim.size(),
              resim_sec);
  std::printf("single-pass:  %zu points, %.3fs wall (%zu transactions, "
              "%llu evidence observations)\n",
              single.points.size(), single_sec, single.roc.transactions(),
              static_cast<unsigned long long>(single.evidence_observations));
  std::printf("speedup: %.1fx\n",
              single_sec > 0.0 ? resim_sec / single_sec : 0.0);
  if (eer_resim.found && eer_single.found) {
    std::printf("EER delta: |%.4f%% - %.4f%%| = %.4f%%\n",
                eer_resim.error_percent, eer_single.error_percent,
                std::fabs(eer_resim.error_percent -
                          eer_single.error_percent));
  } else {
    std::printf("EER: re-simulated %s, single-pass %s\n",
                eer_resim.found ? "found" : "no crossing",
                eer_single.found ? "found" : "no crossing");
  }
  return 0;
}
