// Figure 4 reproduction: error-rate curves vs. monitoring sensitivity and
// the Equal Error Rate. For each product the harness sweeps the
// sensitivity knob, measuring the Type I curve (percent of benign
// transactions alarmed) rising and the Type II curve (percent of attacks
// missed) falling; the crossing is the EER. The paper notes users may
// prefer an operating point left or right of the crossing — for
// distributed systems, §3.3 argues for accepting extra Type I to push
// Type II down.
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "Figure 4 - Error rate curves and Equal Error Rate vs. sensitivity");

  const harness::TestbedConfig env = bench::rt_environment(11);
  std::vector<double> sensitivities;
  for (double s = 0.0; s <= 1.0001; s += 0.1) sensitivities.push_back(s);

  for (const products::ProductModel& model : products::product_catalog()) {
    const auto sweep = harness::sensitivity_sweep(env, model,
                                                  sensitivities, 4);
    util::TextTable table(
        {"Sensitivity", "Type I (% benign alarmed)",
         "Type II (% attacks missed)", "FP ratio |D-A|/|T|",
         "FN ratio |A-D|/|T|"},
        {util::Align::kRight, util::Align::kRight, util::Align::kRight,
         util::Align::kRight, util::Align::kRight});
    table.set_title(model.name);
    for (const auto& p : sweep) {
      table.add_row({util::fmt_double(p.sensitivity, 2),
                     util::fmt_double(p.fp_percent_of_benign, 2),
                     util::fmt_double(p.fn_percent_of_attacks, 2),
                     util::fmt_double(p.fp_ratio, 5),
                     util::fmt_double(p.fn_ratio, 5)});
    }
    std::printf("%s", table.render().c_str());

    const harness::EqualErrorRate eer = harness::equal_error_rate(sweep);
    if (eer.found) {
      std::printf("Equal Error Rate: %.2f%% at sensitivity %.3f\n\n",
                  eer.error_percent, eer.sensitivity);
    } else {
      std::printf("No Type I / Type II crossing in [0,1]: the Type II "
                  "floor (structurally undetectable attacks) never meets "
                  "the Type I curve. Sensitivity cannot buy back attacks "
                  "this engine class cannot see.\n\n");
    }
  }
  return 0;
}
