// Figure 6 reproduction: requirement-to-metric weight mapping. The
// procurer's partially-ordered requirements get increasing weights; each
// metric's weight is the sum of the weights of the requirements it
// contributes to. Shown for the distributed real-time profile (§3.3's
// recommendations) and the contrasting e-commerce profile.
#include "bench_common.hpp"
#include "core/report.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "Figure 6 - Mapping user requirements to metric weights");

  std::printf("--- Distributed real-time weapons-control profile ---\n\n");
  std::printf("%s\n", core::render_requirement_mapping(
                          core::realtime_distributed_requirements())
                          .c_str());

  std::printf("--- E-commerce web-front profile ---\n\n");
  std::printf("%s\n", core::render_requirement_mapping(
                          core::ecommerce_requirements())
                          .c_str());
  return 0;
}
