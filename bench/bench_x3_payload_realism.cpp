// X3: the paper's first lesson learned (§4): "a simple flooding of the
// network ... with meaningless data is not sufficient. ... If packets
// with random data are used to generate background traffic, then the IDS
// that analyzes both the header information and message data will not be
// realistically tested."
//
// The bench evaluates the same two products against the same attack
// scenario under (a) realistic protocol-shaped background and (b) a
// random-payload flood at the same rate, and shows how the flood
// mis-measures payload-inspecting IDSes: false-positive rates collapse
// to zero (no realistic content to confuse weak rules) and the anomaly
// product's learned baselines become meaningless.
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "X3 - Random-payload flood vs realistic content (lesson learned #1)");

  util::TextTable table(
      {"Product", "Background", "FP ratio", "FN ratio",
       "Type I (% benign)", "Type II (% attacks)"},
      {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight});

  for (const products::ProductId id :
       {products::ProductId::kSentryNid, products::ProductId::kFlowHunt}) {
    const products::ProductModel& model = products::product(id);
    for (const bool realistic : {true, false}) {
      harness::TestbedConfig env = bench::rt_environment(31);
      env.profile = realistic ? traffic::ecommerce_profile()
                              : traffic::random_flood_profile();
      harness::Testbed bed(env, &model, 0.6);
      const auto scenario = attack::Scenario::mixed(
          4, netsim::SimTime::zero(), env.measure * 0.9, 555,
          env.external_hosts, env.internal_hosts);
      const harness::RunResult r = bed.run(scenario);
      const double benign =
          static_cast<double>(r.transactions - r.attacks);
      table.add_row(
          {model.name, realistic ? "realistic (ecommerce)" : "random flood",
           util::fmt_double(r.fp_ratio, 5), util::fmt_double(r.fn_ratio, 5),
           util::fmt_double(benign > 0 ? 100.0 * r.false_alarms / benign
                                       : 0.0,
                            2),
           util::fmt_double(r.attacks > 0
                                ? 100.0 * r.missed_attacks / r.attacks
                                : 0.0,
                            2)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Expected shape: under the random flood the signature product shows\n"
      "an unrealistically clean Type I rate (random bytes almost never\n"
      "contain the weak-rule patterns that legitimate admin traffic\n"
      "does), and the anomaly product's error rates shift because its\n"
      "baselines were learned from content-free noise. A procurement\n"
      "decision made from flood-only testing would overstate both\n"
      "products' precision in production.\n");
  return 0;
}
