// X2: the methodology's central claim — the same measured scorecards,
// weighted by different user requirements, rank products differently.
// "Distributed, real-time, weapons-control systems ... have unique
// requirements that are seldom considered by market comparisons" (§1).
// Each product is evaluated in both environments; each environment's
// requirement profile weights its own measurements.
#include "bench_common.hpp"
#include "core/report.hpp"

using namespace idseval;

namespace {

std::vector<core::Scorecard> evaluate_all(
    const harness::TestbedConfig& env) {
  harness::EvaluationOptions options;
  options.sensitivity = 0.5;
  options.attacks_per_kind = 3;
  options.include_load_metrics = true;
  std::vector<core::Scorecard> cards;
  for (const products::ProductModel& model : products::product_catalog()) {
    cards.push_back(harness::evaluate_product(env, model, options).card);
  }
  return cards;
}

}  // namespace

int main() {
  bench::print_header(
      "X2 - Requirement-profile crossover: one metric set, two customers, "
      "different winners");

  {
    const auto cards = evaluate_all(bench::rt_environment(23));
    const core::WeightSet weights =
        core::realtime_distributed_requirements().derive_weights();
    std::printf("%s\n",
                core::render_weighted_summary(
                    "Distributed real-time cluster: measured there, "
                    "weighted by the RT requirement profile",
                    cards, weights)
                    .c_str());
  }
  {
    const auto cards = evaluate_all(bench::ecommerce_environment(23));
    const core::WeightSet weights =
        core::ecommerce_requirements().derive_weights();
    std::printf("%s\n",
                core::render_weighted_summary(
                    "E-commerce web front: measured there, weighted by "
                    "the e-commerce requirement profile",
                    cards, weights)
                    .c_str());
  }

  std::printf(
      "Expected shape: the RT profile rewards low false-negative ratio,\n"
      "timeliness, automated response and low host impact; the e-commerce\n"
      "profile rewards false-positive suppression, cost and\n"
      "manageability. The ranking should differ between the two tables -\n"
      "that difference is why evaluation against a reusable metric\n"
      "standard beats one-size-fits-all market comparisons.\n");
  return 0;
}
