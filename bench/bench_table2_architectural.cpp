// Table 2 reproduction: Selected Architectural Metrics. Most are scored
// from fact sheets; System Throughput and Data Storage are *measured* on
// the testbed (the paper marks them as analysis-observed) and the
// measured values are shown beside the discrete scores.
#include <vector>

#include "bench_common.hpp"
#include "core/autoscore.hpp"
#include "core/report.hpp"
#include "util/strfmt.hpp"
#include "util/table.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "Table 2 - Selected Architectural Metrics (fact-scored + measured "
      "System Throughput / Data Storage)");

  const harness::TestbedConfig env = bench::rt_environment();

  std::vector<core::Scorecard> cards;
  std::vector<products::ProductId> ids = products::commercial_products();
  ids.push_back(products::ProductId::kAgentSwarm);

  for (const products::ProductId id : ids) {
    const products::ProductModel& model = products::product(id);
    core::Scorecard card = products::facts_scorecard(model);

    // Measure the two analysis-observed architectural metrics.
    const double throughput =
        harness::measure_system_throughput_pps(env, model, 0.5);
    card.set(core::MetricId::kSystemThroughput,
             core::score_system_throughput(throughput),
             util::cat(util::fmt_si(throughput), " pps"));

    harness::Testbed bed(env, &model, 0.5);
    const auto scenario = attack::Scenario::mixed(
        2, netsim::SimTime::zero(), env.measure * 0.9, env.seed,
        env.external_hosts, env.internal_hosts);
    const harness::RunResult run = bed.run(scenario);
    card.set(core::MetricId::kDataStorage,
             core::score_data_storage(run.storage_bytes_per_mb),
             util::cat(util::fmt_si(run.storage_bytes_per_mb), "B/MB"));

    cards.push_back(std::move(card));
  }

  std::printf("%s\n",
              core::render_metric_table("Selected architectural metrics",
                                        core::table2_architectural_metrics(),
                                        cards, /*show_notes=*/true)
                  .c_str());

  std::printf("%s\n", core::render_metric_definition(
                          core::MetricId::kScalableLoadBalancing)
                          .c_str());

  std::printf("Full architectural class:\n\n%s\n",
              core::render_metric_table(
                  "All architectural metrics",
                  core::metrics_in_class(core::MetricClass::kArchitectural),
                  cards)
                  .c_str());
  return 0;
}
