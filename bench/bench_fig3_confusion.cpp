// Figure 3 reproduction: False Positive (Type I) and False Negative
// (Type II) errors over the transaction universe. Prints the set sizes
// of the paper's Venn construction — Transactions T, Actual Intrusions A,
// IDS Detected Intrusions D, their overlap, and the two ratios
// FP = |D - A| / |T| and FN = |A - D| / |T| — plus the per-attack-kind
// breakdown that explains *which* intrusions each engine type misses.
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "Figure 3 - Type I / Type II errors per product (mixed attack "
      "scenario, rt-cluster background, sensitivity 0.5)");

  const harness::TestbedConfig env = bench::rt_environment(17);

  for (const products::ProductModel& model : products::product_catalog()) {
    harness::Testbed bed(env, &model, 0.5);
    const auto scenario = attack::Scenario::mixed(
        4, netsim::SimTime::zero(), env.measure * 0.9, 1234,
        env.external_hosts, env.internal_hosts);
    const harness::RunResult r = bed.run(scenario);

    std::printf("%s\n", model.name.c_str());
    std::printf("  Transactions (T):            %zu\n", r.transactions);
    std::printf("  Actual Intrusions (A):       %zu\n", r.attacks);
    std::printf("  IDS Detected (D):            %zu\n", r.detected);
    std::printf("  Correct Detections (A n D):  %zu\n", r.true_detections);
    std::printf("  False Positives |D - A|:     %zu   (Type I)\n",
                r.false_alarms);
    std::printf("  Prevented post-block (P):    %zu   (response, not "
                "error)\n",
                r.prevented_attacks);
    std::printf("  False Negatives |A - D - P|: %zu   (Type II)\n",
                r.missed_attacks);
    std::printf("  FP ratio |D-A|/|T|:          %.5f\n", r.fp_ratio);
    std::printf("  FN ratio |A-D|/|T|:          %.5f\n", r.fn_ratio);

    util::TextTable table({"Attack kind", "Detected/Launched",
                           "Prevented", "Known signature?"},
                          {util::Align::kLeft, util::Align::kRight,
                           util::Align::kRight, util::Align::kLeft});
    for (const auto& [kind, outcome] : r.per_kind) {
      table.add_row({attack::to_string(kind),
                     std::to_string(outcome.detected) + "/" +
                         std::to_string(outcome.launched),
                     std::to_string(outcome.prevented),
                     attack::traits(kind).known_signature ? "yes" : "no"});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
