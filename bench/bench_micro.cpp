// Microbenchmarks (google-benchmark) for the substrate hot paths whose
// costs the simulation's abstract op model stands in for: multi-pattern
// scanning, payload synthesis, entropy, DES event dispatch, and the SPSC
// ring. These bound how fast the *harness itself* runs, which caps how
// much evaluation a token of wall-clock buys.
#include <benchmark/benchmark.h>

#include "ids/aho_corasick.hpp"
#include "ids/anomaly_engine.hpp"
#include "netsim/simulator.hpp"
#include "traffic/payload.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

using namespace idseval;

namespace {

std::vector<std::string> bench_patterns() {
  return {"/../../etc/passwd", "cmd.exe", "\x90\x90\x90\x90\x90\x90",
          "/bin/sh -c", "Login incorrect", "update.vbs", "su - root",
          "login: root", "/etc/passwd", "Important message"};
}

void BM_AhoCorasickScan(benchmark::State& state) {
  const ids::AhoCorasick ac(bench_patterns());
  util::Rng rng(1);
  const std::string payload =
      traffic::synthesize(traffic::PayloadKind::kHttpRequest,
                          static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.contains_any(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_AhoCorasickScan)->Arg(128)->Arg(512)->Arg(1400);

void BM_PayloadSynthesis(benchmark::State& state) {
  util::Rng rng(2);
  const auto kind = static_cast<traffic::PayloadKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::synthesize(kind, 400, rng));
  }
}
BENCHMARK(BM_PayloadSynthesis)
    ->Arg(static_cast<int>(traffic::PayloadKind::kHttpRequest))
    ->Arg(static_cast<int>(traffic::PayloadKind::kClusterRpc))
    ->Arg(static_cast<int>(traffic::PayloadKind::kRandom));

void BM_PayloadEntropy(benchmark::State& state) {
  util::Rng rng(3);
  const std::string payload = traffic::random_printable(
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ids::payload_entropy(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PayloadEntropy)->Arg(128)->Arg(1400);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    netsim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(netsim::SimTime::from_us(static_cast<double>(i % 97)),
                      [] {});
    }
    benchmark::DoNotOptimize(sim.run_until());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimulatorEvents)->Arg(1024)->Arg(16384);

void BM_SpscRing(benchmark::State& state) {
  util::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(++v);
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRing);

void BM_Xoshiro(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
