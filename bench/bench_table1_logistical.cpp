// Table 1 reproduction: Selected Logistical Metrics scored for the three
// commercial-class products (the paper evaluated NFR NID 5.0, ISS
// RealSecure 5.0 and Recourse ManHunt 1.2; our model products occupy the
// same architecture classes). The AAFID-class research system, which the
// paper examined separately, is appended for reference.
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"

using namespace idseval;

int main() {
  bench::print_header(
      "Table 1 - Selected Logistical Metrics (scores 0-4, open-source "
      "facts, anchor-scored)");

  std::vector<core::Scorecard> cards;
  for (const products::ProductId id : products::commercial_products()) {
    cards.push_back(products::facts_scorecard(products::product(id)));
  }
  cards.push_back(products::facts_scorecard(
      products::product(products::ProductId::kAgentSwarm)));

  std::printf("%s\n",
              core::render_metric_table("Selected logistical metrics",
                                        core::table1_logistical_metrics(),
                                        cards)
                  .c_str());

  // The paper's metric definitions include anchor examples; print the
  // detailed example it gives for this class (Distributed Management).
  std::printf("%s\n", core::render_metric_definition(
                          core::MetricId::kDistributedManagement)
                          .c_str());

  std::printf("Full logistical class (including metrics the paper names "
              "but omits for brevity):\n\n");
  const auto all_logistical =
      core::metrics_in_class(core::MetricClass::kLogistical);
  std::printf("%s\n",
              core::render_metric_table("All logistical metrics",
                                        all_logistical, cards)
                  .c_str());
  return 0;
}
