// Event-core throughput benchmark (events/sec) with a pinned pre-change
// baseline. Three workloads:
//
//   churn    — 64 self-rescheduling 64-byte timers, pure scheduler churn;
//              isolates InlineCallback + the vector-backed event heap.
//   testbed  — a full GuardSecure testbed run at 6x load; measures the
//              whole emission/delivery/analysis path including pooled
//              payloads.
//   scan_cache — detection-engine hot loop over interned payloads (deep
//              inspection + stream reassembly + entropy), run once with
//              the interned-payload scan cache and once replaying the
//              legacy full-rescan path: isolates the memo +
//              boundary-limited-reassembly win. Reports cached vs
//              legacy packets/sec, hit ratio, and bytes saved; the
//              detection counts must match exactly (hard check).
//   fanout   — same-tick burst trains over zero-bandwidth links, run once
//              with delivery coalescing on and once forced off: isolates
//              the batched-delivery win (one event per (link, tick)
//              instead of one per packet) from the rest of the pipeline.
//   trace    — producer-side cost of the trace sink: batches of events
//              with simulated work between them, once with the sync
//              (cell-boundary-flush) writer and once with the background
//              writer thread; checks the background writer does not add
//              producer-visible time and that both files are identical.
//   megaflow — flow-table stress: the megaflow profile scaled to ~10^4
//              hosts and up to ~10^6 concurrently live flows, with a
//              mirror-tap live-flow tracker keyed by packed FlowTuple.
//              Reports flows/sec (wall), bytes per table probe, and the
//              tracker's probes-per-lookup chain length.
//   shard_scaling — the megaflow workload on the distributed sharded
//              engine at 1/2/4/8 shards: hosts hashed over N full
//              per-shard topologies, per-shard flow generators sourcing
//              locally toward enclave-wide destinations, cross-shard
//              packets riding trunk links through the barrier mailboxes
//              (netsim::CrossShardFabric). Reports events/sec and
//              packets/sec per shard count plus barrier-stall wall time
//              per shard. Wall-clock scaling only materializes with >= N
//              physical cores — the JSON records hardware_concurrency so
//              numbers from a 1-core CI container are not misread as a
//              scaling regression; the smoke floor is warn-only.
//
// The "baseline" constants below were measured at the commit immediately
// before the allocation-free event core landed (std::function queue,
// per-packet payload synthesis), same container, -O3 -DNDEBUG, 1 CPU.
// The "prior" constants are the event-core numbers from the commit
// before batched delivery: the lazy queue-slot release folded ~2 of the
// ~7 events/packet into delivery-time bookkeeping, so events/sec is not
// comparable across that change — packets/sec is the cross-PR metric.
// The bench prints current/baseline speedups, checks the hot path took
// zero callback heap fallbacks, enforces a smoke-mode events/sec floor
// (warn-only without -O2/-O3+NDEBUG or under sanitizers), and writes a
// JSON report for CI to archive.
//
// Usage: bench_netsim [--smoke] [--out FILE]
//   --smoke  short run (CI): fewer events, one repetition, same checks.
//   --out    JSON report path (default BENCH_netsim.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/patterns.hpp"
#include "attack/scenario.hpp"
#include "harness/testbed.hpp"
#include "ids/anomaly_engine.hpp"
#include "ids/rules.hpp"
#include "ids/signature_engine.hpp"
#include "netsim/fabric.hpp"
#include "netsim/flow_tuple.hpp"
#include "netsim/network.hpp"
#include "netsim/sharded.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "products/catalog.hpp"
#include "results/doc.hpp"
#include "telemetry/trace.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/ledger.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"

using idseval::netsim::SimTime;
using idseval::netsim::Simulator;

namespace {

// Pre-change reference throughput (see header comment).
constexpr double kBaselineChurnEventsPerSec = 6926170.0;
constexpr double kBaselineTestbedEventsPerSec = 772274.0;
constexpr double kBaselineTestbedPacketsPerSec = 109673.0;

// Event-core numbers at the commit before batched delivery (see header
// comment: the slot-release fold changes the events-per-packet ratio).
constexpr double kPriorChurnEventsPerSec = 14246412.0;
constexpr double kPriorTestbedEventsPerSec = 3235067.0;
constexpr double kPriorTestbedPacketsPerSec = 459652.0;

// Smoke-mode floor: the testbed must clear 1.3x the pre-event-core
// baseline even in the short CI run. Hard-fails only on optimized,
// sanitizer-free builds — elsewhere wall-clock throughput is
// meaningless, so the check degrades to a warning.
constexpr double kSmokeTestbedEventsPerSecFloor =
    1.3 * kBaselineTestbedEventsPerSec;

// Scan-cache smoke floor: cached vs legacy packets/sec through the
// detection engines. Warn-only by design — it is a wall-clock *ratio*
// and compresses under sanitizers, -O0, or a noisy CI neighbour — but a
// memoized path slower than the full rescan is worth a log line
// anywhere. The byte-identity of detections is checked separately and
// hard-fails everywhere.
constexpr double kSmokeScanCacheSpeedupFloor = 1.5;

// Megaflow smoke floor (flows created per wall second). Deliberately low:
// the smoke run exists to catch order-of-magnitude collapses (e.g. a
// flow-table probe chain going quadratic), not to measure.
constexpr double kSmokeMegaflowFlowsPerSecFloor = 2000.0;

// ICS / CAN environment smoke floors (packets per wall second). These
// profiles stress the per-packet fast path with fixed-rate periodic tiny
// frames plus adaptive payload-pool growth; a collapse here means
// per-packet overhead crept into that loop. Both floors are WARN-ONLY
// everywhere — they are wall-clock rates and the profiles exist for
// realism pins (the ctest property suite), not throughput guarantees.
constexpr double kSmokeIcsPacketsPerSecFloor = 30000.0;
constexpr double kSmokeCanbusPacketsPerSecFloor = 60000.0;

constexpr bool sanitized_build() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

constexpr bool optimized_build() {
#if defined(NDEBUG)
  return !sanitized_build();
#else
  return false;
#endif
}

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// 64-byte self-rescheduling timer: the capture shape of the simulator's
// hot callbacks (a couple of pointers plus a small record).
struct ChurnTimer {
  Simulator* sim;
  std::uint64_t target;
  std::uint64_t id;
  std::uint64_t pad[5];

  void operator()() const {
    if (sim->executed() >= target) return;
    sim->schedule_in(SimTime::from_us(1.0 + static_cast<double>(id % 7)),
                     ChurnTimer{*this});
  }
};
static_assert(sizeof(ChurnTimer) == 64);

struct ChurnResult {
  double events_per_sec = 0.0;
  std::uint64_t fallbacks = 0;
};

ChurnResult churn_run(std::uint64_t total_events) {
  Simulator sim;
  for (std::uint64_t i = 0; i < 64; ++i) {
    sim.schedule_in(SimTime::from_us(static_cast<double>(i)),
                    ChurnTimer{&sim, total_events, i, {}});
  }
  const double t0 = now_sec();
  sim.run_until(SimTime::max());
  const double dt = now_sec() - t0;
  return ChurnResult{static_cast<double>(sim.executed()) / dt,
                     sim.alloc_fallbacks()};
}

struct TestbedResult {
  double events_per_sec = 0.0;
  double packets_per_sec = 0.0;
  std::uint64_t fallbacks = 0;
};

TestbedResult testbed_run(double measure_sec) {
  idseval::harness::TestbedConfig cfg;
  cfg.profile = idseval::traffic::rt_cluster_profile();
  cfg.internal_hosts = 8;
  cfg.external_hosts = 4;
  cfg.seed = 42;
  cfg.rate_scale = 6.0;
  cfg.warmup = SimTime::from_sec(3);
  cfg.measure = SimTime::from_sec(measure_sec);
  cfg.drain = SimTime::from_sec(2);
  const auto& model =
      idseval::products::product(idseval::products::ProductId::kGuardSecure);
  idseval::harness::Testbed bed(cfg, &model, 0.5);
  std::uint64_t packets = 0;
  bed.net().lan_switch().add_mirror(
      [&packets](const idseval::netsim::Packet&) { ++packets; });
  const auto scenario = idseval::attack::Scenario::mixed(
      1, SimTime::zero(), cfg.measure * 0.9,
      idseval::util::hash64("bench") ^ cfg.seed, cfg.external_hosts,
      cfg.internal_hosts);
  const double t0 = now_sec();
  (void)bed.run(scenario);
  const double dt = now_sec() - t0;
  return TestbedResult{static_cast<double>(bed.sim().executed()) / dt,
                       static_cast<double>(packets) / dt,
                       bed.sim().alloc_fallbacks()};
}

struct ScanCacheSide {
  double packets_per_sec = 0.0;
  std::uint64_t detections = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t boundary_rescans = 0;
};

struct ScanCacheResult {
  ScanCacheSide cached;
  ScanCacheSide legacy;
  std::uint64_t packets = 0;
  double speedup() const {
    return legacy.packets_per_sec > 0.0
               ? cached.packets_per_sec / legacy.packets_per_sec
               : 0.0;
  }
  double hit_ratio() const {
    const double total =
        static_cast<double>(cached.hits + cached.misses);
    return total > 0.0 ? static_cast<double>(cached.hits) / total : 0.0;
  }
};

// Detection-engine hot loop over interned payloads: the signature engine
// (deep inspection + stream reassembly) and the anomaly engine (Shannon
// entropy) fed the few-variant pooled payload mix the repetitive
// RT-cluster/ICS profiles produce. The packet ring is pre-built so the
// wall clock measures the engines, not make_packet; the cached and
// legacy runs see the identical sequence, so the throughput delta is the
// memo + boundary-limited reassembly and the detection counts must be
// exactly equal.
ScanCacheSide scan_cache_run(bool cache_on, std::uint64_t packets) {
  idseval::telemetry::Registry registry;
  idseval::telemetry::ScopedRegistry scope(&registry);

  // 16 interned variants, ~0.4-1 KB: mostly low-entropy repetitive
  // frames plus a signature-bearing payload and a boundary-straddling
  // fragment pair — the shape PayloadPool hands the sensors.
  const std::string traversal(idseval::attack::patterns::kDirTraversal);
  std::vector<std::shared_ptr<const std::string>> pool;
  idseval::util::Rng rng(20260808);
  for (int v = 0; v < 12; ++v) {
    std::string s(static_cast<std::size_t>(384 + 48 * v), '\0');
    for (char& ch : s) {
      ch = static_cast<char>(
          'a' + rng.index(static_cast<std::size_t>(2 + v % 5)));
    }
    pool.push_back(std::make_shared<const std::string>(std::move(s)));
  }
  pool.push_back(std::make_shared<const std::string>(
      "GET " + traversal + " HTTP/1.0 " + std::string(480, 'b')));
  pool.push_back(
      std::make_shared<const std::string>("GET /a" + traversal.substr(0, 7)));
  pool.push_back(std::make_shared<const std::string>(traversal.substr(7) +
                                                     std::string(440, 'c')));
  pool.push_back(std::make_shared<const std::string>(std::string(512, 'd')));

  idseval::ids::SignatureEngineOptions sig_opt;
  sig_opt.stream_reassembly = true;
  sig_opt.scan_cache = cache_on;
  idseval::ids::SignatureEngine signature(idseval::ids::standard_rule_set(),
                                          sig_opt);
  idseval::ids::AnomalyEngineOptions ano_opt;
  ano_opt.scan_cache = cache_on;
  idseval::ids::AnomalyEngine anomaly(ano_opt);

  constexpr std::size_t kRing = 1024;
  constexpr std::uint64_t kFlows = 32;
  std::vector<idseval::netsim::Packet> ring;
  ring.reserve(kRing);
  for (std::size_t i = 0; i < kRing; ++i) {
    idseval::netsim::FiveTuple t;
    t.src_ip = idseval::netsim::Ipv4(198, 51, 100, 1);
    t.dst_ip = idseval::netsim::Ipv4(10, 0, 0, 2);
    t.src_port = 4000;
    t.dst_port = idseval::netsim::ports::kHttp;
    const std::uint64_t flow = 1 + (i % kFlows);
    idseval::netsim::Packet p = idseval::netsim::make_packet(
        i, flow, SimTime::zero(), t, pool[(i * 7) % pool.size()]);
    p.seq = static_cast<std::uint32_t>(i);
    ring.push_back(std::move(p));
  }

  std::vector<idseval::ids::Detection> out;
  std::uint64_t detections = 0;
  const std::uint64_t learn = packets / 8;
  const double t0 = now_sec();
  for (std::uint64_t i = 0; i < packets; ++i) {
    if (i == learn) {
      anomaly.set_mode(idseval::ids::AnomalyEngine::Mode::kDetecting);
    }
    const idseval::netsim::Packet& p = ring[i % kRing];
    const SimTime now = SimTime::from_us(static_cast<double>(i));
    signature.process(p, now, out);
    anomaly.process(p, now, out);
    detections += out.size();
    out.clear();
  }
  const double dt = now_sec() - t0;

  namespace names = idseval::telemetry::names;
  ScanCacheSide side;
  side.packets_per_sec = static_cast<double>(packets) / dt;
  side.detections = detections;
  side.hits = registry.counter(names::kScanCacheHits).value();
  side.misses = registry.counter(names::kScanCacheMisses).value();
  side.bytes_saved = registry.counter(names::kScanCacheBytesSaved).value();
  side.boundary_rescans =
      registry.counter(names::kScanCacheBoundaryRescans).value();
  return side;
}

struct FanoutResult {
  double packets_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t fallbacks = 0;
};

// Same-tick burst trains through the two-host switch topology. Zero
// bandwidth means no serialization gaps: every burst arrives as one
// coalescible train per link tick — the shape batched delivery exists
// for. `coalesce` off forces the one-event-per-packet reference path.
FanoutResult fanout_run(bool coalesce, int bursts,
                        std::uint32_t burst_size) {
  Simulator sim;
  idseval::netsim::Network net(sim);
  idseval::netsim::LinkSpec wire;
  wire.bandwidth_bps = 0.0;
  wire.latency = SimTime::from_us(5);
  wire.queue_capacity = 4096;
  const idseval::netsim::Ipv4 src(10, 0, 0, 1);
  const idseval::netsim::Ipv4 dst(10, 0, 0, 2);
  net.add_host("src", src, wire);
  net.add_host("dst", dst, wire);
  net.set_delivery_coalescing(coalesce);
  std::uint64_t mirrored = 0;
  net.lan_switch().add_mirror_batch(
      [&mirrored](const idseval::netsim::Packet*, std::size_t n) {
        mirrored += n;
      });
  idseval::traffic::TransactionLedger ledger;
  idseval::traffic::FlowGenerator gen(
      sim, net, &ledger, idseval::traffic::rt_cluster_profile(),
      /*seed=*/7);
  for (int i = 0; i < bursts; ++i) {
    sim.schedule_in(SimTime::from_ms(static_cast<double>(i)),
                    [&gen, src, dst, burst_size] {
                      gen.emit_burst(src, dst, 80, burst_size, 256);
                    });
  }
  const double t0 = now_sec();
  sim.run_until(SimTime::max());
  const double dt = now_sec() - t0;
  return FanoutResult{static_cast<double>(mirrored) / dt, sim.executed(),
                      sim.alloc_fallbacks()};
}

struct MegaflowResult {
  double flows_per_sec = 0.0;    ///< Ledger transactions per wall second.
  double packets_per_sec = 0.0;
  double bytes_per_probe = 0.0;  ///< Payload bytes moved per table probe.
  double probes_per_lookup = 0.0;  ///< Live-tracker mean chain length.
  std::uint64_t flows = 0;
  std::uint64_t peak_live = 0;     ///< Peak concurrently live flows.
  std::uint64_t end_live = 0;      ///< Stragglers still open at cutoff.
  std::uint64_t table_memory_bytes = 0;
  std::uint64_t fallbacks = 0;
};

// Megaflow profile at bench scale: ~10^4 hosts, flow arrivals fast
// enough that the live-flow population — not the packet rate — is the
// scaling variable (~10^6 live at full scale). A mirror tap maintains a
// FlowTuple-keyed live-flow tracker, erasing on FIN/RST, exactly the
// access pattern the per-flow state holders pay; the ledger's own flow
// table is the second table under test.
MegaflowResult megaflow_run(bool smoke) {
  Simulator sim;
  idseval::netsim::Network net(sim);
  const int internal = smoke ? 2000 : 12000;
  const int external = smoke ? 200 : 1200;
  std::vector<idseval::netsim::Ipv4> internal_hosts;
  std::vector<idseval::netsim::Ipv4> external_hosts;
  internal_hosts.reserve(static_cast<std::size_t>(internal));
  external_hosts.reserve(static_cast<std::size_t>(external));
  for (int i = 0; i < internal; ++i) {
    const idseval::netsim::Ipv4 addr(
        10, 1, static_cast<std::uint8_t>(i >> 8),
        static_cast<std::uint8_t>(i & 0xff));
    net.add_host("h" + std::to_string(i), addr);
    internal_hosts.push_back(addr);
  }
  for (int i = 0; i < external; ++i) {
    const idseval::netsim::Ipv4 addr(
        198, 51, static_cast<std::uint8_t>(i >> 8),
        static_cast<std::uint8_t>(i & 0xff));
    net.add_external_host("x" + std::to_string(i), addr);
    external_hosts.push_back(addr);
  }

  struct FlowAccum {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  idseval::netsim::FlowMap<FlowAccum> live;
  live.reserve(smoke ? (1u << 16) : (1u << 20));
  std::uint64_t packets = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t peak_live = 0;
  net.lan_switch().add_mirror_batch(
      [&](const idseval::netsim::Packet* p, std::size_t n) {
        packets += n;
        for (std::size_t i = 0; i < n; ++i) {
          const idseval::netsim::Packet& pk = p[i];
          const std::uint64_t bytes = pk.payload_bytes();
          bytes_total += bytes;
          const idseval::netsim::FlowTuple key =
              idseval::netsim::FlowTuple::from(pk.tuple).canonical();
          if (pk.flags.fin || pk.flags.rst) {
            live.erase(key);
            continue;
          }
          FlowAccum& acc = *live.try_emplace(key).first;
          ++acc.packets;
          acc.bytes += bytes;
          if (live.size() > peak_live) peak_live = live.size();
        }
      });

  idseval::traffic::EnvironmentProfile prof =
      idseval::traffic::megaflow_profile();
  prof.flows_per_sec *= smoke ? 20.0 : 200.0;  // 5k / 50k flows per sim-sec
  const double gen_sec = smoke ? 6.0 : 20.0;
  const double drain_sec = smoke ? 25.0 : 40.0;

  idseval::traffic::TransactionLedger ledger;
  idseval::traffic::FlowGenerator gen(sim, net, &ledger, prof, /*seed=*/13);
  gen.set_internal_hosts(internal_hosts);
  gen.set_external_hosts(external_hosts);

  const double t0 = now_sec();
  gen.start(SimTime::from_sec(gen_sec));
  sim.run_until(SimTime::from_sec(gen_sec + drain_sec));
  const double dt = now_sec() - t0;

  const std::uint64_t probes =
      live.stats().probes + ledger.table_stats().probes;
  MegaflowResult r;
  r.flows = ledger.size();
  r.flows_per_sec = static_cast<double>(r.flows) / dt;
  r.packets_per_sec = static_cast<double>(packets) / dt;
  r.bytes_per_probe = probes == 0 ? 0.0
                                  : static_cast<double>(bytes_total) /
                                        static_cast<double>(probes);
  r.probes_per_lookup = live.stats().probes_per_lookup();
  r.peak_live = peak_live;
  r.end_live = live.size();
  r.table_memory_bytes = live.memory_bytes();
  r.fallbacks = sim.alloc_fallbacks();
  return r;
}

struct ProfileSmokeResult {
  std::string name;
  std::uint64_t packets = 0;
  std::uint64_t flows = 0;
  double packets_per_sec = 0.0;
  double flows_per_sec = 0.0;
  std::uint64_t pool_grown_variants = 0;
  std::uint64_t fallbacks = 0;
  double floor = 0.0;  ///< Warn-only packets/sec floor for this profile.
};

// One environment profile through the raw generator + switch fast path
// (no IDS pipeline): the ics and canbus profiles are dominated by
// periodic tiny frames, so this measures exactly the per-packet overhead
// their fixed-rate loops pay. Growth is enabled for the low-entropy
// payload kinds the same way the harness enables it, so the adaptive
// pool's doubling path is on the measured loop.
ProfileSmokeResult profile_smoke_run(
    const idseval::traffic::EnvironmentProfile& prof, double floor,
    bool smoke) {
  Simulator sim;
  idseval::netsim::Network net(sim);
  std::vector<idseval::netsim::Ipv4> internal_hosts;
  std::vector<idseval::netsim::Ipv4> external_hosts;
  for (int i = 1; i <= 8; ++i) {
    const idseval::netsim::Ipv4 addr(10, 2, 0,
                                     static_cast<std::uint8_t>(i));
    net.add_host("h" + std::to_string(i), addr);
    internal_hosts.push_back(addr);
  }
  for (int i = 1; i <= 2; ++i) {
    const idseval::netsim::Ipv4 addr(198, 51, 101,
                                     static_cast<std::uint8_t>(i));
    net.add_external_host("x" + std::to_string(i), addr);
    external_hosts.push_back(addr);
  }

  std::uint64_t packets = 0;
  net.lan_switch().add_mirror_batch(
      [&packets](const idseval::netsim::Packet*, std::size_t n) {
        packets += n;
      });

  idseval::traffic::EnvironmentProfile scaled = prof;
  scaled.flows_per_sec *= smoke ? 20.0 : 100.0;
  const double gen_sec = smoke ? 8.0 : 20.0;

  idseval::traffic::PayloadPool pool(/*seed=*/29);
  for (const auto& share : scaled.mix) {
    if (share.kind == idseval::traffic::PayloadKind::kIcsControl ||
        share.kind == idseval::traffic::PayloadKind::kCanFrame) {
      pool.enable_growth(
          share.kind, idseval::traffic::PayloadPool::kGrowthMaxVariants);
    }
  }
  idseval::traffic::TransactionLedger ledger;
  idseval::traffic::FlowGenerator gen(sim, net, &ledger, scaled,
                                      /*seed=*/29, &pool);
  gen.set_internal_hosts(internal_hosts);
  gen.set_external_hosts(external_hosts);

  const double t0 = now_sec();
  gen.start(SimTime::from_sec(gen_sec));
  sim.run_until(SimTime::from_sec(gen_sec + 5.0));
  const double dt = now_sec() - t0;

  ProfileSmokeResult r;
  r.name = prof.name;
  r.packets = packets;
  r.flows = ledger.size();
  r.packets_per_sec = static_cast<double>(packets) / dt;
  r.flows_per_sec = static_cast<double>(r.flows) / dt;
  r.pool_grown_variants = pool.grown_variants();
  r.fallbacks = sim.alloc_fallbacks();
  r.floor = floor;
  return r;
}

struct ShardScalingPoint {
  std::size_t shards = 0;
  double events_per_sec = 0.0;
  double packets_per_sec = 0.0;
  std::uint64_t flows = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross_shard_messages = 0;
  double barrier_stall_mean_sec = 0.0;  ///< Mean over shards.
  double barrier_stall_max_sec = 0.0;   ///< Worst shard.
  std::uint64_t fallbacks = 0;
};

// The megaflow workload spread over a distributed shard plan: every
// shard owns a full topology slice (hosts, switch, links) plus its own
// flow generator sourcing from local hosts toward destinations anywhere
// in the enclave, so a deterministic fraction of traffic crosses shards
// over the trunk fabric. Reproducible at a fixed shard count; NOT
// shard-count-invariant (N generators = N arrival streams), which is
// fine for a throughput bench — the invariant path is the central plan
// the testbed uses, pinned by the golden-hash tests.
ShardScalingPoint shard_scaling_run(std::size_t shards, bool smoke) {
  using idseval::netsim::CrossShardFabric;
  using idseval::netsim::Ipv4;
  using idseval::netsim::LinkSpec;
  using idseval::netsim::Network;
  using idseval::netsim::ShardPlan;
  using idseval::netsim::ShardedSimulator;

  const ShardPlan plan = ShardPlan::distributed(shards);
  ShardedSimulator engine{plan};
  LinkSpec trunk;
  trunk.bandwidth_bps = 10e9;
  trunk.latency = SimTime::from_us(50);
  trunk.queue_capacity = 1u << 16;
  CrossShardFabric fabric(engine, trunk);

  // One Network per shard; shards > 0 build under their own telemetry
  // registry so switch/link instruments bind shard-locally (their
  // counters are bumped from shard worker threads in threaded mode).
  struct Site {
    std::unique_ptr<Network> net;
    std::unique_ptr<idseval::traffic::TransactionLedger> ledger;
    std::unique_ptr<idseval::traffic::FlowGenerator> gen;
    std::vector<Ipv4> internal;
    std::vector<Ipv4> external;
    std::uint64_t packets = 0;
  };
  std::vector<Site> sites(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    std::optional<idseval::telemetry::ScopedRegistry> scope;
    if (s > 0) scope.emplace(engine.registry(s));
    sites[s].net = std::make_unique<Network>(engine.shard(s));
    fabric.set_switch(s, &sites[s].net->lan_switch());
  }

  const int internal = smoke ? 2000 : 12000;
  const int external = smoke ? 200 : 1200;
  std::vector<Ipv4> all_internal;
  all_internal.reserve(static_cast<std::size_t>(internal));
  for (int i = 0; i < internal; ++i) {
    const Ipv4 addr(10, 1, static_cast<std::uint8_t>(i >> 8),
                    static_cast<std::uint8_t>(i & 0xff));
    const std::size_t home = plan.shard_of(addr);
    std::optional<idseval::telemetry::ScopedRegistry> scope;
    if (home > 0) scope.emplace(engine.registry(home));
    sites[home].net->add_host("h" + std::to_string(i), addr);
    sites[home].internal.push_back(addr);
    all_internal.push_back(addr);
    fabric.add_route(addr, home);
  }
  for (int i = 0; i < external; ++i) {
    const Ipv4 addr(198, 51, static_cast<std::uint8_t>(i >> 8),
                    static_cast<std::uint8_t>(i & 0xff));
    const std::size_t home = plan.shard_of(addr);
    std::optional<idseval::telemetry::ScopedRegistry> scope;
    if (home > 0) scope.emplace(engine.registry(home));
    sites[home].net->add_external_host("x" + std::to_string(i), addr);
    sites[home].external.push_back(addr);
    fabric.add_route(addr, home);
  }

  idseval::traffic::EnvironmentProfile prof =
      idseval::traffic::megaflow_profile();
  prof.flows_per_sec *= smoke ? 20.0 : 200.0;
  const double gen_sec = smoke ? 6.0 : 20.0;
  const double drain_sec = smoke ? 10.0 : 20.0;

  for (std::size_t s = 0; s < shards; ++s) {
    Site& site = sites[s];
    if (site.internal.empty()) continue;
    std::optional<idseval::telemetry::ScopedRegistry> scope;
    if (s > 0) scope.emplace(engine.registry(s));
    site.net->lan_switch().add_mirror_batch(
        [&site](const idseval::netsim::Packet*, std::size_t n) {
          site.packets += n;
        });
    site.ledger = std::make_unique<idseval::traffic::TransactionLedger>();
    site.gen = std::make_unique<idseval::traffic::FlowGenerator>(
        engine.shard(s), *site.net, site.ledger.get(), prof,
        idseval::util::derive_seed(13, s));
    // Destinations span the enclave (that is what sends packets over the
    // trunks); sources stay local; arrival rate is the shard's share of
    // the total so offered load is constant across shard counts.
    site.gen->set_internal_hosts(all_internal);
    site.gen->set_source_hosts(site.internal);
    site.gen->set_external_hosts(site.external);
    site.gen->set_rate_scale(static_cast<double>(site.internal.size()) /
                             static_cast<double>(internal));
    site.gen->start(SimTime::from_sec(gen_sec));
  }

  const double t0 = now_sec();
  engine.run_until(SimTime::from_sec(gen_sec + drain_sec));
  const double dt = now_sec() - t0;

  ShardScalingPoint p;
  p.shards = shards;
  p.events_per_sec = static_cast<double>(engine.executed()) / dt;
  std::uint64_t packets = 0;
  for (const Site& site : sites) {
    packets += site.packets;
    if (site.ledger) p.flows += site.ledger->size();
  }
  p.packets_per_sec = static_cast<double>(packets) / dt;
  p.windows = engine.stats().windows;
  p.cross_shard_messages = engine.stats().total_messages();
  for (const ShardedSimulator::ShardStats& s : engine.stats().shard) {
    p.barrier_stall_mean_sec += s.barrier_stall_sec;
    p.barrier_stall_max_sec =
        std::max(p.barrier_stall_max_sec, s.barrier_stall_sec);
  }
  p.barrier_stall_mean_sec /= static_cast<double>(shards);
  p.fallbacks = engine.alloc_fallbacks();
  return p;
}

struct TraceOverheadResult {
  double sync_producer_sec = 0.0;        ///< emit+flush time, sync sink.
  double background_producer_sec = 0.0;  ///< emit+flush time, bg sink.
  std::uint64_t events = 0;
  bool files_identical = false;
};

/// Burns roughly `sec` of wall clock standing in for a cell simulation
/// between trace batches (the window the background writer drains in).
void burn(double sec) {
  const double until = now_sec() + sec;
  volatile std::uint64_t sink = 0;
  while (now_sec() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + 1;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Producer-side cost of tracing, shaped like a campaign cell: `batch`
/// events emitted over the cell's lifetime (interleaved with simulated
/// work), then one flush at the cell boundary. Only the time spent
/// inside emit()/flush()/close() counts — that is the time the sim
/// thread loses to tracing. The sync writer performs all file I/O
/// inside the boundary flush; the background writer drains during the
/// work windows, so its producer-visible time must not exceed the sync
/// writer's.
double trace_producer_run(const std::string& path, bool background,
                          int batches, int batch,
                          const std::string& line) {
  idseval::telemetry::TraceSink sink(path, 1u << 16, background);
  double spent = 0.0;
  for (int b = 0; b < batches; ++b) {
    for (int burst = 0; burst < batch; burst += 50) {
      double t0 = now_sec();
      for (int i = 0; i < 50; ++i) sink.emit(line);
      spent += now_sec() - t0;
      burn(0.0002);  // sim work between event bursts inside the cell
    }
    const double t0 = now_sec();
    sink.flush();  // cell boundary
    spent += now_sec() - t0;
  }
  const double t0 = now_sec();
  sink.close();
  spent += now_sec() - t0;
  return spent;
}

TraceOverheadResult trace_overhead_run(const std::string& out_base,
                                       bool smoke) {
  const int batches = smoke ? 10 : 50;
  const int batch = smoke ? 1000 : 2000;
  // A representative event line: the pre-rendered Doc shape producers
  // enqueue (rendering cost is identical in both modes and excluded).
  idseval::results::Doc event = idseval::results::Doc::object();
  event.set("type", "cell")
      .set("index", 17)
      .set("product", "GuardSecure")
      .set("profile", "rt_cluster")
      .set("ok", true)
      .set("mean_sec", 0.0012345);
  const std::string line = idseval::results::to_json(event);

  const std::string sync_path = out_base + ".trace_sync.jsonl";
  const std::string bg_path = out_base + ".trace_bg.jsonl";
  TraceOverheadResult r;
  r.events = static_cast<std::uint64_t>(batches) *
             static_cast<std::uint64_t>(batch);
  r.sync_producer_sec =
      trace_producer_run(sync_path, /*background=*/false, batches, batch,
                         line);
  r.background_producer_sec =
      trace_producer_run(bg_path, /*background=*/true, batches, batch,
                         line);
  r.files_identical = slurp(sync_path) == slurp(bg_path);
  std::remove(sync_path.c_str());
  std::remove(bg_path.c_str());
  return r;
}

idseval::results::Doc speed_doc(double v) {
  // Keep the report readable: ratios to 3 decimals via a decimal string
  // round-trip would change the type, so round the double itself.
  return idseval::results::Doc(std::round(v * 1000.0) / 1000.0);
}

bool write_report(const std::string& path, const ChurnResult& churn,
                  const TestbedResult& bed, const ScanCacheResult& scan,
                  const FanoutResult& fan_on, const FanoutResult& fan_off,
                  const TraceOverheadResult& trace,
                  const MegaflowResult& mega,
                  const std::vector<ProfileSmokeResult>& profiles,
                  const std::vector<ShardScalingPoint>& scaling,
                  bool smoke) {
  using idseval::results::Doc;
  Doc report = Doc::object();
  report.set("smoke", smoke);

  Doc baseline = Doc::object();
  baseline.set("churn_events_per_sec", kBaselineChurnEventsPerSec)
      .set("testbed_events_per_sec", kBaselineTestbedEventsPerSec)
      .set("testbed_packets_per_sec", kBaselineTestbedPacketsPerSec);
  report.set("baseline", std::move(baseline));

  Doc prior = Doc::object();
  prior.set("churn_events_per_sec", kPriorChurnEventsPerSec)
      .set("testbed_events_per_sec", kPriorTestbedEventsPerSec)
      .set("testbed_packets_per_sec", kPriorTestbedPacketsPerSec)
      .set("note",
           "pre-batching event core; lazy slot release folded ~2 of ~7 "
           "events/packet, so compare packets/sec across that change, "
           "not events/sec");
  report.set("prior", std::move(prior));

  Doc current = Doc::object();
  current.set("churn_events_per_sec", std::round(churn.events_per_sec))
      .set("testbed_events_per_sec", std::round(bed.events_per_sec))
      .set("testbed_packets_per_sec", std::round(bed.packets_per_sec));
  report.set("current", std::move(current));

  Doc speedup = Doc::object();
  speedup
      .set("churn",
           speed_doc(churn.events_per_sec / kBaselineChurnEventsPerSec))
      .set("testbed_events",
           speed_doc(bed.events_per_sec / kBaselineTestbedEventsPerSec))
      .set("testbed_packets",
           speed_doc(bed.packets_per_sec / kBaselineTestbedPacketsPerSec))
      .set("testbed_packets_vs_prior",
           speed_doc(bed.packets_per_sec / kPriorTestbedPacketsPerSec));
  report.set("speedup", std::move(speedup));

  Doc fanout = Doc::object();
  fanout
      .set("coalesced_packets_per_sec",
           std::round(fan_on.packets_per_sec))
      .set("per_packet_packets_per_sec",
           std::round(fan_off.packets_per_sec))
      .set("coalesced_events", fan_on.events)
      .set("per_packet_events", fan_off.events)
      .set("speedup",
           speed_doc(fan_on.packets_per_sec / fan_off.packets_per_sec))
      .set("event_reduction",
           speed_doc(static_cast<double>(fan_off.events) /
                     static_cast<double>(fan_on.events)));
  report.set("fanout", std::move(fanout));

  Doc scan_cache = Doc::object();
  scan_cache.set("packets", scan.packets)
      .set("cached_packets_per_sec",
           std::round(scan.cached.packets_per_sec))
      .set("legacy_packets_per_sec",
           std::round(scan.legacy.packets_per_sec))
      .set("speedup", speed_doc(scan.speedup()))
      .set("hit_ratio", speed_doc(scan.hit_ratio()))
      .set("hits", scan.cached.hits)
      .set("misses", scan.cached.misses)
      .set("bytes_saved", scan.cached.bytes_saved)
      .set("boundary_rescans", scan.cached.boundary_rescans)
      .set("detections_identical",
           scan.cached.detections == scan.legacy.detections);
  report.set("scan_cache", std::move(scan_cache));

  Doc trace_overhead = Doc::object();
  trace_overhead.set("events", trace.events)
      .set("sync_producer_sec",
           std::round(trace.sync_producer_sec * 1e6) / 1e6)
      .set("background_producer_sec",
           std::round(trace.background_producer_sec * 1e6) / 1e6)
      .set("producer_time_ratio",
           speed_doc(trace.sync_producer_sec > 0.0
                         ? trace.background_producer_sec /
                               trace.sync_producer_sec
                         : 0.0))
      .set("files_identical", trace.files_identical);
  report.set("trace_overhead", std::move(trace_overhead));

  Doc megaflow = Doc::object();
  megaflow.set("flows", mega.flows)
      .set("flows_per_sec", std::round(mega.flows_per_sec))
      .set("packets_per_sec", std::round(mega.packets_per_sec))
      .set("bytes_per_table_probe", speed_doc(mega.bytes_per_probe))
      .set("probes_per_lookup", speed_doc(mega.probes_per_lookup))
      .set("peak_live_flows", mega.peak_live)
      .set("end_live_flows", mega.end_live)
      .set("tracker_memory_bytes", mega.table_memory_bytes);
  report.set("megaflow", std::move(megaflow));

  Doc env_profiles = Doc::array();
  for (const ProfileSmokeResult& p : profiles) {
    Doc entry = Doc::object();
    entry.set("profile", p.name)
        .set("packets", p.packets)
        .set("flows", p.flows)
        .set("packets_per_sec", std::round(p.packets_per_sec))
        .set("flows_per_sec", std::round(p.flows_per_sec))
        .set("pool_grown_variants", p.pool_grown_variants)
        .set("floor_packets_per_sec", p.floor);
    env_profiles.push(std::move(entry));
  }
  report.set("environment_profiles", std::move(env_profiles));

  Doc shard_scaling = Doc::array();
  for (const ShardScalingPoint& p : scaling) {
    Doc point = Doc::object();
    point.set("shards", p.shards)
        .set("events_per_sec", std::round(p.events_per_sec))
        .set("packets_per_sec", std::round(p.packets_per_sec))
        .set("flows", p.flows)
        .set("windows", p.windows)
        .set("cross_shard_messages", p.cross_shard_messages)
        .set("barrier_stall_mean_sec",
             std::round(p.barrier_stall_mean_sec * 1e6) / 1e6)
        .set("barrier_stall_max_sec",
             std::round(p.barrier_stall_max_sec * 1e6) / 1e6)
        .set("speedup_vs_one_shard",
             speed_doc(scaling[0].events_per_sec > 0.0
                           ? p.events_per_sec / scaling[0].events_per_sec
                           : 0.0));
    shard_scaling.push(std::move(point));
  }
  Doc scaling_doc = Doc::object();
  scaling_doc
      .set("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .set("note",
           "distributed plan, reproducible per shard count but not "
           "shard-count-invariant; wall-clock speedup requires >= N "
           "physical cores")
      .set("points", std::move(shard_scaling));
  report.set("shard_scaling", std::move(scaling_doc));

  report.set("callback_heap_fallbacks",
             churn.fallbacks + bed.fallbacks + fan_on.fallbacks +
                 fan_off.fallbacks + mega.fallbacks);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_netsim: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = idseval::results::to_json_pretty(report);
  std::fputs(text.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_netsim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_netsim [--smoke] [--out FILE]\n");
      return 2;
    }
  }

  const std::uint64_t churn_events = smoke ? 200000 : 2000000;
  const int reps = smoke ? 1 : 3;
  const double measure_sec = smoke ? 3.0 : 12.0;

  (void)churn_run(churn_events / 10);  // warm-up
  ChurnResult churn;
  for (int i = 0; i < reps; ++i) {
    const ChurnResult r = churn_run(churn_events);
    if (r.events_per_sec > churn.events_per_sec) churn = r;
  }
  std::printf("churn:   %12.0f events/sec  (baseline %.0f, %.2fx)\n",
              churn.events_per_sec, kBaselineChurnEventsPerSec,
              churn.events_per_sec / kBaselineChurnEventsPerSec);

  TestbedResult bed;
  for (int i = 0; i < reps; ++i) {
    const TestbedResult r = testbed_run(measure_sec);
    if (r.events_per_sec > bed.events_per_sec) bed = r;
  }
  std::printf("testbed: %12.0f events/sec  (baseline %.0f, %.2fx)\n",
              bed.events_per_sec, kBaselineTestbedEventsPerSec,
              bed.events_per_sec / kBaselineTestbedEventsPerSec);
  std::printf("testbed: %12.0f packets/sec (baseline %.0f, %.2fx)\n",
              bed.packets_per_sec, kBaselineTestbedPacketsPerSec,
              bed.packets_per_sec / kBaselineTestbedPacketsPerSec);

  ScanCacheResult scan;
  scan.packets = smoke ? 150000 : 1200000;
  for (int i = 0; i < reps; ++i) {
    const ScanCacheSide on = scan_cache_run(true, scan.packets);
    if (on.packets_per_sec > scan.cached.packets_per_sec) scan.cached = on;
    const ScanCacheSide off = scan_cache_run(false, scan.packets);
    if (off.packets_per_sec > scan.legacy.packets_per_sec) {
      scan.legacy = off;
    }
  }
  std::printf("scancache:%11.0f packets/sec cached, %.0f legacy "
              "(%.2fx, hit ratio %.3f, %.1f MB saved, %llu boundary "
              "rescans)\n",
              scan.cached.packets_per_sec, scan.legacy.packets_per_sec,
              scan.speedup(), scan.hit_ratio(),
              static_cast<double>(scan.cached.bytes_saved) / 1048576.0,
              static_cast<unsigned long long>(
                  scan.cached.boundary_rescans));

  const int bursts = smoke ? 50 : 400;
  const std::uint32_t burst_size = 64;
  FanoutResult fan_on;
  FanoutResult fan_off;
  for (int i = 0; i < reps; ++i) {
    const FanoutResult on = fanout_run(true, bursts, burst_size);
    if (on.packets_per_sec > fan_on.packets_per_sec) fan_on = on;
    const FanoutResult off = fanout_run(false, bursts, burst_size);
    if (off.packets_per_sec > fan_off.packets_per_sec) fan_off = off;
  }
  std::printf("fanout:  %12.0f packets/sec coalesced, %.0f per-packet "
              "(%.2fx, %.2fx fewer events)\n",
              fan_on.packets_per_sec, fan_off.packets_per_sec,
              fan_on.packets_per_sec / fan_off.packets_per_sec,
              static_cast<double>(fan_off.events) /
                  static_cast<double>(fan_on.events));

  const TraceOverheadResult trace = trace_overhead_run(out, smoke);
  std::printf("trace:   %12.6f s producer time sync, %.6f s background "
              "(%llu events, files %s)\n",
              trace.sync_producer_sec, trace.background_producer_sec,
              static_cast<unsigned long long>(trace.events),
              trace.files_identical ? "identical" : "DIFFER");

  const MegaflowResult mega = megaflow_run(smoke);
  std::printf("megaflow:%12.0f flows/sec   (%llu flows, peak %llu live, "
              "%.0f packets/sec)\n",
              mega.flows_per_sec,
              static_cast<unsigned long long>(mega.flows),
              static_cast<unsigned long long>(mega.peak_live),
              mega.packets_per_sec);
  std::printf("megaflow:%12.1f bytes/table-probe, %.2f probes/lookup, "
              "%.1f MB tracker\n",
              mega.bytes_per_probe, mega.probes_per_lookup,
              static_cast<double>(mega.table_memory_bytes) / 1048576.0);

  // ICS / CAN environment smoke: the periodic tiny-frame fast path with
  // adaptive payload-pool growth enabled, floors warn-only (see the
  // constants).
  std::vector<ProfileSmokeResult> profiles;
  profiles.push_back(profile_smoke_run(idseval::traffic::ics_profile(),
                                       kSmokeIcsPacketsPerSecFloor,
                                       smoke));
  profiles.push_back(profile_smoke_run(idseval::traffic::canbus_profile(),
                                       kSmokeCanbusPacketsPerSecFloor,
                                       smoke));
  for (const ProfileSmokeResult& p : profiles) {
    std::printf("%-8s:%12.0f packets/sec (%llu packets, %llu flows, "
                "%llu grown payload variants)\n",
                p.name.c_str(), p.packets_per_sec,
                static_cast<unsigned long long>(p.packets),
                static_cast<unsigned long long>(p.flows),
                static_cast<unsigned long long>(p.pool_grown_variants));
  }

  std::vector<ShardScalingPoint> scaling;
  for (const std::size_t shards :
       smoke ? std::vector<std::size_t>{1, 2}
             : std::vector<std::size_t>{1, 2, 4, 8}) {
    const ShardScalingPoint p = shard_scaling_run(shards, smoke);
    scaling.push_back(p);
    std::printf("shards=%zu:%11.0f events/sec %10.0f packets/sec "
                "(%.2fx, %llu windows, %llu cross-shard msgs, "
                "stall mean %.3fs max %.3fs)\n",
                p.shards, p.events_per_sec, p.packets_per_sec,
                p.events_per_sec / scaling[0].events_per_sec,
                static_cast<unsigned long long>(p.windows),
                static_cast<unsigned long long>(p.cross_shard_messages),
                p.barrier_stall_mean_sec, p.barrier_stall_max_sec);
  }

  std::uint64_t fallbacks = churn.fallbacks + bed.fallbacks +
                            fan_on.fallbacks + fan_off.fallbacks +
                            mega.fallbacks;
  for (const ProfileSmokeResult& p : profiles) fallbacks += p.fallbacks;
  std::printf("callback heap fallbacks: %llu\n",
              static_cast<unsigned long long>(fallbacks));

  if (!write_report(out, churn, bed, scan, fan_on, fan_off, trace, mega,
                    profiles, scaling, smoke)) {
    return 1;
  }
  std::printf("report: %s\n", out.c_str());

  // Byte-identity between writer modes is deterministic (one FIFO feeds
  // both), so it hard-fails everywhere; the timing comparison is noisy
  // on shared CI hardware and stays warn-only.
  if (!trace.files_identical) {
    std::fprintf(stderr,
                 "bench_netsim: FAIL — background and sync trace files "
                 "differ\n");
    return 1;
  }
  if (trace.background_producer_sec > trace.sync_producer_sec * 1.5) {
    std::fprintf(stderr,
                 "bench_netsim: warning — background writer producer "
                 "time %.6fs exceeds sync %.6fs\n",
                 trace.background_producer_sec, trace.sync_producer_sec);
  }

  // The scan cache must be a pure optimization: identical packet
  // sequences through cached and legacy engines produce identical
  // detection counts deterministically, so a mismatch hard-fails on any
  // build. The speedup floor below is a wall-clock ratio and stays
  // warn-only (see kSmokeScanCacheSpeedupFloor).
  if (scan.cached.detections != scan.legacy.detections) {
    std::fprintf(stderr,
                 "bench_netsim: FAIL — scan cache changed detections "
                 "(%llu cached vs %llu legacy)\n",
                 static_cast<unsigned long long>(scan.cached.detections),
                 static_cast<unsigned long long>(scan.legacy.detections));
    return 1;
  }
  if (scan.speedup() < kSmokeScanCacheSpeedupFloor) {
    std::fprintf(stderr,
                 "bench_netsim: warning — scan cache speedup %.2fx below "
                 "the %.1fx floor (warn-only: wall-clock ratio, "
                 "compresses on unoptimized/sanitized builds)\n",
                 scan.speedup(), kSmokeScanCacheSpeedupFloor);
  }

  // Smoke-mode regression floor for CI: a real throughput collapse shows
  // up even in the short run. Only meaningful on optimized builds; under
  // sanitizers or -O0 the floor downgrades to a warning.
  if (smoke && bed.events_per_sec < kSmokeTestbedEventsPerSecFloor) {
    if (optimized_build()) {
      std::fprintf(stderr,
                   "bench_netsim: FAIL — smoke testbed ran at %.0f "
                   "events/sec, floor is %.0f\n",
                   bed.events_per_sec, kSmokeTestbedEventsPerSecFloor);
      return 1;
    }
    std::fprintf(stderr,
                 "bench_netsim: warning — smoke floor %.0f events/sec "
                 "not met (%.0f), ignored on unoptimized/sanitized "
                 "builds\n",
                 kSmokeTestbedEventsPerSecFloor, bed.events_per_sec);
  }

  // Same policy for the megaflow flow-rate floor: a probe-chain blowup
  // in the flow table shows up as orders of magnitude here.
  if (smoke && mega.flows_per_sec < kSmokeMegaflowFlowsPerSecFloor) {
    if (optimized_build()) {
      std::fprintf(stderr,
                   "bench_netsim: FAIL — smoke megaflow ran at %.0f "
                   "flows/sec, floor is %.0f\n",
                   mega.flows_per_sec, kSmokeMegaflowFlowsPerSecFloor);
      return 1;
    }
    std::fprintf(stderr,
                 "bench_netsim: warning — megaflow smoke floor %.0f "
                 "flows/sec not met (%.0f), ignored on "
                 "unoptimized/sanitized builds\n",
                 kSmokeMegaflowFlowsPerSecFloor, mega.flows_per_sec);
  }

  // ICS/CAN environment floors stay warn-only on every build (see the
  // constants): the profiles pin realism properties in ctest; the bench
  // section only flags order-of-magnitude fast-path collapses.
  if (smoke) {
    for (const ProfileSmokeResult& p : profiles) {
      if (p.packets_per_sec < p.floor) {
        std::fprintf(stderr,
                     "bench_netsim: warning — %s smoke floor %.0f "
                     "packets/sec not met (%.0f), warn-only\n",
                     p.name.c_str(), p.floor, p.packets_per_sec);
      }
    }
  }

  // Shard-scaling floor — warn-only by design: CI containers often pin
  // one core, where N shards time-slice a single CPU and the barrier
  // protocol is pure overhead, so a hard wall-clock floor would gate on
  // the machine, not the code. A collapse below half the 1-shard rate
  // at 2 shards is still worth surfacing in the log.
  if (scaling.size() >= 2 && scaling[0].events_per_sec > 0.0) {
    const double ratio =
        scaling[1].events_per_sec / scaling[0].events_per_sec;
    if (ratio < 0.5) {
      std::fprintf(stderr,
                   "bench_netsim: warning — 2-shard run at %.2fx the "
                   "1-shard rate (floor 0.5x, warn-only: needs >= 2 "
                   "cores to scale, %u available)\n",
                   ratio, std::thread::hardware_concurrency());
    }
  }

  // The default-profile hot path must never spill a callback to the
  // heap — that regression is deterministic, so the bench enforces it.
  if (fallbacks != 0) {
    std::fprintf(stderr,
                 "bench_netsim: FAIL — %llu callback(s) exceeded the "
                 "inline buffer on the default profile\n",
                 static_cast<unsigned long long>(fallbacks));
    return 1;
  }
  return 0;
}
