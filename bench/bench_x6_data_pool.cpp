// X6: Data Pool Selectability ablation (Table 2 / §3.2). "Data Pool
// Selectivity would allow the IDS to consider only protocols outside
// those typically used within the distributed cluster." Excluding the
// dominant, tuned cluster-RPC pool multiplies the sensor's headroom —
// and opens a measurable blind spot: attacks delivered inside the
// excluded pool (the novel cluster-bus exploit) become invisible.
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace idseval;

namespace {

products::ProductModel filtered_variant(bool exclude_cluster_pool) {
  products::ProductModel model =
      products::product(products::ProductId::kSentryNid);
  if (!exclude_cluster_pool) return model;
  model.name = "SentryNID/pool-filtered";
  const auto base = model.make_config;
  model.make_config = [base](double sensitivity) {
    ids::PipelineConfig cfg = base(sensitivity);
    // Trust the tuned intra-cluster bus: do not analyze it.
    cfg.tap_filter.exclude_dst_ports = {netsim::ports::kClusterRpc};
    return cfg;
  };
  return model;
}

}  // namespace

int main() {
  bench::print_header(
      "X6 - Data-pool selection: exclude the cluster-RPC pool from "
      "analysis (SentryNID, rt-cluster profile)");

  const harness::TestbedConfig env = bench::rt_environment(67);

  util::TextTable table(
      {"Configuration", "Zero-loss pps", "novel-exploit detected",
       "web-exploit detected", "FP ratio"},
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight});

  for (const bool filtered : {false, true}) {
    const products::ProductModel model = filtered_variant(filtered);
    const double zero_loss =
        harness::measure_zero_loss_pps(env, model, 0.5, 160.0, 1e-4, 5);

    harness::Testbed bed(env, &model, 0.5);
    const auto scenario = attack::Scenario::of_kinds(
        {attack::AttackKind::kNovelExploit, attack::AttackKind::kWebExploit},
        4, netsim::SimTime::zero(), env.measure * 0.9, 4242,
        env.external_hosts, env.internal_hosts);
    const harness::RunResult r = bed.run(scenario);

    const auto& novel = r.per_kind.at(attack::AttackKind::kNovelExploit);
    const auto& web = r.per_kind.at(attack::AttackKind::kWebExploit);
    table.add_row(
        {filtered ? "cluster pool excluded" : "full data pool",
         util::fmt_double(zero_loss, 0),
         std::to_string(novel.detected) + "/" +
             std::to_string(novel.launched),
         std::to_string(web.detected) + "/" + std::to_string(web.launched),
         util::fmt_double(r.fp_ratio, 5)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Expected shape: excluding the ~90%%-of-traffic cluster pool\n"
      "multiplies zero-loss throughput (the sensor only inspects the\n"
      "residue), detection of attacks OUTSIDE the pool is unchanged, and\n"
      "attacks delivered INSIDE the excluded pool are never seen. Note\n"
      "the novel exploit is signature-invisible to this product either\n"
      "way - the filtered column shows the pool exclusion also forecloses\n"
      "ever upgrading that blind spot with better rules.\n");
  return 0;
}
