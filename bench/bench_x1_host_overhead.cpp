// X1: host-based IDS resource overhead (§2.1). "Nominal event-logging
// support for host IDSs has been shown to consume three to five percent
// of the monitored host's resources. Logging compliant with DoD C2-level
// security requires as much as twenty percent of the host's processing
// power [3,10]." The bench sweeps the agent logging level at a realistic
// per-host packet rate and reports the measured CPU fractions.
#include "bench_common.hpp"
#include "ids/host_agent.hpp"
#include "util/table.hpp"

using namespace idseval;

namespace {

products::ProductModel agent_variant(ids::LoggingLevel level) {
  products::ProductModel model =
      products::product(products::ProductId::kAgentSwarm);
  model.name = "AgentSwarm/" + ids::to_string(level);
  const auto base = model.make_config;
  model.make_config = [base, level](double sensitivity) {
    ids::PipelineConfig cfg = base(sensitivity);
    cfg.agent.logging = level;
    return cfg;
  };
  return model;
}

}  // namespace

int main() {
  bench::print_header(
      "X1 - Host-agent logging overhead vs. the paper's 3-5% nominal / "
      "~20% C2 figures (sect. 2.1)");

  // Scale the rt-cluster profile to ~1000 packets/sec/host — the load
  // regime the published overhead numbers describe.
  harness::TestbedConfig env = bench::rt_environment();
  env.rate_scale = 10.0;
  env.warmup = netsim::SimTime::from_sec(5);
  env.measure = netsim::SimTime::from_sec(20);

  util::TextTable table(
      {"Logging level", "Per-host pps", "Mean host IDS CPU",
       "Worst host IDS CPU", "Paper's figure"},
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kLeft});

  const struct {
    ids::LoggingLevel level;
    const char* expectation;
  } kLevels[] = {
      {ids::LoggingLevel::kNone, "baseline (analysis cost only)"},
      {ids::LoggingLevel::kNominal, "3-5% nominal event logging"},
      {ids::LoggingLevel::kC2Audit, "~20% C2-compliant auditing"},
  };

  for (const auto& [level, expectation] : kLevels) {
    const products::ProductModel model = agent_variant(level);
    harness::Testbed bed(env, &model, 0.5);
    const harness::RunResult r = bed.run_clean();
    const double per_host_pps =
        r.offered_pps / static_cast<double>(env.internal_hosts);
    table.add_row({ids::to_string(level),
                   util::fmt_double(per_host_pps, 0),
                   util::fmt_double(100.0 * r.mean_host_ids_cpu, 1) + "%",
                   util::fmt_double(100.0 * r.max_host_ids_cpu, 1) + "%",
                   expectation});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
