// Quickstart: evaluate one IDS product against the real-time cluster
// environment and print its scorecard — the library's core loop in ~60
// lines. See examples/rt_procurement.cpp for the full multi-product,
// requirement-weighted selection the paper describes.
#include <cstdio>
#include <string>

#include "core/report.hpp"
#include "harness/evaluate.hpp"
#include "products/catalog.hpp"

using namespace idseval;

int main() {
  // 1. Describe the environment the IDS will protect: a distributed
  //    real-time cluster of 8 hosts with 4 external peers.
  harness::TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 8;
  env.external_hosts = 4;
  env.seed = 7;

  // 2. Pick a product from the catalog and evaluate it: the harness runs
  //    warmup (anomaly baselines learn), injects a mixed attack scenario
  //    with ground truth, and measures the performance metrics.
  const products::ProductModel& model =
      products::product(products::ProductId::kGuardSecure);
  harness::EvaluationOptions options;
  options.sensitivity = 0.5;
  options.include_load_metrics = false;  // quick run; see benches for full
  const harness::Evaluation eval =
      harness::evaluate_product(env, model, options);

  // 3. Inspect the measured run...
  const harness::RunResult& run = eval.measured.detection_run;
  std::printf("product:        %s\n", model.name.c_str());
  std::printf("transactions:   %zu (%zu attacks)\n", run.transactions,
              run.attacks);
  std::printf("detected:       %zu true, %zu false alarms, %zu missed\n",
              run.true_detections, run.false_alarms, run.missed_attacks);
  std::printf("FP ratio:       %.4f   FN ratio: %.4f\n", run.fp_ratio,
              run.fn_ratio);
  std::printf("timeliness:     %.2fs mean\n", run.timeliness_mean_sec);
  std::printf("host impact:    %.1f%% worst host\n\n",
              100.0 * run.max_host_ids_cpu);

  // 4. ...and the resulting scorecard, weighted by the real-time
  //    distributed requirement profile (Figure 6's mapping).
  const core::WeightSet weights =
      core::realtime_distributed_requirements().derive_weights();
  const core::Scorecard cards[] = {eval.card};
  std::printf("%s\n",
              core::render_weighted_summary(
                  "Weighted scorecard (real-time distributed profile)",
                  cards, weights)
                  .c_str());
  return 0;
}
