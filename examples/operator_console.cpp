// The operator's view: run a monitored enclave under attack and print
// what the monitoring subprocess shows a human — the threat summary
// (severity histogram, top offenders, alert-rate trend), historical
// queries, and the automated-reaction timeline (firewall blocks, SNMP
// traps) the management console executed. This is the "Monitoring" and
// "Managing" half of Figure 1 that the scorecard's Clarity of Reports,
// Notification and Firewall Interaction metrics judge.
#include <cstdio>

#include "harness/testbed.hpp"

using namespace idseval;
using netsim::SimTime;

int main() {
  harness::TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 8;
  env.external_hosts = 4;
  env.seed = 77;
  env.warmup = SimTime::from_sec(10);
  env.measure = SimTime::from_sec(40);

  const products::ProductModel& model =
      products::product(products::ProductId::kGuardSecure);
  harness::Testbed bed(env, &model, 0.6);

  // A noisy fortnight compressed into 40 seconds: scans, floods, worms,
  // an insider, repeated from a small set of attackers.
  const auto scenario = attack::Scenario::mixed(
      3, SimTime::zero(), SimTime::from_sec(36), 2024, env.external_hosts,
      env.internal_hosts);
  const harness::RunResult run = bed.run(scenario);

  ids::Pipeline& pipeline = *bed.pipeline();

  // --- The operator report -------------------------------------------------
  std::printf("%s\n",
              pipeline.monitor()
                  .render_report(env.warmup, env.warmup + env.measure,
                                 /*trend_buckets=*/12)
                  .c_str());

  // --- Historical queries ---------------------------------------------------
  const auto critical = pipeline.monitor().alerts_at_least(5);
  std::printf("critical alerts (severity 5): %zu\n", critical.size());
  for (const auto& alert : critical) {
    std::printf("  [%s] %s from %s (confidence %.2f)\n",
                alert.raised.to_string().c_str(), alert.rule.c_str(),
                alert.tuple.src_ip.to_string().c_str(), alert.confidence);
  }

  // --- Automated reactions ---------------------------------------------------
  if (pipeline.console() != nullptr) {
    const auto& stats = pipeline.console()->stats();
    std::printf("\nconsole reactions: %llu firewall blocks, %llu SNMP "
                "traps, %llu notifications\n",
                static_cast<unsigned long long>(stats.blocks_issued),
                static_cast<unsigned long long>(stats.snmp_traps),
                static_cast<unsigned long long>(stats.notifications));
    for (const auto addr : pipeline.console()->blocked_sources()) {
      std::printf("  blocked at firewall: %s\n", addr.to_string().c_str());
    }
  }

  std::printf("\nground truth: %zu attacks, %zu detected, %zu missed "
              "(FN ratio %.4f)\n",
              run.attacks, run.true_detections, run.missed_attacks,
              run.fn_ratio);
  return 0;
}
