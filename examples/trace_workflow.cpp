// The canned-data workflow (§4, lesson #2): the false-negative ratio is
// only observable when the test network replays data with KNOWN attack
// content. This example records an attack corpus from a switch mirror,
// serializes it (the "canned" artifact you would keep under version
// control), replays it against two products, and reports per-kind
// detection — including a time-compressed replay as a load test with
// byte-identical content.
#include <cstdio>

#include "attack/emitter.hpp"
#include "ids/pipeline.hpp"
#include "products/catalog.hpp"
#include "traffic/trace.hpp"

using namespace idseval;
using netsim::Ipv4;
using netsim::SimTime;

namespace {

/// Records one instance of every attack kind into a trace.
traffic::Trace record_corpus() {
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("victim-a", Ipv4(10, 0, 0, 2));
  net.add_host("victim-b", Ipv4(10, 0, 0, 3));
  net.add_external_host("attacker", Ipv4(198, 51, 100, 1));
  traffic::TransactionLedger ledger;
  attack::AttackEmitter emitter(sim, net, ledger, /*seed=*/7);

  traffic::Trace trace;
  net.lan_switch().add_mirror([&](const netsim::Packet& p) {
    trace.append_absolute(sim.now(), p);
  });

  SimTime when = SimTime::from_ms(100);
  for (const auto& traits : attack::all_attack_traits()) {
    const Ipv4 attacker =
        traits.insider ? Ipv4(10, 0, 0, 3) : Ipv4(198, 51, 100, 1);
    emitter.launch(traits.kind, attacker, Ipv4(10, 0, 0, 2), when);
    when += SimTime::from_sec(2);
  }
  sim.run_until();
  return trace;
}

/// Replays the corpus against a product; returns raised alert count.
std::size_t replay_against(const traffic::Trace& corpus,
                           products::ProductId id, double time_scale) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("victim-a", Ipv4(10, 0, 0, 2));
  net.add_host("victim-b", Ipv4(10, 0, 0, 3));
  net.add_external_host("attacker", Ipv4(198, 51, 100, 1));

  ids::Pipeline pipeline(sim, net,
                         products::product(id).make_config(0.6));
  pipeline.attach(products::product(id).deploys_host_agents
                      ? std::vector<Ipv4>{Ipv4(10, 0, 0, 2),
                                          Ipv4(10, 0, 0, 3)}
                      : std::vector<Ipv4>{});
  pipeline.set_learning(false);

  corpus.replay(sim, net, SimTime::from_ms(10), time_scale);
  sim.run_until();
  return pipeline.monitor().log().size();
}

}  // namespace

int main() {
  // 1. Record and serialize the corpus.
  const traffic::Trace corpus = record_corpus();
  const std::string canned = corpus.serialize();
  std::printf("recorded corpus: %zu packets, %.1fs duration, %zu bytes "
              "serialized\n",
              corpus.size(), corpus.duration().sec(), canned.size());

  // 2. Prove the serialization round-trips (this is what you'd check in).
  const traffic::Trace reloaded = traffic::Trace::deserialize(canned);
  std::printf("round-trip: %zu packets (%s)\n\n", reloaded.size(),
              reloaded.size() == corpus.size() ? "ok" : "MISMATCH");

  // 3. Replay against a signature product and a hybrid product.
  for (const auto id : {products::ProductId::kSentryNid,
                        products::ProductId::kAgentSwarm}) {
    const std::size_t alerts = replay_against(reloaded, id, 1.0);
    std::printf("%-12s alerts on corpus (%zu attack kinds): %zu\n",
                products::to_string(id).c_str(), attack::kAttackKindCount,
                alerts);
  }

  // 4. Same bytes, 10x faster — a load test with identical content.
  const std::size_t fast_alerts =
      replay_against(reloaded, products::ProductId::kSentryNid, 0.1);
  std::printf("\nSentryNID alerts at 10x replay speed: %zu\n", fast_alerts);
  std::printf("(identical content at higher rate: any drop in alerts is "
              "pure load effect, not traffic variation)\n");
  return 0;
}
