// The paper's full workflow for a distributed real-time procurement:
//   1. formalize user requirements (partial order, least to most important)
//   2. derive metric weights from them (Figure 6)
//   3. evaluate each candidate product against the metric standard —
//      fact-sheet scoring plus laboratory measurement on the testbed
//   4. compute weighted scores (Figure 5) and rank.
//
// The evaluation is against a *standard*, not product-vs-product: rerun
// this binary with different weights and the same measured scorecards are
// reused — exactly the reusability argument of §1.
#include <cstdio>

#include "core/report.hpp"
#include "harness/evaluate.hpp"
#include "products/catalog.hpp"

using namespace idseval;

int main() {
  // --- 1. The environment: an 8-node real-time cluster ------------------
  harness::TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 8;
  env.external_hosts = 4;
  env.seed = 2002;

  // --- 2. Requirements -> weights (Figure 6) ----------------------------
  const core::RequirementMapper requirements =
      core::realtime_distributed_requirements();
  std::printf("%s\n",
              core::render_requirement_mapping(requirements).c_str());
  const core::WeightSet weights = requirements.derive_weights();

  // --- 3. Evaluate every candidate ---------------------------------------
  harness::EvaluationOptions options;
  options.sensitivity = 0.6;  // §3.3: bias toward catching attacks
  options.attacks_per_kind = 3;
  options.include_load_metrics = false;  // benches run the load battery

  std::vector<core::Scorecard> cards;
  for (const products::ProductModel& model : products::product_catalog()) {
    std::printf("evaluating %-12s (%s)\n", model.name.c_str(),
                model.description.c_str());
    cards.push_back(harness::evaluate_product(env, model, options).card);
  }

  // --- 4. Tables and ranking ---------------------------------------------
  std::printf("\n%s\n",
              core::render_metric_table("Selected performance metrics "
                                        "(measured)",
                                        core::table3_performance_metrics(),
                                        cards, /*show_notes=*/true)
                  .c_str());
  std::printf("%s\n",
              core::render_weighted_summary(
                  "Procurement ranking (real-time distributed profile)",
                  cards, weights)
                  .c_str());
  return 0;
}
