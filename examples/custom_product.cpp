// Using idseval as a framework: define a NEW IDS product from parts —
// pipeline architecture, engines, rule set, reaction policy, fact sheet —
// and evaluate it against the same metric standard as the built-in
// catalog. This is the extension point a vendor (or a research group)
// would use to see how a design choice moves the scorecard.
#include <cstdio>

#include "core/report.hpp"
#include "harness/evaluate.hpp"
#include "ids/rules.hpp"
#include "products/catalog.hpp"
#include "products/scoring.hpp"

using namespace idseval;

namespace {

// "CerberusHybrid": a hypothetical best-of-both product — flow-hash load
// balancing across hybrid (signature + anomaly) sensors, app-restart
// recovery, aggressive automated response.
products::ProductModel cerberus_hybrid() {
  products::ProductModel model;
  model.id = products::ProductId::kSentryNid;  // id unused for customs
  model.name = "CerberusHybrid";
  model.description =
      "Custom: LB'd hybrid signature+anomaly sensors, full response";
  model.deploys_host_agents = false;

  // Fact sheet for the open-source metrics.
  products::ProductFacts f;
  f.product = model.name;
  f.remote_management = products::RemoteManagement::kFullSecure;
  f.install_steps = 9;
  f.central_policy_editor = true;
  f.policy_hot_reload = true;
  f.policy_rollback = true;
  f.license = products::LicenseModel::kPerpetualSite;
  f.dedicated_boxes_required = 3;
  f.documentation_score = 3;
  f.support_score = 3;
  f.lifetime_score = 2;
  f.training_score = 2;
  f.cost_score = 2;
  f.sensitivity = products::SensitivityControl::kContinuous;
  f.data_pool = products::DataPoolControl::kFilterLanguage;
  f.max_sensors = 16;
  f.lb_strategy = ids::LbStrategy::kFlowHash;
  f.signature_detection = true;
  f.anomaly_detection = true;
  f.autonomous_learning = true;
  f.firewall_block = true;
  f.snmp_traps = true;
  f.recovery = ids::RecoveryPolicy::kAppRestart;
  model.facts = f;

  model.make_config = [](double sensitivity) {
    ids::PipelineConfig c;
    c.product = "CerberusHybrid";
    c.use_load_balancer = true;
    c.lb.strategy = ids::LbStrategy::kFlowHash;
    c.lb.ops_per_packet = 1000.0;
    c.lb.ops_per_sec = 3e9;
    c.lb.in_line = false;  // passive tap: no induced latency
    c.sensor_count = 3;
    c.sensor.name = "cerberus-sensor";
    c.sensor.base_ops_per_packet = 4000.0;
    c.sensor.ops_per_sec = 4e8;
    c.sensor.queue_capacity = 4096;
    c.sensor.recovery = ids::RecoveryPolicy::kAppRestart;
    c.signature_engine = true;
    c.anomaly_engine = true;  // hybrid (§2.1)
    c.rules = ids::standard_rule_set();
    c.analyzer_count = 2;
    c.analyzer.name = "cerberus-analyzer";
    c.monitor.name = "cerberus-monitor";
    c.use_console = true;
    c.console.name = "cerberus-console";
    c.console.can_block_firewall = true;
    c.console.can_snmp = true;
    c.console.policy = ids::default_policy();
    c.sensitivity = sensitivity;
    return c;
  };
  return model;
}

}  // namespace

int main() {
  harness::TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.seed = 31337;

  harness::EvaluationOptions options;
  options.sensitivity = 0.6;
  options.include_load_metrics = false;

  // Evaluate the custom product alongside two catalog incumbents.
  std::vector<core::Scorecard> cards;
  const products::ProductModel custom = cerberus_hybrid();
  cards.push_back(harness::evaluate_product(env, custom, options).card);
  for (const auto id : {products::ProductId::kSentryNid,
                        products::ProductId::kFlowHunt}) {
    cards.push_back(
        harness::evaluate_product(env, products::product(id), options)
            .card);
  }

  std::printf("%s\n",
              core::render_metric_table(
                  "Custom product vs incumbents (performance metrics)",
                  core::table3_performance_metrics(), cards, true)
                  .c_str());

  const core::WeightSet weights =
      core::realtime_distributed_requirements().derive_weights();
  std::printf("%s\n", core::render_weighted_summary(
                          "Ranking under the real-time profile", cards,
                          weights)
                          .c_str());

  // A hybrid detector should clear both detection-surface hurdles:
  const auto& card = cards.front();
  std::printf("CerberusHybrid FN score: %d, FP score: %d\n",
              card.at(core::MetricId::kObservedFalseNegativeRatio)
                  .score.value(),
              card.at(core::MetricId::kObservedFalsePositiveRatio)
                  .score.value());
  return 0;
}
