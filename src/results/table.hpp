// Table documents: the bridge between Doc and the human-facing text
// renderer. Report sections are built once as a table-shaped Doc
// ({"title","columns":[{"name","align"}],"rows":[[cells]|{"rule":true}]})
// and then rendered to text (util::TextTable) or exported to CSV — the
// two views share one source so they can never disagree.
#pragma once

#include <string>
#include <vector>

#include "results/doc.hpp"

namespace idseval::results {

/// Builds a table-shaped Doc incrementally; mirrors util::TextTable's
/// surface (title, aligned headers, rows, rules) but produces data.
class TableBuilder {
 public:
  /// `aligns` entries are "left" or "right"; when shorter than
  /// `columns`, missing entries default to "left".
  TableBuilder(std::vector<std::string> columns,
               std::vector<std::string> aligns = {});

  TableBuilder& title(std::string text);
  /// Cells must be scalars (rendered via csv_cell for text view).
  TableBuilder& row(std::vector<Doc> cells);
  /// Inserts a horizontal rule before the next row.
  TableBuilder& rule();

  std::size_t row_count() const noexcept { return data_rows_; }
  Doc build() const;

 private:
  Doc columns_ = Doc::array();
  Doc rows_ = Doc::array();
  std::string title_;
  std::size_t width_;
  std::size_t data_rows_ = 0;
  bool pending_rule_ = false;
};

/// Renders a table Doc through util::TextTable — byte-identical to the
/// legacy direct-TextTable render for the same content. Throws
/// std::invalid_argument on a malformed table Doc.
std::string render_table_text(const Doc& table);

/// The same table as CSV (rules dropped, title dropped).
std::string table_to_csv(const Doc& table);

}  // namespace idseval::results
