// The unified results representation: every artifact this repo emits
// (rendered report tables, campaign store rows, trace events, CSV
// exports, bench reports) is built as a `Doc` value tree and rendered by
// one of the writers in this directory. One representation, pluggable
// writers — the human tables and the machine exports can never disagree,
// and a new export format is a writer, not a cross-cutting change.
//
// Doc is a small JSON-shaped value: null, bool, signed/unsigned 64-bit
// integer, double, string, array, or object with *insertion-ordered*
// keys (artifact byte-stability depends on key order being the build
// order, not a hash or sort order). Numbers keep their integer-ness:
// 64-bit seeds round-trip exactly instead of sagging through a double.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace idseval::results {

class Doc {
 public:
  enum class Kind {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Doc() noexcept : kind_(Kind::kNull) {}
  Doc(std::nullptr_t) noexcept : Doc() {}
  Doc(bool v) noexcept : kind_(Kind::kBool), bool_(v) {}
  Doc(int v) noexcept : kind_(Kind::kInt), int_(v) {}
  Doc(long v) noexcept : kind_(Kind::kInt), int_(v) {}
  Doc(long long v) noexcept : kind_(Kind::kInt), int_(v) {}
  Doc(unsigned v) noexcept : kind_(Kind::kUint), uint_(v) {}
  Doc(unsigned long v) noexcept : kind_(Kind::kUint), uint_(v) {}
  Doc(unsigned long long v) noexcept : kind_(Kind::kUint), uint_(v) {}
  Doc(double v) noexcept : kind_(Kind::kDouble), double_(v) {}
  Doc(const char* s) : kind_(Kind::kString), string_(s) {}
  Doc(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Doc(std::string_view s) : kind_(Kind::kString), string_(s) {}

  static Doc array() {
    Doc d;
    d.kind_ = Kind::kArray;
    return d;
  }
  static Doc object() {
    Doc d;
    d.kind_ = Kind::kObject;
    return d;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  /// Scalar = anything a CSV cell or table cell can hold.
  bool is_scalar() const noexcept { return !is_array() && !is_object(); }

  // --- object interface (throws std::invalid_argument off-kind) --------
  /// Sets `key` (overwriting in place if present, appending otherwise)
  /// and returns *this so event objects read as one chained expression.
  Doc& set(std::string_view key, Doc value);
  /// Member lookup; nullptr when absent (or when not an object).
  const Doc* find(std::string_view key) const noexcept;
  const std::vector<std::pair<std::string, Doc>>& items() const;

  // --- array interface -------------------------------------------------
  Doc& push(Doc value);
  const std::vector<Doc>& elements() const;

  /// Element/member count for arrays/objects, 0 for scalars.
  std::size_t size() const noexcept;

  // --- scalar accessors (throw std::invalid_argument on kind mismatch) -
  bool as_bool() const;
  /// Integer accessors accept both integer kinds when the value fits.
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  /// Accepts any number kind.
  double as_double() const;
  const std::string& as_string() const;

  /// Structural equality, with numbers compared by value across integer
  /// and double kinds (an integral double that round-trips through JSON
  /// re-parses as an integer and must still compare equal).
  bool operator==(const Doc& other) const;
  bool operator!=(const Doc& other) const { return !(*this == other); }

 private:
  [[noreturn]] void kind_error(const char* expected) const;

  Kind kind_;
  union {
    bool bool_;
    std::int64_t int_;
    std::uint64_t uint_;
    double double_ = 0.0;
  };
  std::string string_;
  std::vector<Doc> array_;
  std::vector<std::pair<std::string, Doc>> object_;
};

/// RFC 8259 string escaping: quotes, backslashes, the two-character
/// shortcuts (\b \f \n \r \t), \u00XX for remaining control characters.
/// Bytes >= 0x80 pass through untouched (UTF-8 stays UTF-8).
std::string json_escape(std::string_view s);

/// Exact double formatting shared by the JSON and CSV writers (%.17g:
/// shortest round-trippable-by-strtod form this toolchain prints).
std::string fmt_double_exact(double v);

/// Compact deterministic JSON: no whitespace, object keys in insertion
/// order, integers verbatim, doubles via fmt_double_exact. Non-finite
/// doubles serialize as null (JSON has no inf/nan).
std::string to_json(const Doc& doc);

/// Indented variant for human-facing reports (bench output).
std::string to_json_pretty(const Doc& doc, int indent = 2);

/// Strict parser for one complete JSON value; throws std::invalid_argument
/// with a position-annotated message on malformed input. \uXXXX escapes
/// (including surrogate pairs) decode to UTF-8. Integers that fit 64 bits
/// keep integer kind; everything else becomes a double.
Doc parse_json(std::string_view text);

/// True iff `line` is one complete JSON value (whitespace padding ok).
bool validate_json_line(std::string_view line) noexcept;

}  // namespace idseval::results
