#include "results/html.hpp"

#include <stdexcept>

namespace idseval::results {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

// Text form of one table cell — same conventions as the text renderer:
// strings verbatim, numbers in the shared exact format, null empty.
std::string cell_text(const Doc& cell) {
  switch (cell.kind()) {
    case Doc::Kind::kNull:
      return "";
    case Doc::Kind::kBool:
      return cell.as_bool() ? "true" : "false";
    case Doc::Kind::kInt:
      return std::to_string(cell.as_i64());
    case Doc::Kind::kUint:
      return std::to_string(cell.as_u64());
    case Doc::Kind::kDouble:
      return fmt_double_exact(cell.as_double());
    case Doc::Kind::kString:
      return cell.as_string();
    default:
      fail("table cell must be a scalar");
  }
}

bool is_rule_row(const Doc& row) {
  if (!row.is_object()) return false;
  const Doc* rule = row.find("rule");
  return rule != nullptr && rule->is_bool() && rule->as_bool();
}

struct TableShape {
  const Doc* title = nullptr;  ///< Null when absent.
  std::vector<std::string> names;
  std::vector<bool> right;  ///< Per column: right-aligned?
  const Doc* rows = nullptr;
};

TableShape parse_table(const Doc& table, const char* who) {
  if (!table.is_object()) fail(std::string(who) + ": expected table object");
  const Doc* columns = table.find("columns");
  const Doc* rows = table.find("rows");
  if (columns == nullptr || !columns->is_array() || columns->size() == 0) {
    fail(std::string(who) + ": missing columns");
  }
  if (rows == nullptr || !rows->is_array()) {
    fail(std::string(who) + ": missing rows");
  }
  TableShape shape;
  shape.title = table.find("title");
  shape.rows = rows;
  for (const Doc& column : columns->elements()) {
    const Doc* name = column.find("name");
    const Doc* align = column.find("align");
    if (name == nullptr) fail(std::string(who) + ": column without name");
    shape.names.push_back(name->as_string());
    shape.right.push_back(align != nullptr && align->as_string() == "right");
  }
  return shape;
}

}  // namespace

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string table_to_html(const Doc& table) {
  const TableShape shape = parse_table(table, "table_to_html");
  std::string out = "<table>\n";
  if (shape.title != nullptr) {
    out += "  <caption>" + html_escape(shape.title->as_string()) +
           "</caption>\n";
  }
  out += "  <thead>\n    <tr>";
  for (std::size_t i = 0; i < shape.names.size(); ++i) {
    out += shape.right[i] ? "<th style=\"text-align:right\">" : "<th>";
    out += html_escape(shape.names[i]);
    out += "</th>";
  }
  out += "</tr>\n  </thead>\n  <tbody>\n";
  for (const Doc& row : shape.rows->elements()) {
    if (is_rule_row(row)) {
      // A rule is a visual group boundary: close and reopen the body so
      // CSS (tbody + tbody) can draw the separator.
      out += "  </tbody>\n  <tbody>\n";
      continue;
    }
    out += "    <tr>";
    for (std::size_t i = 0; i < row.elements().size(); ++i) {
      out += i < shape.right.size() && shape.right[i]
                 ? "<td style=\"text-align:right\">"
                 : "<td>";
      out += html_escape(cell_text(row.elements()[i]));
      out += "</td>";
    }
    out += "</tr>\n";
  }
  out += "  </tbody>\n</table>\n";
  return out;
}

std::string table_to_markdown(const Doc& table) {
  const TableShape shape = parse_table(table, "table_to_markdown");
  // Markdown pipe-table cells cannot hold a literal pipe.
  const auto md_cell = [](std::string text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      if (c == '|') out += "\\|";
      else out += c;
    }
    return out;
  };
  std::string out;
  if (shape.title != nullptr) {
    out += "**" + md_cell(shape.title->as_string()) + "**\n\n";
  }
  out += "|";
  for (const std::string& name : shape.names) {
    out += " " + md_cell(name) + " |";
  }
  out += "\n|";
  for (const bool right : shape.right) {
    out += right ? " ---: |" : " --- |";
  }
  out += "\n";
  for (const Doc& row : shape.rows->elements()) {
    if (is_rule_row(row)) continue;
    out += "|";
    for (const Doc& cell : row.elements()) {
      out += " " + md_cell(cell_text(cell)) + " |";
    }
    out += "\n";
  }
  return out;
}

std::string html_document(std::string_view title,
                          const std::vector<Doc>& tables) {
  std::string out =
      "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>" +
      html_escape(title) +
      "</title>\n<style>\n"
      "body { font-family: sans-serif; margin: 2em; }\n"
      "table { border-collapse: collapse; margin-bottom: 2em; }\n"
      "caption { font-weight: bold; text-align: left; padding: 0.5em 0; }\n"
      "th, td { border: 1px solid #999; padding: 0.3em 0.7em; }\n"
      "th { background: #eee; }\n"
      "tbody + tbody tr:first-child td { border-top: 3px double #999; }\n"
      "</style>\n</head>\n<body>\n<h1>" +
      html_escape(title) + "</h1>\n";
  for (const Doc& table : tables) {
    if (table.is_null()) continue;  // optional sections stay optional
    out += table_to_html(table);
  }
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace idseval::results
