#include "results/csv.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace idseval::results {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

bool needs_quoting(std::string_view text) {
  for (char c : text) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string render_text_cell(std::string_view text) {
  return needs_quoting(text) ? quote(text) : std::string(text);
}

}  // namespace

Csv::Csv(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) fail("Csv: column list must not be empty");
}

void Csv::add_row(std::vector<Doc> cells) {
  if (cells.size() != columns_.size()) {
    fail("Csv: row width " + std::to_string(cells.size()) +
         " does not match schema width " + std::to_string(columns_.size()));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].is_scalar()) {
      fail("Csv: column '" + columns_[i] + "' holds a non-scalar cell");
    }
  }
  rows_.push_back(std::move(cells));
}

std::string csv_cell(const Doc& value) {
  switch (value.kind()) {
    case Doc::Kind::kNull:
      return "";
    case Doc::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case Doc::Kind::kInt:
      return std::to_string(value.as_i64());
    case Doc::Kind::kUint:
      return std::to_string(value.as_u64());
    case Doc::Kind::kDouble:
      return fmt_double_exact(value.as_double());
    case Doc::Kind::kString:
      return render_text_cell(value.as_string());
    default:
      fail("csv_cell: non-scalar value");
  }
}

std::string to_csv(const Csv& csv) {
  std::string out;
  bool first = true;
  for (const std::string& column : csv.columns()) {
    if (!first) out += ',';
    first = false;
    out += render_text_cell(column);
  }
  out += '\n';
  for (const auto& row : csv.rows()) {
    first = true;
    for (const Doc& cell : row) {
      if (!first) out += ',';
      first = false;
      out += csv_cell(cell);
    }
    out += '\n';
  }
  return out;
}

namespace {

// Splits one RFC 4180 record starting at `pos`; advances past the line
// terminator. Returns false at end of input.
bool next_record(std::string_view text, std::size_t& pos,
                 std::vector<std::string>& fields, std::size_t row_number) {
  fields.clear();
  if (pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool field_started_quoted = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field += c;
        ++pos;
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_started_quoted) {
      in_quotes = true;
      field_started_quoted = true;
      ++pos;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      field_started_quoted = false;
      ++pos;
      continue;
    }
    if (c == '\n' || c == '\r') {
      ++pos;
      if (c == '\r' && pos < text.size() && text[pos] == '\n') ++pos;
      fields.push_back(std::move(field));
      return true;
    }
    if (c == '"') {
      fail("check_csv: stray quote in unquoted field at row " +
           std::to_string(row_number));
    }
    field += c;
    ++pos;
  }
  if (in_quotes) {
    fail("check_csv: unterminated quoted field at row " +
         std::to_string(row_number));
  }
  fields.push_back(std::move(field));
  return true;
}

}  // namespace

CsvShape check_csv(std::string_view text) {
  std::size_t pos = 0;
  std::vector<std::string> fields;
  if (!next_record(text, pos, fields, 1)) {
    fail("check_csv: empty input");
  }
  CsvShape shape;
  for (std::string& column : fields) {
    if (column.empty()) fail("check_csv: empty column name in header");
    shape.columns.push_back(std::move(column));
  }
  std::size_t row_number = 1;
  while (next_record(text, pos, fields, row_number + 1)) {
    ++row_number;
    if (fields.size() == 1 && fields[0].empty()) {
      fail("check_csv: blank row " + std::to_string(row_number));
    }
    if (fields.size() != shape.columns.size()) {
      fail("check_csv: row " + std::to_string(row_number) + " has " +
           std::to_string(fields.size()) + " fields, header has " +
           std::to_string(shape.columns.size()));
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].empty()) continue;
      // Any field strtod consumes completely is numeric — this is what
      // catches a stray "nan"/"inf" leaking into an export.
      char* end = nullptr;
      const double v = std::strtod(fields[i].c_str(), &end);
      if (end && *end == '\0' && !std::isfinite(v)) {
        fail("check_csv: non-finite value '" + fields[i] + "' in column '" +
             shape.columns[i] + "' at row " + std::to_string(row_number));
      }
    }
    ++shape.data_rows;
  }
  return shape;
}

}  // namespace idseval::results
