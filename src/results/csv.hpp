// Schema-checked columnar writer over Doc scalars. A Csv is declared
// with a fixed column list; every row must match that width and hold
// only scalar Docs — mismatches throw at build time instead of
// producing a ragged file a plotting script chokes on later.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "results/doc.hpp"

namespace idseval::results {

class Csv {
 public:
  /// Throws std::invalid_argument on an empty column list.
  explicit Csv(std::vector<std::string> columns);

  /// Appends one row; throws std::invalid_argument when the row width
  /// does not match the declared columns or a cell is an array/object.
  void add_row(std::vector<Doc> cells);

  const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  const std::vector<std::vector<Doc>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Doc>> rows_;
};

/// One cell in RFC 4180 form: quoted (with doubled quotes) only when the
/// text contains a comma, quote, or newline; numbers via the same exact
/// formatting as the JSON writer, null as the empty cell.
std::string csv_cell(const Doc& value);

/// Renders header + rows, "\n" line endings, trailing newline.
std::string to_csv(const Csv& csv);

struct CsvShape {
  std::vector<std::string> columns;
  std::size_t data_rows = 0;
};

/// Structural validation of CSV text (the `trace-check --csv` engine):
/// parses RFC 4180 quoting, requires a non-empty header, rejects ragged
/// rows, and rejects non-finite numeric cells ("nan"/"inf" and friends).
/// Throws std::invalid_argument with a row-annotated message.
CsvShape check_csv(std::string_view text);

}  // namespace idseval::results
