#include "results/doc.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace idseval::results {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

}  // namespace

void Doc::kind_error(const char* expected) const {
  fail(std::string("Doc: expected ") + expected + " value");
}

Doc& Doc::set(std::string_view key, Doc value) {
  if (kind_ != Kind::kObject) kind_error("object");
  for (auto& [name, member] : object_) {
    if (name == key) {
      member = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return *this;
}

const Doc* Doc::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, member] : object_) {
    if (name == key) return &member;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Doc>>& Doc::items() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return object_;
}

Doc& Doc::push(Doc value) {
  if (kind_ != Kind::kArray) kind_error("array");
  array_.push_back(std::move(value));
  return *this;
}

const std::vector<Doc>& Doc::elements() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return array_;
}

std::size_t Doc::size() const noexcept {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

bool Doc::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

std::int64_t Doc::as_i64() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kUint) {
    if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) {
      fail("Doc: unsigned value out of int64 range");
    }
    return static_cast<std::int64_t>(uint_);
  }
  kind_error("integer");
}

std::uint64_t Doc::as_u64() const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kInt) {
    if (int_ < 0) fail("Doc: negative value has no uint64 representation");
    return static_cast<std::uint64_t>(int_);
  }
  kind_error("integer");
}

double Doc::as_double() const {
  switch (kind_) {
    case Kind::kDouble:
      return double_;
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    default:
      kind_error("number");
  }
}

const std::string& Doc::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

bool Doc::operator==(const Doc& other) const {
  if (is_number() && other.is_number()) {
    // Compare integer kinds exactly when both sides are integers (a
    // double comparison would conflate distinct huge u64 values).
    const bool lhs_int = kind_ != Kind::kDouble;
    const bool rhs_int = other.kind_ != Kind::kDouble;
    if (lhs_int && rhs_int) {
      const bool lhs_neg = kind_ == Kind::kInt && int_ < 0;
      const bool rhs_neg = other.kind_ == Kind::kInt && other.int_ < 0;
      if (lhs_neg != rhs_neg) return false;
      if (lhs_neg) return int_ == other.int_;
      const std::uint64_t a =
          kind_ == Kind::kUint ? uint_ : static_cast<std::uint64_t>(int_);
      const std::uint64_t b = other.kind_ == Kind::kUint
                                  ? other.uint_
                                  : static_cast<std::uint64_t>(other.int_);
      return a == b;
    }
    return as_double() == other.as_double();
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kObject:
      return object_ == other.object_;
    default:
      return false;  // numbers handled above
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string fmt_double_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

void append_scalar(const Doc& doc, std::string& out) {
  switch (doc.kind()) {
    case Doc::Kind::kNull:
      out += "null";
      break;
    case Doc::Kind::kBool:
      out += doc.as_bool() ? "true" : "false";
      break;
    case Doc::Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(doc.as_i64()));
      out += buf;
      break;
    }
    case Doc::Kind::kUint: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(doc.as_u64()));
      out += buf;
      break;
    }
    case Doc::Kind::kDouble: {
      const double v = doc.as_double();
      if (!std::isfinite(v)) {
        out += "null";  // JSON has no inf/nan
      } else {
        out += fmt_double_exact(v);
      }
      break;
    }
    case Doc::Kind::kString:
      out += '"';
      out += json_escape(doc.as_string());
      out += '"';
      break;
    default:
      fail("Doc: append_scalar on container");
  }
}

void write_compact(const Doc& doc, std::string& out) {
  switch (doc.kind()) {
    case Doc::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Doc& el : doc.elements()) {
        if (!first) out += ',';
        first = false;
        write_compact(el, out);
      }
      out += ']';
      break;
    }
    case Doc::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : doc.items()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        write_compact(member, out);
      }
      out += '}';
      break;
    }
    default:
      append_scalar(doc, out);
  }
}

void write_pretty(const Doc& doc, std::string& out, int indent, int depth) {
  const auto pad = [&](int d) { out.append(static_cast<std::size_t>(indent) * d, ' '); };
  switch (doc.kind()) {
    case Doc::Kind::kArray: {
      if (doc.size() == 0) {
        out += "[]";
        return;
      }
      out += "[\n";
      bool first = true;
      for (const Doc& el : doc.elements()) {
        if (!first) out += ",\n";
        first = false;
        pad(depth + 1);
        write_pretty(el, out, indent, depth + 1);
      }
      out += '\n';
      pad(depth);
      out += ']';
      break;
    }
    case Doc::Kind::kObject: {
      if (doc.size() == 0) {
        out += "{}";
        return;
      }
      out += "{\n";
      bool first = true;
      for (const auto& [key, member] : doc.items()) {
        if (!first) out += ",\n";
        first = false;
        pad(depth + 1);
        out += '"';
        out += json_escape(key);
        out += "\": ";
        write_pretty(member, out, indent, depth + 1);
      }
      out += '\n';
      pad(depth);
      out += '}';
      break;
    }
    default:
      append_scalar(doc, out);
  }
}

}  // namespace

std::string to_json(const Doc& doc) {
  std::string out;
  write_compact(doc, out);
  return out;
}

std::string to_json_pretty(const Doc& doc, int indent) {
  std::string out;
  write_pretty(doc, out, indent < 0 ? 0 : indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: strict recursive descent over one complete JSON value.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Doc parse() {
    skip_ws();
    Doc doc = parse_value();
    skip_ws();
    if (pos_ != text_.size()) error("trailing content after JSON value");
    return doc;
  }

 private:
  [[noreturn]] void error(const std::string& what) const {
    fail("parse_json: " + what + " at offset " + std::to_string(pos_));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      error(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void expect_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      error("invalid literal");
    }
    pos_ += word.size();
  }

  Doc parse_value() {
    if (eof()) error("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Doc(parse_string());
      case 't':
        expect_literal("true");
        return Doc(true);
      case 'f':
        expect_literal("false");
        return Doc(false);
      case 'n':
        expect_literal("null");
        return Doc(nullptr);
      default:
        return parse_number();
    }
  }

  Doc parse_object() {
    expect('{');
    Doc doc = Doc::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return doc;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') error("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      doc.set(key, parse_value());
      skip_ws();
      if (eof()) error("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return doc;
    }
  }

  Doc parse_array() {
    expect('[');
    Doc doc = Doc::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return doc;
    }
    while (true) {
      skip_ws();
      doc.push(parse_value());
      skip_ws();
      if (eof()) error("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return doc;
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) error("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      if (eof()) error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              error("unpaired high surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            error("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          error("invalid escape character");
      }
    }
  }

  Doc parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    if (!eof() && peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (eof() || peek() < '0' || peek() > '9') error("invalid number");
    if (peek() == '0') {
      ++pos_;  // leading zero may not be followed by more digits
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        error("digit required after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        error("digit required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (negative) {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end && *end == '\0') {
          return Doc(static_cast<std::int64_t>(v));
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end && *end == '\0') {
          return Doc(static_cast<std::uint64_t>(v));
        }
      }
      // Out-of-range integers fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') error("invalid number");
    return Doc(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Doc parse_json(std::string_view text) { return Parser(text).parse(); }

bool validate_json_line(std::string_view line) noexcept {
  try {
    (void)parse_json(line);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace idseval::results
