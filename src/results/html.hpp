// Third writer over table-shaped Docs: HTML and GitHub-flavored markdown
// renderings of the same {"title","columns","rows"} shape the text and
// CSV writers consume. One Doc, four views — they can never disagree.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "results/doc.hpp"

namespace idseval::results {

/// Minimal HTML entity escaping (&, <, >, ").
std::string html_escape(std::string_view s);

/// One table Doc as an HTML <table>: title as <caption>, column aligns
/// as inline text-align styles, rule rows as a tbody break. Throws
/// std::invalid_argument on a malformed table Doc.
std::string table_to_html(const Doc& table);

/// The same table as a GitHub-flavored markdown pipe table: title as a
/// bold paragraph, aligns via ---/---: separator cells, rules dropped
/// (markdown tables have no mid-table rules).
std::string table_to_markdown(const Doc& table);

/// A complete standalone HTML page wrapping the given table Docs in
/// document order, with a small embedded stylesheet.
std::string html_document(std::string_view title,
                          const std::vector<Doc>& tables);

}  // namespace idseval::results
