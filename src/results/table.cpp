#include "results/table.hpp"

#include <stdexcept>

#include "results/csv.hpp"
#include "util/table.hpp"

namespace idseval::results {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

// Text form of one table cell: strings verbatim, numbers in the shared
// exact format, null as the empty cell.
std::string cell_text(const Doc& cell) {
  switch (cell.kind()) {
    case Doc::Kind::kNull:
      return "";
    case Doc::Kind::kBool:
      return cell.as_bool() ? "true" : "false";
    case Doc::Kind::kInt:
      return std::to_string(cell.as_i64());
    case Doc::Kind::kUint:
      return std::to_string(cell.as_u64());
    case Doc::Kind::kDouble:
      return fmt_double_exact(cell.as_double());
    case Doc::Kind::kString:
      return cell.as_string();
    default:
      fail("table cell must be a scalar");
  }
}

bool is_rule_row(const Doc& row) {
  if (!row.is_object()) return false;
  const Doc* rule = row.find("rule");
  return rule != nullptr && rule->is_bool() && rule->as_bool();
}

}  // namespace

TableBuilder::TableBuilder(std::vector<std::string> columns,
                           std::vector<std::string> aligns)
    : width_(columns.size()) {
  if (columns.empty()) fail("TableBuilder: column list must not be empty");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::string align = i < aligns.size() ? aligns[i] : "left";
    if (align != "left" && align != "right") {
      fail("TableBuilder: align must be \"left\" or \"right\"");
    }
    Doc column = Doc::object();
    column.set("name", std::move(columns[i])).set("align", std::move(align));
    columns_.push(std::move(column));
  }
}

TableBuilder& TableBuilder::title(std::string text) {
  title_ = std::move(text);
  return *this;
}

TableBuilder& TableBuilder::row(std::vector<Doc> cells) {
  if (cells.size() != width_) {
    fail("TableBuilder: row width " + std::to_string(cells.size()) +
         " does not match column count " + std::to_string(width_));
  }
  if (pending_rule_) {
    pending_rule_ = false;
    Doc rule = Doc::object();
    rule.set("rule", true);
    rows_.push(std::move(rule));
  }
  Doc row = Doc::array();
  for (Doc& cell : cells) {
    if (!cell.is_scalar()) fail("TableBuilder: cell must be a scalar");
    row.push(std::move(cell));
  }
  rows_.push(std::move(row));
  ++data_rows_;
  return *this;
}

TableBuilder& TableBuilder::rule() {
  pending_rule_ = true;
  return *this;
}

Doc TableBuilder::build() const {
  Doc table = Doc::object();
  if (!title_.empty()) table.set("title", title_);
  table.set("columns", columns_).set("rows", rows_);
  return table;
}

std::string render_table_text(const Doc& table) {
  if (!table.is_object()) fail("render_table_text: expected table object");
  const Doc* columns = table.find("columns");
  const Doc* rows = table.find("rows");
  if (columns == nullptr || !columns->is_array() || columns->size() == 0) {
    fail("render_table_text: missing columns");
  }
  if (rows == nullptr || !rows->is_array()) {
    fail("render_table_text: missing rows");
  }
  std::vector<std::string> headers;
  std::vector<util::Align> aligns;
  for (const Doc& column : columns->elements()) {
    const Doc* name = column.find("name");
    const Doc* align = column.find("align");
    if (name == nullptr) fail("render_table_text: column without name");
    headers.push_back(name->as_string());
    aligns.push_back(align != nullptr && align->as_string() == "right"
                         ? util::Align::kRight
                         : util::Align::kLeft);
  }
  util::TextTable text_table(std::move(headers), std::move(aligns));
  if (const Doc* title = table.find("title")) {
    text_table.set_title(title->as_string());
  }
  for (const Doc& row : rows->elements()) {
    if (is_rule_row(row)) {
      text_table.add_rule();
      continue;
    }
    std::vector<std::string> cells;
    for (const Doc& cell : row.elements()) cells.push_back(cell_text(cell));
    text_table.add_row(std::move(cells));
  }
  return text_table.render();
}

std::string table_to_csv(const Doc& table) {
  if (!table.is_object()) fail("table_to_csv: expected table object");
  const Doc* columns = table.find("columns");
  const Doc* rows = table.find("rows");
  if (columns == nullptr || !columns->is_array() || columns->size() == 0) {
    fail("table_to_csv: missing columns");
  }
  if (rows == nullptr || !rows->is_array()) {
    fail("table_to_csv: missing rows");
  }
  std::vector<std::string> names;
  for (const Doc& column : columns->elements()) {
    const Doc* name = column.find("name");
    if (name == nullptr) fail("table_to_csv: column without name");
    names.push_back(name->as_string());
  }
  Csv csv(std::move(names));
  for (const Doc& row : rows->elements()) {
    if (is_rule_row(row)) continue;
    csv.add_row(row.elements());
  }
  return to_csv(csv);
}

}  // namespace idseval::results
