// Managing subprocess (§2.2, subprocess 5): the optional management
// console. Maps threats to automated reactions through a security policy
// — firewall block-list updates, router redirects, SNMP traps — which is
// the near-real-time automated response the paper says real-time systems
// must weight heavily (§3.3). Policy quality matters: over-broad blocking
// locks out legitimate users ("faulty policy risks shutting out
// legitimate users").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ids/alert.hpp"
#include "netsim/simulator.hpp"
#include "netsim/switch.hpp"
#include "telemetry/registry.hpp"

namespace idseval::ids {

enum class ReactionAction : std::uint8_t {
  kLogOnly,
  kNotifyOperator,
  kSnmpTrap,          ///< SNMP Interaction metric.
  kBlockSource,       ///< Firewall Interaction metric.
  kRedirectHoneypot,  ///< Router Interaction metric.
};

std::string to_string(ReactionAction a);

/// One policy line: alerts at or above `min_severity` (and at or above
/// `min_confidence`) trigger `action`.
struct PolicyRule {
  int min_severity = 4;
  double min_confidence = 0.0;
  ReactionAction action = ReactionAction::kBlockSource;
};

struct ConsoleConfig {
  std::string name = "console";
  /// Delay from alert to the external device accepting the change.
  netsim::SimTime reaction_delay = netsim::SimTime::from_ms(500);
  bool can_block_firewall = true;
  bool can_snmp = true;
  bool can_redirect_router = false;
  std::vector<PolicyRule> policy;
};

/// One firewall block decision, retained with its effective time so the
/// harness can judge the generated filter: did it stop the attack without
/// shutting out legitimate users (§2.2)?
struct BlockEvent {
  netsim::Ipv4 source;
  netsim::SimTime effective_at;
};

struct ConsoleStats {
  std::uint64_t alerts_in = 0;
  std::uint64_t blocks_issued = 0;
  std::uint64_t snmp_traps = 0;
  std::uint64_t redirects = 0;
  std::uint64_t notifications = 0;
};

class ManagementConsole {
 public:
  ManagementConsole(netsim::Simulator& sim, ConsoleConfig config);

  /// Attaches the firewall-capable switch reactions act on.
  void attach_switch(netsim::Switch* sw) noexcept { switch_ = sw; }

  void on_alert(const Alert& alert);

  const ConsoleConfig& config() const noexcept { return config_; }
  const ConsoleStats& stats() const noexcept { return stats_; }
  const std::vector<netsim::Ipv4>& blocked_sources() const noexcept {
    return blocked_;
  }
  const std::vector<BlockEvent>& block_events() const noexcept {
    return block_events_;
  }

  /// Zeroes the per-window reaction counters. The block list and block
  /// events stay: they describe actuator state already pushed to the
  /// switch, not window-scoped measurements.
  void reset_stats() noexcept;

 private:
  void react(const Alert& alert, ReactionAction action);

  netsim::Simulator& sim_;
  ConsoleConfig config_;
  netsim::Switch* switch_ = nullptr;
  ConsoleStats stats_;
  std::vector<netsim::Ipv4> blocked_;
  std::vector<BlockEvent> block_events_;
  telemetry::Counter* tele_blocks_;
};

/// A sensible default policy: critical threats block at the firewall,
/// high severity sends SNMP traps, everything else is logged.
std::vector<PolicyRule> default_policy();

}  // namespace idseval::ids
