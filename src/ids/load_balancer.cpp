#include "ids/load_balancer.hpp"

#include <algorithm>

#include "ids/sensor.hpp"

namespace idseval::ids {

using netsim::Packet;
using netsim::SimTime;

std::string to_string(LbStrategy s) {
  switch (s) {
    case LbStrategy::kNone:
      return "none";
    case LbStrategy::kStaticByHost:
      return "static-by-host";
    case LbStrategy::kFlowHash:
      return "flow-hash";
    case LbStrategy::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

double LoadBalancerStats::imbalance() const {
  if (per_sensor.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const auto c : per_sensor) {
    total += c;
    peak = std::max(peak, c);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(per_sensor.size());
  return static_cast<double>(peak) / mean;
}

LoadBalancer::LoadBalancer(netsim::Simulator& sim, LoadBalancerConfig config,
                           std::size_t sensor_count)
    : sim_(sim),
      config_(std::move(config)),
      sensor_count_(std::max<std::size_t>(1, sensor_count)),
      tele_offered_(telemetry::counter_handle(telemetry::names::kLbOffered)),
      tele_dropped_(telemetry::counter_handle(telemetry::names::kLbDropped)),
      tele_pin_evictions_(
          telemetry::counter_handle(telemetry::names::kLbPinEvictions)),
      tele_queue_wait_(
          telemetry::latency_handle(telemetry::names::kLbQueueWait)) {
  stats_.per_sensor.assign(sensor_count_, 0);
  telemetry::bind_flow_table(flow_pin_);
}

SimTime LoadBalancer::service_time() const noexcept {
  return SimTime::from_sec(config_.ops_per_packet /
                           std::max(1.0, config_.ops_per_sec));
}

std::size_t LoadBalancer::route(const Packet& packet) {
  switch (config_.strategy) {
    case LbStrategy::kNone:
      return 0;
    case LbStrategy::kStaticByHost:
      // Placement by destination host: uneven when traffic concentrates
      // on a few servers — exactly the "individual, statically placed
      // sensors may overload or starve" failure mode (§2.2).
      return packet.tuple.dst_ip.value() % sensor_count_;
    case LbStrategy::kFlowHash: {
      const netsim::FiveTuple canon = packet.tuple.canonical();
      return netsim::FiveTupleHash{}(canon) % sensor_count_;
    }
    case LbStrategy::kLeastLoaded: {
      // Session-consistent: a pinned flow stays put; new flows go to the
      // sensor with the shortest queue right now. The pin is released
      // once the flow ends so long runs don't accumulate dead entries.
      const bool flow_end = packet.flags.fin || packet.flags.rst;
      if (const std::uint32_t* pinned = flow_pin_.find(packet.flow_id)) {
        const std::size_t idx = *pinned;
        if (flow_end) {
          flow_pin_.erase(packet.flow_id);
          ++stats_.pin_evictions;
          telemetry::bump(tele_pin_evictions_);
        }
        return idx;
      }
      std::size_t best = 0;
      std::size_t best_depth = SIZE_MAX;
      for (std::size_t i = 0; i < sensors_.size(); ++i) {
        const std::size_t depth = sensors_[i]->queue_depth();
        if (depth < best_depth) {
          best_depth = depth;
          best = i;
        }
      }
      // A flow whose first routed packet already carries FIN/RST is over;
      // pinning it would leak an entry no later packet can release.
      if (!flow_end) {
        flow_pin_.try_emplace(packet.flow_id,
                              static_cast<std::uint32_t>(best));
      }
      return best;
    }
  }
  return 0;
}

void LoadBalancer::ingest(const Packet& packet) {
  ++stats_.offered;
  telemetry::bump(tele_offered_);
  if (queued_ >= config_.queue_capacity) {
    ++stats_.dropped;
    telemetry::bump(tele_dropped_);
    return;
  }
  enqueue_service(packet);
}

void LoadBalancer::enqueue_service(const Packet& packet) {
  ++queued_;
  const SimTime start = std::max(sim_.now(), busy_until_);
  // Queue wait: how long the packet sits behind earlier work before its
  // own service slot starts.
  telemetry::record(tele_queue_wait_, (start - sim_.now()).sec());
  busy_until_ = start + service_time();
  sim_.schedule_at(busy_until_, [this, packet = packet] {
    --queued_;
    const std::size_t idx = route(packet);
    ++stats_.forwarded;
    ++stats_.per_sensor[idx];
    if (forward_) forward_(idx, packet);
  });
}

void LoadBalancer::ingest_batch(const Packet* packets, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    ingest(*packets);
    return;
  }
  stats_.offered += count;
  telemetry::bump(tele_offered_, count);
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (queued_ >= config_.queue_capacity) {
      ++dropped;
      continue;
    }
    enqueue_service(packets[i]);
  }
  if (dropped != 0) {
    stats_.dropped += dropped;
    telemetry::bump(tele_dropped_, dropped);
  }
}

void LoadBalancer::reset_stats() {
  stats_ = LoadBalancerStats{};
  stats_.per_sensor.assign(sensor_count_, 0);
  telemetry::reset(tele_offered_);
  telemetry::reset(tele_dropped_);
  telemetry::reset(tele_pin_evictions_);
  telemetry::reset(tele_queue_wait_);
}

}  // namespace idseval::ids
