// Continuous detector evidence: the raw scores behind the binary alert
// decision. Engines gate their observations against the shared
// sensitivity knob (z-score triggers, minimum rule confidence, scaled
// thresholds); an EvidenceSink sees the observation *before* the gate,
// together with the minimal sensitivity at which the gate would have
// passed. Recording that critical sensitivity once per transaction lets
// an offline pass derive the alert outcome for every threshold — the
// whole Figure 4 sweep from a single simulation (score::RocCurve).
//
// Emission is purely observational: engines behave identically with or
// without a sink attached, so the golden determinism hash is untouched.
#pragma once

#include <cstdint>

namespace idseval::ids {

/// Which detector feature produced an observation.
enum class EvidenceChannel : std::uint8_t {
  kSignaturePattern,    ///< Content rule match (strength = confidence).
  kSignatureThreshold,  ///< Window count (strength = count/threshold).
  kAnomaly,             ///< Baseline z-score (strength = |z|).
  kNovelty,             ///< Peer/service novelty pseudo-z.
};

inline const char* to_string(EvidenceChannel channel) noexcept {
  switch (channel) {
    case EvidenceChannel::kSignaturePattern: return "signature_pattern";
    case EvidenceChannel::kSignatureThreshold: return "signature_threshold";
    case EvidenceChannel::kAnomaly: return "anomaly";
    case EvidenceChannel::kNovelty: return "novelty";
  }
  return "unknown";
}

/// Inverse sensitivity maps: for an observed evidence strength, the
/// minimal sensitivity at which the corresponding gate fires. Each is
/// the algebraic inverse of its forward map (sensitivity_to_zscore,
/// sensitivity_to_min_confidence, sensitivity_threshold_scale) on the
/// evaluation domain [0, 1], where the forward clamp is the identity.
/// Values are deliberately unclamped: < 0 means "fires at any
/// sensitivity", > 1 means "never fires on the knob's range".

/// Pattern rules fire iff confidence >= min_confidence(s) — non-strict.
inline double sensitivity_for_confidence(double confidence) noexcept {
  return (0.95 - confidence) / 0.70;
}

/// Threshold rules fire iff count >= threshold * scale(s) — non-strict.
/// `ratio` is count / threshold.
inline double sensitivity_for_threshold_ratio(double ratio) noexcept {
  return (1.6 - ratio) / 1.2;
}

/// Anomaly z-scores fire iff z > z_trigger(s) — strict.
/// Novelty pseudo-z fires iff z >= z_trigger(s) — non-strict.
inline double sensitivity_for_zscore(double z) noexcept {
  return (8.0 - z) / 6.5;
}

/// Receives every pre-gate detector observation. Implementations must
/// tolerate high call volume (one call per rule evaluation on the hot
/// path when attached); the engines skip the calls entirely when no
/// sink is set.
class EvidenceSink {
 public:
  virtual ~EvidenceSink() = default;

  /// One observation on `flow_id`. `strength` is the channel's raw
  /// score; `critical_sensitivity` the minimal knob setting at which
  /// this observation fires, with `strict_trigger` distinguishing
  /// s > critical (anomaly z) from s >= critical (everything else).
  virtual void observe(std::uint64_t flow_id, EvidenceChannel channel,
                       double strength, double critical_sensitivity,
                       bool strict_trigger) = 0;
};

}  // namespace idseval::ids
