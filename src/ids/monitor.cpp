#include "ids/monitor.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strfmt.hpp"
#include "util/table.hpp"

namespace idseval::ids {

Monitor::Monitor(netsim::Simulator& sim, MonitorConfig config)
    : sim_(sim),
      config_(std::move(config)),
      tele_alerts_(
          telemetry::counter_handle(telemetry::names::kMonitorAlerts)),
      tele_evictions_(
          telemetry::counter_handle(telemetry::names::kMonitorEvictions)),
      tele_alert_latency_(telemetry::latency_handle(
          telemetry::names::kMonitorAlertLatency)) {
  telemetry::bind_flow_table(alerted_severity_);
}

void Monitor::submit(const ThreatReport& report) {
  ++stats_.reports_in;
  if (report.severity < config_.min_severity) {
    ++stats_.suppressed_severity;
    return;
  }
  const auto [prior, inserted] =
      alerted_severity_.try_emplace(report.primary.flow_id, report.severity);
  if (!inserted) {
    if (report.severity <= *prior) {
      ++stats_.suppressed_duplicate;
      return;
    }
    *prior = report.severity;
  }
  alerted_flows_.insert(report.primary.flow_id);

  Alert alert;
  alert.id = ++next_alert_id_;
  alert.flow_id = report.primary.flow_id;
  alert.tuple = report.primary.tuple;
  alert.detected = report.primary.when;
  alert.raised = sim_.now() + config_.notification_delay;
  alert.rule = report.primary.rule;
  alert.confidence = report.primary.confidence;
  alert.severity = report.severity;
  alert.method = report.primary.method;
  alert.correlated_count = report.correlated_count;

  sim_.schedule_at(alert.raised, [this, alert] {
    ++stats_.alerts_raised;
    telemetry::bump(tele_alerts_);
    // Operator-visible alert latency: intrusion detection timestamp to
    // the moment the alert reaches the operator (Timeliness tail).
    telemetry::record(tele_alert_latency_,
                      (sim_.now() - alert.detected).sec());
    log_.push_back(alert);
    if (on_alert_) on_alert_(alert);
  });
}

void Monitor::flow_ended(std::uint64_t flow_id) {
  if (!config_.evict_on_flow_end) return;
  if (alerted_severity_.erase(flow_id)) {
    ++stats_.evicted_flows;
    telemetry::bump(tele_evictions_);
  }
}

std::vector<Alert> Monitor::alerts_from(netsim::Ipv4 offender) const {
  std::vector<Alert> out;
  for (const Alert& a : log_) {
    if (a.tuple.src_ip == offender) out.push_back(a);
  }
  return out;
}

std::vector<Alert> Monitor::alerts_at_least(int severity) const {
  std::vector<Alert> out;
  for (const Alert& a : log_) {
    if (a.severity >= severity) out.push_back(a);
  }
  return out;
}

std::string Monitor::render_report(netsim::SimTime window_start,
                                   netsim::SimTime window_end,
                                   std::size_t trend_buckets) const {
  std::ostringstream out;
  out << "=== " << config_.name << " threat summary ("
      << window_start.to_string() << " .. " << window_end.to_string()
      << ") ===\n";

  std::size_t in_window = 0;
  std::map<int, std::size_t> by_severity;
  std::map<std::string, std::size_t> by_method;
  std::map<std::uint32_t, std::size_t> by_offender;
  std::vector<std::size_t> trend(std::max<std::size_t>(1, trend_buckets), 0);
  const double span = std::max(1e-9, (window_end - window_start).sec());

  for (const Alert& a : log_) {
    if (a.raised < window_start || a.raised >= window_end) continue;
    ++in_window;
    ++by_severity[a.severity];
    ++by_method[to_string(a.method)];
    ++by_offender[a.tuple.src_ip.value()];
    auto bucket = static_cast<std::size_t>(
        (a.raised - window_start).sec() / span *
        static_cast<double>(trend.size()));
    if (bucket >= trend.size()) bucket = trend.size() - 1;
    ++trend[bucket];
  }

  out << "alerts: " << in_window << "\n";
  out << "by severity:";
  for (int sev = 5; sev >= 1; --sev) {
    out << "  S" << sev << "=" << by_severity[sev];
  }
  out << "\nby method:";
  for (const auto& [method, count] : by_method) {
    out << "  " << method << "=" << count;
  }
  out << "\n";

  // Top offenders (descending count, top 5).
  std::vector<std::pair<std::uint32_t, std::size_t>> offenders(
      by_offender.begin(), by_offender.end());
  std::sort(offenders.begin(), offenders.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  out << "top offenders:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, offenders.size());
       ++i) {
    out << "  " << netsim::Ipv4(offenders[i].first).to_string() << "  "
        << offenders[i].second << " alerts\n";
  }

  // Trend: alert counts per bucket (the Trend Analysis metric's view).
  out << "trend:";
  for (const std::size_t count : trend) out << ' ' << count;
  out << "\n";
  return out.str();
}

void Monitor::clear() {
  log_.clear();
  alerted_flows_.clear();
  alerted_severity_.clear();
  stats_ = MonitorStats{};
  telemetry::reset(tele_alerts_);
  telemetry::reset(tele_evictions_);
  telemetry::reset(tele_alert_latency_);
}

}  // namespace idseval::ids
