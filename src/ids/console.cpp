#include "ids/console.hpp"

#include <algorithm>

namespace idseval::ids {

std::string to_string(ReactionAction a) {
  switch (a) {
    case ReactionAction::kLogOnly:
      return "log-only";
    case ReactionAction::kNotifyOperator:
      return "notify";
    case ReactionAction::kSnmpTrap:
      return "snmp-trap";
    case ReactionAction::kBlockSource:
      return "block-source";
    case ReactionAction::kRedirectHoneypot:
      return "redirect-honeypot";
  }
  return "?";
}

ManagementConsole::ManagementConsole(netsim::Simulator& sim,
                                     ConsoleConfig config)
    : sim_(sim),
      config_(std::move(config)),
      tele_blocks_(
          telemetry::counter_handle(telemetry::names::kConsoleBlocks)) {}

void ManagementConsole::reset_stats() noexcept {
  stats_ = ConsoleStats{};
  telemetry::reset(tele_blocks_);
}

void ManagementConsole::on_alert(const Alert& alert) {
  ++stats_.alerts_in;
  for (const PolicyRule& rule : config_.policy) {
    if (alert.severity >= rule.min_severity &&
        alert.confidence >= rule.min_confidence) {
      react(alert, rule.action);
    }
  }
}

void ManagementConsole::react(const Alert& alert, ReactionAction action) {
  switch (action) {
    case ReactionAction::kLogOnly:
      break;
    case ReactionAction::kNotifyOperator:
      ++stats_.notifications;
      break;
    case ReactionAction::kSnmpTrap:
      if (config_.can_snmp) ++stats_.snmp_traps;
      break;
    case ReactionAction::kRedirectHoneypot:
      if (config_.can_redirect_router) ++stats_.redirects;
      break;
    case ReactionAction::kBlockSource: {
      if (!config_.can_block_firewall || switch_ == nullptr) break;
      const netsim::Ipv4 offender = alert.tuple.src_ip;
      if (std::find(blocked_.begin(), blocked_.end(), offender) !=
          blocked_.end()) {
        break;
      }
      blocked_.push_back(offender);
      ++stats_.blocks_issued;
      telemetry::bump(tele_blocks_);
      block_events_.push_back(
          BlockEvent{offender, sim_.now() + config_.reaction_delay});
      sim_.schedule_in(config_.reaction_delay, [this, offender] {
        if (switch_ != nullptr) switch_->block_source(offender);
      });
      break;
    }
  }
}

std::vector<PolicyRule> default_policy() {
  return {
      PolicyRule{5, 0.6, ReactionAction::kBlockSource},
      PolicyRule{4, 0.0, ReactionAction::kSnmpTrap},
      PolicyRule{3, 0.0, ReactionAction::kNotifyOperator},
      PolicyRule{1, 0.0, ReactionAction::kLogOnly},
  };
}

}  // namespace idseval::ids
