// Pipeline assembly: wires the five subprocesses of Figure 1 with the
// relational cardinalities of Figure 2 (LB 1c:M sensors, sensors M:M
// analyzers, analyzers M:1 monitor, monitor 1:1c console, console 1c:M
// components) and attaches the result to a simulated network, either
// passively (SPAN mirror) or in-line.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ids/analyzer.hpp"
#include "ids/console.hpp"
#include "ids/host_agent.hpp"
#include "ids/load_balancer.hpp"
#include "ids/monitor.hpp"
#include "ids/rules.hpp"
#include "ids/sensor.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"

namespace idseval::ids {

/// Data-pool selection (Table 2's Data Pool Selectability): restricts
/// which traffic the IDS analyzes. §3.2: a cluster operator may exclude
/// the tuned intra-cluster protocols to spend sensor capacity on
/// everything else — buying throughput at the price of blindness inside
/// the excluded pool.
struct TapFilter {
  /// Destination ports never analyzed (empty = analyze all ports).
  std::vector<std::uint16_t> exclude_dst_ports;
  /// When non-empty, ONLY these protocols are analyzed.
  std::vector<netsim::Protocol> include_protocols;
  /// Skip traffic between internal hosts (trusted-enclave shortcut).
  bool exclude_internal_to_internal = false;
  netsim::Ipv4 internal_net{10, 0, 0, 0};
  int internal_prefix = 8;

  bool selects(const netsim::Packet& packet) const;
  bool empty() const noexcept {
    return exclude_dst_ports.empty() && include_protocols.empty() &&
           !exclude_internal_to_internal;
  }
};

struct PipelineConfig {
  std::string product = "ids";
  TapFilter tap_filter;

  // --- Load balancing (subprocess 1, optional) ---------------------------
  bool use_load_balancer = false;
  LoadBalancerConfig lb;

  // --- Network sensing (subprocess 2) ------------------------------------
  std::size_t sensor_count = 1;       ///< 0 for purely host-based IDSs.
  SensorConfig sensor;
  bool signature_engine = true;
  /// Signature engines perform per-flow stream reassembly (catches
  /// boundary-split patterns at extra CPU/memory cost).
  bool stream_reassembly = false;
  bool anomaly_engine = false;
  RuleSet rules;                      ///< Used when signature_engine.
  AnomalyEngineOptions anomaly;       ///< Used when anomaly_engine.

  // --- Host agents (host-based / hybrid monitoring scope, §2.1) ----------
  bool use_host_agents = false;
  HostAgentConfig agent;
  SensorConfig agent_sensor;          ///< Template for agent inner sensors.

  // --- Analysis (subprocess 3) --------------------------------------------
  std::size_t analyzer_count = 1;
  AnalyzerConfig analyzer;

  // --- Monitoring (subprocess 4) ------------------------------------------
  MonitorConfig monitor;

  // --- Managing (subprocess 5, optional) ----------------------------------
  bool use_console = true;
  ConsoleConfig console;

  double sensitivity = 0.5;
};

/// Aggregated pipeline statistics for the measurement harness.
struct PipelineTotals {
  std::uint64_t packets_tapped = 0;
  std::uint64_t packets_filtered = 0;  ///< Excluded by the data pool.
  /// Combined across network sensors and host agents.
  std::uint64_t sensor_offered = 0;
  std::uint64_t sensor_processed = 0;
  std::uint64_t sensor_dropped = 0;
  /// Network-sensor path only (a host agent re-observes packets the
  /// network path already counted, so combined rates double-count on
  /// hybrid products).
  std::uint64_t network_processed = 0;
  std::uint64_t agent_processed = 0;
  std::uint64_t lb_dropped = 0;
  std::uint64_t detections = 0;
  std::uint64_t alerts = 0;
  std::uint64_t sensor_failures = 0;   ///< Failure events this window.
  std::uint64_t sensors_down = 0;       ///< Sensors currently failed.

  double ids_loss_ratio() const noexcept {
    return sensor_offered == 0
               ? 0.0
               : static_cast<double>(sensor_dropped + lb_dropped) /
                     static_cast<double>(sensor_offered + lb_dropped);
  }
};

class Pipeline {
 public:
  Pipeline(netsim::Simulator& sim, netsim::Network& net,
           PipelineConfig config);

  /// Validates Figure 2's cardinality constraints; returns human-readable
  /// violations (empty == valid). Called by the constructor, which throws
  /// on violations; also usable standalone for tests.
  static std::vector<std::string> validate(const PipelineConfig& config);

  /// Attaches network sensing to the LAN switch (mirror or in-line per
  /// lb.in_line) and host agents to the given hosts.
  void attach(const std::vector<netsim::Ipv4>& agent_hosts = {});

  /// Anomaly engines learn during warmup, then switch to detecting.
  void set_learning(bool learning);
  void set_sensitivity(double sensitivity);
  /// Forwards a pre-gate evidence observer to every engine — network
  /// sensors and host agents alike (nullptr detaches). Off by default;
  /// attaching it never changes detection output.
  void set_evidence_sink(EvidenceSink* sink);
  double sensitivity() const noexcept { return config_.sensitivity; }

  Monitor& monitor() noexcept { return *monitor_; }
  const Monitor& monitor() const noexcept { return *monitor_; }
  ManagementConsole* console() noexcept { return console_.get(); }
  LoadBalancer* load_balancer() noexcept { return lb_.get(); }
  const std::vector<std::unique_ptr<Sensor>>& sensors() const noexcept {
    return sensors_;
  }
  const std::vector<std::unique_ptr<Analyzer>>& analyzers() const noexcept {
    return analyzers_;
  }
  const std::vector<std::unique_ptr<HostAgent>>& agents() const noexcept {
    return agents_;
  }
  const PipelineConfig& config() const noexcept { return config_; }

  PipelineTotals totals() const;
  /// Clears run counters (not learned state) between measurement phases.
  void reset_counters();

 private:
  void feed(const netsim::Packet& packet);
  /// Batched tap: splits a same-tick mirror batch into contiguous
  /// single-sink runs and ingests each run as one sub-batch; tapped /
  /// filtered bumps are hoisted to once per batch.
  void feed_batch(const netsim::Packet* packets, std::size_t count);
  std::size_t sensor_index_for(const netsim::Packet& packet) const;
  void dispatch_to_sensor(std::size_t index, const netsim::Packet& packet);
  Analyzer& analyzer_for(std::size_t source_index);

  netsim::Simulator& sim_;
  netsim::Network& net_;
  PipelineConfig config_;

  std::unique_ptr<LoadBalancer> lb_;
  std::vector<std::unique_ptr<Sensor>> sensors_;
  std::vector<std::unique_ptr<HostAgent>> agents_;
  std::vector<std::unique_ptr<Analyzer>> analyzers_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<ManagementConsole> console_;

  std::uint64_t packets_tapped_ = 0;
  std::uint64_t packets_filtered_ = 0;
  bool attached_ = false;
  /// Cached config_.monitor.evict_on_flow_end: checked per tapped packet.
  bool monitor_evicts_ = false;
  telemetry::Counter* tele_tapped_;
  telemetry::Counter* tele_filtered_;
};

}  // namespace idseval::ids
