#include "ids/signature_engine.hpp"

#include <algorithm>

namespace idseval::ids {

using netsim::Packet;
using netsim::SimTime;

double sensitivity_to_min_confidence(double sensitivity) noexcept {
  const double s = std::clamp(sensitivity, 0.0, 1.0);
  // s=0 -> 0.95 (only near-certain rules), s=1 -> 0.25 (almost anything).
  return 0.95 - 0.70 * s;
}

double sensitivity_threshold_scale(double sensitivity) noexcept {
  const double s = std::clamp(sensitivity, 0.0, 1.0);
  // s=0 -> 1.6x the shipped threshold, s=0.5 -> 1.0x, s=1 -> 0.4x.
  return 1.6 - 1.2 * s;
}

SignatureEngine::SignatureEngine(RuleSet rules,
                                 SignatureEngineOptions options)
    : rules_(std::move(rules)),
      options_(options),
      boundary_rescans_(telemetry::counter_handle(
          telemetry::names::kScanCacheBoundaryRescans)) {
  options_.reassembly_tail_bytes =
      std::min(options_.reassembly_tail_bytes, TailBuffer::kCapacity);
  std::vector<std::string> patterns;
  patterns.reserve(rules_.patterns.size());
  for (std::size_t i = 0; i < rules_.patterns.size(); ++i) {
    patterns.push_back(rules_.patterns[i].pattern);
    pattern_rule_index_.push_back(i);
  }
  if (!patterns.empty()) {
    matcher_ = std::make_unique<AhoCorasick>(patterns);
  }
}

double SignatureEngine::scan_cost_ops(const Packet& packet) const noexcept {
  // Header rule evaluation + window bookkeeping.
  double ops = 600.0;
  if (options_.deep_inspection && packet.payload_bytes() > 0) {
    // One automaton transition per byte, ~12 abstract ops each; stream
    // reassembly rescans the retained tail and pays copy costs.
    double bytes = static_cast<double>(packet.payload_bytes());
    if (options_.stream_reassembly) {
      bytes += static_cast<double>(options_.reassembly_tail_bytes);
      ops += 400.0;  // per-flow buffer management
    }
    ops += 12.0 * bytes;
  }
  return ops;
}

std::size_t SignatureEngine::reassembly_bytes() const noexcept {
  // Each live flow owns one fixed inline TailBuffer slab slot plus ~16
  // bytes of table-slot overhead (honest for the new representation: the
  // buffer's full capacity is committed whether or not it is filled).
  return stream_tail_.size() * (sizeof(TailBuffer) + 16);
}

void SignatureEngine::process(const Packet& packet, SimTime now,
                              std::vector<Detection>& out) {
  const double min_conf =
      sensitivity_to_min_confidence(options_.sensitivity);
  if (options_.deep_inspection && matcher_ && packet.payload_bytes() > 0) {
    check_patterns(packet, now, min_conf, out);
  }
  check_thresholds(packet, now, min_conf, out);
}

bool SignatureEngine::already_fired(std::size_t rule_tag,
                                    std::uint64_t flow_id) {
  return !fired_.insert(
      FireKey{flow_id, static_cast<std::uint64_t>(rule_tag)});
}

Detection SignatureEngine::make_detection(const Packet& packet, SimTime now,
                                          const std::string& rule,
                                          double confidence,
                                          int severity) const {
  Detection d;
  d.flow_id = packet.flow_id;
  d.tuple = packet.tuple;
  d.when = now;
  d.rule = rule;
  d.confidence = confidence;
  d.severity = severity;
  d.method = DetectionMethod::kSignature;
  return d;
}

namespace {

/// Union of two ascending unique id lists, ascending unique — the order
/// find_set would have produced over the concatenated stream.
void merge_sorted_unique(const std::vector<std::size_t>& a,
                         const std::vector<std::size_t>& b,
                         std::vector<std::size_t>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j), b.end());
}

}  // namespace

const SignatureEngine::CachedHits& SignatureEngine::cached_hits(
    const std::shared_ptr<const std::string>& payload,
    std::size_t rescanned_bytes) {
  if (const CachedHits* cached = payload_memo_.find(payload)) {
    payload_memo_.credit_saved(
        payload->size() - std::min(payload->size(), rescanned_bytes));
    return *cached;
  }
  // One full scan per distinct interned payload: keep the raw match list
  // (sensitivity-independent) and derive the sorted-unique id set once.
  scratch_hits_.matches = matcher_->find_all(*payload);
  scratch_hits_.ids.clear();
  for (const AhoCorasick::Match& m : scratch_hits_.matches) {
    scratch_hits_.ids.push_back(m.pattern_id);
  }
  std::sort(scratch_hits_.ids.begin(), scratch_hits_.ids.end());
  scratch_hits_.ids.erase(
      std::unique(scratch_hits_.ids.begin(), scratch_hits_.ids.end()),
      scratch_hits_.ids.end());
  if (const CachedHits* stored = payload_memo_.store(payload, scratch_hits_)) {
    return *stored;
  }
  return scratch_hits_;
}

void SignatureEngine::check_patterns(const Packet& packet, SimTime now,
                                     double min_conf,
                                     std::vector<Detection>& out) {
  const std::vector<std::size_t>* hits = nullptr;
  std::vector<std::size_t> local;
  if (options_.stream_reassembly) {
    TailBuffer& tail = *stream_tail_.try_emplace(packet.flow_id).first;
    if (options_.scan_cache && packet.payload != nullptr) {
      // Boundary-limited reassembly: the only matches the per-payload
      // memo cannot know about cross the packet boundary, and every one
      // of those ends within the first L-1 payload bytes (L = longest
      // pattern). Scanning the whole retained tail (≤ 64 B — patterns
      // entirely inside the tail re-fire evidence exactly as the legacy
      // full rescan did) plus that prefix, then merging with the cached
      // payload-only ids, reproduces find_set(tail || payload) exactly.
      const std::string& payload = packet.payload_view();
      const std::size_t max_len = matcher_->max_pattern_length();
      const std::size_t prefix =
          std::min(payload.size(), max_len > 0 ? max_len - 1 : 0);
      scan_buf_.assign(tail.data(), tail.size());
      scan_buf_.append(payload, 0, prefix);
      telemetry::bump(boundary_rescans_);
      const std::vector<std::size_t> boundary = matcher_->find_set(scan_buf_);
      merge_sorted_unique(boundary, cached_hits(packet.payload, prefix).ids,
                          merged_hits_);
      hits = &merged_hits_;
    } else {
      // Legacy scan path (the --no-scan-cache pin): rescan the retained
      // tail concatenated with the whole payload.
      scan_buf_.assign(tail.data(), tail.size());
      scan_buf_.append(packet.payload_view());
      local = matcher_->find_set(scan_buf_);
      hits = &local;
    }
    tail.append(packet.payload_view(), options_.reassembly_tail_bytes);
  } else if (options_.scan_cache && packet.payload != nullptr) {
    hits = &cached_hits(packet.payload, 0).ids;
  } else {
    local = matcher_->find_set(packet.payload_view());
    hits = &local;
  }
  for (const std::size_t pid : *hits) {
    const PatternRule& rule = rules_.patterns[pattern_rule_index_[pid]];
    if (rule.dst_port && *rule.dst_port != packet.tuple.dst_port) continue;
    if (rule.proto && *rule.proto != packet.tuple.proto) continue;
    // Pre-gate evidence: a matched pattern fires once sensitivity admits
    // its confidence, independent of the current knob setting.
    if (evidence_) {
      evidence_->observe(packet.flow_id, EvidenceChannel::kSignaturePattern,
                         rule.confidence,
                         sensitivity_for_confidence(rule.confidence),
                         /*strict_trigger=*/false);
    }
    if (rule.confidence < min_conf) continue;
    if (already_fired(pattern_rule_index_[pid], packet.flow_id)) continue;
    out.push_back(make_detection(packet, now, rule.name, rule.confidence,
                                 rule.severity));
  }
}

void SignatureEngine::check_thresholds(const Packet& packet, SimTime now,
                                       double min_conf,
                                       std::vector<Detection>& out) {
  const double scale = sensitivity_threshold_scale(options_.sensitivity);
  // Pre-gate evidence for window rules. A rule fires once sensitivity
  // both admits its confidence and scales the trigger below the observed
  // count, so the critical sensitivity is the max of the two inverses.
  // Unlike pattern rules this is approximate across knob settings: the
  // confidence gate above also gates window updates, so windows only
  // accumulate while the recording sensitivity admits the rule.
  const auto observe_count = [&](const ThresholdRule& rule, double count) {
    if (!evidence_) return;
    const double ratio = count / static_cast<double>(rule.threshold);
    const double critical =
        std::max(sensitivity_for_confidence(rule.confidence),
                 sensitivity_for_threshold_ratio(ratio));
    evidence_->observe(packet.flow_id, EvidenceChannel::kSignatureThreshold,
                       ratio, critical, /*strict_trigger=*/false);
  };
  for (std::size_t r = 0; r < rules_.thresholds.size(); ++r) {
    const ThresholdRule& rule = rules_.thresholds[r];
    if (rule.confidence < min_conf) continue;
    if (rule.dst_port && *rule.dst_port != packet.tuple.dst_port) continue;
    const double effective = rule.threshold * scale;
    const std::size_t rule_tag = rules_.patterns.size() + r;

    switch (rule.feature) {
      case ThresholdFeature::kDistinctDstPorts: {
        PortFanout& state =
            *fanout_by_src_.try_emplace(packet.tuple.src_ip.value()).first;
        state.last_seen[packet.tuple.dst_port] = now;
        if (now < state.cooldown_until) break;
        // Prune entries older than the window, then count.
        state.last_seen.erase_if([&](const auto& kv) {
          return now - kv.second > rule.window;
        });
        observe_count(rule, static_cast<double>(state.last_seen.size()));
        if (static_cast<double>(state.last_seen.size()) >= effective) {
          state.cooldown_until = now + rule.window;
          if (!already_fired(rule_tag, packet.flow_id)) {
            out.push_back(make_detection(packet, now, rule.name,
                                         rule.confidence, rule.severity));
          }
        }
        break;
      }
      case ThresholdFeature::kSynRate: {
        if (!(packet.flags.syn && !packet.flags.ack)) break;
        RateWindow& state =
            *syn_by_dst_.try_emplace(packet.tuple.dst_ip.value()).first;
        state.events.push_back(now);
        while (!state.events.empty() &&
               now - state.events.front() > rule.window) {
          state.events.pop_front();
        }
        if (now < state.cooldown_until) break;
        observe_count(rule, static_cast<double>(state.events.size()));
        if (static_cast<double>(state.events.size()) >= effective) {
          state.cooldown_until = now + rule.window;
          if (!already_fired(rule_tag, packet.flow_id)) {
            out.push_back(make_detection(packet, now, rule.name,
                                         rule.confidence, rule.severity));
          }
        }
        break;
      }
      case ThresholdFeature::kFlowPacketRate: {
        RateWindow& state =
            *rate_by_flow_.try_emplace(packet.flow_id).first;
        state.events.push_back(now);
        while (!state.events.empty() &&
               now - state.events.front() > rule.window) {
          state.events.pop_front();
        }
        if (now < state.cooldown_until) break;
        observe_count(rule, static_cast<double>(state.events.size()));
        if (static_cast<double>(state.events.size()) >= effective) {
          state.cooldown_until = now + rule.window;
          if (!already_fired(rule_tag, packet.flow_id)) {
            out.push_back(make_detection(packet, now, rule.name,
                                         rule.confidence, rule.severity));
          }
        }
        break;
      }
    }
  }
}

void SignatureEngine::reset_state() {
  stream_tail_.clear();
  fanout_by_src_.clear();
  syn_by_dst_.clear();
  rate_by_flow_.clear();
  fired_.clear();
  // payload_memo_ is deliberately retained: entries are pure content
  // functions of their interned payloads, valid across windows/reboots.
}

}  // namespace idseval::ids
