// Exact (rule/feature tag, flow id) dedup keys for the engines'
// one-alert-per-rule-per-flow guards. The previous scheme packed both
// into one 64-bit word as `(tag << 48) ^ flow_id`, which aliases: any
// flow id >= 2^48 bleeds into the tag bits, and crafted (tag, flow)
// pairs collide outright (tagA<<48 ^ fA == tagB<<48 ^ fB whenever
// fB == fA ^ ((tagA^tagB) << 48)), silently swallowing detections at
// megaflow id volumes. The pair key below cannot collide: equality is
// field-exact, the hash only steers bucketing.
#pragma once

#include <cstdint>

#include "util/flow_table.hpp"

namespace idseval::ids {

struct FireKey {
  std::uint64_t flow_id = 0;
  std::uint64_t tag = 0;

  constexpr bool operator==(const FireKey&) const noexcept = default;
};

struct FireKeyHash {
  std::uint64_t operator()(const FireKey& key) const noexcept {
    return util::mix64(key.flow_id ^
                       util::mix64(key.tag ^ 0x9e3779b97f4a7c15ULL));
  }
};

using FiredSet = util::FlowSet<FireKey, FireKeyHash>;

}  // namespace idseval::ids
