// Load-balancing subprocess (§2.2, subprocess 1 — optional, 1c:M). Four
// strategies spanning the paper's Scalable Load-balancing metric anchors:
// none (low score), static placement (average), flow hash and dynamic
// least-load (high: "intelligent, dynamic"). TCP-session awareness is
// mandatory for correctness: a session split across sensors defeats
// stream-context rules, so every strategy here pins a flow to one sensor.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "util/flow_table.hpp"

namespace idseval::ids {

class Sensor;

enum class LbStrategy : std::uint8_t {
  kNone,          ///< Everything to sensor 0.
  kStaticByHost,  ///< Sensor chosen by destination subnet (placement).
  kFlowHash,      ///< Uniform hash over the canonical five-tuple.
  kLeastLoaded,   ///< Dynamic: new flows go to the shortest queue.
};

std::string to_string(LbStrategy s);

struct LoadBalancerConfig {
  std::string name = "lb";
  LbStrategy strategy = LbStrategy::kFlowHash;
  /// Abstract ops per packet (tuple hash, table lookup, forwarding).
  double ops_per_packet = 1500.0;
  double ops_per_sec = 2e9;
  std::size_t queue_capacity = 8192;
  /// In-line deployment delays *production* traffic; mirrored deployment
  /// only delays the IDS's own copy (§2.2's induced latency discussion).
  bool in_line = false;
  /// Store-and-forward + lookup delay added to every production packet
  /// when deployed in-line.
  netsim::SimTime inline_latency = netsim::SimTime::from_us(80);
};

struct LoadBalancerStats {
  std::uint64_t offered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t pin_evictions = 0;  ///< Flow pins released on FIN/RST.
  std::vector<std::uint64_t> per_sensor;  ///< Forwarded per sensor index.

  double imbalance() const;  ///< max/mean of per-sensor counts (1 = even).
};

class LoadBalancer {
 public:
  using ForwardFn = std::function<void(std::size_t sensor_index,
                                       const netsim::Packet& packet)>;

  LoadBalancer(netsim::Simulator& sim, LoadBalancerConfig config,
               std::size_t sensor_count);

  void set_forward(ForwardFn fn) { forward_ = std::move(fn); }
  /// Required for kLeastLoaded (queries live sensor queue depths).
  void set_sensors(std::vector<Sensor*> sensors) {
    sensors_ = std::move(sensors);
  }

  void ingest(const netsim::Packet& packet);
  /// Ingests a same-tick batch in order; offered/dropped stats and
  /// telemetry bumps are hoisted to once per batch. A single-packet
  /// batch takes the exact legacy ingest() path.
  void ingest_batch(const netsim::Packet* packets, std::size_t count);

  /// Service time for one packet — also the latency an in-line deployment
  /// adds to production traffic.
  netsim::SimTime service_time() const noexcept;

  const LoadBalancerConfig& config() const noexcept { return config_; }
  const LoadBalancerStats& stats() const noexcept { return stats_; }
  std::size_t sensor_count() const noexcept { return sensor_count_; }
  /// Live kLeastLoaded session pins (flows seen but not yet FIN/RST).
  std::size_t pins_live() const noexcept { return flow_pin_.size(); }
  void reset_stats();

 private:
  std::size_t route(const netsim::Packet& packet);
  void enqueue_service(const netsim::Packet& packet);

  netsim::Simulator& sim_;
  LoadBalancerConfig config_;
  std::size_t sensor_count_;
  ForwardFn forward_;
  std::vector<Sensor*> sensors_;
  LoadBalancerStats stats_;
  netsim::SimTime busy_until_;
  std::size_t queued_ = 0;
  /// kLeastLoaded session pins. Entries are erased when the flow's
  /// FIN/RST packet routes, so the table tracks *live* flows instead of
  /// every flow ever seen (it previously grew without bound).
  util::FlowTable<std::uint64_t, std::uint32_t> flow_pin_;
  telemetry::Counter* tele_offered_;
  telemetry::Counter* tele_dropped_;
  telemetry::Counter* tele_pin_evictions_;
  telemetry::LatencyStat* tele_queue_wait_;
};

}  // namespace idseval::ids
