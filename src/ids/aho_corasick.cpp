#include "ids/aho_corasick.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace idseval::ids {

AhoCorasick::AhoCorasick(const std::vector<std::string>& patterns) {
  build(patterns);
}

void AhoCorasick::build(const std::vector<std::string>& patterns) {
  patterns_ = patterns;
  for (const auto& p : patterns_) {
    if (p.empty()) {
      throw std::invalid_argument("AhoCorasick: empty pattern");
    }
    max_pattern_length_ = std::max(max_pattern_length_, p.size());
  }

  // Trie construction.
  next_.emplace_back();
  next_[0].fill(-1);
  output_.emplace_back();
  for (std::size_t pid = 0; pid < patterns_.size(); ++pid) {
    std::int32_t node = 0;
    for (unsigned char c : patterns_[pid]) {
      if (next_[static_cast<std::size_t>(node)][c] < 0) {
        next_[static_cast<std::size_t>(node)][c] =
            static_cast<std::int32_t>(next_.size());
        next_.emplace_back();
        next_.back().fill(-1);
        output_.emplace_back();
      }
      node = next_[static_cast<std::size_t>(node)][c];
    }
    output_[static_cast<std::size_t>(node)].push_back(
        static_cast<std::int32_t>(pid));
  }

  // BFS to set failure links and convert to a full goto automaton.
  fail_.assign(next_.size(), 0);
  std::queue<std::int32_t> bfs;
  for (std::size_t c = 0; c < kAlphabet; ++c) {
    std::int32_t& t = next_[0][c];
    if (t < 0) {
      t = 0;
    } else {
      fail_[static_cast<std::size_t>(t)] = 0;
      bfs.push(t);
    }
  }
  while (!bfs.empty()) {
    const std::int32_t u = bfs.front();
    bfs.pop();
    const std::int32_t fu = fail_[static_cast<std::size_t>(u)];
    // Inherit outputs along the failure chain.
    const auto& fo = output_[static_cast<std::size_t>(fu)];
    auto& uo = output_[static_cast<std::size_t>(u)];
    uo.insert(uo.end(), fo.begin(), fo.end());
    for (std::size_t c = 0; c < kAlphabet; ++c) {
      std::int32_t& t = next_[static_cast<std::size_t>(u)][c];
      if (t < 0) {
        t = next_[static_cast<std::size_t>(fu)][c];
      } else {
        fail_[static_cast<std::size_t>(t)] =
            next_[static_cast<std::size_t>(fu)][c];
        bfs.push(t);
      }
    }
  }
}

std::vector<AhoCorasick::Match> AhoCorasick::find_all(
    std::string_view text) const {
  std::vector<Match> matches;
  std::int32_t node = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    node = next_[static_cast<std::size_t>(node)]
                [static_cast<unsigned char>(text[i])];
    for (const std::int32_t pid : output_[static_cast<std::size_t>(node)]) {
      matches.push_back(Match{static_cast<std::size_t>(pid), i + 1});
    }
  }
  return matches;
}

std::vector<std::size_t> AhoCorasick::find_set(std::string_view text) const {
  std::vector<bool> seen(patterns_.size(), false);
  std::size_t remaining = patterns_.size();
  std::int32_t node = 0;
  for (const char ch : text) {
    node = next_[static_cast<std::size_t>(node)]
                [static_cast<unsigned char>(ch)];
    for (const std::int32_t pid : output_[static_cast<std::size_t>(node)]) {
      if (!seen[static_cast<std::size_t>(pid)]) {
        seen[static_cast<std::size_t>(pid)] = true;
        if (--remaining == 0) break;
      }
    }
    if (remaining == 0) break;
  }
  std::vector<std::size_t> out;
  for (std::size_t pid = 0; pid < seen.size(); ++pid) {
    if (seen[pid]) out.push_back(pid);
  }
  return out;
}

bool AhoCorasick::contains_any(std::string_view text) const {
  std::int32_t node = 0;
  for (const char ch : text) {
    node = next_[static_cast<std::size_t>(node)]
                [static_cast<unsigned char>(ch)];
    if (!output_[static_cast<std::size_t>(node)].empty()) return true;
  }
  return false;
}

}  // namespace idseval::ids
