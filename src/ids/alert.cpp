#include "ids/alert.hpp"

namespace idseval::ids {

std::string to_string(DetectionMethod m) {
  switch (m) {
    case DetectionMethod::kSignature:
      return "signature";
    case DetectionMethod::kAnomaly:
      return "anomaly";
  }
  return "?";
}

}  // namespace idseval::ids
