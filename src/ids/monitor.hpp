// Monitoring subprocess (§2.2, subprocess 4): operator visibility into
// the threat. The monitor owns the alert log (the evaluation harness's
// view of D, the detected-intrusion set), applies the display severity
// floor, and models operator-notification latency — the tail of the
// paper's Timeliness metric (intrusion occurrence -> operator report).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "ids/alert.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "util/flow_table.hpp"

namespace idseval::ids {

struct MonitorConfig {
  std::string name = "monitor";
  /// Console/GUI refresh + operator notification path delay.
  netsim::SimTime notification_delay = netsim::SimTime::from_ms(200);
  /// Threats below this severity are logged but not raised to the
  /// operator (tuning "according to the traffic patterns of the protected
  /// network" — §2.2's alert-fatigue discussion).
  int min_severity = 1;
  /// Drop the per-flow duplicate-suppression record when the flow ends
  /// (FIN/RST seen by the pipeline). Keeps dedup state bounded by *live*
  /// flows on megaflow runs. Off by default: a straggler report arriving
  /// after the flow's FIN would then re-alert instead of being suppressed,
  /// which shifts alert counts on the golden profiles.
  bool evict_on_flow_end = false;
};

struct MonitorStats {
  std::uint64_t reports_in = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t suppressed_severity = 0;
  std::uint64_t suppressed_duplicate = 0;
  std::uint64_t evicted_flows = 0;  ///< Dedup records dropped on flow end.
};

class Monitor {
 public:
  using AlertFn = std::function<void(const Alert&)>;

  Monitor(netsim::Simulator& sim, MonitorConfig config);

  void set_on_alert(AlertFn fn) { on_alert_ = std::move(fn); }

  void submit(const ThreatReport& report);

  const std::vector<Alert>& log() const noexcept { return log_; }
  const MonitorConfig& config() const noexcept { return config_; }
  const MonitorStats& stats() const noexcept { return stats_; }

  /// Set of flow ids with at least one raised alert — the D in Figure 3.
  const std::unordered_set<std::uint64_t>& alerted_flows() const noexcept {
    return alerted_flows_;
  }

  /// Notifies the monitor that a flow ended (FIN/RST). When
  /// `evict_on_flow_end` is set, drops that flow's duplicate-suppression
  /// record; `alerted_flows_` (the scoring set D) is never evicted.
  void flow_ended(std::uint64_t flow_id);

  /// Flows currently tracked for duplicate suppression.
  std::size_t tracked_flows() const noexcept {
    return alerted_severity_.size();
  }

  void clear();

  /// Operator-facing threat summary (the monitoring subprocess's "view of
  /// the threat ... graphical or textual, with some historical querying
  /// ability", §2.2): alert counts by severity and detection method, top
  /// offending sources, and an alert-rate trend over fixed buckets.
  std::string render_report(netsim::SimTime window_start,
                            netsim::SimTime window_end,
                            std::size_t trend_buckets = 10) const;

  /// Historical query: alerts involving `offender` as source.
  std::vector<Alert> alerts_from(netsim::Ipv4 offender) const;
  /// Historical query: alerts with severity >= floor.
  std::vector<Alert> alerts_at_least(int severity) const;

 private:
  netsim::Simulator& sim_;
  MonitorConfig config_;
  AlertFn on_alert_;
  MonitorStats stats_;
  std::vector<Alert> log_;
  std::unordered_set<std::uint64_t> alerted_flows_;
  /// Highest severity already raised per flow: an escalated threat on an
  /// already-alerted flow is raised again, lower/equal ones are duplicate.
  util::FlowTable<std::uint64_t, int> alerted_severity_;
  std::uint64_t next_alert_id_ = 0;
  telemetry::Counter* tele_alerts_;
  telemetry::Counter* tele_evictions_;
  telemetry::LatencyStat* tele_alert_latency_;
};

}  // namespace idseval::ids
