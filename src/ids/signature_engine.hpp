// Signature-based ("knowledge-based", "misuse-based") detection engine
// (§2.1): multi-pattern payload matching plus sliding-window threshold
// rules. Only detects what its shipped database describes — novel attacks
// sail through, which is the engine's structural false-negative source.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ids/aho_corasick.hpp"
#include "ids/alert.hpp"
#include "ids/evidence.hpp"
#include "ids/fired_set.hpp"
#include "ids/rules.hpp"
#include "ids/scan_cache.hpp"
#include "netsim/packet.hpp"
#include "util/flat_map.hpp"
#include "util/flow_table.hpp"

namespace idseval::ids {

/// Converts the shared sensitivity knob (0..1) into the minimum rule
/// confidence that is allowed to fire. Higher sensitivity admits weaker
/// rules: more true detections, more Type I errors (Figure 4's x-axis).
double sensitivity_to_min_confidence(double sensitivity) noexcept;
/// Scales a threshold rule's trigger level: higher sensitivity lowers the
/// bar (fires earlier).
double sensitivity_threshold_scale(double sensitivity) noexcept;

struct SignatureEngineOptions {
  double sensitivity = 0.5;
  /// When false the engine only evaluates header/threshold rules — the
  /// cheap mode whose inadequacy the X3 ablation demonstrates.
  bool deep_inspection = true;
  /// Stream reassembly: retain the tail of each flow's byte stream and
  /// scan it concatenated with the next payload, so patterns split across
  /// packet boundaries (Ptacek-Newsham evasion) still match. Costs per-
  /// flow memory and extra scan bytes — engines without it are faster and
  /// blind to kEvasiveExploit.
  bool stream_reassembly = false;
  /// Clamped to TailBuffer::kCapacity (64): the per-flow tail lives in a
  /// fixed inline buffer, not a heap string.
  std::size_t reassembly_tail_bytes = 64;
  /// Interned-payload scan cache (ids/scan_cache.hpp): memoize each
  /// pooled payload's raw Aho-Corasick hit list and only rescan the
  /// boundary window under stream reassembly. Detection output and the
  /// golden determinism hash are byte-identical on or off — off replays
  /// the exact legacy full-rescan path (regression pinning).
  bool scan_cache = true;
};

class SignatureEngine {
 public:
  SignatureEngine(RuleSet rules, SignatureEngineOptions options);

  /// Evaluates one packet; appends any detections (at most one per rule
  /// per flow — real engines suppress duplicate alerts).
  void process(const netsim::Packet& packet, netsim::SimTime now,
               std::vector<Detection>& out);

  void set_sensitivity(double s) noexcept { options_.sensitivity = s; }
  double sensitivity() const noexcept { return options_.sensitivity; }
  bool deep_inspection() const noexcept { return options_.deep_inspection; }
  void set_scan_cache(bool on) noexcept { options_.scan_cache = on; }
  bool scan_cache() const noexcept { return options_.scan_cache; }
  /// Raises the memo's capacity ceiling (never lowers): adaptive
  /// PayloadPool growth mints variants past the default population.
  void reserve_scan_cache(std::size_t capacity) noexcept {
    payload_memo_.reserve_capacity(capacity);
  }
  /// Memo traffic (hits/misses/bytes_saved) for benches and tests.
  const ScanCacheStats& scan_cache_stats() const noexcept {
    return payload_memo_.stats();
  }

  /// Attaches a pre-gate evidence observer (nullptr detaches). Purely
  /// observational: detection output is identical either way.
  void set_evidence_sink(EvidenceSink* sink) noexcept { evidence_ = sink; }

  const RuleSet& rules() const noexcept { return rules_; }

  /// Abstract CPU cost of scanning this packet (drives the sensor's
  /// service-time model): header rules are O(1); deep inspection pays per
  /// payload byte.
  double scan_cost_ops(const netsim::Packet& packet) const noexcept;

  /// Clears all sliding-window state (used between measurement phases).
  void reset_state();

  /// Approximate bytes of per-flow reassembly state (storage accounting).
  std::size_t reassembly_bytes() const noexcept;

 private:
  struct PortFanout {
    /// Tiny (a handful of live ports), so a flat sorted vector beats the
    /// node-based hash map it replaced on allocations and cache lines.
    util::FlatMap<std::uint16_t, netsim::SimTime> last_seen;
    netsim::SimTime cooldown_until;
  };
  struct RateWindow {
    std::deque<netsim::SimTime> events;
    netsim::SimTime cooldown_until;
  };
  /// Fixed-capacity inline stream tail: the retained suffix of a flow's
  /// byte stream, capped at kCapacity. Appending is equivalent to
  /// `tail = last min(cap, tail+payload) bytes of (tail || payload)`
  /// without materializing the concatenation — no per-packet heap churn.
  class TailBuffer {
   public:
    static constexpr std::size_t kCapacity = 64;

    std::string_view view() const noexcept { return {bytes_, size_}; }
    const char* data() const noexcept { return bytes_; }
    std::size_t size() const noexcept { return size_; }

    void append(std::string_view payload, std::size_t cap) noexcept {
      cap = std::min(cap, kCapacity);
      if (payload.size() >= cap) {
        std::memcpy(bytes_, payload.data() + (payload.size() - cap), cap);
        size_ = cap;
        return;
      }
      const std::size_t keep_old = std::min(size_, cap - payload.size());
      if (keep_old > 0 && keep_old < size_) {
        std::memmove(bytes_, bytes_ + (size_ - keep_old), keep_old);
      }
      std::memcpy(bytes_ + keep_old, payload.data(), payload.size());
      size_ = keep_old + payload.size();
    }

   private:
    char bytes_[kCapacity];
    std::size_t size_ = 0;
  };
  /// One memoized payload scan: the raw automaton hit list (pattern id +
  /// end offset — sensitivity-independent; the confidence gate applies
  /// after matching) plus the sorted-unique pattern ids derived from it
  /// (what find_set would have returned).
  struct CachedHits {
    std::vector<AhoCorasick::Match> matches;
    std::vector<std::size_t> ids;
  };

  void check_patterns(const netsim::Packet& packet, netsim::SimTime now,
                      double min_conf, std::vector<Detection>& out);
  /// Memo lookup/fill for one interned payload. `rescanned_bytes` is how
  /// much of the payload the caller scans anyway (the boundary-window
  /// prefix under reassembly) and is excluded from the bytes-saved
  /// credit on a hit.
  const CachedHits& cached_hits(
      const std::shared_ptr<const std::string>& payload,
      std::size_t rescanned_bytes);
  void check_thresholds(const netsim::Packet& packet, netsim::SimTime now,
                        double min_conf, std::vector<Detection>& out);
  bool already_fired(std::size_t rule_tag, std::uint64_t flow_id);
  Detection make_detection(const netsim::Packet& packet, netsim::SimTime now,
                           const std::string& rule, double confidence,
                           int severity) const;

  RuleSet rules_;
  SignatureEngineOptions options_;
  EvidenceSink* evidence_ = nullptr;
  std::unique_ptr<AhoCorasick> matcher_;
  /// matcher pattern id -> index into rules_.patterns.
  std::vector<std::size_t> pattern_rule_index_;

  util::FlowTable<std::uint32_t, PortFanout> fanout_by_src_;
  util::FlowTable<std::uint32_t, RateWindow> syn_by_dst_;
  util::FlowTable<std::uint64_t, RateWindow> rate_by_flow_;
  util::FlowTable<std::uint64_t, TailBuffer> stream_tail_;
  PayloadMemo<CachedHits> payload_memo_;
  CachedHits scratch_hits_;  ///< Fallback when the memo is at capacity.
  std::string scan_buf_;     ///< Reused tail||payload / window scratch.
  std::vector<std::size_t> merged_hits_;  ///< Reused union scratch.
  telemetry::Counter* boundary_rescans_;
  FiredSet fired_;  ///< Exact (rule_tag, flow) pairs (see fired_set.hpp).
};

}  // namespace idseval::ids
