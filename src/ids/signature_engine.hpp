// Signature-based ("knowledge-based", "misuse-based") detection engine
// (§2.1): multi-pattern payload matching plus sliding-window threshold
// rules. Only detects what its shipped database describes — novel attacks
// sail through, which is the engine's structural false-negative source.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ids/aho_corasick.hpp"
#include "ids/alert.hpp"
#include "ids/evidence.hpp"
#include "ids/fired_set.hpp"
#include "ids/rules.hpp"
#include "netsim/packet.hpp"
#include "util/flow_table.hpp"

namespace idseval::ids {

/// Converts the shared sensitivity knob (0..1) into the minimum rule
/// confidence that is allowed to fire. Higher sensitivity admits weaker
/// rules: more true detections, more Type I errors (Figure 4's x-axis).
double sensitivity_to_min_confidence(double sensitivity) noexcept;
/// Scales a threshold rule's trigger level: higher sensitivity lowers the
/// bar (fires earlier).
double sensitivity_threshold_scale(double sensitivity) noexcept;

struct SignatureEngineOptions {
  double sensitivity = 0.5;
  /// When false the engine only evaluates header/threshold rules — the
  /// cheap mode whose inadequacy the X3 ablation demonstrates.
  bool deep_inspection = true;
  /// Stream reassembly: retain the tail of each flow's byte stream and
  /// scan it concatenated with the next payload, so patterns split across
  /// packet boundaries (Ptacek-Newsham evasion) still match. Costs per-
  /// flow memory and extra scan bytes — engines without it are faster and
  /// blind to kEvasiveExploit.
  bool stream_reassembly = false;
  std::size_t reassembly_tail_bytes = 64;
};

class SignatureEngine {
 public:
  SignatureEngine(RuleSet rules, SignatureEngineOptions options);

  /// Evaluates one packet; appends any detections (at most one per rule
  /// per flow — real engines suppress duplicate alerts).
  void process(const netsim::Packet& packet, netsim::SimTime now,
               std::vector<Detection>& out);

  void set_sensitivity(double s) noexcept { options_.sensitivity = s; }
  double sensitivity() const noexcept { return options_.sensitivity; }
  bool deep_inspection() const noexcept { return options_.deep_inspection; }

  /// Attaches a pre-gate evidence observer (nullptr detaches). Purely
  /// observational: detection output is identical either way.
  void set_evidence_sink(EvidenceSink* sink) noexcept { evidence_ = sink; }

  const RuleSet& rules() const noexcept { return rules_; }

  /// Abstract CPU cost of scanning this packet (drives the sensor's
  /// service-time model): header rules are O(1); deep inspection pays per
  /// payload byte.
  double scan_cost_ops(const netsim::Packet& packet) const noexcept;

  /// Clears all sliding-window state (used between measurement phases).
  void reset_state();

  /// Approximate bytes of per-flow reassembly state (storage accounting).
  std::size_t reassembly_bytes() const noexcept;

 private:
  struct PortFanout {
    std::unordered_map<std::uint16_t, netsim::SimTime> last_seen;
    netsim::SimTime cooldown_until;
  };
  struct RateWindow {
    std::deque<netsim::SimTime> events;
    netsim::SimTime cooldown_until;
  };

  void check_patterns(const netsim::Packet& packet, netsim::SimTime now,
                      double min_conf, std::vector<Detection>& out);
  void check_thresholds(const netsim::Packet& packet, netsim::SimTime now,
                        double min_conf, std::vector<Detection>& out);
  bool already_fired(std::size_t rule_tag, std::uint64_t flow_id);
  Detection make_detection(const netsim::Packet& packet, netsim::SimTime now,
                           const std::string& rule, double confidence,
                           int severity) const;

  RuleSet rules_;
  SignatureEngineOptions options_;
  EvidenceSink* evidence_ = nullptr;
  std::unique_ptr<AhoCorasick> matcher_;
  /// matcher pattern id -> index into rules_.patterns.
  std::vector<std::size_t> pattern_rule_index_;

  util::FlowTable<std::uint32_t, PortFanout> fanout_by_src_;
  util::FlowTable<std::uint32_t, RateWindow> syn_by_dst_;
  util::FlowTable<std::uint64_t, RateWindow> rate_by_flow_;
  util::FlowTable<std::uint64_t, std::string> stream_tail_;
  FiredSet fired_;  ///< Exact (rule_tag, flow) pairs (see fired_set.hpp).
};

}  // namespace idseval::ids
