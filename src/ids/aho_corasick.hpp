// Aho–Corasick multi-pattern matcher: the workhorse of the signature
// engine. One pass over each payload reports every published pattern it
// contains, which is what makes deep inspection affordable at line rate —
// and why its per-byte cost, not the rule count, dominates sensor
// throughput (System Throughput / Maximal Throughput with Zero Loss).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace idseval::ids {

class AhoCorasick {
 public:
  /// Builds the automaton over the given patterns. Pattern ids are their
  /// indices in `patterns`. Empty patterns are rejected.
  explicit AhoCorasick(const std::vector<std::string>& patterns);

  struct Match {
    std::size_t pattern_id;
    std::size_t end_offset;  ///< Offset one past the match's last byte.
  };

  /// Scans `text`, returning every match (including overlaps).
  std::vector<Match> find_all(std::string_view text) const;

  /// Scan that only reports which patterns occurred (deduplicated),
  /// cheaper when positions don't matter.
  std::vector<std::size_t> find_set(std::string_view text) const;

  /// True if any pattern occurs.
  bool contains_any(std::string_view text) const;

  std::size_t pattern_count() const noexcept { return patterns_.size(); }
  /// Longest pattern, in bytes (0 when the set is empty). Any match in a
  /// text ending at offset e starts at or after e - max_pattern_length(),
  /// which is what makes boundary-limited stream scans sound: a window of
  /// the last L-1 bytes before a split plus the first L-1 after it sees
  /// every match the split could hide.
  std::size_t max_pattern_length() const noexcept {
    return max_pattern_length_;
  }
  const std::string& pattern(std::size_t id) const {
    return patterns_.at(id);
  }
  std::size_t node_count() const noexcept { return next_.size(); }

 private:
  static constexpr std::size_t kAlphabet = 256;
  using Row = std::array<std::int32_t, kAlphabet>;

  void build(const std::vector<std::string>& patterns);

  std::vector<std::string> patterns_;
  std::size_t max_pattern_length_ = 0;
  std::vector<Row> next_;                    ///< Goto function (dense).
  std::vector<std::int32_t> fail_;
  std::vector<std::vector<std::int32_t>> output_;
};

}  // namespace idseval::ids
