#include "ids/sensor.hpp"

#include <algorithm>

namespace idseval::ids {

using netsim::Packet;
using netsim::SimTime;

std::string to_string(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kHang:
      return "hang";
    case RecoveryPolicy::kColdReboot:
      return "cold-reboot";
    case RecoveryPolicy::kAppRestart:
      return "app-restart";
  }
  return "?";
}

Sensor::Sensor(netsim::Simulator& sim, SensorConfig config)
    : sim_(sim),
      config_(std::move(config)),
      tele_offered_(
          telemetry::counter_handle(telemetry::names::kSensorOffered)),
      tele_dropped_(
          telemetry::counter_handle(telemetry::names::kSensorDropped)),
      tele_detections_(
          telemetry::counter_handle(telemetry::names::kSensorDetections)),
      tele_service_(
          telemetry::latency_handle(telemetry::names::kSensorService)) {
  if (!config_.telemetry_scope.empty()) {
    const std::string& scope = config_.telemetry_scope;
    scoped_offered_ =
        telemetry::counter_handle(telemetry::scoped_name(scope, "offered"));
    scoped_dropped_ =
        telemetry::counter_handle(telemetry::scoped_name(scope, "dropped"));
    scoped_detections_ = telemetry::counter_handle(
        telemetry::scoped_name(scope, "detections"));
    scoped_service_ =
        telemetry::latency_handle(telemetry::scoped_name(scope, "service"));
  }
}

void Sensor::set_signature_engine(std::unique_ptr<SignatureEngine> engine) {
  signature_ = std::move(engine);
  if (signature_) {
    signature_->set_scan_cache(config_.scan_cache);
    signature_->reserve_scan_cache(config_.scan_cache_capacity);
  }
}

void Sensor::set_anomaly_engine(std::unique_ptr<AnomalyEngine> engine) {
  anomaly_ = std::move(engine);
  if (anomaly_) {
    anomaly_->set_scan_cache(config_.scan_cache);
    anomaly_->reserve_scan_cache(config_.scan_cache_capacity);
  }
}

void Sensor::set_sensitivity(double s) noexcept {
  if (signature_) signature_->set_sensitivity(s);
  if (anomaly_) anomaly_->set_sensitivity(s);
}

SimTime Sensor::backlog() const noexcept {
  const SimTime now = sim_.now();
  return busy_until_ > now ? busy_until_ - now : SimTime::zero();
}

void Sensor::reset_stats() noexcept {
  stats_ = SensorStats{};
  telemetry::reset(tele_offered_);
  telemetry::reset(tele_dropped_);
  telemetry::reset(tele_detections_);
  telemetry::reset(tele_service_);
  telemetry::reset(scoped_offered_);
  telemetry::reset(scoped_dropped_);
  telemetry::reset(scoped_detections_);
  telemetry::reset(scoped_service_);
}

void Sensor::ingest(const Packet& packet) {
  ++stats_.offered;
  telemetry::bump(tele_offered_);
  telemetry::bump(scoped_offered_);
  if (failed_) {
    ++stats_.dropped_failed;
    telemetry::bump(tele_dropped_);
    telemetry::bump(scoped_dropped_);
    return;
  }
  if (queued_ >= config_.queue_capacity) {
    ++stats_.dropped_queue;
    telemetry::bump(tele_dropped_);
    telemetry::bump(scoped_dropped_);
    // Persistent tail-dropping with a saturated backlog is the overload
    // condition that can kill the sensor outright ("network lethal dose").
    if (backlog() > config_.overload_tolerance) fail_now();
    return;
  }

  double ops = config_.base_ops_per_packet;
  if (signature_) ops += signature_->scan_cost_ops(packet);
  if (anomaly_) ops += anomaly_->scan_cost_ops(packet);
  if (host_ != nullptr) host_->charge_ops(ops, /*ids_work=*/true);

  enqueue_service(packet, ops);
}

void Sensor::enqueue_service(const Packet& packet, double ops) {
  const SimTime service =
      SimTime::from_sec(ops / std::max(1.0, config_.ops_per_sec));
  const SimTime start = std::max(sim_.now(), busy_until_);
  busy_until_ = start + service;
  ++queued_;
  // Ingest-to-detection-ready latency: the engines run at completion
  // time, so queue wait + service is exactly how long detection lags
  // the packet's arrival at this sensor.
  telemetry::record(tele_service_, (busy_until_ - sim_.now()).sec());
  telemetry::record(scoped_service_, (busy_until_ - sim_.now()).sec());

  sim_.schedule_at(busy_until_,
                   [this, packet = packet] { complete(packet); });
}

void Sensor::ingest_batch(const Packet* packets, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    ingest(*packets);
    return;
  }
  stats_.offered += count;
  telemetry::bump(tele_offered_, count);
  telemetry::bump(scoped_offered_, count);

  std::uint64_t dropped = 0;
  double host_ops = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Packet& packet = packets[i];
    if (failed_) {
      // A mid-batch failure (capacity trip below) drops the remainder of
      // the batch exactly as the per-packet path would.
      ++stats_.dropped_failed;
      ++dropped;
      continue;
    }
    if (queued_ >= config_.queue_capacity) {
      ++stats_.dropped_queue;
      ++dropped;
      if (backlog() > config_.overload_tolerance) fail_now();
      continue;
    }
    double ops = config_.base_ops_per_packet;
    if (signature_) ops += signature_->scan_cost_ops(packet);
    if (anomaly_) ops += anomaly_->scan_cost_ops(packet);
    host_ops += ops;
    enqueue_service(packet, ops);
  }
  if (dropped != 0) {
    telemetry::bump(tele_dropped_, dropped);
    telemetry::bump(scoped_dropped_, dropped);
  }
  // One accumulated charge instead of per-packet host bookkeeping.
  if (host_ != nullptr && host_ops != 0.0) {
    host_->charge_ops(host_ops, /*ids_work=*/true);
  }
}

void Sensor::complete(const Packet& packet) {
  --queued_;
  if (failed_) {
    // Work in flight when the sensor died is lost.
    ++stats_.dropped_failed;
    telemetry::bump(tele_dropped_);
    telemetry::bump(scoped_dropped_);
    return;
  }
  ++stats_.processed;

  std::vector<Detection> detections;
  if (signature_) signature_->process(packet, sim_.now(), detections);
  if (anomaly_) anomaly_->process(packet, sim_.now(), detections);

  stats_.detections += detections.size();
  telemetry::bump(tele_detections_, detections.size());
  telemetry::bump(scoped_detections_, detections.size());
  if (on_detections_ && !detections.empty()) {
    on_detections_(detections.data(), detections.size());
  } else if (on_detection_) {
    for (const Detection& d : detections) on_detection_(d);
  }
}

void Sensor::fail_now() {
  if (failed_) return;
  failed_ = true;
  ++stats_.failures;
  if (on_failure_ && config_.recovery == RecoveryPolicy::kAppRestart) {
    // High-score behaviour: the failure itself is reported in near real
    // time through the normal notification channel.
    on_failure_(config_.name, sim_.now(), /*failed=*/true);
  }

  if (config_.recovery == RecoveryPolicy::kHang) {
    return;  // Low score: down for the remainder of the run.
  }
  const SimTime delay = config_.recovery == RecoveryPolicy::kColdReboot
                            ? config_.reboot_delay
                            : config_.restart_delay;
  sim_.schedule_in(delay, [this] {
    failed_ = false;
    busy_until_ = sim_.now();
    // A cold reboot loses all learned/windowed state.
    if (config_.recovery == RecoveryPolicy::kColdReboot) {
      if (signature_) signature_->reset_state();
      if (anomaly_) anomaly_->reset_windows();
    }
    if (on_failure_) on_failure_(config_.name, sim_.now(), /*failed=*/false);
  });
}

}  // namespace idseval::ids
