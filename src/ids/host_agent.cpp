#include "ids/host_agent.hpp"

namespace idseval::ids {

using netsim::Packet;
using netsim::SimTime;

std::string to_string(LoggingLevel level) {
  switch (level) {
    case LoggingLevel::kNone:
      return "none";
    case LoggingLevel::kNominal:
      return "nominal";
    case LoggingLevel::kC2Audit:
      return "c2-audit";
  }
  return "?";
}

double logging_ops_per_packet(LoggingLevel level) noexcept {
  // Calibrated against §2.1: at ~1000 pps on a 1e9 ops/s host, nominal
  // logging lands near 4% and C2 auditing near 20%.
  switch (level) {
    case LoggingLevel::kNone:
      return 0.0;
    case LoggingLevel::kNominal:
      return 40'000.0;
    case LoggingLevel::kC2Audit:
      return 200'000.0;
  }
  return 0.0;
}

HostAgent::HostAgent(netsim::Simulator& sim, netsim::Network& net,
                     netsim::Host& host, HostAgentConfig config,
                     SensorConfig sensor_template)
    : sim_(sim), net_(net), host_(host), config_(std::move(config)) {
  SensorConfig sc = std::move(sensor_template);
  sc.name = config_.name;
  // The agent analyzes with a bounded share of the host CPU.
  sc.ops_per_sec = host.cpu_ops_per_sec() * config_.cpu_share;
  sensor_ = std::make_unique<Sensor>(sim_, sc);
  sensor_->bind_host(&host_);
}

void HostAgent::set_signature_engine(
    std::unique_ptr<SignatureEngine> engine) {
  sensor_->set_signature_engine(std::move(engine));
}

void HostAgent::set_anomaly_engine(std::unique_ptr<AnomalyEngine> engine) {
  sensor_->set_anomaly_engine(std::move(engine));
}

void HostAgent::set_on_detection(DetectionFn fn) {
  on_detection_ = std::move(fn);
  sensor_->set_on_detection([this](const Detection& d) {
    // The finding leaves the host now but reaches the analyzer tier only
    // after the report transit delay; the hand-off always lands on the
    // hub clock (where analyzers, monitor, and the management network
    // live), via the engine mailboxes when the agent's shard is remote.
    // Init-capture: plain [this, d] would give the closure a `const
    // Detection` member (d is a const reference), demoting its move
    // constructor to a throwing string copy and spilling the callback
    // off the inline buffer.
    const SimTime arrive = sim_.now() + config_.report_latency;
    if (engine_ != nullptr && shard_ != 0) {
      engine_->post(shard_, 0, arrive, lane_,
                    [this, d = Detection(d)] { deliver_report(d); });
    } else {
      net_.sim().schedule_at_lane(
          arrive, lane_, [this, d = Detection(d)] { deliver_report(d); });
    }
  });
}

void HostAgent::deliver_report(const Detection& d) {
  if (config_.report_over_network &&
      host_.address() != config_.report_sink) {
    // A real report packet: multi-host IDSs consume network bandwidth
    // by transmitting logging information (§2.1). Ids and timestamps
    // come from the hub simulator, which is the one this code runs on.
    netsim::FiveTuple tuple;
    tuple.src_ip = host_.address();
    tuple.dst_ip = config_.report_sink;
    tuple.src_port = kMgmtPort;
    tuple.dst_port = kMgmtPort;
    tuple.proto = netsim::Protocol::kTcp;
    netsim::Simulator& hub = net_.sim();
    Packet report = netsim::make_packet(
        hub.next_packet_id(), /*flow_id=*/0, hub.now(), tuple,
        std::string(config_.report_bytes, 'r'));
    net_.send(report);
    ++reports_sent_;
  }
  if (on_detection_) on_detection_(d);
}

void HostAgent::attach() {
  if (attached_) return;
  attached_ = true;
  host_.add_receiver_batch([this](const Packet* packets, std::size_t n) {
    observe_batch(packets, n);
  });
}

void HostAgent::observe(const Packet& packet) {
  if (packet.tuple.dst_port == kMgmtPort) return;  // never self-analyze
  // Logging happens for every delivered packet regardless of analysis.
  const double log_ops = logging_ops_per_packet(config_.logging);
  if (log_ops > 0.0) host_.charge_ops(log_ops, /*ids_work=*/true);
  sensor_->ingest(packet);
}

void HostAgent::observe_batch(const Packet* packets, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    observe(*packets);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (packets[i].tuple.dst_port == kMgmtPort) {
      // Mgmt traffic splits the batch; take the exact per-packet path.
      for (std::size_t j = 0; j < count; ++j) observe(packets[j]);
      return;
    }
  }
  const double log_ops = logging_ops_per_packet(config_.logging);
  if (log_ops > 0.0) {
    host_.charge_ops(log_ops * static_cast<double>(count),
                     /*ids_work=*/true);
  }
  sensor_->ingest_batch(packets, count);
}

}  // namespace idseval::ids
