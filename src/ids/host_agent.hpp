// Host-based sensing (§2.1): an autonomous agent on a production host
// that watches traffic delivered to that host, charges its analysis work
// against the host's own CPU, and reports findings to a (possibly remote)
// analyzer. Event-logging support costs the monitored host 3-5% at a
// nominal level and up to ~20% for DoD C2 (Controlled Access Protection)
// compliant auditing [3,10] — the LoggingLevel knob reproduces that
// spectrum, and the X1 bench measures it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "ids/alert.hpp"
#include "ids/sensor.hpp"
#include "netsim/host.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"

namespace idseval::ids {

enum class LoggingLevel : std::uint8_t {
  kNone,     ///< No audit trail beyond live analysis.
  kNominal,  ///< Ordinary event logging (~3-5% of host CPU).
  kC2Audit,  ///< C2-compliant audit (~20% of host CPU).
};

std::string to_string(LoggingLevel level);

struct HostAgentConfig {
  std::string name = "agent";
  LoggingLevel logging = LoggingLevel::kNominal;
  /// Fraction of the host CPU the agent may consume for analysis before
  /// it starts sampling (skipping packets) to protect production work.
  double cpu_share = 0.25;
  /// When set, each detection also emits a real report packet to this
  /// address so multi-host IDS bandwidth consumption (§2.1) shows up on
  /// the simulated network. Port ids::kMgmtPort marks these packets.
  bool report_over_network = false;
  netsim::Ipv4 report_sink;
  std::uint32_t report_bytes = 220;
  /// Transit delay between a detection on the monitored host and its
  /// arrival at the analyzer tier — agents report over the management
  /// network, not by function call, so findings land a beat later than
  /// the packet that triggered them. In sharded runs this is also the
  /// declared agent->hub channel delay (the conservative lookahead needs
  /// it strictly positive), and the same delayed dispatch runs at every
  /// shard count so results are shard-count invariant.
  netsim::SimTime report_latency = netsim::SimTime::from_us(150);
};

/// Port used by IDS components talking to each other; pipeline taps
/// filter it out so the IDS never analyzes its own reports.
inline constexpr std::uint16_t kMgmtPort = 9909;

/// Abstract logging cost per observed packet.
double logging_ops_per_packet(LoggingLevel level) noexcept;

class HostAgent {
 public:
  using DetectionFn = std::function<void(const Detection&)>;

  HostAgent(netsim::Simulator& sim, netsim::Network& net,
            netsim::Host& host, HostAgentConfig config,
            SensorConfig sensor_template);

  /// Installs engines on the inner sensor.
  void set_signature_engine(std::unique_ptr<SignatureEngine> engine);
  void set_anomaly_engine(std::unique_ptr<AnomalyEngine> engine);
  AnomalyEngine* anomaly_engine() noexcept {
    return sensor_->anomaly_engine();
  }

  void set_on_detection(DetectionFn fn);

  /// Routes this agent's delayed reports: detections arrive at the
  /// analyzer tier (which always lives on the hub clock) after
  /// config.report_latency, on event lane `lane`. With an engine and a
  /// non-zero shard the hand-off crosses shards through the engine's
  /// mailboxes; otherwise it is a lane'd schedule on the hub simulator.
  /// Either way the (when, lane, per-agent order) key is identical, so
  /// the merged order matches the serial one.
  void set_report_channel(netsim::ShardedSimulator* engine,
                          std::size_t shard, std::uint32_t lane) noexcept {
    engine_ = engine;
    shard_ = shard;
    lane_ = lane;
  }
  std::size_t shard() const noexcept { return shard_; }

  void set_sensitivity(double s) noexcept { sensor_->set_sensitivity(s); }
  void set_evidence_sink(EvidenceSink* sink) noexcept {
    sensor_->set_evidence_sink(sink);
  }

  /// Begins observing the host's delivered packets.
  void attach();

  const Sensor& sensor() const noexcept { return *sensor_; }
  Sensor& sensor() noexcept { return *sensor_; }
  const HostAgentConfig& config() const noexcept { return config_; }
  netsim::Host& host() noexcept { return host_; }
  std::uint64_t reports_sent() const noexcept { return reports_sent_; }

 private:
  /// Runs on the hub clock at detection time + report_latency: emits the
  /// optional report packet and forwards to the analyzer callback.
  void deliver_report(const Detection& d);
  void observe(const netsim::Packet& packet);
  /// Same-tick delivery batch off the host downlink: logging ops are
  /// charged once for the whole batch and the inner sensor gets one
  /// batched ingest. Falls back per packet around mgmt-port traffic.
  void observe_batch(const netsim::Packet* packets, std::size_t count);

  netsim::Simulator& sim_;  ///< The monitored host's shard clock.
  netsim::Network& net_;
  netsim::Host& host_;
  HostAgentConfig config_;
  std::unique_ptr<Sensor> sensor_;
  DetectionFn on_detection_;
  netsim::ShardedSimulator* engine_ = nullptr;
  std::size_t shard_ = 0;
  std::uint32_t lane_ = 0;
  /// Written only by deliver_report (hub-side), so a remote agent's
  /// sensing thread never touches it.
  std::uint64_t reports_sent_ = 0;
  bool attached_ = false;
};

}  // namespace idseval::ids
