// Sensing subprocess (§2.2, subprocess 2): separates suspicious from
// normal traffic. The sensor is where the pipeline's real-time character
// lives — it has finite service capacity, a bounded input queue (tail
// drop), and an explicit failure/recovery model. Those three mechanisms
// generate the paper's load-dependent Table 3 metrics: Maximal Throughput
// with Zero Loss (queue never drops), Network Lethal Dose (sustained
// overload trips failure), and Error Reporting and Recovery (what happens
// after it trips).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ids/alert.hpp"
#include "ids/anomaly_engine.hpp"
#include "ids/signature_engine.hpp"
#include "netsim/host.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"

namespace idseval::ids {

/// Behaviour after a fatal overload — the anchors of the paper's "Error
/// Reporting and Recovery" metric (low: hang indefinitely; average: cold
/// reboot of the machine; high: restart just the service, report via the
/// normal alert channel).
enum class RecoveryPolicy : std::uint8_t {
  kHang,        ///< Low score: failure is silent and permanent.
  kColdReboot,  ///< Average: back after a long reboot, state lost.
  kAppRestart,  ///< High: quick service restart, failure is reported.
};

std::string to_string(RecoveryPolicy p);

struct SensorConfig {
  std::string name = "sensor";
  /// Fixed per-packet service cost in abstract ops (header handling,
  /// dispatch). Engine scan costs are added on top.
  double base_ops_per_packet = 4000.0;
  /// Ops/second the sensor's processor executes; service time =
  /// total ops / ops_per_sec.
  double ops_per_sec = 4e8;
  std::size_t queue_capacity = 2048;
  /// Backlog (queue wait) that counts as fatal overload.
  netsim::SimTime overload_tolerance = netsim::SimTime::from_ms(500);
  RecoveryPolicy recovery = RecoveryPolicy::kAppRestart;
  netsim::SimTime reboot_delay = netsim::SimTime::from_sec(45);
  netsim::SimTime restart_delay = netsim::SimTime::from_sec(2);
  /// Interned-payload scan cache (ids/scan_cache.hpp) force-off switch:
  /// applied to every engine attached to this sensor. Detection output
  /// and the golden determinism hash are byte-identical either way —
  /// false replays the exact legacy full-rescan path (--no-scan-cache).
  bool scan_cache = true;
  /// Raises each attached engine's scan-memo capacity ceiling above the
  /// PayloadMemo default (0 = leave the default). The harness sets it to
  /// default + PayloadPool::growth_headroom() when adaptive variant
  /// growth is enabled, so grown variants stay cached.
  std::size_t scan_cache_capacity = 0;
  /// When set (e.g. "sensor.0"), the sensor additionally bumps
  /// per-instance stage counters/latencies ("sensor.0.offered", ...)
  /// beside the aggregate sensor.* names, so overload profiles can
  /// localize which sensor saturates first.
  std::string telemetry_scope;
};

struct SensorStats {
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped_queue = 0;   ///< Tail drops while healthy.
  std::uint64_t dropped_failed = 0;  ///< Lost while the sensor was down.
  std::uint64_t detections = 0;
  std::uint64_t failures = 0;        ///< Overload events tripped.

  double loss_ratio() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped_queue +
                                              dropped_failed) /
                              static_cast<double>(offered);
  }
};

class Sensor {
 public:
  using DetectionFn = std::function<void(const Detection&)>;
  /// Batch detection sink: every detection one packet produced, in engine
  /// order. Preferred over DetectionFn when both are set.
  using DetectionBatchFn =
      std::function<void(const Detection*, std::size_t)>;
  /// Invoked when the sensor fails / recovers (Error Reporting metric:
  /// only kAppRestart reports through this channel in real time).
  using FailureFn = std::function<void(const std::string& sensor,
                                       netsim::SimTime when, bool failed)>;

  Sensor(netsim::Simulator& sim, SensorConfig config);

  /// Optional engines; a hybrid sensor owns both (§2.1).
  void set_signature_engine(std::unique_ptr<SignatureEngine> engine);
  void set_anomaly_engine(std::unique_ptr<AnomalyEngine> engine);
  SignatureEngine* signature_engine() noexcept { return signature_.get(); }
  AnomalyEngine* anomaly_engine() noexcept { return anomaly_.get(); }

  /// Runs the sensor's cycles on a production host's CPU instead of a
  /// dedicated box (host-based deployment, §2.1's resource-overhead
  /// discussion). Ops are charged to the host as IDS work.
  void bind_host(netsim::Host* host) noexcept { host_ = host; }

  void set_on_detection(DetectionFn fn) { on_detection_ = std::move(fn); }
  void set_on_detections(DetectionBatchFn fn) {
    on_detections_ = std::move(fn);
  }
  void set_on_failure(FailureFn fn) { on_failure_ = std::move(fn); }

  /// Ingests one packet at simulation time `now`.
  void ingest(const netsim::Packet& packet);
  /// Ingests a same-tick batch in order; stats/telemetry bumps and host
  /// op charges are hoisted to once per batch. A single-packet batch
  /// takes the exact legacy ingest() path.
  void ingest_batch(const netsim::Packet* packets, std::size_t count);

  void set_sensitivity(double s) noexcept;

  /// Forwards a pre-gate evidence observer to both engines (nullptr
  /// detaches). Observational only — no effect on detection output.
  void set_evidence_sink(EvidenceSink* sink) noexcept {
    if (signature_) signature_->set_evidence_sink(sink);
    if (anomaly_) anomaly_->set_evidence_sink(sink);
  }

  const SensorConfig& config() const noexcept { return config_; }
  const SensorStats& stats() const noexcept { return stats_; }
  bool failed() const noexcept { return failed_; }
  std::size_t queue_depth() const noexcept { return queued_; }
  /// Current backlog: how far busy_until_ lies beyond now.
  netsim::SimTime backlog() const noexcept;
  void reset_stats() noexcept;

 private:
  void enqueue_service(const netsim::Packet& packet, double ops);
  void complete(const netsim::Packet& packet);
  void fail_now();

  netsim::Simulator& sim_;
  SensorConfig config_;
  std::unique_ptr<SignatureEngine> signature_;
  std::unique_ptr<AnomalyEngine> anomaly_;
  netsim::Host* host_ = nullptr;

  DetectionFn on_detection_;
  DetectionBatchFn on_detections_;
  FailureFn on_failure_;

  SensorStats stats_;
  std::size_t queued_ = 0;
  netsim::SimTime busy_until_;
  bool failed_ = false;
  telemetry::Counter* tele_offered_;
  telemetry::Counter* tele_dropped_;
  telemetry::Counter* tele_detections_;
  telemetry::LatencyStat* tele_service_;
  // Per-instance handles (null unless config_.telemetry_scope is set).
  telemetry::Counter* scoped_offered_ = nullptr;
  telemetry::Counter* scoped_dropped_ = nullptr;
  telemetry::Counter* scoped_detections_ = nullptr;
  telemetry::LatencyStat* scoped_service_ = nullptr;
};

}  // namespace idseval::ids
