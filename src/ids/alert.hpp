// Detection and alert records flowing through the IDS pipeline:
// Sensor -> Detection -> Analyzer -> ThreatReport -> Monitor -> Alert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/address.hpp"
#include "netsim/sim_time.hpp"

namespace idseval::ids {

enum class DetectionMethod : std::uint8_t { kSignature, kAnomaly };

std::string to_string(DetectionMethod m);

/// Raw sensor finding: suspicious traffic separated from normal (§2.2
/// subprocess 2).
struct Detection {
  std::uint64_t flow_id = 0;
  netsim::FiveTuple tuple;
  netsim::SimTime when;          ///< Sensor processing completion time.
  std::string rule;              ///< Rule name or anomaly feature.
  double confidence = 1.0;       ///< 0..1.
  int severity = 1;              ///< 1..5 (rule's base severity).
  DetectionMethod method = DetectionMethod::kSignature;
};

/// Analyzer verdict on one or more correlated detections (subprocess 3).
struct ThreatReport {
  Detection primary;
  int correlated_count = 1;      ///< Detections merged into this threat.
  int severity = 1;              ///< Possibly escalated by correlation.
  netsim::SimTime when;          ///< Analyzer completion time.
};

/// Operator-visible alert (subprocess 4).
struct Alert {
  std::uint64_t id = 0;
  std::uint64_t flow_id = 0;
  netsim::FiveTuple tuple;
  netsim::SimTime detected;      ///< Sensor time.
  netsim::SimTime raised;        ///< Monitor notification time.
  std::string rule;
  double confidence = 1.0;
  int severity = 1;
  DetectionMethod method = DetectionMethod::kSignature;
  int correlated_count = 1;
};

}  // namespace idseval::ids
