// Signature rule definitions. Two rule families cover what 2002-era
// commercial engines shipped: payload pattern rules (content matching via
// Aho–Corasick) and threshold rules (rate/fanout counting over sliding
// windows — scans, floods, repeated failures).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/address.hpp"
#include "netsim/sim_time.hpp"

namespace idseval::ids {

/// Content rule: fires when `pattern` occurs in the payload of a packet
/// matching the port/proto constraints.
struct PatternRule {
  std::string name;
  std::string pattern;
  std::optional<std::uint16_t> dst_port;  ///< Any port when unset.
  std::optional<netsim::Protocol> proto;
  int severity = 3;
  /// How diagnostic a match is. Weak patterns (low confidence) also occur
  /// in legitimate admin traffic — they are the signature engine's false
  /// positive source, and the sensitivity knob decides whether they fire.
  double confidence = 1.0;
};

enum class ThresholdFeature : std::uint8_t {
  kDistinctDstPorts,  ///< Per source: fanout across ports (scan).
  kSynRate,           ///< Per destination: bare-SYN arrivals (flood).
  kFlowPacketRate,    ///< Per flow: packets in window.
};

/// Counting rule: fires when the feature's count within `window` crosses
/// `threshold` (scaled by the engine's sensitivity).
struct ThresholdRule {
  std::string name;
  ThresholdFeature feature = ThresholdFeature::kDistinctDstPorts;
  double threshold = 50.0;
  netsim::SimTime window = netsim::SimTime::from_sec(5);
  std::optional<std::uint16_t> dst_port;  ///< Restrict counting to a port.
  int severity = 2;
  double confidence = 0.9;
};

/// A product's shipped rule database.
struct RuleSet {
  std::vector<PatternRule> patterns;
  std::vector<ThresholdRule> thresholds;

  std::size_t size() const noexcept {
    return patterns.size() + thresholds.size();
  }
};

/// The rule set a 2002-era signature vendor would ship: the published
/// patterns from attack::patterns plus scan/flood/brute-force threshold
/// rules and a handful of weak (FP-prone) content rules.
RuleSet standard_rule_set();

}  // namespace idseval::ids
