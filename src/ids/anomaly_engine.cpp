#include "ids/anomaly_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace idseval::ids {

using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

double payload_entropy(std::string_view payload) noexcept {
  if (payload.empty()) return 0.0;
  std::array<std::uint32_t, 256> counts{};
  for (unsigned char c : payload) ++counts[c];
  const double n = static_cast<double>(payload.size());
  double h = 0.0;
  for (const std::uint32_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double sensitivity_to_zscore(double sensitivity) noexcept {
  const double s = std::clamp(sensitivity, 0.0, 1.0);
  return 8.0 - 6.5 * s;
}

AnomalyEngine::AnomalyEngine(AnomalyEngineOptions options)
    : options_(options),
      fanout_baseline_(options.ewma_alpha),
      syn_rate_baseline_(options.ewma_alpha) {}

bool AnomalyEngine::is_internal(Ipv4 addr) const noexcept {
  return addr.in_subnet(options_.internal_net, options_.internal_prefix);
}

double AnomalyEngine::cached_entropy(const Packet& packet) {
  if (!options_.scan_cache || packet.payload == nullptr) {
    return payload_entropy(packet.payload_view());
  }
  if (const double* cached = entropy_memo_.find(packet.payload)) {
    entropy_memo_.credit_saved(packet.payload->size());
    return *cached;
  }
  const double entropy = payload_entropy(*packet.payload);
  entropy_memo_.store(packet.payload, entropy);
  return entropy;
}

double AnomalyEngine::scan_cost_ops(const Packet& packet) const noexcept {
  return 800.0 + 15.0 * static_cast<double>(packet.payload_bytes());
}

std::size_t AnomalyEngine::model_bytes() const noexcept {
  // Rough but monotone accounting of learned state.
  return by_port_.size() * 96 + peer_pairs_.size() * 16 +
         service_triples_.size() * 16 + fanout_by_src_.size() * 64;
}

Detection AnomalyEngine::make_detection(const Packet& packet, SimTime now,
                                        const std::string& feature,
                                        double zscore, int severity) const {
  Detection d;
  d.flow_id = packet.flow_id;
  d.tuple = packet.tuple;
  d.when = now;
  d.rule = feature;
  // Confidence grows with how far past the trigger the observation lies.
  const double excess =
      zscore - sensitivity_to_zscore(options_.sensitivity);
  d.confidence = std::clamp(0.45 + 0.08 * excess, 0.2, 0.99);
  d.severity = severity;
  d.method = DetectionMethod::kAnomaly;
  return d;
}

bool AnomalyEngine::fire_once(std::uint64_t feature_tag,
                              std::uint64_t flow_id) {
  return fired_.insert(FireKey{flow_id, feature_tag});
}

void AnomalyEngine::process(const Packet& packet, SimTime now,
                            std::vector<Detection>& out) {
  const std::uint32_t port_key =
      (static_cast<std::uint32_t>(packet.tuple.dst_port) << 8) |
      static_cast<std::uint32_t>(packet.tuple.proto);
  const double z_trigger = sensitivity_to_zscore(options_.sensitivity);

  // --- Per-service payload shape (length + entropy) ----------------------
  if (packet.payload_bytes() > 0) {
    PortModel& model =
        *by_port_.try_emplace(port_key, options_.ewma_alpha).first;
    const double len = static_cast<double>(packet.payload_bytes());
    const double ent = cached_entropy(packet);
    // Stddev floors keep near-constant baselines from amplifying noise:
    // 5% of the typical length, 0.15 bits of entropy.
    const double len_floor = 0.05 * std::max(1.0, model.length.mean());
    const double ent_floor = 0.15;

    double zl = 0.0;
    double ze = 0.0;
    if (model.samples >= 30) {
      zl = std::abs(model.length.zscore(len, len_floor));
      ze = std::abs(model.entropy.zscore(ent, ent_floor));
      if (mode_ == Mode::kDetecting) {
        if (evidence_) {
          // Pre-gate evidence: z-scores fire strictly above the trigger,
          // so equality at the critical sensitivity does not fire.
          evidence_->observe(packet.flow_id, EvidenceChannel::kAnomaly, zl,
                             sensitivity_for_zscore(zl),
                             /*strict_trigger=*/true);
          evidence_->observe(packet.flow_id, EvidenceChannel::kAnomaly, ze,
                             sensitivity_for_zscore(ze),
                             /*strict_trigger=*/true);
        }
        if (zl > z_trigger && fire_once(1, packet.flow_id)) {
          out.push_back(make_detection(packet, now,
                                       "anomalous payload length", zl, 3));
        }
        if (ze > z_trigger && fire_once(2, packet.flow_id)) {
          out.push_back(make_detection(packet, now,
                                       "anomalous payload entropy", ze, 4));
        }
      }
    }
    // Winsorized learning: observations already far outside the model do
    // not update it, or a patient attacker (or a single burst) would drag
    // the baseline toward the attack and mask it — the self-poisoning
    // failure mode of naive EWMA detectors.
    const bool outlier =
        mode_ == Mode::kDetecting && std::max(zl, ze) > 0.5 * z_trigger;
    if (!outlier) {
      model.length.add(len);
      model.entropy.add(ent);
      ++model.samples;
    }
  }

  // --- Source fanout (distinct destination ports in a sliding window) ----
  {
    SrcWindow& w =
        *fanout_by_src_.try_emplace(packet.tuple.src_ip.value()).first;
    w.ports[packet.tuple.dst_port] = now;
    const SimTime window = SimTime::from_sec(options_.fanout_window_sec);
    w.ports.erase_if(
        [&](const auto& kv) { return now - kv.second > window; });
    const double fanout = static_cast<double>(w.ports.size());
    // Fanout counts are small integers; a stddev floor of 1 keeps one
    // extra benign port from reading as a multi-sigma event.
    const double z = fanout_baseline_.zscore(fanout, /*min_stddev=*/1.0);
    if (mode_ == Mode::kDetecting && fanout_baseline_.seeded() &&
        now >= w.cooldown_until) {
      if (evidence_) {
        evidence_->observe(packet.flow_id, EvidenceChannel::kAnomaly, z,
                           sensitivity_for_zscore(z),
                           /*strict_trigger=*/true);
      }
      if (z > z_trigger && fire_once(3, packet.flow_id)) {
        w.cooldown_until = now + window;
        out.push_back(
            make_detection(packet, now, "source fanout anomaly", z, 3));
      }
    }
    // Winsorized: scanning sources must not teach the baseline that high
    // fanout is normal.
    if (mode_ == Mode::kLearning || z <= 0.5 * z_trigger) {
      fanout_baseline_.add(fanout);
    }
  }

  // --- Bare-SYN arrival rate per destination (flood behaviour) -----------
  if (packet.flags.syn && !packet.flags.ack) {
    SynWindow& w =
        *syn_by_dst_.try_emplace(packet.tuple.dst_ip.value()).first;
    const SimTime window = SimTime::from_sec(1.0);
    w.events.push_back(now);
    while (!w.events.empty() && now - w.events.front() > window) {
      w.events.pop_front();
    }
    const double rate = static_cast<double>(w.events.size());
    const double z = syn_rate_baseline_.zscore(rate, /*min_stddev=*/2.0);
    if (mode_ == Mode::kDetecting && syn_rate_baseline_.seeded() &&
        now >= w.cooldown_until) {
      if (evidence_) {
        evidence_->observe(packet.flow_id, EvidenceChannel::kAnomaly, z,
                           sensitivity_for_zscore(z),
                           /*strict_trigger=*/true);
      }
      if (z > z_trigger && fire_once(5, packet.flow_id)) {
        w.cooldown_until = now + window;
        out.push_back(
            make_detection(packet, now, "SYN rate anomaly", z, 3));
      }
    }
    if (mode_ == Mode::kLearning || z <= 0.5 * z_trigger) {
      syn_rate_baseline_.add(rate);
    }
  }

  // --- Peer/service novelty for internal sources -------------------------
  if (options_.learn_peer_graph && is_internal(packet.tuple.src_ip)) {
    // Exact packed keys: (src, dst) for the peer graph, (src, dst,
    // dst_port) for services. The old triple XOR-folded dst_port<<16
    // into the low half of dst inside one 64-bit word, so distinct
    // (dst, port) services aliased and novel-service detections were
    // silently swallowed (regression: key_aliasing_test.cpp).
    const netsim::FlowTuple pair{packet.tuple.src_ip.value(),
                                 packet.tuple.dst_ip.value(), 0, 0, 0};
    netsim::FlowTuple triple = pair;
    triple.dst_port = packet.tuple.dst_port;
    if (mode_ == Mode::kLearning) {
      peer_pairs_.insert(pair);
      service_triples_.insert(triple);
    } else {
      const bool new_pair = !peer_pairs_.contains(pair);
      const bool new_service = !service_triples_.contains(triple);
      // Novelty is binary, so express it as a pseudo-z proportional to how
      // surprising it is: a brand-new peer is stronger evidence than a new
      // service on a known peer. High sensitivity fires on both, medium
      // only on new pairs, low on neither (z_trigger above ~5 never fires).
      const double pseudo_z = new_pair ? 5.0 : (new_service ? 3.0 : 0.0);
      if (evidence_ && pseudo_z > 0.0) {
        // Novelty fires at z >= trigger, so the critical sensitivity is
        // inclusive (non-strict).
        evidence_->observe(packet.flow_id, EvidenceChannel::kNovelty,
                           pseudo_z, sensitivity_for_zscore(pseudo_z),
                           /*strict_trigger=*/false);
      }
      if (pseudo_z > 0.0 && pseudo_z >= z_trigger &&
          fire_once(4, packet.flow_id)) {
        out.push_back(make_detection(
            packet, now,
            new_pair ? "novel internal peer" : "novel internal service",
            pseudo_z, 5));
      }
      // Adopt after first sighting to avoid alert storms from one flow.
      peer_pairs_.insert(pair);
      service_triples_.insert(triple);
    }
  }
}

void AnomalyEngine::reset_windows() {
  fanout_by_src_.clear();
  fired_.clear();
}

}  // namespace idseval::ids
