#include "ids/pipeline.hpp"

#include <optional>
#include <stdexcept>

#include "util/strfmt.hpp"

namespace idseval::ids {

using netsim::Packet;

bool TapFilter::selects(const netsim::Packet& packet) const {
  for (const std::uint16_t port : exclude_dst_ports) {
    if (packet.tuple.dst_port == port) return false;
  }
  if (!include_protocols.empty()) {
    bool included = false;
    for (const netsim::Protocol proto : include_protocols) {
      if (packet.tuple.proto == proto) included = true;
    }
    if (!included) return false;
  }
  if (exclude_internal_to_internal &&
      packet.tuple.src_ip.in_subnet(internal_net, internal_prefix) &&
      packet.tuple.dst_ip.in_subnet(internal_net, internal_prefix)) {
    return false;
  }
  return true;
}

std::vector<std::string> Pipeline::validate(const PipelineConfig& config) {
  std::vector<std::string> violations;
  const bool has_network_sensing = config.sensor_count > 0;
  const bool has_host_sensing = config.use_host_agents;

  // Subprocesses 2-4 are essential (§2.2); 1 and 5 are optional (1c).
  if (!has_network_sensing && !has_host_sensing) {
    violations.push_back("sensing is essential: need network sensors or "
                         "host agents (subprocess 2)");
  }
  if (config.analyzer_count == 0) {
    violations.push_back("analysis is essential: analyzer_count must be "
                         ">= 1 (subprocess 3)");
  }
  // LB 1c:M — a load balancer requires sensors to feed.
  if (config.use_load_balancer && !has_network_sensing) {
    violations.push_back(
        "load balancer with no network sensors violates 1c:M");
  }
  // Analyzers M:1 monitor; monitor is implicit and single, so any
  // analyzer count >= 1 satisfies M:1. But analyzers outnumbering
  // sensing sources can never receive work:
  const std::size_t sources =
      config.sensor_count + (config.use_host_agents ? 1 : 0);
  if (config.analyzer_count > sources && sources > 0) {
    violations.push_back(util::cat(
        "analyzer_count (", config.analyzer_count,
        ") exceeds sensing sources (", sources,
        "): M:M wiring would starve analyzers"));
  }
  if (config.sensitivity < 0.0 || config.sensitivity > 1.0) {
    violations.push_back("sensitivity must lie in [0, 1]");
  }
  return violations;
}

Pipeline::Pipeline(netsim::Simulator& sim, netsim::Network& net,
                   PipelineConfig config)
    : sim_(sim),
      net_(net),
      config_(std::move(config)),
      tele_tapped_(
          telemetry::counter_handle(telemetry::names::kPipelineTapped)),
      tele_filtered_(
          telemetry::counter_handle(telemetry::names::kPipelineFiltered)) {
  const auto violations = validate(config_);
  if (!violations.empty()) {
    std::string msg = "Pipeline config invalid:";
    for (const auto& v : violations) msg += "\n  - " + v;
    throw std::invalid_argument(msg);
  }

  // Monitor + optional console (1:1c).
  monitor_ = std::make_unique<Monitor>(sim_, config_.monitor);
  monitor_evicts_ = config_.monitor.evict_on_flow_end;
  if (config_.use_console) {
    console_ = std::make_unique<ManagementConsole>(sim_, config_.console);
    console_->attach_switch(&net_.lan_switch());
    monitor_->set_on_alert(
        [this](const Alert& alert) { console_->on_alert(alert); });
  }

  // Analyzers (M:1 toward the monitor).
  for (std::size_t i = 0; i < config_.analyzer_count; ++i) {
    AnalyzerConfig ac = config_.analyzer;
    ac.name = util::cat(config_.analyzer.name, i);
    auto analyzer = std::make_unique<Analyzer>(sim_, ac);
    analyzer->set_on_report(
        [this](const ThreatReport& r) { monitor_->submit(r); });
    analyzers_.push_back(std::move(analyzer));
  }

  // Network sensors.
  for (std::size_t i = 0; i < config_.sensor_count; ++i) {
    SensorConfig sc = config_.sensor;
    sc.name = util::cat(config_.sensor.name, i);
    sc.telemetry_scope = util::cat("sensor.", i);
    auto sensor = std::make_unique<Sensor>(sim_, sc);
    if (config_.signature_engine) {
      sensor->set_signature_engine(std::make_unique<SignatureEngine>(
          config_.rules,
          SignatureEngineOptions{config_.sensitivity, true,
                                 config_.stream_reassembly}));
    }
    if (config_.anomaly_engine) {
      AnomalyEngineOptions opts = config_.anomaly;
      opts.sensitivity = config_.sensitivity;
      sensor->set_anomaly_engine(std::make_unique<AnomalyEngine>(opts));
    }
    const std::size_t idx = i;
    sensor->set_on_detections([this, idx](const Detection* d,
                                          std::size_t n) {
      analyzer_for(idx).submit_batch(d, n);
    });
    sensor->set_on_failure([this](const std::string& name,
                                  netsim::SimTime when, bool failed) {
      // High-recovery sensors report their own failure as a threat so the
      // operator learns the network is unprotected (Table 3 anchors).
      if (!failed) return;
      ThreatReport report;
      report.primary.flow_id = 0;
      report.primary.when = when;
      report.primary.rule = util::cat("IDS sensor failure: ", name);
      report.primary.confidence = 1.0;
      report.primary.severity = 5;
      report.primary.method = DetectionMethod::kSignature;
      report.severity = 5;
      report.when = when;
      monitor_->submit(report);
    });
    sensors_.push_back(std::move(sensor));
  }

  // Optional load balancer (1c:M).
  if (config_.use_load_balancer && !sensors_.empty()) {
    lb_ = std::make_unique<LoadBalancer>(sim_, config_.lb,
                                         sensors_.size());
    std::vector<Sensor*> raw;
    raw.reserve(sensors_.size());
    for (auto& s : sensors_) raw.push_back(s.get());
    lb_->set_sensors(std::move(raw));
    lb_->set_forward([this](std::size_t idx, const Packet& p) {
      dispatch_to_sensor(idx, p);
    });
  }
}

Analyzer& Pipeline::analyzer_for(std::size_t source_index) {
  return *analyzers_[source_index % analyzers_.size()];
}

void Pipeline::dispatch_to_sensor(std::size_t index, const Packet& packet) {
  sensors_[index]->ingest(packet);
}

std::size_t Pipeline::sensor_index_for(const Packet& packet) const {
  // No LB: static placement by destination (sensors in separate subnets).
  return sensors_.size() == 1
             ? 0
             : packet.tuple.dst_ip.value() % sensors_.size();
}

void Pipeline::feed(const Packet& packet) {
  if (packet.tuple.dst_port == kMgmtPort) return;  // own reports
  if (!config_.tap_filter.empty() &&
      !config_.tap_filter.selects(packet)) {
    ++packets_filtered_;
    telemetry::bump(tele_filtered_);
    return;
  }
  ++packets_tapped_;
  telemetry::bump(tele_tapped_);
  if (monitor_evicts_ && (packet.flags.fin || packet.flags.rst)) {
    monitor_->flow_ended(packet.flow_id);
  }
  if (sensors_.empty()) return;
  if (lb_) {
    lb_->ingest(packet);
    return;
  }
  dispatch_to_sensor(sensor_index_for(packet), packet);
}

void Pipeline::feed_batch(const Packet* packets, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    feed(*packets);
    return;
  }
  const bool filtering = !config_.tap_filter.empty();
  std::uint64_t tapped = 0;
  std::uint64_t filtered = 0;
  std::size_t i = 0;
  while (i < count) {
    const Packet& p = packets[i];
    if (p.tuple.dst_port == kMgmtPort) {  // own reports
      ++i;
      continue;
    }
    if (filtering && !config_.tap_filter.selects(p)) {
      ++filtered;
      ++i;
      continue;
    }
    if (sensors_.empty()) {
      ++tapped;
      if (monitor_evicts_ && (p.flags.fin || p.flags.rst)) {
        monitor_->flow_ended(p.flow_id);
      }
      ++i;
      continue;
    }
    // Extend a contiguous run of selected packets bound for one sink so
    // the run rides a single batched ingest.
    const std::size_t sink = lb_ ? 0 : sensor_index_for(p);
    std::size_t j = i + 1;
    while (j < count) {
      const Packet& q = packets[j];
      if (q.tuple.dst_port == kMgmtPort) break;
      if (filtering && !config_.tap_filter.selects(q)) break;
      if (!lb_ && sensor_index_for(q) != sink) break;
      ++j;
    }
    tapped += j - i;
    if (monitor_evicts_) {
      for (std::size_t k = i; k < j; ++k) {
        if (packets[k].flags.fin || packets[k].flags.rst) {
          monitor_->flow_ended(packets[k].flow_id);
        }
      }
    }
    if (lb_) {
      lb_->ingest_batch(packets + i, j - i);
    } else {
      sensors_[sink]->ingest_batch(packets + i, j - i);
    }
    i = j;
  }
  packets_tapped_ += tapped;
  packets_filtered_ += filtered;
  if (tapped != 0) telemetry::bump(tele_tapped_, tapped);
  if (filtered != 0) telemetry::bump(tele_filtered_, filtered);
}

void Pipeline::attach(const std::vector<netsim::Ipv4>& agent_hosts) {
  if (attached_) throw std::logic_error("Pipeline: already attached");
  attached_ = true;

  if (!sensors_.empty()) {
    netsim::Switch& sw = net_.lan_switch();
    if (config_.use_load_balancer && config_.lb.in_line) {
      // In-line: production traffic waits for the LB's service time —
      // the Induced Traffic Latency metric's mechanism.
      sw.set_inline_hook([this](const Packet& p,
                                std::function<void(const Packet&)> fwd) {
        feed(p);
        const netsim::SimTime delay =
            lb_->config().inline_latency + lb_->service_time();
        sim_.schedule_in(delay, [p = p, fwd] { fwd(p); });
      });
    } else {
      sw.add_mirror_batch(
          [this](const Packet* p, std::size_t n) { feed_batch(p, n); });
    }
  }

  if (config_.use_host_agents) {
    netsim::ShardedSimulator* engine = net_.engine();
    for (std::size_t i = 0; i < agent_hosts.size(); ++i) {
      netsim::Host* host = net_.find_host(agent_hosts[i]);
      if (host == nullptr) {
        throw std::invalid_argument("Pipeline: agent host not found");
      }
      HostAgentConfig ac = config_.agent;
      ac.name = util::cat(config_.agent.name, i);
      if (ac.report_over_network &&
          ac.report_sink == netsim::Ipv4()) {
        // Default sink: the first monitored host doubles as the
        // collection point (reports from that host stay local).
        ac.report_sink = agent_hosts[0];
      }
      SensorConfig agent_sc = config_.agent_sensor;
      agent_sc.telemetry_scope = util::cat("agent.", i);
      // The agent lives on its host's shard: its inner sensor runs on
      // that shard's clock, and when the shard is remote the agent is
      // built under the shard's registry so every telemetry handle it
      // binds (aggregate and scoped alike) lands shard-locally — shard
      // registries merge into the ambient one at finalize.
      const std::size_t shard = net_.shard_of(agent_hosts[i]);
      const bool remote = engine != nullptr && shard != 0;
      std::unique_ptr<HostAgent> agent;
      {
        std::optional<telemetry::ScopedRegistry> scope;
        if (remote) scope.emplace(engine->registry(shard));
        agent = std::make_unique<HostAgent>(net_.sim_of(agent_hosts[i]),
                                            net_, *host, ac, agent_sc);
        if (config_.signature_engine) {
          agent->set_signature_engine(std::make_unique<SignatureEngine>(
              config_.rules,
              SignatureEngineOptions{config_.sensitivity, true,
                                     config_.stream_reassembly}));
        }
        if (config_.anomaly_engine) {
          AnomalyEngineOptions opts = config_.anomaly;
          opts.sensitivity = config_.sensitivity;
          agent->set_anomaly_engine(std::make_unique<AnomalyEngine>(opts));
        }
      }
      if (remote) engine->add_channel(shard, 0, ac.report_latency);
      agent->set_report_channel(remote ? engine : nullptr, shard,
                                net_.alloc_lane());
      const std::size_t source = config_.sensor_count + i;
      agent->set_on_detection([this, source](const Detection& d) {
        analyzer_for(source).submit(d);
      });
      agent->attach();
      agents_.push_back(std::move(agent));
    }
  }
}

void Pipeline::set_learning(bool learning) {
  const auto mode = learning ? AnomalyEngine::Mode::kLearning
                             : AnomalyEngine::Mode::kDetecting;
  for (auto& sensor : sensors_) {
    if (sensor->anomaly_engine()) sensor->anomaly_engine()->set_mode(mode);
  }
  for (auto& agent : agents_) {
    if (agent->anomaly_engine()) agent->anomaly_engine()->set_mode(mode);
  }
}

void Pipeline::set_sensitivity(double sensitivity) {
  config_.sensitivity = sensitivity;
  for (auto& sensor : sensors_) sensor->set_sensitivity(sensitivity);
  for (auto& agent : agents_) agent->set_sensitivity(sensitivity);
}

void Pipeline::set_evidence_sink(EvidenceSink* sink) {
  for (auto& sensor : sensors_) sensor->set_evidence_sink(sink);
  for (auto& agent : agents_) agent->set_evidence_sink(sink);
}

PipelineTotals Pipeline::totals() const {
  PipelineTotals t;
  t.packets_tapped = packets_tapped_;
  t.packets_filtered = packets_filtered_;
  auto add_sensor = [&t](const Sensor& s, bool network_path) {
    t.sensor_offered += s.stats().offered;
    t.sensor_processed += s.stats().processed;
    t.sensor_dropped += s.stats().dropped_queue + s.stats().dropped_failed;
    (network_path ? t.network_processed : t.agent_processed) +=
        s.stats().processed;
    t.detections += s.stats().detections;
    t.sensor_failures += s.stats().failures;
    if (s.failed()) ++t.sensors_down;
  };
  for (const auto& s : sensors_) add_sensor(*s, true);
  for (const auto& a : agents_) add_sensor(a->sensor(), false);
  if (lb_) t.lb_dropped = lb_->stats().dropped;
  t.alerts = monitor_->stats().alerts_raised;
  return t;
}

void Pipeline::reset_counters() {
  packets_tapped_ = 0;
  packets_filtered_ = 0;
  telemetry::reset(tele_tapped_);
  telemetry::reset(tele_filtered_);
  for (auto& s : sensors_) s->reset_stats();
  for (auto& a : agents_) a->sensor().reset_stats();
  if (lb_) lb_->reset_stats();
  for (auto& a : analyzers_) a->reset_stats();
  monitor_->clear();
  // The console's reaction counters are window-scoped measurements too:
  // leaving them running would bleed warmup reactions into the measured
  // window (they were previously never cleared).
  if (console_) console_->reset_stats();
}

}  // namespace idseval::ids
