#include "ids/rules.hpp"

#include "attack/patterns.hpp"

namespace idseval::ids {

namespace pat = attack::patterns;
namespace ports = netsim::ports;
using netsim::Protocol;
using netsim::SimTime;

RuleSet standard_rule_set() {
  RuleSet rules;

  // --- High-confidence published exploit content -------------------------
  // Both grant remote command execution: critical severity, so the
  // default reaction policy blocks the offender at the firewall.
  rules.patterns.push_back(PatternRule{
      "WEB-IIS dir traversal", std::string(pat::kDirTraversal),
      ports::kHttp, Protocol::kTcp, 5, 0.98});
  rules.patterns.push_back(PatternRule{
      "WEB-IIS cmd.exe access", std::string(pat::kCmdExe), ports::kHttp,
      Protocol::kTcp, 5, 0.98});
  rules.patterns.push_back(PatternRule{
      "SHELLCODE x86 NOP sled", std::string(pat::kNopSled), std::nullopt,
      std::nullopt, 5, 0.95});
  rules.patterns.push_back(PatternRule{
      "ATTACK-RESPONSES shell invoke", std::string(pat::kShellInvoke),
      std::nullopt, std::nullopt, 4, 0.85});
  rules.patterns.push_back(PatternRule{
      "VIRUS mail worm subject", std::string(pat::kWormSubject),
      ports::kSmtp, Protocol::kTcp, 4, 0.97});
  rules.patterns.push_back(PatternRule{
      "VIRUS vbs attachment", std::string(pat::kWormAttachment),
      ports::kSmtp, Protocol::kTcp, 4, 0.95});
  rules.patterns.push_back(PatternRule{
      "TELNET login failed", std::string(pat::kLoginFailed),
      ports::kTelnet, Protocol::kTcp, 2, 0.75});

  // --- Weak rules: also present in legitimate admin traffic --------------
  // These buy recall at the cost of Type I errors; whether they fire is
  // exactly what the Adjustable Sensitivity metric tunes.
  rules.patterns.push_back(PatternRule{
      "POLICY passwd file access", "/etc/passwd", std::nullopt,
      std::nullopt, 3, 0.45});
  rules.patterns.push_back(PatternRule{
      "POLICY su to root", "su - root", std::nullopt, std::nullopt, 2,
      0.40});
  rules.patterns.push_back(PatternRule{
      "TELNET root login", std::string(pat::kRootLogin), ports::kTelnet,
      Protocol::kTcp, 3, 0.50});

  // --- Threshold rules ----------------------------------------------------
  rules.thresholds.push_back(ThresholdRule{
      "SCAN port sweep", ThresholdFeature::kDistinctDstPorts, 40.0,
      SimTime::from_sec(5), std::nullopt, 2, 0.92});
  rules.thresholds.push_back(ThresholdRule{
      "DOS syn flood", ThresholdFeature::kSynRate, 200.0,
      SimTime::from_sec(2), std::nullopt, 3, 0.92});
  // Long legitimate telnet sessions can cross this threshold too — a
  // deliberate, realistic Type I source on the telnet share of traffic.
  rules.thresholds.push_back(ThresholdRule{
      "TELNET brute force", ThresholdFeature::kFlowPacketRate, 25.0,
      SimTime::from_sec(10), ports::kTelnet, 3, 0.85});

  return rules;
}

}  // namespace idseval::ids
