// Interned-payload scan cache: memoizes per-payload detection work
// (Shannon entropy, raw Aho-Corasick hit lists) keyed on the *pointer
// identity* of pooled payloads. traffic::PayloadPool interns payload
// content and hands out stable shared_ptr<const std::string> refs, so
// the same ≤32 variants per family flow past the sensors millions of
// times — one O(bytes) scan per variant plus an O(1) table hit per
// repeat replaces an O(bytes) rescan per packet (the nDPI/Suricata
// MPM-prefilter tradition applied to a simulated sensor).
//
// Safety of the pointer key: every entry pins its payload shared_ptr,
// so the string's address can never be freed and recycled for a
// different payload while the memo holds it. Capacity is bounded; once
// full, new payloads are scanned uncached (deterministically — the memo
// population order is the seeded traffic order, and cached results are
// bit-identical to recomputation by construction).
//
// The cache is invisible to simulated time: engines keep charging the
// abstract scan_cost_ops model as if every byte were scanned, so the
// golden determinism hash and all detection output are byte-identical
// with the cache on or off. Only wall-clock changes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "telemetry/registry.hpp"
#include "util/flow_table.hpp"

namespace idseval::ids {

/// Local mirror of the scan_cache.* telemetry counters, always counted
/// (telemetry handles are null without a registry) so tests and benches
/// can read cache behaviour directly off an engine.
struct ScanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_saved = 0;

  double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// Bounded memo table: interned payload pointer -> V. V must be cheap
/// to default-construct; values are stored by move.
template <class V>
class PayloadMemo {
 public:
  using PayloadRef = std::shared_ptr<const std::string>;
  /// Generous versus the pool's real population (payload kinds x ≤32
  /// variants x a few length buckets); adaptive PayloadPool growth
  /// raises it alongside the variant caps via reserve_capacity (see
  /// SensorConfig::scan_cache_capacity) so overflow variants stay cached.
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit PayloadMemo(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity),
        hits_(telemetry::counter_handle(telemetry::names::kScanCacheHits)),
        misses_(
            telemetry::counter_handle(telemetry::names::kScanCacheMisses)),
        bytes_saved_(telemetry::counter_handle(
            telemetry::names::kScanCacheBytesSaved)) {}

  /// The cached value for this payload, or nullptr (counted as a miss —
  /// the caller is about to do the full scan).
  const V* find(const PayloadRef& payload) noexcept {
    const Entry* entry = table_.find(key_of(payload));
    if (entry == nullptr) {
      ++stats_.misses;
      telemetry::bump(misses_);
      return nullptr;
    }
    ++stats_.hits;
    telemetry::bump(hits_);
    return &entry->value;
  }

  /// Credits payload bytes a hit kept off the real CPU (engine-specific:
  /// the signature engine saves the bytes it did not re-run through the
  /// automaton, the anomaly engine the bytes it did not histogram).
  void credit_saved(std::uint64_t bytes) noexcept {
    stats_.bytes_saved += bytes;
    telemetry::bump(bytes_saved_, bytes);
  }

  /// Memoizes `value`, pinning the payload. Returns the stored copy, or
  /// nullptr when the memo is at capacity (caller keeps its local).
  const V* store(const PayloadRef& payload, V value) {
    if (payload == nullptr || table_.size() >= capacity_) return nullptr;
    auto [entry, inserted] = table_.try_emplace(key_of(payload));
    if (inserted) {
      entry->pin = payload;
      entry->value = std::move(value);
    }
    return &entry->value;
  }

  /// Raises the capacity ceiling (never lowers it — entries are already
  /// pinned). Adaptive PayloadPool growth calls this with the pool's
  /// growth headroom before traffic starts, so freshly minted overflow
  /// variants still land in the memo instead of falling back to uncached
  /// full scans.
  void reserve_capacity(std::size_t capacity) noexcept {
    if (capacity > capacity_) capacity_ = capacity;
  }

  std::size_t size() const noexcept { return table_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  const ScanCacheStats& stats() const noexcept { return stats_; }

  /// Drops every entry and its payload pin. Entries are pure content
  /// functions of their payload, so engines retain the memo across
  /// reset_state(); this exists for explicit invalidation (tests,
  /// future pool reconfiguration).
  void clear() noexcept { table_.clear(); }

 private:
  struct Entry {
    PayloadRef pin;
    V value{};
  };

  static std::uint64_t key_of(const PayloadRef& payload) noexcept {
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(payload.get()));
  }

  std::size_t capacity_;
  util::FlowTable<std::uint64_t, Entry> table_;
  ScanCacheStats stats_;
  telemetry::Counter* hits_;
  telemetry::Counter* misses_;
  telemetry::Counter* bytes_saved_;
};

}  // namespace idseval::ids
