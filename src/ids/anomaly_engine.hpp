// Anomaly-based ("behavior-based") detection engine (§2.1). Learns what
// "normal" looks like per service during a training phase, then scores
// deviations. The paper's maxim: a constrained application environment —
// a tuned real-time cluster — tightens the definition of normal, which is
// where anomaly detection shines; on diverse e-commerce traffic the same
// engine drowns in Type I errors. The features below make that trade
// concrete and measurable.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ids/alert.hpp"
#include "ids/evidence.hpp"
#include "ids/fired_set.hpp"
#include "ids/scan_cache.hpp"
#include "netsim/flow_tuple.hpp"
#include "netsim/packet.hpp"
#include "util/flat_map.hpp"
#include "util/flow_table.hpp"
#include "util/stats.hpp"

namespace idseval::ids {

/// Shannon entropy of payload bytes, in bits per byte (0..8).
double payload_entropy(std::string_view payload) noexcept;

/// Maps sensitivity (0..1) to the z-score a feature must exceed to fire:
/// s=0 -> 8.0 (only extreme outliers), s=1 -> 1.5 (hair trigger).
double sensitivity_to_zscore(double sensitivity) noexcept;

struct AnomalyEngineOptions {
  double sensitivity = 0.5;
  double ewma_alpha = 0.05;       ///< Baseline adaptation rate.
  /// Subnet considered "inside"; peer-novelty features only apply to
  /// internal sources (every external customer is a novel peer, so the
  /// feature would be pure noise for them).
  netsim::Ipv4 internal_net{10, 0, 0, 0};
  int internal_prefix = 8;
  bool learn_peer_graph = true;
  /// Distinct-port fanout per source that is considered pathological even
  /// without a learned baseline.
  double fanout_window_sec = 5.0;
  /// Interned-payload entropy memo (ids/scan_cache.hpp): repeated pooled
  /// payloads cost one table hit instead of an O(bytes) histogram pass.
  /// Entropy values are bit-identical cached or recomputed, so results
  /// never change; off replays the exact legacy per-packet computation.
  bool scan_cache = true;
};

class AnomalyEngine {
 public:
  enum class Mode { kLearning, kDetecting };

  explicit AnomalyEngine(AnomalyEngineOptions options);

  void set_mode(Mode mode) noexcept { mode_ = mode; }
  Mode mode() const noexcept { return mode_; }
  void set_sensitivity(double s) noexcept { options_.sensitivity = s; }
  double sensitivity() const noexcept { return options_.sensitivity; }
  void set_scan_cache(bool on) noexcept { options_.scan_cache = on; }
  bool scan_cache() const noexcept { return options_.scan_cache; }
  /// Raises the memo's capacity ceiling (never lowers): adaptive
  /// PayloadPool growth mints variants past the default population.
  void reserve_scan_cache(std::size_t capacity) noexcept {
    entropy_memo_.reserve_capacity(capacity);
  }
  /// Entropy-memo traffic (hits/misses/bytes_saved) for benches/tests.
  const ScanCacheStats& scan_cache_stats() const noexcept {
    return entropy_memo_.stats();
  }

  /// Attaches a pre-gate evidence observer (nullptr detaches). Purely
  /// observational: detection output is identical either way.
  void set_evidence_sink(EvidenceSink* sink) noexcept { evidence_ = sink; }

  /// Observes one packet; in detection mode appends anomaly detections.
  void process(const netsim::Packet& packet, netsim::SimTime now,
               std::vector<Detection>& out);

  /// Abstract CPU cost: entropy + baseline updates touch every byte, so
  /// anomaly inspection is slightly dearer per byte than AC matching.
  double scan_cost_ops(const netsim::Packet& packet) const noexcept;

  std::size_t learned_ports() const noexcept { return by_port_.size(); }
  std::size_t learned_peers() const noexcept { return peer_pairs_.size(); }

  /// Approximate bytes of model state (Data Storage metric input).
  std::size_t model_bytes() const noexcept;

  void reset_windows();

 private:
  struct PortModel {
    util::EwmaBaseline length;
    util::EwmaBaseline entropy;
    std::uint64_t samples = 0;
    PortModel(double alpha) : length(alpha), entropy(alpha) {}
  };
  struct SrcWindow {
    /// Tiny live-port window: flat sorted vector, not a hash map (one
    /// allocation, cache-linear pruning).
    util::FlatMap<std::uint16_t, netsim::SimTime> ports;
    netsim::SimTime cooldown_until;
  };
  struct SynWindow {
    std::deque<netsim::SimTime> events;
    netsim::SimTime cooldown_until;
  };

  bool is_internal(netsim::Ipv4 addr) const noexcept;
  /// payload_entropy through the interned-payload memo (straight
  /// recomputation when the cache is off or the payload is unpooled).
  double cached_entropy(const netsim::Packet& packet);
  Detection make_detection(const netsim::Packet& packet, netsim::SimTime now,
                           const std::string& feature, double zscore,
                           int severity) const;
  bool fire_once(std::uint64_t feature_tag, std::uint64_t flow_id);

  AnomalyEngineOptions options_;
  Mode mode_ = Mode::kLearning;
  EvidenceSink* evidence_ = nullptr;

  util::FlowTable<std::uint32_t, PortModel> by_port_;  ///< key: port|proto
  util::EwmaBaseline fanout_baseline_;
  util::FlowTable<std::uint32_t, SrcWindow> fanout_by_src_;
  util::EwmaBaseline syn_rate_baseline_;
  util::FlowTable<std::uint32_t, SynWindow> syn_by_dst_;
  /// Learned peer graph, keyed by packed (src, dst) / (src, dst, port)
  /// tuples — exact keys, no XOR folding (see fired_set.hpp for the
  /// aliasing failure the old packing had).
  netsim::FlowTupleSet peer_pairs_;
  netsim::FlowTupleSet service_triples_;
  PayloadMemo<double> entropy_memo_;
  FiredSet fired_;
};

}  // namespace idseval::ids
