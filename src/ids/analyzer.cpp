#include "ids/analyzer.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace idseval::ids {

using netsim::SimTime;

Analyzer::Analyzer(netsim::Simulator& sim, AnalyzerConfig config)
    : sim_(sim),
      config_(std::move(config)),
      tele_reports_(
          telemetry::counter_handle(telemetry::names::kAnalyzerReports)),
      tele_batch_(
          telemetry::latency_handle(telemetry::names::kAnalyzerBatch)) {}

void Analyzer::submit(const Detection& detection) {
  ++stats_.detections_in;
  schedule_analysis(detection);
}

void Analyzer::submit_batch(const Detection* detections, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    submit(*detections);
    return;
  }
  stats_.detections_in += count;
  for (std::size_t i = 0; i < count; ++i) schedule_analysis(detections[i]);
}

void Analyzer::schedule_analysis(const Detection& detection) {
  // Transfer (if remote) then queue behind earlier analysis work.
  const SimTime arrive = sim_.now() + config_.transfer_delay;
  const SimTime service = SimTime::from_sec(
      config_.ops_per_detection / std::max(1.0, config_.ops_per_sec));
  const SimTime start = std::max(arrive, busy_until_);
  busy_until_ = start + service;
  // Batch latency: detection hand-off to analysis completion (transfer
  // hop + queueing behind earlier detections + this service slot).
  telemetry::record(tele_batch_, (busy_until_ - sim_.now()).sec());
  // Init-capture so the stored copy is non-const: a plain [detection]
  // copy of a const& parameter makes the closure member const Detection,
  // whose "move" is a throwing string copy — which disqualifies the
  // closure from the simulator's inline callback buffer.
  sim_.schedule_at(busy_until_,
                   [this, detection = detection] { analyze(detection); });
}

void Analyzer::analyze(const Detection& detection) {
  stats_.bytes_stored += config_.bytes_per_detection;
  const SimTime now = sim_.now();

  // Flow-level dedup/merge: one threat per flow per correlation window.
  FlowState& flow = flows_[detection.flow_id];
  const bool merge = flow.count > 0 &&
                     now - flow.last_report <= config_.correlation_window;
  ++flow.count;
  if (merge) {
    ++stats_.merged;
    return;
  }
  flow.last_report = now;

  // Offender correlation: distinct rules from one source escalate.
  OffenderState& offender = offenders_[detection.tuple.src_ip.value()];
  const std::uint64_t rule_hash = util::hash64(detection.rule);
  offender.rule_hits.emplace_back(now, rule_hash);
  while (!offender.rule_hits.empty() &&
         now - offender.rule_hits.front().first >
             config_.correlation_window) {
    offender.rule_hits.pop_front();
  }
  int distinct_rules = 0;
  {
    std::vector<std::uint64_t> seen;
    for (const auto& [t, h] : offender.rule_hits) {
      if (std::find(seen.begin(), seen.end(), h) == seen.end()) {
        seen.push_back(h);
      }
    }
    distinct_rules = static_cast<int>(seen.size());
  }

  ThreatReport report;
  report.primary = detection;
  report.correlated_count = flow.count;
  report.severity = detection.severity;
  report.when = now;
  if (distinct_rules >= config_.escalation_rule_count) {
    report.severity = std::min(5, report.severity + 1);
    ++stats_.escalations;
  }

  ++stats_.reports_out;
  telemetry::bump(tele_reports_);
  if (on_report_) on_report_(report);
}

}  // namespace idseval::ids
