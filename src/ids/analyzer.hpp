// Analysis subprocess (§2.2, subprocess 3): determines the nature and
// threat of suspicious traffic. Performs primary analysis (severity) and
// second-order correlation (scope/intent: multiple detections on one flow
// or one offender merge and escalate). Stores historical context — the
// paper's Data Storage metric is the growth rate of that store.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "ids/alert.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"

namespace idseval::ids {

struct AnalyzerConfig {
  std::string name = "analyzer";
  /// Abstract ops per detection analyzed (service-time model).
  double ops_per_detection = 50000.0;
  double ops_per_sec = 2e8;
  /// Extra hop delay when sensing and analysis are separated onto
  /// different boxes (§2.2: "separation adds network overhead").
  netsim::SimTime transfer_delay = netsim::SimTime::zero();
  /// Detections on the same flow within this window merge into one
  /// threat; repeated offender activity escalates severity.
  netsim::SimTime correlation_window = netsim::SimTime::from_sec(10);
  /// Escalate severity when an offender accumulates this many distinct
  /// rules in the window (threat correlation capability).
  int escalation_rule_count = 3;
  /// Bytes of historical context retained per detection (Data Storage).
  std::size_t bytes_per_detection = 512;
};

struct AnalyzerStats {
  std::uint64_t detections_in = 0;
  std::uint64_t reports_out = 0;
  std::uint64_t merged = 0;
  std::uint64_t escalations = 0;
  std::uint64_t bytes_stored = 0;
};

class Analyzer {
 public:
  using ReportFn = std::function<void(const ThreatReport&)>;

  Analyzer(netsim::Simulator& sim, AnalyzerConfig config);

  void set_on_report(ReportFn fn) { on_report_ = std::move(fn); }

  /// Receives a detection from a sensor (already timestamped by it).
  void submit(const Detection& detection);
  /// Receives every detection one sensor completion produced, in engine
  /// order; the detections_in bump is hoisted to once per batch. A
  /// single-detection batch takes the exact legacy submit() path.
  void submit_batch(const Detection* detections, std::size_t count);

  const AnalyzerConfig& config() const noexcept { return config_; }
  const AnalyzerStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept {
    stats_ = AnalyzerStats{};
    telemetry::reset(tele_reports_);
    telemetry::reset(tele_batch_);
  }

 private:
  void schedule_analysis(const Detection& detection);
  void analyze(const Detection& detection);

  struct FlowState {
    netsim::SimTime last_report;
    int count = 0;
  };
  struct OffenderState {
    std::deque<std::pair<netsim::SimTime, std::uint64_t>> rule_hits;
  };

  netsim::Simulator& sim_;
  AnalyzerConfig config_;
  ReportFn on_report_;
  AnalyzerStats stats_;
  netsim::SimTime busy_until_;
  std::unordered_map<std::uint64_t, FlowState> flows_;
  std::unordered_map<std::uint32_t, OffenderState> offenders_;
  telemetry::Counter* tele_reports_;
  telemetry::LatencyStat* tele_batch_;
};

}  // namespace idseval::ids
