// Attack traffic emitters: generate the packet-level realization of each
// AttackKind, inject it through the Network, and record labeled
// transactions in the ledger (the canned-data-with-known-content approach
// §4 recommends for observing false negatives).
#pragma once

#include <cstdint>

#include <memory>

#include "attack/kind.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "traffic/ledger.hpp"
#include "traffic/payload_pool.hpp"
#include "util/rng.hpp"

namespace idseval::attack {

struct EmitStats {
  std::uint64_t attacks_launched = 0;
  std::uint64_t packets_emitted = 0;
};

class AttackEmitter {
 public:
  /// `pool` may be shared with the background generator of the same
  /// simulation; when null the emitter owns a private pool derived from
  /// `seed`. Attack payloads are interned per content family, so the
  /// published signature bytes each family carries survive pooling.
  AttackEmitter(netsim::Simulator& sim, netsim::Network& net,
                traffic::TransactionLedger& ledger, std::uint64_t seed,
                traffic::PayloadPool* pool = nullptr);

  /// Schedules one attack instance starting at `when` from `attacker`
  /// against `victim`. Returns the flow id of the attack's primary
  /// transaction (scans/floods create one logical transaction even though
  /// they touch many ports).
  std::uint64_t launch(AttackKind kind, netsim::Ipv4 attacker,
                       netsim::Ipv4 victim, netsim::SimTime when);

  /// Flood kinds emit same-tick trains of `len` packets (gaps drawn at
  /// train boundaries and scaled by `len`, keeping the mean rate), so
  /// floods land on the coalesced same-tick delivery path the way
  /// emit_burst-style bulk traffic does. Default 1 = the legacy
  /// packet-per-tick emission (identical RNG draw sequence).
  void set_flood_train(std::uint32_t len) noexcept {
    flood_train_ = len == 0 ? 1 : len;
  }
  std::uint32_t flood_train() const noexcept { return flood_train_; }

  /// Kill-chain campaigns label transactions with the stage a step runs
  /// in; -1 (default) records the kind's default stage from AttackTraits.
  void set_stage_override(int stage) noexcept { stage_override_ = stage; }
  int stage_override() const noexcept { return stage_override_; }

  /// Scheduled time of the last packet of the most recent launch(). Every
  /// emitter draws its whole schedule eagerly at launch() time, so this is
  /// the attack's end time — kill chains use it to gate the next stage.
  netsim::SimTime last_launch_end() const noexcept {
    return last_launch_end_;
  }

  const EmitStats& stats() const noexcept { return stats_; }

 private:
  std::uint64_t emit_port_scan(netsim::Ipv4 a, netsim::Ipv4 v,
                               netsim::SimTime t);
  std::uint64_t emit_syn_flood(netsim::Ipv4 a, netsim::Ipv4 v,
                               netsim::SimTime t);
  std::uint64_t emit_brute_force(netsim::Ipv4 a, netsim::Ipv4 v,
                                 netsim::SimTime t);
  std::uint64_t emit_web_exploit(netsim::Ipv4 a, netsim::Ipv4 v,
                                 netsim::SimTime t);
  std::uint64_t emit_smtp_worm(netsim::Ipv4 a, netsim::Ipv4 v,
                               netsim::SimTime t);
  std::uint64_t emit_novel_exploit(netsim::Ipv4 a, netsim::Ipv4 v,
                                   netsim::SimTime t);
  std::uint64_t emit_dns_tunnel(netsim::Ipv4 a, netsim::Ipv4 v,
                                netsim::SimTime t);
  std::uint64_t emit_insider(netsim::Ipv4 a, netsim::Ipv4 v,
                             netsim::SimTime t);
  std::uint64_t emit_evasive_exploit(netsim::Ipv4 a, netsim::Ipv4 v,
                                     netsim::SimTime t);

  /// Opens a labeled transaction and returns its flow id.
  std::uint64_t open_transaction(AttackKind kind,
                                 const netsim::FiveTuple& tuple,
                                 netsim::SimTime when);
  /// Schedules a single packet emission at `when`. A null payload sends
  /// a pure-control packet (SYN/FIN probes).
  void send_at(netsim::SimTime when, std::uint64_t flow_id,
               netsim::FiveTuple tuple, traffic::PayloadPool::Ref payload,
               netsim::TcpFlags flags, std::uint32_t seq);

  netsim::Simulator& sim_;
  netsim::Network& net_;
  traffic::TransactionLedger& ledger_;
  util::Rng rng_;
  std::unique_ptr<traffic::PayloadPool> owned_pool_;
  traffic::PayloadPool* pool_;
  EmitStats stats_;
  std::uint32_t flood_train_ = 1;
  int stage_override_ = -1;
  netsim::SimTime last_launch_end_{};
};

}  // namespace idseval::attack
