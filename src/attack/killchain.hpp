// Kill-chain attack campaigns: multi-stage scripted campaigns
// (recon → exploit → lateral movement → exfil) whose ground truth carries
// the stage each step actually ran in, on top of the per-kind ATT&CK
// technique tags from AttackTraits. A KillChain is an ordered list of
// stages; each stage is a set of ScenarioSteps whose times are offsets
// from the stage's start. Later stages launch only after every flow of the
// earlier stage has finished emitting (emitters schedule eagerly, so a
// stage's end time is known at launch), and lateral/exfil stages can
// pivot the attacker pool onto the internal hosts compromised earlier in
// the chain. A chain plus one seed fully determines the campaign.
//
// Singleton chains (one stage) degrade to a flat Scenario and take the
// exact legacy Scenario::run path, preserving the golden determinism hash
// for every configuration that doesn't opt into campaigns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/emitter.hpp"
#include "attack/kind.hpp"
#include "attack/scenario.hpp"
#include "netsim/address.hpp"
#include "netsim/sim_time.hpp"
#include "util/flat_map.hpp"

namespace idseval::attack {

/// One stage of a campaign. Step `when` values are offsets from the
/// stage's (dynamic) start time, not absolute simulation times.
struct ChainStage {
  Stage stage = Stage::kRecon;
  std::vector<ScenarioStep> steps;
  /// Quiet dwell time between this stage's last emitted packet and the
  /// next stage's first launch.
  netsim::SimTime gap_after = netsim::SimTime::from_ms(500);
  /// Draw this stage's attackers from the hosts compromised by earlier
  /// stages (falls back to the step's natural pool when nothing has been
  /// compromised yet).
  bool pivot = false;
  /// Victims of this stage join the compromised pool for later pivots.
  bool compromises = false;
};

/// Record of one executed stage, for logs and tests.
struct StageLaunch {
  Stage stage = Stage::kRecon;
  std::size_t steps = 0;
  netsim::SimTime begin;  ///< First launch time of the stage.
  netsim::SimTime end;    ///< Last scheduled packet across its flows.
};

class KillChain {
 public:
  KillChain() = default;
  explicit KillChain(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void add_stage(ChainStage stage) { stages_.push_back(std::move(stage)); }
  const std::vector<ChainStage>& stages() const noexcept { return stages_; }
  std::size_t size() const noexcept { return stages_.size(); }
  std::size_t total_steps() const noexcept;

  /// True when the chain has at most one stage — it then degrades to a
  /// flat Scenario (see to_scenario) and callers must use the legacy
  /// Scenario::run path, which the golden determinism hash pins.
  bool singleton() const noexcept { return stages_.size() <= 1; }

  /// Flattens a singleton chain into a Scenario whose step times are the
  /// stage-relative offsets. Throws for multi-stage chains (their timing
  /// depends on emission, which a static Scenario cannot express).
  Scenario to_scenario() const;

  /// Counts per attack kind across every stage (kind-ordered iteration).
  util::FlatMap<AttackKind, std::size_t> histogram() const;

  /// Executes the campaign: stage k+1's base time is stage k's last
  /// scheduled packet plus the stage gap. Pivoting stages draw attackers
  /// from the compromised-host pool (victims of earlier `compromises`
  /// stages, first-touch order); insider kinds fall back to the internal
  /// pool and everything else to `external_attackers` when no host has
  /// been compromised yet. Stage labels ride into the transaction ledger
  /// via the emitter's stage override. Returns launched flow ids in
  /// launch order; per-stage timing lands in `last_run()`.
  std::vector<std::uint64_t> run(
      AttackEmitter& emitter,
      const std::vector<netsim::Ipv4>& external_attackers,
      const std::vector<netsim::Ipv4>& internal_hosts,
      netsim::SimTime start) const;

  /// Per-stage launch record of the most recent run().
  const std::vector<StageLaunch>& last_run() const noexcept {
    return last_run_;
  }

  /// Builds a named preset chain, deterministic in `seed`. Step times
  /// within each stage are uniform in [0, stage_span). Known presets:
  ///   "intrusion"    — recon / exploit (web + brute-force) /
  ///                    lateral (pivot) / exfil (pivot); the classic
  ///                    enterprise chain for rt_cluster-style networks.
  ///   "ics-takeover" — recon / exploit (novel RPC + brute-force) /
  ///                    lateral (pivot) / exfil (pivot); tuned for the
  ///                    `ics` profile where the exploit surface is the
  ///                    control service, not the web tier.
  ///   "canbus-storm" — recon / exploit (novel + SYN-flood bus storm) /
  ///                    lateral (pivot) / exfil (pivot); pairs with the
  ///                    `canbus` profile's high-rate tiny-frame floor.
  /// Throws std::invalid_argument for unknown names.
  static KillChain preset(const std::string& name, std::uint64_t seed,
                          netsim::SimTime stage_span,
                          std::size_t attacker_pool = 4,
                          std::size_t victim_pool = 8);

  /// Names preset() accepts, for CLI help and validation.
  static const std::vector<std::string>& preset_names();

 private:
  std::string name_;
  std::vector<ChainStage> stages_;
  mutable std::vector<StageLaunch> last_run_;
};

}  // namespace idseval::attack
