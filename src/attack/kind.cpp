#include "attack/kind.hpp"

#include <stdexcept>

namespace idseval::attack {

namespace {
constexpr std::array<AttackTraits, kAttackKindCount> kTraits = {{
    // kind, name, known_sig, rate_anom, payload_anom, insider, severity,
    // default stage, ATT&CK technique
    {AttackKind::kPortScan, "port-scan", true, true, false, false, 2,
     Stage::kRecon, Technique::kT1046},
    {AttackKind::kSynFlood, "syn-flood", true, true, false, false, 3,
     Stage::kExploit, Technique::kT1498},
    {AttackKind::kBruteForceLogin, "brute-force-login", true, true, false,
     false, 3, Stage::kExploit, Technique::kT1110},
    {AttackKind::kWebExploit, "web-exploit", true, false, true, false, 4,
     Stage::kExploit, Technique::kT1190},
    {AttackKind::kSmtpWorm, "smtp-worm", true, false, true, false, 4,
     Stage::kExploit, Technique::kT1566},
    {AttackKind::kNovelExploit, "novel-exploit", false, false, true, false,
     5, Stage::kExploit, Technique::kT1210},
    {AttackKind::kDnsTunnel, "dns-tunnel", false, false, true, false, 3,
     Stage::kExfil, Technique::kT1048},
    {AttackKind::kInsiderMasquerade, "insider-masquerade", false, true,
     false, true, 5, Stage::kLateral, Technique::kT1021},
    // Shares T1190 with web-exploit: the evasive variant is the same
    // public-facing exploit delivered across packet boundaries, which also
    // exercises per-technique aggregation over multiple kinds.
    {AttackKind::kEvasiveExploit, "evasive-exploit", true, false, true,
     false, 4, Stage::kExploit, Technique::kT1190},
}};

constexpr const char* kStageNames[kStageCount] = {
    "recon", "exploit", "lateral", "exfil"};

struct TechniqueInfo {
  const char* id;
  const char* name;
};

constexpr TechniqueInfo kTechniques[kTechniqueCount] = {
    {"T1046", "network-service-discovery"},
    {"T1498", "network-denial-of-service"},
    {"T1110", "brute-force"},
    {"T1190", "exploit-public-facing-application"},
    {"T1566", "phishing"},
    {"T1210", "exploitation-of-remote-services"},
    {"T1048", "exfiltration-over-alternative-protocol"},
    {"T1021", "remote-services"},
};
}  // namespace

const AttackTraits& traits(AttackKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= kAttackKindCount) {
    throw std::invalid_argument("traits: bad AttackKind");
  }
  return kTraits[idx];
}

const std::array<AttackTraits, kAttackKindCount>& all_attack_traits() {
  return kTraits;
}

std::string to_string(AttackKind kind) { return traits(kind).name; }

std::string to_string(Stage stage) {
  const auto idx = static_cast<std::size_t>(stage);
  if (idx >= kStageCount) {
    throw std::invalid_argument("to_string: bad Stage");
  }
  return kStageNames[idx];
}

std::string attack_id(Technique technique) {
  const auto idx = static_cast<std::size_t>(technique);
  if (idx >= kTechniqueCount) {
    throw std::invalid_argument("attack_id: bad Technique");
  }
  return kTechniques[idx].id;
}

std::string to_string(Technique technique) {
  const auto idx = static_cast<std::size_t>(technique);
  if (idx >= kTechniqueCount) {
    throw std::invalid_argument("to_string: bad Technique");
  }
  return kTechniques[idx].name;
}

}  // namespace idseval::attack
