#include "attack/kind.hpp"

#include <stdexcept>

namespace idseval::attack {

namespace {
constexpr std::array<AttackTraits, kAttackKindCount> kTraits = {{
    // kind, name, known_sig, rate_anom, payload_anom, insider, severity
    {AttackKind::kPortScan, "port-scan", true, true, false, false, 2},
    {AttackKind::kSynFlood, "syn-flood", true, true, false, false, 3},
    {AttackKind::kBruteForceLogin, "brute-force-login", true, true, false,
     false, 3},
    {AttackKind::kWebExploit, "web-exploit", true, false, true, false, 4},
    {AttackKind::kSmtpWorm, "smtp-worm", true, false, true, false, 4},
    {AttackKind::kNovelExploit, "novel-exploit", false, false, true, false,
     5},
    {AttackKind::kDnsTunnel, "dns-tunnel", false, false, true, false, 3},
    {AttackKind::kInsiderMasquerade, "insider-masquerade", false, true,
     false, true, 5},
    {AttackKind::kEvasiveExploit, "evasive-exploit", true, false, true,
     false, 4},
}};
}  // namespace

const AttackTraits& traits(AttackKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= kAttackKindCount) {
    throw std::invalid_argument("traits: bad AttackKind");
  }
  return kTraits[idx];
}

const std::array<AttackTraits, kAttackKindCount>& all_attack_traits() {
  return kTraits;
}

std::string to_string(AttackKind kind) { return traits(kind).name; }

}  // namespace idseval::attack
