// Attack scenarios: declarative, timed scripts of attack launches mixed
// into background traffic. A scenario plus a seed fully determines the
// injected threat picture, giving the repeatable "canned data with known
// attack content" the methodology needs.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/emitter.hpp"
#include "attack/kind.hpp"
#include "netsim/address.hpp"
#include "netsim/sim_time.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace idseval::attack {

struct ScenarioStep {
  netsim::SimTime when;
  AttackKind kind;
  /// Index into the attacker pool (external hosts, except insider attacks
  /// which index the internal pool).
  std::size_t attacker_index = 0;
  /// Index into the victim (internal) pool.
  std::size_t victim_index = 0;
};

class Scenario {
 public:
  Scenario() = default;

  void add_step(ScenarioStep step) { steps_.push_back(step); }
  const std::vector<ScenarioStep>& steps() const noexcept { return steps_; }
  std::size_t size() const noexcept { return steps_.size(); }

  /// Counts per attack kind (kind-ordered iteration).
  util::FlatMap<AttackKind, std::size_t> histogram() const;

  /// Launches every step through the emitter. Host pools supply concrete
  /// addresses; indices wrap modulo pool size. Returns the flow ids of the
  /// launched attacks, in step order.
  std::vector<std::uint64_t> run(
      AttackEmitter& emitter,
      const std::vector<netsim::Ipv4>& external_attackers,
      const std::vector<netsim::Ipv4>& internal_hosts) const;

  /// Builds a mixed scenario: `per_kind` instances of every attack kind,
  /// launch times uniform in [window_start, window_end), attacker/victim
  /// indices random. Deterministic in `seed`.
  static Scenario mixed(std::size_t per_kind, netsim::SimTime window_start,
                        netsim::SimTime window_end, std::uint64_t seed,
                        std::size_t attacker_pool = 4,
                        std::size_t victim_pool = 8);

  /// Builds a scenario containing only the given kinds.
  static Scenario of_kinds(const std::vector<AttackKind>& kinds,
                           std::size_t per_kind,
                           netsim::SimTime window_start,
                           netsim::SimTime window_end, std::uint64_t seed,
                           std::size_t attacker_pool = 4,
                           std::size_t victim_pool = 8);

 private:
  std::vector<ScenarioStep> steps_;
};

}  // namespace idseval::attack
