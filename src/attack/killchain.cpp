#include "attack/killchain.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/registry.hpp"
#include "util/strfmt.hpp"

namespace idseval::attack {

using netsim::Ipv4;
using netsim::SimTime;

std::size_t KillChain::total_steps() const noexcept {
  std::size_t n = 0;
  for (const auto& stage : stages_) n += stage.steps.size();
  return n;
}

Scenario KillChain::to_scenario() const {
  if (!singleton()) {
    throw std::logic_error(
        "KillChain::to_scenario: multi-stage chains schedule dynamically");
  }
  Scenario scenario;
  if (!stages_.empty()) {
    for (const ScenarioStep& step : stages_.front().steps) {
      scenario.add_step(step);
    }
  }
  return scenario;
}

util::FlatMap<AttackKind, std::size_t> KillChain::histogram() const {
  util::FlatMap<AttackKind, std::size_t> counts;
  for (const auto& stage : stages_) {
    for (const auto& step : stage.steps) ++counts[step.kind];
  }
  return counts;
}

std::vector<std::uint64_t> KillChain::run(
    AttackEmitter& emitter, const std::vector<Ipv4>& external_attackers,
    const std::vector<Ipv4>& internal_hosts, SimTime start) const {
  if (internal_hosts.empty()) {
    throw std::invalid_argument("KillChain::run: no internal hosts");
  }
  last_run_.clear();
  last_run_.reserve(stages_.size());
  std::vector<std::uint64_t> flows;
  flows.reserve(total_steps());
  // Hosts compromised so far, in first-touch order (deterministic — the
  // pivot pool's indexing must not depend on container hashing).
  std::vector<Ipv4> compromised;

  SimTime stage_base = start;
  for (const ChainStage& cs : stages_) {
    emitter.set_stage_override(static_cast<int>(cs.stage));
    StageLaunch rec;
    rec.stage = cs.stage;
    rec.steps = cs.steps.size();
    rec.begin = stage_base;
    SimTime stage_end = stage_base;
    bool first = true;
    for (const ScenarioStep& step : cs.steps) {
      const bool insider = traits(step.kind).insider;
      const std::vector<Ipv4>* pool = nullptr;
      if (cs.pivot && !compromised.empty()) {
        pool = &compromised;
      } else {
        pool = insider ? &internal_hosts : &external_attackers;
      }
      if (pool->empty()) {
        throw std::invalid_argument("KillChain::run: empty attacker pool");
      }
      const Ipv4 attacker = (*pool)[step.attacker_index % pool->size()];
      Ipv4 victim =
          internal_hosts[step.victim_index % internal_hosts.size()];
      if (victim == attacker) {
        victim =
            internal_hosts[(step.victim_index + 1) % internal_hosts.size()];
      }
      const SimTime when = stage_base + step.when;
      if (first || when < rec.begin) {
        rec.begin = when;
        first = false;
      }
      flows.push_back(emitter.launch(step.kind, attacker, victim, when));
      if (emitter.last_launch_end() > stage_end) {
        stage_end = emitter.last_launch_end();
      }
      if (cs.compromises &&
          std::find(compromised.begin(), compromised.end(), victim) ==
              compromised.end()) {
        compromised.push_back(victim);
      }
    }
    if (!cs.steps.empty()) {
      telemetry::bump(
          telemetry::counter_handle(
              util::cat("attack.stage.", to_string(cs.stage), ".launched")),
          cs.steps.size());
    }
    rec.end = stage_end;
    last_run_.push_back(rec);
    // The next stage waits for this stage's flows to finish emitting,
    // then dwells for the configured gap.
    stage_base = stage_end + cs.gap_after;
  }
  emitter.set_stage_override(-1);
  return flows;
}

namespace {

struct StageSpec {
  Stage stage;
  std::vector<AttackKind> kinds;
  bool pivot;
  bool compromises;
};

std::vector<StageSpec> preset_spec(const std::string& name) {
  // Every preset follows the canonical recon → exploit → lateral → exfil
  // arc; they differ in the exploit surface matched to the environment.
  if (name == "intrusion") {
    return {
        {Stage::kRecon, {AttackKind::kPortScan}, false, false},
        {Stage::kExploit,
         {AttackKind::kWebExploit, AttackKind::kBruteForceLogin},
         false, true},
        {Stage::kLateral, {AttackKind::kInsiderMasquerade}, true, true},
        {Stage::kExfil, {AttackKind::kDnsTunnel}, true, false},
    };
  }
  if (name == "ics-takeover") {
    // ICS enclaves have no web tier: initial access goes through the
    // control/RPC service (novel exploit) and operator credentials.
    return {
        {Stage::kRecon, {AttackKind::kPortScan}, false, false},
        {Stage::kExploit,
         {AttackKind::kNovelExploit, AttackKind::kBruteForceLogin},
         false, true},
        {Stage::kLateral, {AttackKind::kInsiderMasquerade}, true, true},
        {Stage::kExfil, {AttackKind::kDnsTunnel}, true, false},
    };
  }
  if (name == "canbus-storm") {
    // Bus takeover: a novel frame-level exploit plus a flood that storms
    // the tiny-frame bus, then pivots to peers sharing the segment.
    return {
        {Stage::kRecon, {AttackKind::kPortScan}, false, false},
        {Stage::kExploit,
         {AttackKind::kNovelExploit, AttackKind::kSynFlood}, false, true},
        {Stage::kLateral, {AttackKind::kInsiderMasquerade}, true, true},
        {Stage::kExfil, {AttackKind::kDnsTunnel}, true, false},
    };
  }
  throw std::invalid_argument("KillChain::preset: unknown preset \"" +
                              name + "\"");
}

}  // namespace

KillChain KillChain::preset(const std::string& name, std::uint64_t seed,
                            SimTime stage_span, std::size_t attacker_pool,
                            std::size_t victim_pool) {
  const std::vector<StageSpec> spec = preset_spec(name);
  util::Rng rng(seed);
  KillChain chain(name);
  const double span = stage_span.sec();
  for (const StageSpec& s : spec) {
    ChainStage cs;
    cs.stage = s.stage;
    cs.pivot = s.pivot;
    cs.compromises = s.compromises;
    for (const AttackKind kind : s.kinds) {
      ScenarioStep step;
      step.when = SimTime::from_sec(rng.uniform(0.0, span));
      step.kind = kind;
      step.attacker_index =
          rng.index(std::max<std::size_t>(1, attacker_pool));
      step.victim_index = rng.index(std::max<std::size_t>(1, victim_pool));
      cs.steps.push_back(step);
    }
    std::sort(cs.steps.begin(), cs.steps.end(),
              [](const ScenarioStep& a, const ScenarioStep& b) {
                return a.when < b.when;
              });
    chain.add_stage(std::move(cs));
  }
  return chain;
}

const std::vector<std::string>& KillChain::preset_names() {
  static const std::vector<std::string> kNames = {
      "intrusion", "ics-takeover", "canbus-storm"};
  return kNames;
}

}  // namespace idseval::attack
