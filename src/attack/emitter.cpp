#include "attack/emitter.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "attack/patterns.hpp"
#include "traffic/payload.hpp"
#include "util/strfmt.hpp"

namespace idseval::attack {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimTime;
using netsim::TcpFlags;
using traffic::PayloadPool;
using util::cat;
namespace ports = netsim::ports;

AttackEmitter::AttackEmitter(netsim::Simulator& sim, netsim::Network& net,
                             traffic::TransactionLedger& ledger,
                             std::uint64_t seed, traffic::PayloadPool* pool)
    : sim_(sim),
      net_(net),
      ledger_(ledger),
      rng_(seed),
      owned_pool_(pool == nullptr
                      ? std::make_unique<PayloadPool>(
                            seed ^ util::hash64("attack-payloads"))
                      : nullptr),
      pool_(pool == nullptr ? owned_pool_.get() : pool) {}

std::uint64_t AttackEmitter::launch(AttackKind kind, Ipv4 attacker,
                                    Ipv4 victim, SimTime when) {
  ++stats_.attacks_launched;
  last_launch_end_ = when;
  switch (kind) {
    case AttackKind::kPortScan:
      return emit_port_scan(attacker, victim, when);
    case AttackKind::kSynFlood:
      return emit_syn_flood(attacker, victim, when);
    case AttackKind::kBruteForceLogin:
      return emit_brute_force(attacker, victim, when);
    case AttackKind::kWebExploit:
      return emit_web_exploit(attacker, victim, when);
    case AttackKind::kSmtpWorm:
      return emit_smtp_worm(attacker, victim, when);
    case AttackKind::kNovelExploit:
      return emit_novel_exploit(attacker, victim, when);
    case AttackKind::kDnsTunnel:
      return emit_dns_tunnel(attacker, victim, when);
    case AttackKind::kInsiderMasquerade:
      return emit_insider(attacker, victim, when);
    case AttackKind::kEvasiveExploit:
      return emit_evasive_exploit(attacker, victim, when);
    case AttackKind::kCount:
      break;
  }
  throw std::invalid_argument("AttackEmitter: bad kind");
}

std::uint64_t AttackEmitter::open_transaction(AttackKind kind,
                                              const FiveTuple& tuple,
                                              SimTime when) {
  const std::uint64_t flow_id = sim_.next_flow_id();
  const int stage = stage_override_ >= 0
                        ? stage_override_
                        : static_cast<int>(traits(kind).stage);
  ledger_.begin(flow_id, tuple, when, /*is_attack=*/true,
                static_cast<int>(kind), stage);
  return flow_id;
}

void AttackEmitter::send_at(SimTime when, std::uint64_t flow_id,
                            FiveTuple tuple, PayloadPool::Ref payload,
                            TcpFlags flags, std::uint32_t seq) {
  if (when > last_launch_end_) last_launch_end_ = when;
  sim_.schedule_at(when, [this, flow_id, tuple,
                          payload = std::move(payload), flags,
                          seq]() mutable {
    Packet p = netsim::make_packet(sim_.next_packet_id(), flow_id,
                                   sim_.now(), tuple, std::move(payload),
                                   flags);
    p.seq = seq;
    net_.send(p);
    ++stats_.packets_emitted;
    ledger_.touch(flow_id, sim_.now(), p.wire_bytes());
  });
}

std::uint64_t AttackEmitter::emit_port_scan(Ipv4 a, Ipv4 v, SimTime t) {
  // SYN probes walking a port range fast — classic fanout anomaly, and a
  // behaviour 2002-era signature engines shipped threshold rules for.
  FiveTuple base;
  base.src_ip = a;
  base.dst_ip = v;
  base.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  base.proto = Protocol::kTcp;
  const std::uint64_t flow = open_transaction(AttackKind::kPortScan, base, t);

  const int port_count = static_cast<int>(rng_.uniform_u64(60, 160));
  const auto start_port =
      static_cast<std::uint16_t>(rng_.uniform_u64(1, 1000));
  SimTime when = t;
  for (int i = 0; i < port_count; ++i) {
    FiveTuple tuple = base;
    tuple.dst_port = static_cast<std::uint16_t>(start_port + i);
    TcpFlags syn;
    syn.syn = true;
    send_at(when, flow, tuple, nullptr, syn, static_cast<std::uint32_t>(i));
    when += SimTime::from_ms(rng_.uniform(0.2, 1.5));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_syn_flood(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple base;
  base.src_ip = a;
  base.dst_ip = v;
  base.dst_port = ports::kHttp;
  base.proto = Protocol::kTcp;
  const std::uint64_t flow = open_transaction(AttackKind::kSynFlood, base, t);

  const int bursts = static_cast<int>(rng_.uniform_u64(400, 900));
  // With flood_train_ > 1, consecutive packets share one tick and the
  // inter-packet gap is drawn only at train boundaries (scaled by the
  // train length so the mean offered rate is unchanged) — the flood then
  // arrives as the same-tick delivery groups the batched fan-out path
  // coalesces. flood_train_ == 1 reproduces the legacy emission exactly,
  // including the RNG draw sequence.
  const std::uint32_t train = flood_train_;
  SimTime when = t;
  for (int i = 0; i < bursts; ++i) {
    FiveTuple tuple = base;
    // Spoofed ephemeral source ports, never completing the handshake.
    tuple.src_port =
        static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
    TcpFlags syn;
    syn.syn = true;
    send_at(when, flow, tuple, nullptr, syn, static_cast<std::uint32_t>(i));
    if ((static_cast<std::uint32_t>(i) + 1) % train == 0) {
      when += SimTime::from_us(rng_.uniform(50.0, 400.0) * train);
    }
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_brute_force(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kTelnet;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kBruteForceLogin, tuple, t);

  const int attempts = static_cast<int>(rng_.uniform_u64(30, 90));
  SimTime when = t;
  TcpFlags syn;
  syn.syn = true;
  send_at(when, flow, tuple, nullptr, syn, 0);
  for (int i = 0; i < attempts; ++i) {
    when += SimTime::from_ms(rng_.uniform(40.0, 160.0));
    TcpFlags ack;
    ack.ack = true;
    // Each attempt carries the canonical failure banner the server
    // echoes; only the rejected password varies across pool variants.
    send_at(when, flow, tuple,
            pool_->attack("brute.banner",
                          [](util::Rng& rng) {
                            return cat(patterns::kRootLogin,
                                       "\r\nPassword: ",
                                       traffic::random_printable(8, rng),
                                       "\r\n", patterns::kLoginFailed,
                                       "\r\n");
                          }),
            ack, static_cast<std::uint32_t>(i + 1));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_web_exploit(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kHttp;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kWebExploit, tuple, t);

  // The instance-level decisions (which exploit, whether a shellcode
  // header rides along) stay on the emitter's rng; the pool caches one
  // variant cycle per decision combination.
  const bool traversal = rng_.chance(0.5);
  const bool shell_header = rng_.chance(0.5);
  const char* family = traversal
                           ? (shell_header ? "web.traversal.shell"
                                           : "web.traversal")
                           : (shell_header ? "web.cmdexe.shell"
                                           : "web.cmdexe");
  PayloadPool::Ref payload = pool_->attack(
      family, [traversal, shell_header](util::Rng& rng) {
        const std::string exploit_path =
            traversal ? std::string(patterns::kDirTraversal)
                      : std::string(patterns::kCmdExe);
        std::string req =
            cat("GET ", exploit_path, " HTTP/1.0\r\nHost: ",
                traffic::random_hostname(rng),
                "\r\nUser-Agent: Mozilla/4.0\r\n");
        if (shell_header) {
          req += cat("X-Data: ", patterns::kNopSled,
                     patterns::kShellInvoke, " exec\r\n");
        }
        req += "\r\n";
        return req;
      });

  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, nullptr, syn, 0);
  TcpFlags ack;
  ack.ack = true;
  send_at(t + SimTime::from_ms(2), flow, tuple, std::move(payload), ack, 1);
  TcpFlags fin;
  fin.fin = true;
  fin.ack = true;
  send_at(t + SimTime::from_ms(6), flow, tuple, nullptr, fin, 2);
  return flow;
}

std::uint64_t AttackEmitter::emit_smtp_worm(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kSmtp;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow = open_transaction(AttackKind::kSmtpWorm, tuple, t);

  PayloadPool::Ref payload = pool_->attack("smtp.worm", [](util::Rng& rng) {
    return cat("HELO ", traffic::random_hostname(rng), "\r\nMAIL FROM:<",
               traffic::random_username(rng),
               "@infected.example>\r\nRCPT TO:<",
               traffic::random_username(rng), "@victim.example>\r\nDATA\r\n",
               patterns::kWormSubject, "\r\nContent-Disposition: attachment; ",
               patterns::kWormAttachment, "\r\n\r\n",
               traffic::random_printable(800, rng), "\r\n.\r\n");
  });

  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, nullptr, syn, 0);
  TcpFlags ack;
  ack.ack = true;
  send_at(t + SimTime::from_ms(3), flow, tuple, std::move(payload), ack, 1);
  return flow;
}

std::uint64_t AttackEmitter::emit_novel_exploit(Ipv4 a, Ipv4 v, SimTime t) {
  // A fresh exploit against the cluster-RPC service: shaped nothing like
  // the published patterns (signature engines miss it) but wildly unlike
  // normal RTBUS payloads (anomaly engines can catch it).
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kClusterRpc;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kNovelExploit, tuple, t);

  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, nullptr, syn, 0);
  TcpFlags ack;
  ack.ack = true;
  send_at(t + SimTime::from_ms(1), flow, tuple,
          pool_->attack("novel.head",
                        [](util::Rng& rng) {
                          return cat(patterns::kNovelMarker, " ",
                                     traffic::random_printable(1100, rng));
                        }),
          ack, 1);
  send_at(t + SimTime::from_ms(2), flow, tuple,
          pool_->attack("novel.body",
                        [](util::Rng& rng) {
                          return traffic::random_printable(1200, rng);
                        }),
          ack, 2);
  return flow;
}

std::uint64_t AttackEmitter::emit_dns_tunnel(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kDns;
  tuple.proto = Protocol::kUdp;
  const std::uint64_t flow = open_transaction(AttackKind::kDnsTunnel, tuple, t);

  const int queries = static_cast<int>(rng_.uniform_u64(25, 60));
  SimTime when = t;
  for (int i = 0; i < queries; ++i) {
    // Exfiltrated data chunked into absurdly long hex labels — textbook
    // tunneling over a protocol firewalls wave through (§2).
    send_at(when, flow, tuple,
            pool_->attack(
                "dns.tunnel",
                [](util::Rng& rng) {
                  std::string hexdata;
                  static constexpr char kHex[] = "0123456789abcdef";
                  for (int j = 0; j < 48; ++j) hexdata += kHex[rng.index(16)];
                  return cat("QUERY TXT ", hexdata, ".",
                             hexdata.substr(0, 24),
                             ".exfil.example ID=",
                             rng.uniform_u64(0, 65535));
                }),
            TcpFlags{}, static_cast<std::uint32_t>(i));
    when += SimTime::from_ms(rng_.uniform(20.0, 120.0));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_insider(Ipv4 a, Ipv4 v, SimTime t) {
  // A trusted internal host sweeping peers' admin services with valid-
  // looking (low-volume, well-formed) requests. No signature, low rate;
  // only fanout/novel-peer behaviour gives it away.
  FiveTuple base;
  base.src_ip = a;
  base.dst_ip = v;
  base.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  base.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kInsiderMasquerade, base, t);

  static constexpr std::uint16_t kAdminPorts[] = {
      ports::kTelnet, ports::kSsh, ports::kFtp, ports::kSnmp, ports::kPop3};
  SimTime when = t;
  int seq = 0;
  for (std::uint16_t port : kAdminPorts) {
    FiveTuple tuple = base;
    tuple.dst_port = port;
    TcpFlags syn;
    syn.syn = true;
    send_at(when, flow, tuple, nullptr, syn,
            static_cast<std::uint32_t>(seq++));
    when += SimTime::from_ms(rng_.uniform(100.0, 400.0));
    TcpFlags ack;
    ack.ack = true;
    send_at(when, flow, tuple,
            pool_->attack("insider.cmd",
                          [](util::Rng& rng) {
                            return cat("login: ",
                                       traffic::random_username(rng),
                                       "\r\n$ cat /etc/",
                                       rng.chance(0.5) ? "shadow"
                                                       : "hosts.equiv",
                                       "\r\n");
                          }),
            ack, static_cast<std::uint32_t>(seq++));
    when += SimTime::from_ms(rng_.uniform(200.0, 800.0));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_evasive_exploit(Ipv4 a, Ipv4 v,
                                                  SimTime t) {
  // The same published exploit content as kWebExploit, but deliberately
  // fragmented so every signature pattern straddles a packet boundary
  // (classic Ptacek-Newsham stream-level evasion). A per-packet matcher
  // sees only halves of each pattern; only a sensor that reassembles the
  // flow's byte stream sees the exploit. Fragments of one variant are
  // interned together so they always reassemble into a coherent request.
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kHttp;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kEvasiveExploit, tuple, t);

  const PayloadPool::Refs& fragments = pool_->attack_family(
      "evasive.fragments", [](util::Rng& rng) {
        const std::string request =
            cat("GET ", patterns::kDirTraversal, " HTTP/1.0\r\nHost: ",
                traffic::random_hostname(rng), "\r\nX-Data: ",
                patterns::kNopSled, patterns::kShellInvoke, " exec\r\n\r\n");
        // Split so each fragment ends mid-pattern: cut inside
        // "/../../etc/..." and inside the NOP sled. Fragment boundaries
        // are chosen relative to the known pattern offsets, exactly as an
        // evasion tool would.
        const std::size_t cut1 = request.find(patterns::kDirTraversal) + 6;
        const std::size_t cut2 = request.find(patterns::kNopSled) + 2;
        const std::size_t cut3 = request.find(patterns::kShellInvoke) + 4;
        std::vector<std::string> pieces;
        std::size_t prev = 0;
        for (const std::size_t cut : {cut1, cut2, cut3, request.size()}) {
          pieces.push_back(request.substr(prev, cut - prev));
          prev = cut;
        }
        return pieces;
      });

  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, nullptr, syn, 0);
  TcpFlags ack;
  ack.ack = true;
  std::uint32_t seq = 1;
  SimTime when = t + SimTime::from_ms(1);
  for (const PayloadPool::Ref& fragment : fragments) {
    send_at(when, flow, tuple, fragment, ack, seq++);
    when += SimTime::from_ms(rng_.uniform(1.0, 4.0));
  }
  TcpFlags fin;
  fin.fin = true;
  fin.ack = true;
  send_at(when, flow, tuple, nullptr, fin, seq);
  return flow;
}

}  // namespace idseval::attack
