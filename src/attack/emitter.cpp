#include "attack/emitter.hpp"

#include <stdexcept>
#include <string>

#include "attack/patterns.hpp"
#include "traffic/payload.hpp"
#include "util/strfmt.hpp"

namespace idseval::attack {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimTime;
using netsim::TcpFlags;
using util::cat;
namespace ports = netsim::ports;

AttackEmitter::AttackEmitter(netsim::Simulator& sim, netsim::Network& net,
                             traffic::TransactionLedger& ledger,
                             std::uint64_t seed)
    : sim_(sim), net_(net), ledger_(ledger), rng_(seed) {}

std::uint64_t AttackEmitter::launch(AttackKind kind, Ipv4 attacker,
                                    Ipv4 victim, SimTime when) {
  ++stats_.attacks_launched;
  switch (kind) {
    case AttackKind::kPortScan:
      return emit_port_scan(attacker, victim, when);
    case AttackKind::kSynFlood:
      return emit_syn_flood(attacker, victim, when);
    case AttackKind::kBruteForceLogin:
      return emit_brute_force(attacker, victim, when);
    case AttackKind::kWebExploit:
      return emit_web_exploit(attacker, victim, when);
    case AttackKind::kSmtpWorm:
      return emit_smtp_worm(attacker, victim, when);
    case AttackKind::kNovelExploit:
      return emit_novel_exploit(attacker, victim, when);
    case AttackKind::kDnsTunnel:
      return emit_dns_tunnel(attacker, victim, when);
    case AttackKind::kInsiderMasquerade:
      return emit_insider(attacker, victim, when);
    case AttackKind::kEvasiveExploit:
      return emit_evasive_exploit(attacker, victim, when);
    case AttackKind::kCount:
      break;
  }
  throw std::invalid_argument("AttackEmitter: bad kind");
}

std::uint64_t AttackEmitter::open_transaction(AttackKind kind,
                                              const FiveTuple& tuple,
                                              SimTime when) {
  const std::uint64_t flow_id = sim_.next_flow_id();
  ledger_.begin(flow_id, tuple, when, /*is_attack=*/true,
                static_cast<int>(kind));
  return flow_id;
}

void AttackEmitter::send_at(SimTime when, std::uint64_t flow_id,
                            FiveTuple tuple, std::string payload,
                            TcpFlags flags, std::uint32_t seq) {
  sim_.schedule_at(when, [this, flow_id, tuple, payload = std::move(payload),
                          flags, seq] {
    Packet p = netsim::make_packet(sim_.next_packet_id(), flow_id,
                                   sim_.now(), tuple, payload, flags);
    p.seq = seq;
    net_.send(p);
    ++stats_.packets_emitted;
    ledger_.touch(flow_id, sim_.now(), p.wire_bytes());
  });
}

std::uint64_t AttackEmitter::emit_port_scan(Ipv4 a, Ipv4 v, SimTime t) {
  // SYN probes walking a port range fast — classic fanout anomaly, and a
  // behaviour 2002-era signature engines shipped threshold rules for.
  FiveTuple base;
  base.src_ip = a;
  base.dst_ip = v;
  base.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  base.proto = Protocol::kTcp;
  const std::uint64_t flow = open_transaction(AttackKind::kPortScan, base, t);

  const int port_count = static_cast<int>(rng_.uniform_u64(60, 160));
  const auto start_port =
      static_cast<std::uint16_t>(rng_.uniform_u64(1, 1000));
  SimTime when = t;
  for (int i = 0; i < port_count; ++i) {
    FiveTuple tuple = base;
    tuple.dst_port = static_cast<std::uint16_t>(start_port + i);
    TcpFlags syn;
    syn.syn = true;
    send_at(when, flow, tuple, "", syn, static_cast<std::uint32_t>(i));
    when += SimTime::from_ms(rng_.uniform(0.2, 1.5));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_syn_flood(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple base;
  base.src_ip = a;
  base.dst_ip = v;
  base.dst_port = ports::kHttp;
  base.proto = Protocol::kTcp;
  const std::uint64_t flow = open_transaction(AttackKind::kSynFlood, base, t);

  const int bursts = static_cast<int>(rng_.uniform_u64(400, 900));
  SimTime when = t;
  for (int i = 0; i < bursts; ++i) {
    FiveTuple tuple = base;
    // Spoofed ephemeral source ports, never completing the handshake.
    tuple.src_port =
        static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
    TcpFlags syn;
    syn.syn = true;
    send_at(when, flow, tuple, "", syn, static_cast<std::uint32_t>(i));
    when += SimTime::from_us(rng_.uniform(50.0, 400.0));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_brute_force(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kTelnet;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kBruteForceLogin, tuple, t);

  const int attempts = static_cast<int>(rng_.uniform_u64(30, 90));
  SimTime when = t;
  TcpFlags syn;
  syn.syn = true;
  send_at(when, flow, tuple, "", syn, 0);
  for (int i = 0; i < attempts; ++i) {
    when += SimTime::from_ms(rng_.uniform(40.0, 160.0));
    TcpFlags ack;
    ack.ack = true;
    // Each attempt carries the canonical failure banner the server echoes.
    send_at(when, flow, tuple,
            cat(patterns::kRootLogin, "\r\nPassword: ",
                traffic::random_printable(8, rng_), "\r\n",
                patterns::kLoginFailed, "\r\n"),
            ack, static_cast<std::uint32_t>(i + 1));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_web_exploit(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kHttp;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kWebExploit, tuple, t);

  const bool traversal = rng_.chance(0.5);
  const std::string exploit_path =
      traversal ? std::string(patterns::kDirTraversal)
                : std::string(patterns::kCmdExe);
  std::string payload =
      cat("GET ", exploit_path, " HTTP/1.0\r\nHost: ",
          traffic::random_hostname(rng_), "\r\nUser-Agent: Mozilla/4.0\r\n");
  if (rng_.chance(0.5)) {
    payload += cat("X-Data: ", patterns::kNopSled, patterns::kShellInvoke,
                   " exec\r\n");
  }
  payload += "\r\n";

  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, "", syn, 0);
  TcpFlags ack;
  ack.ack = true;
  send_at(t + SimTime::from_ms(2), flow, tuple, std::move(payload), ack, 1);
  TcpFlags fin;
  fin.fin = true;
  fin.ack = true;
  send_at(t + SimTime::from_ms(6), flow, tuple, "", fin, 2);
  return flow;
}

std::uint64_t AttackEmitter::emit_smtp_worm(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kSmtp;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow = open_transaction(AttackKind::kSmtpWorm, tuple, t);

  std::string payload = cat(
      "HELO ", traffic::random_hostname(rng_), "\r\nMAIL FROM:<",
      traffic::random_username(rng_), "@infected.example>\r\nRCPT TO:<",
      traffic::random_username(rng_), "@victim.example>\r\nDATA\r\n",
      patterns::kWormSubject, "\r\nContent-Disposition: attachment; ",
      patterns::kWormAttachment, "\r\n\r\n",
      traffic::random_printable(800, rng_), "\r\n.\r\n");

  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, "", syn, 0);
  TcpFlags ack;
  ack.ack = true;
  send_at(t + SimTime::from_ms(3), flow, tuple, std::move(payload), ack, 1);
  return flow;
}

std::uint64_t AttackEmitter::emit_novel_exploit(Ipv4 a, Ipv4 v, SimTime t) {
  // A fresh exploit against the cluster-RPC service: shaped nothing like
  // the published patterns (signature engines miss it) but wildly unlike
  // normal RTBUS payloads (anomaly engines can catch it).
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kClusterRpc;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kNovelExploit, tuple, t);

  std::string payload =
      cat(patterns::kNovelMarker, " ",
          traffic::random_printable(1100, rng_));
  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, "", syn, 0);
  TcpFlags ack;
  ack.ack = true;
  send_at(t + SimTime::from_ms(1), flow, tuple, std::move(payload), ack, 1);
  send_at(t + SimTime::from_ms(2), flow, tuple,
          traffic::random_printable(1200, rng_), ack, 2);
  return flow;
}

std::uint64_t AttackEmitter::emit_dns_tunnel(Ipv4 a, Ipv4 v, SimTime t) {
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kDns;
  tuple.proto = Protocol::kUdp;
  const std::uint64_t flow = open_transaction(AttackKind::kDnsTunnel, tuple, t);

  const int queries = static_cast<int>(rng_.uniform_u64(25, 60));
  SimTime when = t;
  for (int i = 0; i < queries; ++i) {
    // Exfiltrated data chunked into absurdly long hex labels — textbook
    // tunneling over a protocol firewalls wave through (§2).
    std::string hexdata;
    static constexpr char kHex[] = "0123456789abcdef";
    for (int j = 0; j < 48; ++j) hexdata += kHex[rng_.index(16)];
    send_at(when, flow, tuple,
            cat("QUERY TXT ", hexdata, ".", hexdata.substr(0, 24),
                ".exfil.example ID=", rng_.uniform_u64(0, 65535)),
            TcpFlags{}, static_cast<std::uint32_t>(i));
    when += SimTime::from_ms(rng_.uniform(20.0, 120.0));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_insider(Ipv4 a, Ipv4 v, SimTime t) {
  // A trusted internal host sweeping peers' admin services with valid-
  // looking (low-volume, well-formed) requests. No signature, low rate;
  // only fanout/novel-peer behaviour gives it away.
  FiveTuple base;
  base.src_ip = a;
  base.dst_ip = v;
  base.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  base.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kInsiderMasquerade, base, t);

  static constexpr std::uint16_t kAdminPorts[] = {
      ports::kTelnet, ports::kSsh, ports::kFtp, ports::kSnmp, ports::kPop3};
  SimTime when = t;
  int seq = 0;
  for (std::uint16_t port : kAdminPorts) {
    FiveTuple tuple = base;
    tuple.dst_port = port;
    TcpFlags syn;
    syn.syn = true;
    send_at(when, flow, tuple, "", syn, static_cast<std::uint32_t>(seq++));
    when += SimTime::from_ms(rng_.uniform(100.0, 400.0));
    TcpFlags ack;
    ack.ack = true;
    send_at(when, flow, tuple,
            cat("login: ", traffic::random_username(rng_), "\r\n$ cat /etc/",
                rng_.chance(0.5) ? "shadow" : "hosts.equiv", "\r\n"),
            ack, static_cast<std::uint32_t>(seq++));
    when += SimTime::from_ms(rng_.uniform(200.0, 800.0));
  }
  return flow;
}

std::uint64_t AttackEmitter::emit_evasive_exploit(Ipv4 a, Ipv4 v,
                                                  SimTime t) {
  // The same published exploit content as kWebExploit, but deliberately
  // fragmented so every signature pattern straddles a packet boundary
  // (classic Ptacek-Newsham stream-level evasion). A per-packet matcher
  // sees only halves of each pattern; only a sensor that reassembles the
  // flow's byte stream sees the exploit.
  FiveTuple tuple;
  tuple.src_ip = a;
  tuple.dst_ip = v;
  tuple.src_port = static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = ports::kHttp;
  tuple.proto = Protocol::kTcp;
  const std::uint64_t flow =
      open_transaction(AttackKind::kEvasiveExploit, tuple, t);

  const std::string request =
      cat("GET ", patterns::kDirTraversal, " HTTP/1.0\r\nHost: ",
          traffic::random_hostname(rng_), "\r\nX-Data: ",
          patterns::kNopSled, patterns::kShellInvoke, " exec\r\n\r\n");

  TcpFlags syn;
  syn.syn = true;
  send_at(t, flow, tuple, "", syn, 0);
  TcpFlags ack;
  ack.ack = true;
  // Split so each fragment ends mid-pattern: cut inside "/../../etc/..."
  // and inside the NOP sled. Fragment boundaries are chosen relative to
  // the known pattern offsets, exactly as an evasion tool would.
  const std::size_t cut1 = request.find(patterns::kDirTraversal) + 6;
  const std::size_t cut2 = request.find(patterns::kNopSled) + 2;
  const std::size_t cut3 = request.find(patterns::kShellInvoke) + 4;
  std::uint32_t seq = 1;
  SimTime when = t + SimTime::from_ms(1);
  std::size_t prev = 0;
  for (const std::size_t cut : {cut1, cut2, cut3, request.size()}) {
    send_at(when, flow, tuple, request.substr(prev, cut - prev), ack,
            seq++);
    prev = cut;
    when += SimTime::from_ms(rng_.uniform(1.0, 4.0));
  }
  TcpFlags fin;
  fin.fin = true;
  fin.ack = true;
  send_at(when, flow, tuple, "", fin, seq);
  return flow;
}

}  // namespace idseval::attack
