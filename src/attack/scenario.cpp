#include "attack/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace idseval::attack {

using netsim::SimTime;

util::FlatMap<AttackKind, std::size_t> Scenario::histogram() const {
  util::FlatMap<AttackKind, std::size_t> counts;
  for (const auto& step : steps_) ++counts[step.kind];
  return counts;
}

std::vector<std::uint64_t> Scenario::run(
    AttackEmitter& emitter,
    const std::vector<netsim::Ipv4>& external_attackers,
    const std::vector<netsim::Ipv4>& internal_hosts) const {
  if (internal_hosts.empty()) {
    throw std::invalid_argument("Scenario::run: no internal hosts");
  }
  std::vector<std::uint64_t> flows;
  flows.reserve(steps_.size());
  for (const auto& step : steps_) {
    const bool insider = traits(step.kind).insider;
    const auto& attacker_pool =
        insider ? internal_hosts : external_attackers;
    if (attacker_pool.empty()) {
      throw std::invalid_argument("Scenario::run: empty attacker pool");
    }
    const netsim::Ipv4 attacker =
        attacker_pool[step.attacker_index % attacker_pool.size()];
    netsim::Ipv4 victim =
        internal_hosts[step.victim_index % internal_hosts.size()];
    if (insider && victim == attacker) {
      victim = internal_hosts[(step.victim_index + 1) % internal_hosts.size()];
    }
    flows.push_back(emitter.launch(step.kind, attacker, victim, step.when));
  }
  return flows;
}

Scenario Scenario::mixed(std::size_t per_kind, SimTime window_start,
                         SimTime window_end, std::uint64_t seed,
                         std::size_t attacker_pool,
                         std::size_t victim_pool) {
  std::vector<AttackKind> kinds;
  for (const auto& t : all_attack_traits()) kinds.push_back(t.kind);
  return of_kinds(kinds, per_kind, window_start, window_end, seed,
                  attacker_pool, victim_pool);
}

Scenario Scenario::of_kinds(const std::vector<AttackKind>& kinds,
                            std::size_t per_kind, SimTime window_start,
                            SimTime window_end, std::uint64_t seed,
                            std::size_t attacker_pool,
                            std::size_t victim_pool) {
  if (window_end < window_start) {
    throw std::invalid_argument("Scenario: window_end < window_start");
  }
  util::Rng rng(seed);
  Scenario scenario;
  const double span = (window_end - window_start).sec();
  for (const AttackKind kind : kinds) {
    for (std::size_t i = 0; i < per_kind; ++i) {
      ScenarioStep step;
      step.when = window_start + SimTime::from_sec(rng.uniform(0.0, span));
      step.kind = kind;
      step.attacker_index = rng.index(std::max<std::size_t>(1, attacker_pool));
      step.victim_index = rng.index(std::max<std::size_t>(1, victim_pool));
      scenario.add_step(step);
    }
  }
  // Launch order by time keeps logs readable; emitters don't require it.
  auto& steps = scenario.steps_;
  std::sort(steps.begin(), steps.end(),
            [](const ScenarioStep& a, const ScenarioStep& b) {
              return a.when < b.when;
            });
  return scenario;
}

}  // namespace idseval::attack
