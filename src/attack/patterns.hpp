// Canonical byte patterns of the *known* attacks. A real signature IDS
// ships a database distilled from published exploits; this header is that
// published knowledge. Product rule sets reference these constants —
// crucially, there is NO pattern here for kNovelExploit or kDnsTunnel:
// those are post-signature-release attacks, which is exactly why a
// signature-only IDS scores a non-zero observed false-negative ratio.
#pragma once

#include <array>
#include <string_view>

namespace idseval::attack::patterns {

// --- kWebExploit ----------------------------------------------------------
inline constexpr std::string_view kDirTraversal = "/../../etc/passwd";
inline constexpr std::string_view kCmdExe = "/scripts/..%c0%af../cmd.exe";
inline constexpr std::string_view kNopSled = "\x90\x90\x90\x90\x90\x90";
inline constexpr std::string_view kShellInvoke = "/bin/sh -c";

// --- kSmtpWorm -------------------------------------------------------------
inline constexpr std::string_view kWormSubject =
    "Subject: Important message for you";
inline constexpr std::string_view kWormAttachment =
    "filename=\"update.vbs\"";

// --- kBruteForceLogin -------------------------------------------------------
inline constexpr std::string_view kLoginFailed = "Login incorrect";
inline constexpr std::string_view kRootLogin = "login: root";

// --- kNovelExploit (documentation only: NOT in any shipped rule set) --------
// The emitter embeds this marker so tests can confirm signature engines
// genuinely miss it rather than coincidentally matching something else.
inline constexpr std::string_view kNovelMarker = "QZXV-OPAQUE-FRAME";

/// Patterns a year-2002-era signature database would ship. This is the
/// list product rule sets are built from.
inline constexpr std::array<std::string_view, 7> kPublished = {
    kDirTraversal, kCmdExe,      kNopSled,  kShellInvoke,
    kWormSubject,  kWormAttachment, kLoginFailed,
};

}  // namespace idseval::attack::patterns
