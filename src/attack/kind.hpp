// Attack catalog. Each kind is chosen to exercise a different detection
// surface from §2.1: known-signature payload attacks (what signature
// engines catch), rate/behaviour anomalies (what anomaly engines catch),
// novel payload attacks (signature engines miss by construction), and
// insider trust exploits (the distributed-system threat §3.3 highlights —
// "when one host is compromised, other systems that trust it may be very
// easily compromised in ways that may look like normal interactions").
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace idseval::attack {

enum class AttackKind : std::uint8_t {
  kPortScan = 0,        ///< SYN sweep across many ports.
  kSynFlood,            ///< Half-open connection flood (DoS).
  kBruteForceLogin,     ///< Repeated failed telnet logins.
  kWebExploit,          ///< Known HTTP exploit (traversal / cmd.exe).
  kSmtpWorm,            ///< Known mail worm payload.
  kNovelExploit,        ///< Zero-day-like payload: no published signature.
  kDnsTunnel,           ///< Exfiltration over "benign" DNS (§2 tunneling).
  kInsiderMasquerade,   ///< Compromised internal host probing peers.
  kEvasiveExploit,      ///< Known exploit split across packet boundaries
                        ///< (Ptacek-Newsham stream evasion): defeats
                        ///< per-packet matchers, caught by reassembly.
  kCount                ///< Sentinel.
};

inline constexpr std::size_t kAttackKindCount =
    static_cast<std::size_t>(AttackKind::kCount);

/// Static properties of an attack class, used by scenario builders and by
/// the harness when interpreting results (never by IDS detection logic).
struct AttackTraits {
  AttackKind kind;
  const char* name;
  /// A published signature exists (a signature DB can contain it).
  bool known_signature;
  /// Manifests as a traffic-rate / fanout anomaly.
  bool rate_anomalous;
  /// Manifests as anomalous payload content for its port.
  bool payload_anomalous;
  /// Originates from inside the protected enclave.
  bool insider;
  /// Severity 1 (nuisance) .. 5 (critical), for analyzer policy.
  int severity;
};

const AttackTraits& traits(AttackKind kind);
const std::array<AttackTraits, kAttackKindCount>& all_attack_traits();
std::string to_string(AttackKind kind);

}  // namespace idseval::attack
