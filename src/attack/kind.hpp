// Attack catalog. Each kind is chosen to exercise a different detection
// surface from §2.1: known-signature payload attacks (what signature
// engines catch), rate/behaviour anomalies (what anomaly engines catch),
// novel payload attacks (signature engines miss by construction), and
// insider trust exploits (the distributed-system threat §3.3 highlights —
// "when one host is compromised, other systems that trust it may be very
// easily compromised in ways that may look like normal interactions").
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace idseval::attack {

/// Kill-chain stage an attack class most naturally belongs to. Campaign
/// ground truth carries the stage a step actually ran in (a kill-chain may
/// reuse a kind in a different stage), but `AttackTraits::stage` provides
/// the default for flat scenarios.
enum class Stage : std::uint8_t {
  kRecon = 0,   ///< Discovery / scanning of the target enclave.
  kExploit,     ///< Initial access: exploit or credential attack.
  kLateral,     ///< Movement between internal hosts post-compromise.
  kExfil,       ///< Data staged out of the enclave.
  kCount        ///< Sentinel.
};

inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);

/// MITRE ATT&CK technique ids for the catalog, so scorecards can report
/// detection per technique in the vocabulary evaluators actually use.
enum class Technique : std::uint8_t {
  kT1046 = 0,   ///< Network Service Discovery (port scan).
  kT1498,       ///< Network Denial of Service (SYN flood).
  kT1110,       ///< Brute Force (login guessing).
  kT1190,       ///< Exploit Public-Facing Application.
  kT1566,       ///< Phishing / mail-borne payload (worm delivery).
  kT1210,       ///< Exploitation of Remote Services (novel exploit).
  kT1048,       ///< Exfiltration Over Alternative Protocol (DNS tunnel).
  kT1021,       ///< Remote Services (lateral movement via trusted creds).
  kCount        ///< Sentinel.
};

inline constexpr std::size_t kTechniqueCount =
    static_cast<std::size_t>(Technique::kCount);

enum class AttackKind : std::uint8_t {
  kPortScan = 0,        ///< SYN sweep across many ports.
  kSynFlood,            ///< Half-open connection flood (DoS).
  kBruteForceLogin,     ///< Repeated failed telnet logins.
  kWebExploit,          ///< Known HTTP exploit (traversal / cmd.exe).
  kSmtpWorm,            ///< Known mail worm payload.
  kNovelExploit,        ///< Zero-day-like payload: no published signature.
  kDnsTunnel,           ///< Exfiltration over "benign" DNS (§2 tunneling).
  kInsiderMasquerade,   ///< Compromised internal host probing peers.
  kEvasiveExploit,      ///< Known exploit split across packet boundaries
                        ///< (Ptacek-Newsham stream evasion): defeats
                        ///< per-packet matchers, caught by reassembly.
  kCount                ///< Sentinel.
};

inline constexpr std::size_t kAttackKindCount =
    static_cast<std::size_t>(AttackKind::kCount);

/// Static properties of an attack class, used by scenario builders and by
/// the harness when interpreting results (never by IDS detection logic).
struct AttackTraits {
  AttackKind kind;
  const char* name;
  /// A published signature exists (a signature DB can contain it).
  bool known_signature;
  /// Manifests as a traffic-rate / fanout anomaly.
  bool rate_anomalous;
  /// Manifests as anomalous payload content for its port.
  bool payload_anomalous;
  /// Originates from inside the protected enclave.
  bool insider;
  /// Severity 1 (nuisance) .. 5 (critical), for analyzer policy.
  int severity;
  /// Default kill-chain stage for flat (non-campaign) scenarios.
  Stage stage;
  /// MITRE ATT&CK technique this kind maps to.
  Technique technique;
};

const AttackTraits& traits(AttackKind kind);
const std::array<AttackTraits, kAttackKindCount>& all_attack_traits();
std::string to_string(AttackKind kind);
std::string to_string(Stage stage);
/// The ATT&CK id string, e.g. "T1046".
std::string attack_id(Technique technique);
/// A short human name for the technique, e.g. "network-service-discovery".
std::string to_string(Technique technique);

}  // namespace idseval::attack
