#include "telemetry/registry.hpp"

#include <algorithm>
#include <cmath>

#include "results/table.hpp"
#include "util/strfmt.hpp"

namespace idseval::telemetry {

namespace {

thread_local Registry* g_current = nullptr;

}  // namespace

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

LatencyStat& Registry::latency(std::string_view name) {
  const auto it = latencies_.find(name);
  if (it != latencies_.end()) return it->second;
  return latencies_.emplace(std::string(name), LatencyStat{}).first->second;
}

const Counter* Registry::find_counter(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const LatencyStat* Registry::find_latency(
    std::string_view name) const noexcept {
  const auto it = latencies_.find(name);
  return it == latencies_.end() ? nullptr : &it->second;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).increment(c.value());
  }
  for (const auto& [name, l] : other.latencies_) {
    latency(name).merge(l);
  }
}

void Registry::reset() noexcept {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, l] : latencies_) l.reset();
}

Registry* current() noexcept { return g_current; }

ScopedRegistry::ScopedRegistry(Registry* registry) noexcept
    : previous_(g_current) {
  g_current = registry;
}

ScopedRegistry::~ScopedRegistry() { g_current = previous_; }

Counter* counter_handle(std::string_view name) {
  Registry* r = current();
  return r == nullptr ? nullptr : &r->counter(name);
}

LatencyStat* latency_handle(std::string_view name) {
  Registry* r = current();
  return r == nullptr ? nullptr : &r->latency(name);
}

std::string scoped_name(std::string_view scope, std::string_view stage) {
  if (scope.empty()) return {};
  std::string out;
  out.reserve(scope.size() + 1 + stage.size());
  out.append(scope);
  out.push_back('.');
  out.append(stage);
  return out;
}

void count(std::string_view name, std::uint64_t n) {
  Registry* r = current();
  if (r != nullptr) r->counter(name).increment(n);
}

StageSummary summarize(const LatencyStat& stat) noexcept {
  StageSummary s;
  s.count = stat.stats().count();
  s.mean_sec = stat.stats().mean();
  s.max_sec = stat.stats().max();
  // The log2 histogram estimates quantiles at bucket midpoints, which
  // can exceed the true maximum; clamp so p99 <= max always holds.
  s.p99_sec = std::min(stat.histogram().quantile(0.99), s.max_sec);
  return s;
}

PipelineSnapshot snapshot_pipeline(const Registry& registry) {
  PipelineSnapshot snap;
  const auto counter_value = [&registry](std::string_view name) {
    const Counter* c = registry.find_counter(name);
    return c == nullptr ? std::uint64_t{0} : c->value();
  };
  const auto stage = [&registry](std::string_view name) {
    const LatencyStat* l = registry.find_latency(name);
    return l == nullptr ? StageSummary{} : summarize(*l);
  };
  snap.tapped = counter_value(names::kPipelineTapped);
  snap.filtered = counter_value(names::kPipelineFiltered);
  snap.lb_offered = counter_value(names::kLbOffered);
  snap.lb_dropped = counter_value(names::kLbDropped);
  snap.sensor_offered = counter_value(names::kSensorOffered);
  snap.sensor_dropped = counter_value(names::kSensorDropped);
  snap.detections = counter_value(names::kSensorDetections);
  snap.reports = counter_value(names::kAnalyzerReports);
  snap.alerts = counter_value(names::kMonitorAlerts);
  snap.blocks = counter_value(names::kConsoleBlocks);
  snap.lb_wait = stage(names::kLbQueueWait);
  snap.sensor_service = stage(names::kSensorService);
  snap.analyzer_batch = stage(names::kAnalyzerBatch);
  snap.monitor_alert = stage(names::kMonitorAlertLatency);
  return snap;
}

std::string fmt_duration(double seconds) {
  const double a = std::abs(seconds);
  if (a == 0.0) return "0";
  if (a < 1e-6) return util::fmt_fixed(seconds * 1e9, 1) + "ns";
  if (a < 1e-3) return util::fmt_fixed(seconds * 1e6, 1) + "us";
  if (a < 1.0) return util::fmt_fixed(seconds * 1e3, 2) + "ms";
  return util::fmt_fixed(seconds, 3) + "s";
}

results::Doc telemetry_stage_table(const PipelineSnapshot& snap) {
  results::TableBuilder table({"Stage", "Events", "Mean", "p99", "Max"},
                              {"left", "right", "right", "right", "right"});
  const auto add = [&table](std::string_view name,
                            const StageSummary& stage) {
    table.row({std::string(name), stage.count,
               stage.count ? results::Doc(fmt_duration(stage.mean_sec))
                           : results::Doc("-"),
               stage.count ? results::Doc(fmt_duration(stage.p99_sec))
                           : results::Doc("-"),
               stage.count ? results::Doc(fmt_duration(stage.max_sec))
                           : results::Doc("-")});
  };
  add(names::kLbQueueWait, snap.lb_wait);
  add(names::kSensorService, snap.sensor_service);
  add(names::kAnalyzerBatch, snap.analyzer_batch);
  add(names::kMonitorAlertLatency, snap.monitor_alert);
  return table.build();
}

namespace {

struct InstanceKey {
  int kind = 0;  // 0 = sensor, 1 = agent
  std::uint64_t index = 0;

  bool operator<(const InstanceKey& other) const noexcept {
    if (kind != other.kind) return kind < other.kind;
    return index < other.index;
  }
};

// Splits "sensor.3.offered" into instance key + trailing stage name;
// returns false for aggregate names like "sensor.offered".
bool parse_scoped(std::string_view name, InstanceKey& key,
                  std::string_view& stage) {
  int kind = 0;
  if (name.starts_with("sensor.")) {
    name.remove_prefix(7);
  } else if (name.starts_with("agent.")) {
    name.remove_prefix(6);
    kind = 1;
  } else {
    return false;
  }
  std::uint64_t index = 0;
  std::size_t digits = 0;
  while (digits < name.size() && name[digits] >= '0' && name[digits] <= '9') {
    index = index * 10 + static_cast<std::uint64_t>(name[digits] - '0');
    ++digits;
  }
  if (digits == 0 || digits >= name.size() || name[digits] != '.') {
    return false;
  }
  key.kind = kind;
  key.index = index;
  stage = name.substr(digits + 1);
  return true;
}

struct InstanceRow {
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t detections = 0;
  StageSummary service;
};

}  // namespace

results::Doc telemetry_instance_table(const Registry& registry) {
  std::map<InstanceKey, InstanceRow> instances;
  for (const auto& [name, counter] : registry.counters()) {
    InstanceKey key;
    std::string_view stage;
    if (!parse_scoped(name, key, stage)) continue;
    InstanceRow& row = instances[key];
    if (stage == "offered") {
      row.offered = counter.value();
    } else if (stage == "dropped") {
      row.dropped = counter.value();
    } else if (stage == "detections") {
      row.detections = counter.value();
    }
  }
  for (const auto& [name, stat] : registry.latencies()) {
    InstanceKey key;
    std::string_view stage;
    if (!parse_scoped(name, key, stage)) continue;
    if (stage == "service") instances[key].service = summarize(stat);
  }

  results::TableBuilder table(
      {"Instance", "Offered", "Dropped", "Detections", "Events", "Mean",
       "p99", "Max"},
      {"left", "right", "right", "right", "right", "right", "right",
       "right"});
  table.title("Per-instance sensors/agents");
  for (const auto& [key, row] : instances) {
    const StageSummary& s = row.service;
    table.row({util::cat(key.kind == 0 ? "sensor." : "agent.", key.index),
               row.offered, row.dropped, row.detections, s.count,
               s.count ? results::Doc(fmt_duration(s.mean_sec))
                       : results::Doc("-"),
               s.count ? results::Doc(fmt_duration(s.p99_sec))
                       : results::Doc("-"),
               s.count ? results::Doc(fmt_duration(s.max_sec))
                       : results::Doc("-")});
  }
  return table.build();
}

namespace {

std::string render_counter_lines(const PipelineSnapshot& snap) {
  std::string out = "=== Pipeline telemetry (measurement window) ===\n";
  out += util::cat("tapped=", snap.tapped, " filtered=", snap.filtered,
                   " lb_offered=", snap.lb_offered,
                   " lb_dropped=", snap.lb_dropped,
                   " sensor_offered=", snap.sensor_offered,
                   " sensor_dropped=", snap.sensor_dropped, "\n");
  out += util::cat("detections=", snap.detections,
                   " reports=", snap.reports, " alerts=", snap.alerts,
                   " blocks=", snap.blocks, "\n");
  return out;
}

}  // namespace

std::string render_telemetry(const PipelineSnapshot& snap) {
  return render_counter_lines(snap) +
         results::render_table_text(telemetry_stage_table(snap));
}

std::string render_telemetry(const PipelineSnapshot& snap,
                             const Registry& registry) {
  std::string out = render_telemetry(snap);
  const results::Doc instances = telemetry_instance_table(registry);
  if (instances.find("rows")->size() > 0) {
    out += results::render_table_text(instances);
  }
  return out;
}

}  // namespace idseval::telemetry
