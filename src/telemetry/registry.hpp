// Runtime telemetry for the evaluation pipeline: named counters and
// latency statistics collected per measurement run, so every score the
// harness produces is traceable to the stage-level behaviour that
// produced it. Recording is designed to be safe to leave permanently
// enabled: a component resolves its handles once at construction time
// (a map lookup), after which each observation is an increment or a
// Welford/histogram update — no locks, no allocation, no I/O.
//
// Scoping is thread-local: the harness installs a Registry around a unit
// of work (one evaluation, one campaign cell) with ScopedRegistry, and
// every component constructed on that thread while the scope is active
// records into it. With no registry installed, handles are null and all
// recording is a no-op. Because each campaign cell gets its own registry
// on its worker thread and aggregate merging happens in cell-index
// order, telemetry is byte-identical regardless of worker count — and it
// never feeds back into the seeded simulation, so enabling it cannot
// perturb results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "results/doc.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace idseval::telemetry {

/// Monotonic event counter. Window-scoped counters are reset by their
/// owning component's reset_stats(); others run for the registry's life.
class Counter {
 public:
  void increment(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }
  /// Raw cell for layers below telemetry (util::FlowTable binds plain
  /// uint64 cells); stable for the registry's lifetime like handles.
  std::uint64_t* cell() noexcept { return &value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Latency observations in seconds: Welford moments for mean/min/max
/// plus a log2 histogram for quantiles over many orders of magnitude.
class LatencyStat {
 public:
  void record(double seconds) noexcept {
    stats_.add(seconds);
    histogram_.add(seconds);
  }
  const util::RunningStats& stats() const noexcept { return stats_; }
  const util::LogHistogram& histogram() const noexcept { return histogram_; }
  void reset() noexcept {
    stats_.reset();
    histogram_ = util::LogHistogram{};
  }
  void merge(const LatencyStat& other) noexcept {
    stats_.merge(other.stats_);
    histogram_.merge(other.histogram_);
  }

 private:
  util::RunningStats stats_;
  util::LogHistogram histogram_;
};

/// Named instrument store. Handles returned by counter()/latency() stay
/// valid for the registry's lifetime (map nodes are address-stable), so
/// components resolve them once and record through raw pointers. Not
/// thread-safe by design: a registry belongs to exactly one thread (the
/// simulation is single-threaded per cell).
class Registry {
 public:
  Counter& counter(std::string_view name);
  LatencyStat& latency(std::string_view name);

  /// Lookup without creation; nullptr when the name was never recorded.
  const Counter* find_counter(std::string_view name) const noexcept;
  const LatencyStat* find_latency(std::string_view name) const noexcept;

  const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  const std::map<std::string, LatencyStat, std::less<>>& latencies()
      const noexcept {
    return latencies_;
  }

  /// Accumulates another registry (counters add, latencies merge) — THE
  /// deterministic merge primitive: map iteration is name-sorted, so two
  /// merges of the same registries in the same call order produce
  /// bit-identical aggregates regardless of insertion history. Callers
  /// own the call order: campaign aggregation merges per-cell registries
  /// in cell-index order, sharded runs merge per-shard registries in
  /// shard-index order.
  void merge_from(const Registry& other);
  /// Deprecated spelling of merge_from (kept for older call sites).
  void merge(const Registry& other) { merge_from(other); }
  void reset() noexcept;
  bool empty() const noexcept {
    return counters_.empty() && latencies_.empty();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, LatencyStat, std::less<>> latencies_;
};

/// The registry installed on this thread, or nullptr.
Registry* current() noexcept;

/// RAII install/restore of the thread's current registry.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry) noexcept;
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// Construction-time handle resolution: nullptr when no registry is
/// installed, in which case bump()/record() are no-ops.
Counter* counter_handle(std::string_view name);
LatencyStat* latency_handle(std::string_view name);

/// Raw counter cell, or nullptr without a registry — the binding shape
/// util::FlowTable accepts (util cannot depend on this layer).
inline std::uint64_t* counter_cell(std::string_view name) {
  Counter* counter = counter_handle(name);
  return counter == nullptr ? nullptr : counter->cell();
}

/// Binds a flow table's probe/lookup counts to the shared registry-wide
/// "flowtable.*" counters (no-op handles without a registry). All bound
/// tables aggregate into the same pair, giving the run's total table
/// traffic; per-table stats stay available via FlowTable::stats().
template <class Table>
void bind_flow_table(Table& table);

/// Builds per-instance stage names like "sensor.0.offered" from a scope
/// ("sensor.0") and a stage suffix ("offered"). Empty scope → empty
/// result, so callers can gate scoped handles on the scope being set.
std::string scoped_name(std::string_view scope, std::string_view stage);

inline void bump(Counter* c, std::uint64_t n = 1) noexcept {
  if (c != nullptr) c->increment(n);
}
inline void record(LatencyStat* l, double seconds) noexcept {
  if (l != nullptr) l->record(seconds);
}
inline void reset(Counter* c) noexcept {
  if (c != nullptr) c->reset();
}
inline void reset(LatencyStat* l) noexcept {
  if (l != nullptr) l->reset();
}

/// One-off counter bump by name (map lookup per call — for cold paths
/// like harness probes, not per-packet code).
void count(std::string_view name, std::uint64_t n = 1);

// Instrument naming scheme: "<stage>.<event>" counters and
// "<stage>.<quantity>" latency stats, stages ordered as traffic flows
// through Figure 1. Window-scoped instruments reset with the component's
// reset_stats(); switch.* counters are whole-run (the switch belongs to
// the network, not the IDS, and is never reset between windows).
namespace names {
inline constexpr std::string_view kSimCallbackFallbacks =
    "sim.callback_fallbacks";
inline constexpr std::string_view kPayloadPoolHits = "payload.pool_hits";
inline constexpr std::string_view kPayloadPoolMisses = "payload.pool_misses";
// Variants minted beyond the base cycle by adaptive per-kind growth
// (PayloadPool::enable_growth) for low-entropy payload kinds.
inline constexpr std::string_view kPayloadPoolGrown = "payload.pool_grown";
// Interned-payload scan cache (ids/scan_cache.hpp): engine memo traffic,
// aggregated across all signature/anomaly engines in the run.
inline constexpr std::string_view kScanCacheHits = "scan_cache.hits";
inline constexpr std::string_view kScanCacheMisses = "scan_cache.misses";
inline constexpr std::string_view kScanCacheBytesSaved =
    "scan_cache.bytes_saved";
inline constexpr std::string_view kScanCacheBoundaryRescans =
    "scan_cache.boundary_rescans";
inline constexpr std::string_view kSwitchMirrored = "switch.mirrored";
inline constexpr std::string_view kSwitchForwarded = "switch.forwarded";
inline constexpr std::string_view kSwitchBlocked = "switch.blocked";
inline constexpr std::string_view kPipelineTapped = "pipeline.tapped";
inline constexpr std::string_view kPipelineFiltered = "pipeline.filtered";
inline constexpr std::string_view kLbOffered = "lb.offered";
inline constexpr std::string_view kLbDropped = "lb.dropped";
inline constexpr std::string_view kLbQueueWait = "lb.queue_wait";
inline constexpr std::string_view kLbPinEvictions = "lb.pin_evictions";
inline constexpr std::string_view kFlowTableProbes = "flowtable.probes";
inline constexpr std::string_view kFlowTableLookups = "flowtable.lookups";
inline constexpr std::string_view kSensorOffered = "sensor.offered";
inline constexpr std::string_view kSensorDropped = "sensor.dropped";
inline constexpr std::string_view kSensorDetections = "sensor.detections";
inline constexpr std::string_view kSensorService = "sensor.service";
inline constexpr std::string_view kAnalyzerReports = "analyzer.reports";
inline constexpr std::string_view kAnalyzerBatch = "analyzer.batch";
inline constexpr std::string_view kMonitorAlerts = "monitor.alerts";
inline constexpr std::string_view kMonitorAlertLatency = "monitor.alert";
inline constexpr std::string_view kMonitorEvictions = "monitor.evictions";
inline constexpr std::string_view kConsoleBlocks = "console.blocks";
inline constexpr std::string_view kHarnessProbes = "harness.probes";
inline constexpr std::string_view kCampaignCellWall = "campaign.cell_wall";
}  // namespace names

/// Compact per-stage summary derived from a LatencyStat (quantile via
/// the log2 histogram's bucket midpoint).
struct StageSummary {
  std::uint64_t count = 0;
  double mean_sec = 0.0;
  double p99_sec = 0.0;
  double max_sec = 0.0;
};

/// The fixed set of pipeline instruments persisted with campaign cells
/// and rendered in evaluation reports. Everything in here derives from
/// simulation time and seeded behaviour only — never wall clock — so it
/// round-trips deterministically.
struct PipelineSnapshot {
  std::uint64_t tapped = 0;
  std::uint64_t filtered = 0;
  std::uint64_t lb_offered = 0;
  std::uint64_t lb_dropped = 0;
  std::uint64_t sensor_offered = 0;
  std::uint64_t sensor_dropped = 0;
  std::uint64_t detections = 0;
  std::uint64_t reports = 0;
  std::uint64_t alerts = 0;
  std::uint64_t blocks = 0;
  StageSummary lb_wait;
  StageSummary sensor_service;
  StageSummary analyzer_batch;
  StageSummary monitor_alert;

  bool empty() const noexcept {
    return tapped == 0 && filtered == 0 && lb_offered == 0 &&
           sensor_offered == 0 && detections == 0 && reports == 0 &&
           alerts == 0 && blocks == 0;
  }
};

StageSummary summarize(const LatencyStat& stat) noexcept;

/// Reads the pipeline instruments out of a registry (zeros for absent
/// names, so a registry that saw no traffic yields an empty snapshot).
PipelineSnapshot snapshot_pipeline(const Registry& registry);

/// Table-shaped Doc (see results/table.hpp) for the per-stage latency
/// table — the single source the text render and CSV export share.
results::Doc telemetry_stage_table(const PipelineSnapshot& snapshot);

/// Table-shaped Doc of per-instance scoped instruments ("sensor.N.*" /
/// "agent.N.*") found in `registry`, sensors before agents, numeric
/// instance order. Zero data rows when the registry carries none.
results::Doc telemetry_instance_table(const Registry& registry);

/// "Pipeline telemetry" report section: counters line + per-stage
/// latency table.
std::string render_telemetry(const PipelineSnapshot& snapshot);

/// As above, plus a per-instance sensor/agent table when `registry`
/// carries scoped instruments.
std::string render_telemetry(const PipelineSnapshot& snapshot,
                             const Registry& registry);

/// Human-readable duration with an adaptive unit (ns/us/ms/s).
std::string fmt_duration(double seconds);

template <class Table>
void bind_flow_table(Table& table) {
  table.bind_counters(counter_cell(names::kFlowTableProbes),
                      counter_cell(names::kFlowTableLookups));
}

}  // namespace idseval::telemetry
