#include "telemetry/trace.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <utility>

namespace idseval::telemetry {

TraceSink::TraceSink(std::string path, std::size_t capacity_lines,
                     bool background)
    : path_(std::move(path)),
      capacity_(capacity_lines),
      background_(background) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("telemetry trace: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (background_) {
    writer_ = std::thread([this] { writer_main(); });
  }
}

TraceSink::~TraceSink() { close(); }

void TraceSink::emit(std::string line) noexcept {
  std::scoped_lock lock(mutex_);
  if (closed_ || buffer_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  buffer_.push_back(std::move(line));
  ++emitted_;
  // No writer wake-up here: the background writer polls on a short tick
  // (see writer_main), so the producer-side cost of an emit is one
  // mutex'd push_back — no futex syscall per line.
}

void TraceSink::emit(const results::Doc& event) {
  emit(results::to_json(event));
}

// No fflush here: stdio buffering keeps writer drain cycles cheap, and
// durability points (flush()/close()) flush the FILE* themselves.
void TraceSink::write_lines(const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    std::fprintf(file_, "%s\n", line.c_str());
  }
}

void TraceSink::writer_main() {
  std::unique_lock lock(mutex_);
  std::vector<std::string> batch;
  for (;;) {
    // Timed wait instead of producer-notified: emits stay syscall-free
    // and the writer coalesces whatever accumulated over the tick into
    // one drain. flush()/close() notify to cut the tick short.
    cv_data_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return stop_ || (!paused_ && !buffer_.empty());
    });
    if (paused_ && !stop_) continue;
    if (!buffer_.empty() && (stop_ || !paused_)) {
      batch.clear();
      // Swap, don't re-reserve: the vectors keep whatever capacity they
      // grew organically, so steady state allocates nothing under the
      // lock.
      batch.swap(buffer_);
      writer_busy_ = true;
      lock.unlock();
      write_lines(batch);
      lock.lock();
      writer_busy_ = false;
      cv_idle_.notify_all();
      continue;
    }
    if (stop_) return;
  }
}

void TraceSink::flush() {
  std::unique_lock lock(mutex_);
  if (closed_) return;
  if (!background_) {
    write_lines(buffer_);
    buffer_.clear();
    std::fflush(file_);
    return;
  }
  if (paused_) return;  // writer held; nothing would drain
  cv_data_.notify_one();  // cut the writer's poll tick short
  cv_idle_.wait(lock, [this] { return buffer_.empty() && !writer_busy_; });
  // The writer is idle and new emits only land in the buffer, so the
  // FILE* is quiescent: flush it from here (stdio is internally locked
  // anyway should an emit race the drain back in).
  std::fflush(file_);
}

void TraceSink::pause_writer() {
  std::scoped_lock lock(mutex_);
  paused_ = true;
}

void TraceSink::resume_writer() {
  std::scoped_lock lock(mutex_);
  paused_ = false;
  cv_data_.notify_one();
}

void TraceSink::close() {
  {
    std::scoped_lock lock(mutex_);
    if (closed_) return;
    closed_ = true;
    paused_ = false;
    stop_ = true;
    cv_data_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
  // No writer (or it has exited) and closed_ blocks new emits, so the
  // remaining buffer is ours alone.
  write_lines(buffer_);
  buffer_.clear();
  results::Doc footer = results::Doc::object();
  footer.set("type", "trace_summary")
      .set("emitted", emitted_)
      .set("dropped", dropped_);
  std::fprintf(file_, "%s\n", results::to_json(footer).c_str());
  std::fclose(file_);
  file_ = nullptr;
}

std::uint64_t TraceSink::emitted() const noexcept {
  std::scoped_lock lock(mutex_);
  return emitted_;
}

std::uint64_t TraceSink::dropped() const noexcept {
  std::scoped_lock lock(mutex_);
  return dropped_;
}

std::string json_escape(std::string_view s) { return results::json_escape(s); }

results::Doc to_doc(const StageSummary& stage) {
  results::Doc doc = results::Doc::object();
  doc.set("count", stage.count)
      .set("mean_sec", stage.mean_sec)
      .set("p99_sec", stage.p99_sec)
      .set("max_sec", stage.max_sec);
  return doc;
}

results::Doc to_doc(const PipelineSnapshot& s) {
  results::Doc doc = results::Doc::object();
  doc.set("tapped", s.tapped)
      .set("filtered", s.filtered)
      .set("lb_offered", s.lb_offered)
      .set("lb_dropped", s.lb_dropped)
      .set("sensor_offered", s.sensor_offered)
      .set("sensor_dropped", s.sensor_dropped)
      .set("detections", s.detections)
      .set("reports", s.reports)
      .set("alerts", s.alerts)
      .set("blocks", s.blocks)
      .set("lb_wait", to_doc(s.lb_wait))
      .set("sensor_service", to_doc(s.sensor_service))
      .set("analyzer_batch", to_doc(s.analyzer_batch))
      .set("monitor_alert", to_doc(s.monitor_alert));
  return doc;
}

results::Doc to_doc(const Registry& registry) {
  results::Doc counters = results::Doc::object();
  for (const auto& [name, counter] : registry.counters()) {
    counters.set(name, counter.value());
  }
  results::Doc stages = results::Doc::object();
  for (const auto& [name, stat] : registry.latencies()) {
    const util::RunningStats& stats = stat.stats();
    const util::LogHistogram& hist = stat.histogram();
    results::Doc stage = results::Doc::object();
    stage.set("count", stats.count())
        .set("mean_sec", stats.mean())
        .set("min_sec", stats.min())
        .set("max_sec", stats.max())
        .set("p50_sec", hist.quantile(0.50))
        .set("p99_sec", hist.quantile(0.99))
        .set("zeros", hist.zeros());
    // Log2 buckets keyed by exponent: value counts in [2^e, 2^(e+1)).
    results::Doc buckets = results::Doc::object();
    for (std::size_t i = 0; i < hist.buckets(); ++i) {
      const std::uint64_t count = hist.bucket_count(i);
      if (count == 0) continue;
      buckets.set(
          std::to_string(util::LogHistogram::min_exp() + static_cast<int>(i)),
          count);
    }
    stage.set("log2_buckets", std::move(buckets));
    stages.set(name, std::move(stage));
  }
  results::Doc doc = results::Doc::object();
  doc.set("counters", std::move(counters)).set("stages", std::move(stages));
  return doc;
}

namespace {

[[noreturn]] void malformed(const char* what) {
  throw std::invalid_argument(std::string("snapshot_from_doc: ") + what);
}

std::uint64_t member_u64(const results::Doc& doc, const char* key) {
  const results::Doc* member = doc.find(key);
  if (member == nullptr) malformed("missing counter");
  return member->as_u64();
}

double member_double(const results::Doc& doc, const char* key) {
  const results::Doc* member = doc.find(key);
  if (member == nullptr) malformed("missing stage field");
  return member->as_double();
}

StageSummary stage_from_doc(const results::Doc& parent, const char* key) {
  const results::Doc* doc = parent.find(key);
  if (doc == nullptr || !doc->is_object()) malformed("missing stage");
  StageSummary stage;
  stage.count = member_u64(*doc, "count");
  stage.mean_sec = member_double(*doc, "mean_sec");
  stage.p99_sec = member_double(*doc, "p99_sec");
  stage.max_sec = member_double(*doc, "max_sec");
  return stage;
}

}  // namespace

PipelineSnapshot snapshot_from_doc(const results::Doc& doc) {
  if (!doc.is_object()) malformed("expected object");
  PipelineSnapshot s;
  s.tapped = member_u64(doc, "tapped");
  s.filtered = member_u64(doc, "filtered");
  s.lb_offered = member_u64(doc, "lb_offered");
  s.lb_dropped = member_u64(doc, "lb_dropped");
  s.sensor_offered = member_u64(doc, "sensor_offered");
  s.sensor_dropped = member_u64(doc, "sensor_dropped");
  s.detections = member_u64(doc, "detections");
  s.reports = member_u64(doc, "reports");
  s.alerts = member_u64(doc, "alerts");
  s.blocks = member_u64(doc, "blocks");
  s.lb_wait = stage_from_doc(doc, "lb_wait");
  s.sensor_service = stage_from_doc(doc, "sensor_service");
  s.analyzer_batch = stage_from_doc(doc, "analyzer_batch");
  s.monitor_alert = stage_from_doc(doc, "monitor_alert");
  return s;
}

std::string to_json(const StageSummary& stage) {
  return results::to_json(to_doc(stage));
}

std::string to_json(const PipelineSnapshot& snapshot) {
  return results::to_json(to_doc(snapshot));
}

std::string to_json(const Registry& registry) {
  return results::to_json(to_doc(registry));
}

bool validate_json_line(std::string_view line) {
  return results::validate_json_line(line);
}

namespace {

[[noreturn]] void schema_fail(const std::string& what) {
  throw std::invalid_argument("trace event: " + what);
}

/// Field kinds a trace-event schema can require. JSON round-trips
/// integral doubles back as integers, so "number" accepts any numeric
/// kind and "uint" accepts any non-negative integer kind.
enum class FieldKind { kString, kBool, kUint, kNumber, kRegistry };

struct FieldSpec {
  const char* name;
  FieldKind kind;
};

struct EventSchema {
  const char* type;
  std::vector<FieldSpec> fields;  ///< All required; nothing else allowed.
};

bool is_uint_like(const results::Doc& d) {
  if (d.kind() == results::Doc::Kind::kUint) return true;
  return d.kind() == results::Doc::Kind::kInt && d.as_i64() >= 0;
}

void check_registry_doc(const results::Doc& doc, const std::string& where) {
  if (!doc.is_object()) schema_fail(where + " must be an object");
  const results::Doc* counters = doc.find("counters");
  const results::Doc* stages = doc.find("stages");
  if (counters == nullptr || !counters->is_object()) {
    schema_fail(where + " is missing the counters object");
  }
  if (stages == nullptr || !stages->is_object()) {
    schema_fail(where + " is missing the stages object");
  }
  if (doc.size() != 2) schema_fail(where + " has unknown keys");
  // Counter names follow the "<stage>.<event>" scheme (registry.hpp
  // names::*, plus per-instance "sensor.N.*"/"agent.N.*" scopes). An
  // unknown stage prefix means a writer invented a name outside the
  // scheme — fail the trace rather than silently passing it through.
  constexpr std::string_view kCounterStagePrefixes[] = {
      "sim.",      "payload.",  "scan_cache.", "switch.",  "pipeline.",
      "lb.",       "flowtable.", "sensor.",    "agent.",   "analyzer.",
      "monitor.",  "console.",  "harness.",    "campaign.", "attack.",
  };
  for (const auto& [name, value] : counters->items()) {
    if (!is_uint_like(value)) {
      schema_fail(where + ".counters." + name +
                  " must be an unsigned integer");
    }
    bool known = false;
    for (const std::string_view prefix : kCounterStagePrefixes) {
      if (std::string_view{name}.substr(0, prefix.size()) == prefix) {
        known = true;
        break;
      }
    }
    if (!known) {
      schema_fail(where + ".counters." + name +
                  " has an unknown stage prefix");
    }
  }
  constexpr FieldSpec kStageFields[] = {
      {"count", FieldKind::kUint},    {"mean_sec", FieldKind::kNumber},
      {"min_sec", FieldKind::kNumber}, {"max_sec", FieldKind::kNumber},
      {"p50_sec", FieldKind::kNumber}, {"p99_sec", FieldKind::kNumber},
      {"zeros", FieldKind::kUint},
  };
  for (const auto& [name, stage] : stages->items()) {
    const std::string stage_where = where + ".stages." + name;
    if (!stage.is_object()) schema_fail(stage_where + " must be an object");
    for (const FieldSpec& field : kStageFields) {
      const results::Doc* value = stage.find(field.name);
      if (value == nullptr) {
        schema_fail(stage_where + " is missing " + field.name);
      }
      const bool ok = field.kind == FieldKind::kUint ? is_uint_like(*value)
                                                     : value->is_number();
      if (!ok) {
        schema_fail(stage_where + "." + field.name + " has the wrong type");
      }
    }
    const results::Doc* buckets = stage.find("log2_buckets");
    if (buckets == nullptr || !buckets->is_object()) {
      schema_fail(stage_where + " is missing the log2_buckets object");
    }
    if (stage.size() != std::size(kStageFields) + 1) {
      schema_fail(stage_where + " has unknown keys");
    }
    for (const auto& [exp, count] : buckets->items()) {
      if (exp.empty() ||
          exp.find_first_not_of("-0123456789") != std::string::npos) {
        schema_fail(stage_where + ".log2_buckets key '" + exp +
                    "' is not an exponent");
      }
      if (!is_uint_like(count)) {
        schema_fail(stage_where + ".log2_buckets." + exp +
                    " must be an unsigned integer");
      }
    }
  }
}

const std::vector<EventSchema>& event_schemas() {
  static const std::vector<EventSchema> kSchemas = {
      {"evaluation",
       {{"type", FieldKind::kString},
        {"product", FieldKind::kString},
        {"profile", FieldKind::kString},
        {"seed", FieldKind::kUint},
        {"telemetry", FieldKind::kRegistry}}},
      {"load_probes",
       {{"type", FieldKind::kString},
        {"product", FieldKind::kString},
        {"profile", FieldKind::kString},
        {"seed", FieldKind::kUint},
        {"telemetry", FieldKind::kRegistry}}},
      {"cell",
       {{"type", FieldKind::kString},
        {"index", FieldKind::kUint},
        {"product", FieldKind::kString},
        {"profile", FieldKind::kString},
        {"sensitivity", FieldKind::kNumber},
        {"replicate", FieldKind::kUint},
        {"seed", FieldKind::kUint},
        {"ok", FieldKind::kBool},
        {"error", FieldKind::kString},
        {"telemetry", FieldKind::kRegistry}}},
      {"campaign_begin",
       {{"type", FieldKind::kString},
        {"name", FieldKind::kString},
        {"cells", FieldKind::kUint},
        {"jobs", FieldKind::kUint}}},
      {"campaign_end",
       {{"type", FieldKind::kString},
        {"name", FieldKind::kString},
        {"executed", FieldKind::kUint},
        {"failed", FieldKind::kUint},
        {"telemetry", FieldKind::kRegistry}}},
      {"trace_summary",
       {{"type", FieldKind::kString},
        {"emitted", FieldKind::kUint},
        {"dropped", FieldKind::kUint}}},
  };
  return kSchemas;
}

}  // namespace

void check_trace_event(const results::Doc& event) {
  if (!event.is_object()) schema_fail("expected an object");
  const results::Doc* type = event.find("type");
  if (type == nullptr || !type->is_string()) {
    schema_fail("missing string 'type' field");
  }
  const EventSchema* schema = nullptr;
  for (const EventSchema& candidate : event_schemas()) {
    if (type->as_string() == candidate.type) {
      schema = &candidate;
      break;
    }
  }
  if (schema == nullptr) {
    schema_fail("unknown type '" + type->as_string() + "'");
  }
  const std::string prefix = type->as_string();
  for (const auto& [key, value] : event.items()) {
    const FieldSpec* spec = nullptr;
    for (const FieldSpec& field : schema->fields) {
      if (key == field.name) {
        spec = &field;
        break;
      }
    }
    if (spec == nullptr) {
      schema_fail(prefix + " has unknown key '" + key + "'");
    }
    bool ok = true;
    switch (spec->kind) {
      case FieldKind::kString: ok = value.is_string(); break;
      case FieldKind::kBool: ok = value.is_bool(); break;
      case FieldKind::kUint: ok = is_uint_like(value); break;
      case FieldKind::kNumber: ok = value.is_number(); break;
      case FieldKind::kRegistry:
        check_registry_doc(value, prefix + "." + key);
        break;
    }
    if (!ok) schema_fail(prefix + "." + key + " has the wrong type");
  }
  for (const FieldSpec& field : schema->fields) {
    if (event.find(field.name) == nullptr) {
      schema_fail(prefix + " is missing required field '" +
                  std::string(field.name) + "'");
    }
  }
}

}  // namespace idseval::telemetry
