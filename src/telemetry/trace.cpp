#include "telemetry/trace.hpp"

#include <cctype>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace idseval::telemetry {

TraceSink::TraceSink(std::string path, std::size_t capacity_lines)
    : path_(std::move(path)), capacity_(capacity_lines) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("telemetry trace: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  buffer_.reserve(capacity_);
}

TraceSink::~TraceSink() { close(); }

void TraceSink::emit(std::string line) noexcept {
  std::scoped_lock lock(mutex_);
  if (closed_ || buffer_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  buffer_.push_back(std::move(line));
  ++emitted_;
}

void TraceSink::flush_locked() {
  for (const std::string& line : buffer_) {
    std::fprintf(file_, "%s\n", line.c_str());
  }
  buffer_.clear();
  std::fflush(file_);
}

void TraceSink::flush() {
  std::scoped_lock lock(mutex_);
  if (closed_) return;
  flush_locked();
}

void TraceSink::close() {
  std::scoped_lock lock(mutex_);
  if (closed_) return;
  flush_locked();
  std::fprintf(file_,
               "{\"type\":\"trace_summary\",\"emitted\":%llu,"
               "\"dropped\":%llu}\n",
               static_cast<unsigned long long>(emitted_),
               static_cast<unsigned long long>(dropped_));
  std::fclose(file_);
  file_ = nullptr;
  closed_ = true;
}

std::uint64_t TraceSink::emitted() const noexcept {
  std::scoped_lock lock(mutex_);
  return emitted_;
}

std::uint64_t TraceSink::dropped() const noexcept {
  std::scoped_lock lock(mutex_);
  return dropped_;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_json(const StageSummary& stage) {
  std::ostringstream out;
  out << "{\"count\":" << stage.count
      << ",\"mean_sec\":" << fmt_exact(stage.mean_sec)
      << ",\"p99_sec\":" << fmt_exact(stage.p99_sec)
      << ",\"max_sec\":" << fmt_exact(stage.max_sec) << "}";
  return out.str();
}

std::string to_json(const PipelineSnapshot& s) {
  std::ostringstream out;
  out << "{\"tapped\":" << s.tapped << ",\"filtered\":" << s.filtered
      << ",\"lb_offered\":" << s.lb_offered
      << ",\"lb_dropped\":" << s.lb_dropped
      << ",\"sensor_offered\":" << s.sensor_offered
      << ",\"sensor_dropped\":" << s.sensor_dropped
      << ",\"detections\":" << s.detections << ",\"reports\":" << s.reports
      << ",\"alerts\":" << s.alerts << ",\"blocks\":" << s.blocks
      << ",\"lb_wait\":" << to_json(s.lb_wait)
      << ",\"sensor_service\":" << to_json(s.sensor_service)
      << ",\"analyzer_batch\":" << to_json(s.analyzer_batch)
      << ",\"monitor_alert\":" << to_json(s.monitor_alert) << "}";
  return out.str();
}

std::string to_json(const Registry& registry) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << counter.value();
  }
  out << "},\"stages\":{";
  first = true;
  for (const auto& [name, stat] : registry.latencies()) {
    if (!first) out << ",";
    first = false;
    const util::RunningStats& stats = stat.stats();
    const util::LogHistogram& hist = stat.histogram();
    out << "\"" << json_escape(name) << "\":{\"count\":" << stats.count()
        << ",\"mean_sec\":" << fmt_exact(stats.mean())
        << ",\"min_sec\":" << fmt_exact(stats.min())
        << ",\"max_sec\":" << fmt_exact(stats.max())
        << ",\"p50_sec\":" << fmt_exact(hist.quantile(0.50))
        << ",\"p99_sec\":" << fmt_exact(hist.quantile(0.99));
    // Log2 buckets keyed by exponent: value counts in [2^e, 2^(e+1)).
    out << ",\"zeros\":" << hist.zeros() << ",\"log2_buckets\":{";
    bool first_bucket = true;
    for (std::size_t i = 0; i < hist.buckets(); ++i) {
      const std::uint64_t count = hist.bucket_count(i);
      if (count == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "\"" << util::LogHistogram::min_exp() + static_cast<int>(i)
          << "\":" << count;
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

namespace {

/// Recursive-descent JSON checker (structure only, no value capture).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool check() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      if (peek() != ',') return false;
      ++pos_;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      if (peek() != ',') return false;
      ++pos_;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(
                    static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    // Require at least one digit (and not "-" / "." alone).
    for (std::size_t i = start; i < pos_; ++i) {
      if (std::isdigit(static_cast<unsigned char>(text_[i]))) return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool validate_json_line(std::string_view line) {
  return JsonChecker(line).check();
}

}  // namespace idseval::telemetry
