// JSONL event-trace sink for telemetry, plus the Doc serializations the
// campaign store and the trace share. Producers enqueue pre-rendered
// lines into a bounded buffer; a dedicated background writer thread
// drains it and performs all file I/O, so tracing adds no I/O inside
// timed regions even without explicit flush points. When the bounded
// buffer fills, lines are dropped and counted rather than blocking —
// the drop counter is written into the trace_summary footer so a
// distorted trace is self-incriminating. The writer only changes *who*
// performs I/O, never content or order: one mutex-serialized FIFO feeds
// it, so background and synchronous runs produce byte-identical files.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "results/doc.hpp"
#include "telemetry/registry.hpp"

namespace idseval::telemetry {

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Opens `path` for writing (truncates). Throws std::runtime_error if
  /// the file cannot be opened. `capacity_lines` bounds the in-memory
  /// buffer between drains. With `background` (the default) a dedicated
  /// writer thread drains the buffer as lines arrive; without it the
  /// buffer only drains at explicit flush()/close() calls (the
  /// single-threaded reference mode trace-check compares against).
  explicit TraceSink(std::string path,
                     std::size_t capacity_lines = kDefaultCapacity,
                     bool background = true);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Buffers one JSON line (no trailing newline). Never performs file
  /// I/O on the calling thread; drops the line (and counts the drop)
  /// when the buffer is full. Thread-safe.
  void emit(std::string line) noexcept;

  /// Renders `event` to compact JSON and buffers it.
  void emit(const results::Doc& event);

  /// Synchronous mode: writes buffered lines to the file. Background
  /// mode: blocks until the writer thread has drained everything
  /// buffered so far (no-op while paused — resume first). Call at
  /// work-unit boundaries, never inside a timed region.
  void flush();

  /// Drains, writes the trace_summary footer, and closes the file.
  /// Idempotent; also invoked by the destructor.
  void close();

  /// Test hooks: holding the writer makes drop accounting deterministic
  /// (pause, overfill the buffer, observe counted drops, resume).
  void pause_writer();
  void resume_writer();

  bool background() const noexcept { return background_; }
  const std::string& path() const noexcept { return path_; }
  std::uint64_t emitted() const noexcept;
  std::uint64_t dropped() const noexcept;

 private:
  void writer_main();
  /// Writes and fflushes `lines`; caller must not hold mutex_.
  void write_lines(const std::vector<std::string>& lines);

  std::string path_;
  std::size_t capacity_;
  bool background_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable cv_data_;
  std::condition_variable cv_idle_;
  std::thread writer_;
  std::vector<std::string> buffer_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  bool writer_busy_ = false;
  bool paused_ = false;
  bool stop_ = false;
  bool closed_ = false;
};

/// JSON string escaping shared by trace events (RFC 8259, via results).
std::string json_escape(std::string_view s);

/// Doc views of the telemetry types (fixed key order, exact doubles) —
/// the one serialization the trace, store, and CLI all share.
results::Doc to_doc(const StageSummary& stage);
results::Doc to_doc(const PipelineSnapshot& snapshot);
/// Full registry dump including per-stage log2 histogram buckets — the
/// trace-side view ("per-stage latency histograms").
results::Doc to_doc(const Registry& registry);

/// Rebuilds a PipelineSnapshot from its to_doc form (store rows).
/// Throws std::invalid_argument on a malformed document.
PipelineSnapshot snapshot_from_doc(const results::Doc& doc);

/// Deterministic serializations (results::to_json over to_doc).
std::string to_json(const StageSummary& stage);
std::string to_json(const PipelineSnapshot& snapshot);
std::string to_json(const Registry& registry);

/// Strict single-line JSON validator for trace-checking: accepts one
/// complete JSON value (object/array/string/number/bool/null) with
/// nothing but whitespace after it.
bool validate_json_line(std::string_view line);

/// Doc-level schema validation for one trace event. Every event type
/// the writers emit (evaluation, load_probes, cell, campaign_begin,
/// campaign_end, trace_summary) has a fixed field list; this checks the
/// type is known, every required field is present with the right kind,
/// no unknown keys ride along, and embedded telemetry registries have
/// the full counters/stages/log2_buckets shape. Throws
/// std::invalid_argument naming the first violation.
void check_trace_event(const results::Doc& event);

}  // namespace idseval::telemetry
