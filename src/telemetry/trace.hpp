// JSONL event-trace sink for telemetry, plus the JSON serialization the
// campaign store and the trace share. The sink buffers whole lines in
// memory and only touches the file at explicit flush points (cell
// boundaries, close), so tracing adds no I/O inside timed regions; when
// the bounded buffer fills, lines are dropped and counted rather than
// blocking — the drop counter is written into the trace_summary footer
// so a distorted trace is self-incriminating.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace idseval::telemetry {

class TraceSink {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error if
  /// the file cannot be opened. `capacity_lines` bounds the in-memory
  /// buffer between flushes.
  explicit TraceSink(std::string path, std::size_t capacity_lines = 4096);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Buffers one JSON line (no trailing newline). Never performs file
  /// I/O; drops the line (and counts the drop) when the buffer is full.
  /// Thread-safe.
  void emit(std::string line) noexcept;

  /// Writes buffered lines to the file. Call at work-unit boundaries
  /// (between campaign cells), never inside a timed region.
  void flush();

  /// Flushes, writes the trace_summary footer, and closes the file.
  /// Idempotent; also invoked by the destructor.
  void close();

  const std::string& path() const noexcept { return path_; }
  std::uint64_t emitted() const noexcept;
  std::uint64_t dropped() const noexcept;

 private:
  void flush_locked();

  std::string path_;
  std::size_t capacity_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  std::vector<std::string> buffer_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  bool closed_ = false;
};

/// JSON string escaping shared by trace events.
std::string json_escape(std::string_view s);

/// Deterministic serializations (fixed key order, %.17g doubles).
std::string to_json(const StageSummary& stage);
std::string to_json(const PipelineSnapshot& snapshot);
/// Full registry dump including per-stage log2 histogram buckets — the
/// trace-side view ("per-stage latency histograms").
std::string to_json(const Registry& registry);

/// Strict single-line JSON validator for trace-checking: accepts one
/// complete JSON value (object/array/string/number/bool/null) with
/// nothing but whitespace after it.
bool validate_json_line(std::string_view line);

}  // namespace idseval::telemetry
