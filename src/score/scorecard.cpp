#include "score/scorecard.hpp"

namespace idseval::score {

UnifiedScore unified_score(const CostInputs& in, const CostWeights& w) {
  UnifiedScore s;
  s.miss_cost = w.missed_attack * static_cast<double>(in.missed_attacks);
  s.false_alarm_cost =
      w.false_alarm * static_cast<double>(in.false_alarms);
  // Latency matters per detection: a detection that takes a minute to
  // surface costs response time on every attack it covers.
  s.latency_cost = w.latency_per_sec * in.mean_detection_latency_sec *
                   static_cast<double>(in.true_detections);
  s.resource_cost = w.host_cpu_fraction * in.mean_host_ids_cpu +
                    w.induced_latency_ms * 1000.0 * in.induced_latency_sec;
  s.total_cost =
      s.miss_cost + s.false_alarm_cost + s.latency_cost + s.resource_cost;
  s.baseline_cost = w.missed_attack * static_cast<double>(in.attacks);
  s.capability = s.baseline_cost > 0.0
                     ? (s.baseline_cost - s.total_cost) / s.baseline_cost
                     : 0.0;
  return s;
}

results::Doc to_doc(const UnifiedScore& score) {
  return results::Doc::object()
      .set("miss_cost", score.miss_cost)
      .set("false_alarm_cost", score.false_alarm_cost)
      .set("latency_cost", score.latency_cost)
      .set("resource_cost", score.resource_cost)
      .set("total_cost", score.total_cost)
      .set("baseline_cost", score.baseline_cost)
      .set("capability", score.capability);
}

results::Doc to_doc(const CostWeights& weights) {
  return results::Doc::object()
      .set("missed_attack", weights.missed_attack)
      .set("false_alarm", weights.false_alarm)
      .set("latency_per_sec", weights.latency_per_sec)
      .set("host_cpu_fraction", weights.host_cpu_fraction)
      .set("induced_latency_ms", weights.induced_latency_ms);
}

}  // namespace idseval::score
