#include "score/roc.hpp"

#include <algorithm>

namespace idseval::score {

RocCurve::RocCurve(const std::vector<ScoreSample>& samples) {
  attack_keys_.reserve(samples.size());
  benign_keys_.reserve(samples.size());
  for (const ScoreSample& s : samples) {
    const Key key{s.critical_sensitivity, s.strict ? 1 : 0};
    if (s.is_attack) {
      attack_keys_.push_back(key);
    } else {
      benign_keys_.push_back(key);
    }
  }
  std::sort(attack_keys_.begin(), attack_keys_.end());
  std::sort(benign_keys_.begin(), benign_keys_.end());
  attacks_n_ = attack_keys_.size();
  benign_n_ = benign_keys_.size();

  // Walk both sorted key lists in merged order, emitting one operating
  // point per distinct key (every threshold between two adjacent keys
  // fires the same set, so these are all the distinct points).
  points_.push_back(RocPoint{});  // nothing fires below the lowest key
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < attack_keys_.size() || b < benign_keys_.size()) {
    const Key key = [&] {
      if (a == attack_keys_.size()) return benign_keys_[b];
      if (b == benign_keys_.size()) return attack_keys_[a];
      return std::min(attack_keys_[a], benign_keys_[b]);
    }();
    if (key.first == kNeverFires) break;  // evidence-free tail
    while (a < attack_keys_.size() && attack_keys_[a] == key) ++a;
    while (b < benign_keys_.size() && benign_keys_[b] == key) ++b;
    RocPoint p;
    p.threshold = key.first;
    p.tpr = attacks_n_ == 0
                ? 0.0
                : static_cast<double>(a) / static_cast<double>(attacks_n_);
    p.fpr = benign_n_ == 0
                ? 0.0
                : static_cast<double>(b) / static_cast<double>(benign_n_);
    points_.push_back(p);
  }
  points_.front().threshold =
      points_.size() > 1 ? points_[1].threshold : 0.0;
}

std::size_t RocCurve::fired_before(const std::vector<Key>& keys,
                                   double s) const {
  // A sample fires at s iff key < (s, 1): strict keys need crit < s,
  // non-strict fire at crit == s too.
  const Key probe{s, 1};
  return static_cast<std::size_t>(
      std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
}

ErrorCounts RocCurve::error_rate_at(double sensitivity) const {
  ErrorCounts c;
  c.sensitivity = sensitivity;
  c.attacks = attacks_n_;
  c.benign = benign_n_;
  c.transactions = attacks_n_ + benign_n_;
  c.detected_attacks = fired_before(attack_keys_, sensitivity);
  c.missed_attacks = attacks_n_ - c.detected_attacks;
  c.false_alarms = fired_before(benign_keys_, sensitivity);
  const double total = static_cast<double>(c.transactions);
  if (total > 0.0) {
    c.fp_ratio = static_cast<double>(c.false_alarms) / total;
    c.fn_ratio = static_cast<double>(c.missed_attacks) / total;
  }
  if (benign_n_ > 0) {
    c.fp_percent_of_benign = 100.0 * static_cast<double>(c.false_alarms) /
                             static_cast<double>(benign_n_);
  }
  if (attacks_n_ > 0) {
    c.fn_percent_of_attacks = 100.0 *
                              static_cast<double>(c.missed_attacks) /
                              static_cast<double>(attacks_n_);
  }
  return c;
}

double RocCurve::auc() const {
  if (attacks_n_ == 0 || benign_n_ == 0) return 0.0;
  double area = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dx = points_[i].fpr - points_[i - 1].fpr;
    area += 0.5 * dx * (points_[i].tpr + points_[i - 1].tpr);
  }
  // Past the last reachable point the detector cannot fire on anything
  // further; the curve continues horizontally at the final tpr.
  area += (1.0 - points_.back().fpr) * points_.back().tpr;
  return area;
}

RocEer RocCurve::eer() const {
  RocEer eer;
  if (attacks_n_ == 0 || benign_n_ == 0) return eer;
  // FN% starts at 100 and falls; FP% starts at 0 and rises. Find the
  // first operating point where FN% <= FP% and interpolate the crossing
  // against the previous point, in threshold (sensitivity) units.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double fn0 = 100.0 * (1.0 - points_[i - 1].tpr);
    const double fp0 = 100.0 * points_[i - 1].fpr;
    const double fn1 = 100.0 * (1.0 - points_[i].tpr);
    const double fp1 = 100.0 * points_[i].fpr;
    const double d0 = fn0 - fp0;
    const double d1 = fn1 - fp1;
    if (d0 >= 0.0 && d1 <= 0.0) {
      const double span = d0 - d1;
      const double t = span == 0.0 ? 0.5 : d0 / span;
      eer.sensitivity = points_[i - 1].threshold +
                        t * (points_[i].threshold - points_[i - 1].threshold);
      eer.error_percent = fp0 + t * (fp1 - fp0);
      eer.found = true;
      return eer;
    }
  }
  return eer;
}

}  // namespace idseval::score
