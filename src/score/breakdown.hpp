// Per-technique and per-stage detection breakdown for kill-chain
// campaigns (ATT&CK-based dataset-evaluation framing): every labeled
// attack transaction carries its kind (→ MITRE ATT&CK technique) and the
// kill-chain stage it ran in, so a run's ground truth aggregates into
// detection counts, rates, and mean alert latency per technique and per
// stage, plus the "chain broken at stage k" summary — the earliest stage
// whose flows the managing console actually blocked. Rendered through the
// results::Doc table layer (text, CSV, HTML all share one source).
#pragma once

#include <cstddef>
#include <vector>

#include "results/doc.hpp"

namespace idseval::score {

/// One labeled attack transaction joined with its detection outcome.
struct BreakdownInput {
  int kind = -1;       ///< attack::AttackKind as int (required, >= 0).
  int stage = -1;      ///< attack::Stage as int; < 0 falls back to the
                       ///< kind's default stage from AttackTraits.
  bool detected = false;
  bool prevented = false;   ///< Blocked by the console (chain severed).
  bool has_latency = false; ///< True when `latency_sec` carries a sample.
  double latency_sec = 0.0; ///< Attack start → first alert.
};

/// Aggregated outcome counts shared by technique and stage rows.
struct BreakdownCounts {
  std::size_t launched = 0;
  std::size_t detected = 0;
  std::size_t prevented = 0;
  std::size_t latency_samples = 0;
  double latency_sum_sec = 0.0;

  double detection_rate() const noexcept {
    return launched == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(launched);
  }
  double mean_latency_sec() const noexcept {
    return latency_samples == 0
               ? 0.0
               : latency_sum_sec / static_cast<double>(latency_samples);
  }
};

/// Counts for one (stage, technique) cell. A technique may appear under
/// several stages when a campaign reuses it (e.g. T1190 recon vs exploit).
struct TechniqueRow : BreakdownCounts {
  int stage = 0;      ///< attack::Stage as int.
  int technique = 0;  ///< attack::Technique as int.
};

/// Counts for one kill-chain stage.
struct StageRow : BreakdownCounts {
  int stage = 0;  ///< attack::Stage as int.
};

struct DetectionBreakdown {
  /// Sorted by (stage, technique).
  std::vector<TechniqueRow> techniques;
  /// Sorted by stage order (recon → exploit → lateral → exfil).
  std::vector<StageRow> stages;
  /// Earliest stage (attack::Stage as int) with at least one prevented
  /// flow — the point where the console severed the chain; -1 when the
  /// campaign ran to completion unblocked.
  int chain_broken_at = -1;

  bool empty() const noexcept { return stages.empty(); }
};

/// Aggregates labeled outcomes. Inputs with kind < 0 (benign) are
/// ignored; stage < 0 falls back to the kind's default AttackTraits
/// stage, so flat pre-campaign scenarios break down too.
DetectionBreakdown compute_breakdown(
    const std::vector<BreakdownInput>& inputs);

/// Per-technique table: stage, ATT&CK id, technique name, launched,
/// detected, prevented, detection rate, mean latency. Null Doc when the
/// breakdown is empty (no labeled attacks).
results::Doc technique_table_doc(const DetectionBreakdown& b);

/// Per-stage rollup table with the chain-broken marker; null Doc when
/// the breakdown is empty.
results::Doc stage_table_doc(const DetectionBreakdown& b);

}  // namespace idseval::score
