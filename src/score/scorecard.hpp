// Unified cost/capability scorecard, after Iannacone & Bridges, "Quantify-
// ing & Characterizing IDS Performance" (arXiv:1902.00053): collapse a
// product's detection errors, detection latency, and resource overhead
// into one expected operating cost under explicit unit-cost weights, then
// normalize against the do-nothing baseline (every attack missed, zero
// overhead). The resulting capability score is directly comparable across
// products and environments: 1 = perfect, 0 = no better than running no
// IDS at all, negative = the IDS costs more than it saves. Rendered via
// the results::Doc layer beside the paper's three class scores.
#pragma once

#include <cstddef>

#include "results/doc.hpp"

namespace idseval::score {

/// Unit costs, in arbitrary-but-consistent "analyst cost units". The
/// defaults encode the usual asymmetry: a missed attack costs an order
/// of magnitude more than a false alarm, and resource overhead matters
/// but never dominates detection.
struct CostWeights {
  double missed_attack = 20.0;      ///< Per attack transaction missed.
  double false_alarm = 1.0;         ///< Per benign transaction alarmed.
  double latency_per_sec = 0.5;     ///< Per detected attack, per second
                                    ///< from occurrence to report.
  double host_cpu_fraction = 50.0;  ///< Per unit of mean host CPU the
                                    ///< IDS consumes (0..1).
  double induced_latency_ms = 2.0;  ///< Per millisecond added to
                                    ///< production delivery latency.
};

/// Measured quantities the cost model consumes; all come from a single
/// detection run plus the load probes (X1 host overhead, induced
/// latency), so the unified score needs no score ledger.
struct CostInputs {
  std::size_t transactions = 0;
  std::size_t attacks = 0;
  std::size_t missed_attacks = 0;
  std::size_t false_alarms = 0;
  std::size_t true_detections = 0;
  double mean_detection_latency_sec = 0.0;
  double mean_host_ids_cpu = 0.0;  ///< Fraction of host CPU (0..1).
  double induced_latency_sec = 0.0;
};

struct UnifiedScore {
  double miss_cost = 0.0;
  double false_alarm_cost = 0.0;
  double latency_cost = 0.0;
  double resource_cost = 0.0;
  double total_cost = 0.0;
  /// Cost of running no IDS at all: every attack missed, no overhead.
  double baseline_cost = 0.0;
  /// (baseline - total) / baseline; 0 when the baseline is empty (an
  /// attack-free window has nothing to defend).
  double capability = 0.0;
};

UnifiedScore unified_score(const CostInputs& in,
                           const CostWeights& weights = {});

/// Doc rendering (stable key order) for reports and campaign rows.
results::Doc to_doc(const UnifiedScore& score);
results::Doc to_doc(const CostWeights& weights);

}  // namespace idseval::score
