#include "score/ledger.hpp"

#include <algorithm>

#include "telemetry/registry.hpp"

namespace idseval::score {

ScoreLedger::ScoreLedger() { telemetry::bind_flow_table(by_flow_); }

void ScoreLedger::observe(std::uint64_t flow_id,
                          ids::EvidenceChannel channel, double strength,
                          double critical_sensitivity, bool strict_trigger) {
  ++observations_;
  FlowEvidence& ev = *by_flow_.try_emplace(flow_id).first;
  ++ev.observations;
  ev.max_strength = std::max(ev.max_strength, strength);
  // Earlier-firing evidence wins: lower critical sensitivity, or equal
  // critical but inclusive (non-strict) firing.
  const bool earlier =
      critical_sensitivity < ev.critical_sensitivity ||
      (critical_sensitivity == ev.critical_sensitivity && !strict_trigger &&
       ev.strict);
  if (earlier) {
    ev.critical_sensitivity = critical_sensitivity;
    ev.strict = strict_trigger;
    ev.channel = channel;
  }
}

const ScoreLedger::FlowEvidence* ScoreLedger::find(
    std::uint64_t flow_id) const {
  return by_flow_.find(flow_id);
}

void ScoreLedger::merge_from(const ScoreLedger& other) {
  observations_ += other.observations_;
  other.by_flow_.for_each(
      [this](const std::uint64_t& flow_id, const FlowEvidence& oev) {
        FlowEvidence& ev = *by_flow_.try_emplace(flow_id).first;
        ev.observations += oev.observations;
        ev.max_strength = std::max(ev.max_strength, oev.max_strength);
        const bool earlier =
            oev.critical_sensitivity < ev.critical_sensitivity ||
            (oev.critical_sensitivity == ev.critical_sensitivity &&
             !oev.strict && ev.strict);
        if (earlier) {
          ev.critical_sensitivity = oev.critical_sensitivity;
          ev.strict = oev.strict;
          ev.channel = oev.channel;
        }
      });
}

void ScoreLedger::finalize(const traffic::TransactionLedger& truth,
                           netsim::SimTime begin, netsim::SimTime end) {
  samples_.clear();
  for (const traffic::Transaction* t : truth.all()) {
    if (t->start < begin || t->start >= end) continue;
    ScoreSample s;
    s.flow_id = t->flow_id;
    s.is_attack = t->is_attack;
    s.attack_kind = t->attack_kind;
    s.attack_stage = t->attack_stage;
    if (const FlowEvidence* ev = find(t->flow_id)) {
      s.has_evidence = true;
      s.critical_sensitivity = ev->critical_sensitivity;
      s.strict = ev->strict;
      s.strength = ev->max_strength;
    }
    samples_.push_back(s);
  }
  finalized_ = true;
}

void ScoreLedger::reset() {
  by_flow_.clear();
  samples_.clear();
  observations_ = 0;
  finalized_ = false;
}

}  // namespace idseval::score
