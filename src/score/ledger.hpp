// ScoreLedger: records, per flow, the strongest continuous detector
// evidence observed during a measurement window — the earliest-firing
// critical sensitivity across every engine channel plus the raw score
// behind it. Joined against the ground-truth TransactionLedger it yields
// the ScoreSamples that RocCurve turns into a full sensitivity sweep
// offline. The ledger is an ids::EvidenceSink, installed on a pipeline
// via Pipeline::set_evidence_sink; it is off by default and attaching it
// never changes detection output (golden determinism hash untouched).
#pragma once

#include <cstdint>
#include <vector>

#include "ids/evidence.hpp"
#include "netsim/sim_time.hpp"
#include "score/roc.hpp"
#include "traffic/ledger.hpp"
#include "util/flow_table.hpp"

namespace idseval::score {

class ScoreLedger final : public ids::EvidenceSink {
 public:
  ScoreLedger();

  /// Running per-flow maximum of evidence: the observation that fires at
  /// the lowest sensitivity wins (non-strict beats strict on a tie,
  /// because it fires at the critical value itself).
  struct FlowEvidence {
    double critical_sensitivity = kNeverFires;
    bool strict = true;
    ids::EvidenceChannel channel = ids::EvidenceChannel::kSignaturePattern;
    double max_strength = 0.0;  ///< Strongest raw score on any channel.
    std::uint64_t observations = 0;
  };

  void observe(std::uint64_t flow_id, ids::EvidenceChannel channel,
               double strength, double critical_sensitivity,
               bool strict_trigger) override;

  std::size_t flows() const noexcept { return by_flow_.size(); }
  std::uint64_t observations() const noexcept { return observations_; }
  const FlowEvidence* find(std::uint64_t flow_id) const;

  /// Joins recorded evidence with ground truth: one ScoreSample per
  /// transaction whose start lies in [begin, end) — the same windowing
  /// the testbed uses when scoring a run. Stores the result for
  /// samples(); callable once per run (the harness calls it while
  /// collecting).
  void finalize(const traffic::TransactionLedger& truth,
                netsim::SimTime begin, netsim::SimTime end);

  bool finalized() const noexcept { return finalized_; }
  const std::vector<ScoreSample>& samples() const noexcept {
    return samples_;
  }

  /// Folds another ledger's evidence into this one with the same
  /// earliest-evidence-wins rule observe() applies, so a set of per-shard
  /// ledgers merged in shard order finalizes to exactly the samples a
  /// single serially-fed ledger would have produced (the combine is pure
  /// selection — min/max picks, never arithmetic on doubles). Must be
  /// called before finalize().
  void merge_from(const ScoreLedger& other);

  /// Clears all recorded evidence and finalized samples for reuse.
  void reset();

 private:
  util::FlowTable<std::uint64_t, FlowEvidence> by_flow_;
  std::vector<ScoreSample> samples_;
  std::uint64_t observations_ = 0;
  bool finalized_ = false;
};

}  // namespace idseval::score
