#include "score/breakdown.hpp"

#include <algorithm>

#include "attack/kind.hpp"
#include "results/table.hpp"
#include "util/flat_map.hpp"
#include "util/strfmt.hpp"

namespace idseval::score {

namespace {

void fold(BreakdownCounts& counts, const BreakdownInput& in) {
  ++counts.launched;
  if (in.detected) ++counts.detected;
  if (in.prevented) ++counts.prevented;
  if (in.has_latency) {
    ++counts.latency_samples;
    counts.latency_sum_sec += in.latency_sec;
  }
}

}  // namespace

DetectionBreakdown compute_breakdown(
    const std::vector<BreakdownInput>& inputs) {
  DetectionBreakdown b;
  // (stage << 8) | technique keys the technique cells; FlatMap keeps both
  // maps in the final sorted order for free.
  util::FlatMap<int, TechniqueRow> techniques;
  util::FlatMap<int, StageRow> stages;
  for (const BreakdownInput& in : inputs) {
    if (in.kind < 0 ||
        in.kind >= static_cast<int>(attack::kAttackKindCount)) {
      continue;
    }
    const attack::AttackTraits& traits =
        attack::traits(static_cast<attack::AttackKind>(in.kind));
    const int stage =
        in.stage >= 0 && in.stage < static_cast<int>(attack::kStageCount)
            ? in.stage
            : static_cast<int>(traits.stage);
    const int technique = static_cast<int>(traits.technique);

    TechniqueRow& trow = techniques[(stage << 8) | technique];
    trow.stage = stage;
    trow.technique = technique;
    fold(trow, in);

    StageRow& srow = stages[stage];
    srow.stage = stage;
    fold(srow, in);
  }
  b.techniques.reserve(techniques.size());
  for (const auto& [key, row] : techniques) b.techniques.push_back(row);
  b.stages.reserve(stages.size());
  for (const auto& [key, row] : stages) b.stages.push_back(row);
  for (const StageRow& row : b.stages) {
    if (row.prevented > 0) {
      b.chain_broken_at = row.stage;
      break;
    }
  }
  return b;
}

results::Doc technique_table_doc(const DetectionBreakdown& b) {
  if (b.empty()) return results::Doc();
  results::TableBuilder table(
      {"stage", "attck", "technique", "launched", "detected", "prevented",
       "det_rate", "mean_latency_s"},
      {"left", "left", "left", "right", "right", "right", "right",
       "right"});
  table.title("Detection by ATT&CK technique");
  for (const TechniqueRow& row : b.techniques) {
    const auto technique = static_cast<attack::Technique>(row.technique);
    table.row({attack::to_string(static_cast<attack::Stage>(row.stage)),
               attack::attack_id(technique), attack::to_string(technique),
               row.launched, row.detected, row.prevented,
               util::fmt_fixed(row.detection_rate(), 3),
               util::fmt_fixed(row.mean_latency_sec(), 3)});
  }
  return table.build();
}

results::Doc stage_table_doc(const DetectionBreakdown& b) {
  if (b.empty()) return results::Doc();
  results::TableBuilder table(
      {"stage", "launched", "detected", "prevented", "det_rate",
       "mean_latency_s", "chain"},
      {"left", "right", "right", "right", "right", "right", "left"});
  table.title("Detection by kill-chain stage");
  for (const StageRow& row : b.stages) {
    table.row({attack::to_string(static_cast<attack::Stage>(row.stage)),
               row.launched, row.detected, row.prevented,
               util::fmt_fixed(row.detection_rate(), 3),
               util::fmt_fixed(row.mean_latency_sec(), 3),
               row.stage == b.chain_broken_at ? "broken-here" : ""});
  }
  return table.build();
}

}  // namespace idseval::score
