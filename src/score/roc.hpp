// Offline sweep engine: turns one recorded ScoreLedger into the whole
// Figure 4 analysis. Each ground-truth transaction carries the minimal
// sensitivity at which its strongest evidence fires, so "run the testbed
// at sensitivity s" reduces to a binary search over sorted critical
// sensitivities — Type I/II error rates for every threshold, the full
// ROC with AUC, and an interpolated equal error rate, all from a single
// simulation instead of one per sweep point.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace idseval::score {

/// Critical sensitivity of a transaction that produced no evidence: no
/// knob setting makes it fire.
inline constexpr double kNeverFires =
    std::numeric_limits<double>::infinity();

/// One ground-truth transaction joined with its strongest evidence.
struct ScoreSample {
  std::uint64_t flow_id = 0;
  bool is_attack = false;
  bool has_evidence = false;
  /// Minimal sensitivity at which any evidence on this flow fires.
  /// May fall outside [0, 1]: below 0 fires at any knob setting, above 1
  /// never fires on the knob's range.
  double critical_sensitivity = kNeverFires;
  /// True when firing needs s > critical (anomaly z-triggers); false for
  /// the inclusive gates (s >= critical).
  bool strict = false;
  double strength = 0.0;  ///< Strongest raw evidence on any channel.
  /// Ground-truth labels carried over from the transaction: attack kind
  /// (attack::AttackKind as int) and kill-chain stage (attack::Stage as
  /// int); -1 for benign flows (stage also -1 on pre-campaign ledgers).
  int attack_kind = -1;
  int attack_stage = -1;
};

/// Transaction-level confusion at one sensitivity, in the same shape the
/// re-simulated sweep reports (Figure 3 ratios + percent-of-class).
struct ErrorCounts {
  double sensitivity = 0.5;
  std::size_t transactions = 0;
  std::size_t attacks = 0;
  std::size_t benign = 0;
  std::size_t detected_attacks = 0;
  std::size_t missed_attacks = 0;
  std::size_t false_alarms = 0;
  double fp_ratio = 0.0;                ///< |D-A| / |T|
  double fn_ratio = 0.0;                ///< |A-D| / |T|
  double fp_percent_of_benign = 0.0;
  double fn_percent_of_attacks = 0.0;
};

/// One ROC operating point: the confusion after admitting every sample
/// whose evidence fires at `threshold`.
struct RocPoint {
  double threshold = 0.0;  ///< Sensitivity units (score space).
  double fpr = 0.0;        ///< False-positive rate over benign.
  double tpr = 0.0;        ///< True-positive rate over attacks.
};

/// Score-space equal error rate (continuous-threshold analogue of the
/// harness grid EER).
struct RocEer {
  double sensitivity = 0.0;    ///< Threshold where the curves cross.
  double error_percent = 0.0;  ///< Common error level at the crossing.
  bool found = false;
};

class RocCurve {
 public:
  RocCurve() = default;
  explicit RocCurve(const std::vector<ScoreSample>& samples);

  std::size_t transactions() const noexcept { return attacks_n_ + benign_n_; }
  std::size_t attacks() const noexcept { return attacks_n_; }
  std::size_t benign() const noexcept { return benign_n_; }

  /// Confusion at one sensitivity — two binary searches, no simulation.
  ErrorCounts error_rate_at(double sensitivity) const;

  /// Operating points at every distinct critical sensitivity, in
  /// increasing-threshold (hence nondecreasing fpr/tpr) order, starting
  /// from the implicit (0, 0). The curve ends at the detector's reachable
  /// maximum — samples without evidence never fire, so (1, 1) is not
  /// fabricated.
  const std::vector<RocPoint>& points() const noexcept { return points_; }

  /// Trapezoidal area under the ROC over fpr in [0, 1], extending the
  /// final reachable tpr horizontally to fpr = 1. Zero when either class
  /// is empty (no curve to integrate).
  double auc() const;

  /// Crossing of the FN%-of-attacks and FP%-of-benign step curves,
  /// linearly interpolated between adjacent distinct thresholds (the
  /// same convention as harness::equal_error_rate on grid points).
  /// Not found when either class is empty or the curves never cross.
  RocEer eer() const;

 private:
  /// Firing order key: (critical sensitivity, strictness). A sample
  /// fires at s iff its key < (s, 1) lexicographically — non-strict
  /// samples (flag 0) fire at equality, strict ones (flag 1) just above.
  using Key = std::pair<double, int>;

  std::size_t fired_before(const std::vector<Key>& keys, double s) const;

  std::vector<Key> attack_keys_;  ///< Sorted ascending.
  std::vector<Key> benign_keys_;  ///< Sorted ascending.
  std::size_t attacks_n_ = 0;
  std::size_t benign_n_ = 0;
  std::vector<RocPoint> points_;
};

}  // namespace idseval::score
