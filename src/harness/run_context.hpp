// RunContext: the one object a unit of evaluation work (an evaluate
// call, a rank slot, a campaign cell, a load probe) records into. It
// owns (or borrows) the telemetry Registry and carries the trace sink,
// so the harness-facing API is explicit — callers hand a context down
// instead of installing thread-local registries around calls. The
// thread-local scoping the instruments rely on still exists, but only
// as an implementation detail behind RunContext::Scope.
#pragma once

#include <cstdint>
#include <string_view>

#include "results/doc.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace idseval::score {
class ScoreLedger;
}  // namespace idseval::score

namespace idseval::harness {

class RunContext {
 public:
  /// Self-owned registry, no trace.
  RunContext() noexcept : registry_(&owned_) {}
  /// Self-owned registry, events to `trace` (may be null).
  explicit RunContext(telemetry::TraceSink* trace) noexcept
      : registry_(&owned_), trace_(trace) {}
  /// Records into `external` (falls back to the owned registry when
  /// null) — lets a caller accumulate several work units into one
  /// registry it already holds, e.g. Measurements::load_probe_telemetry.
  explicit RunContext(telemetry::Registry* external,
                      telemetry::TraceSink* trace = nullptr) noexcept
      : registry_(external != nullptr ? external : &owned_), trace_(trace) {}

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  telemetry::Registry& registry() noexcept { return *registry_; }
  const telemetry::Registry& registry() const noexcept { return *registry_; }
  telemetry::TraceSink* trace() const noexcept { return trace_; }

  /// Optional score ledger, threaded through like the registry: when
  /// set, evaluation detection runs record per-transaction evidence into
  /// it (Testbed::set_score_ledger). Null by default — recording is
  /// strictly opt-in so ordinary runs stay byte-identical.
  void set_score_ledger(score::ScoreLedger* ledger) noexcept {
    score_ledger_ = ledger;
  }
  score::ScoreLedger* score_ledger() const noexcept { return score_ledger_; }

  /// Emits one event Doc to the trace; no-op without a sink.
  void emit(const results::Doc& event) {
    if (trace_ != nullptr) trace_->emit(event);
  }
  void flush_trace() {
    if (trace_ != nullptr) trace_->flush();
  }

  /// Installs the context's registry as the calling thread's ambient
  /// recording target for the scope's lifetime (components constructed
  /// inside resolve their instrument handles against it).
  class Scope {
   public:
    explicit Scope(RunContext& ctx) noexcept : scoped_(&ctx.registry()) {}

   private:
    telemetry::ScopedRegistry scoped_;
  };

 private:
  telemetry::Registry owned_;
  telemetry::Registry* registry_;
  telemetry::TraceSink* trace_ = nullptr;
  score::ScoreLedger* score_ledger_ = nullptr;
};

/// Standard trace events shared by the evaluate/rank commands: the
/// detection-window registry of one product evaluation...
results::Doc evaluation_event(std::string_view product,
                              std::string_view profile, std::uint64_t seed,
                              const telemetry::Registry& registry);
/// ...and the accumulated load-probe registry of the same evaluation.
results::Doc load_probes_event(std::string_view product,
                               std::string_view profile, std::uint64_t seed,
                               const telemetry::Registry& registry);

}  // namespace idseval::harness
