#include "harness/testbed.hpp"

#include "score/ledger.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ids/scan_cache.hpp"
#include "telemetry/registry.hpp"
#include "util/strfmt.hpp"

namespace idseval::harness {

using attack::AttackKind;
using netsim::Ipv4;
using netsim::SimTime;

Testbed::Testbed(TestbedConfig config, const products::ProductModel* model,
                 double sensitivity)
    : config_(std::move(config)),
      model_(model),
      sensitivity_(sensitivity),
      engine_(netsim::ShardPlan::central(config_.shards)),
      sim_(engine_.hub()) {
  build();
}

Testbed::~Testbed() = default;

void Testbed::build() {
  net_ = std::make_unique<netsim::Network>(engine_, engine_.plan());

  // Internal enclave: 10.0.0.x on a fast LAN.
  for (std::size_t i = 0; i < config_.internal_hosts; ++i) {
    const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i + 1));
    netsim::LinkSpec spec;
    spec.bandwidth_bps = 1e9;
    spec.latency = SimTime::from_us(50);
    spec.queue_capacity = 512;
    netsim::Host* host =
        net_->add_host(util::cat("node", i + 1), addr, spec,
                       config_.host_cpu_ops_per_sec);
    internal_.push_back(addr);
    // Record production delivery latency for induced-latency measurement.
    // Each host accumulates on its own shard's thread and clock; the
    // accumulators merge in host order at collect().
    host_delivery_.push_back(std::make_unique<HostDelivery>());
    HostDelivery* hd = host_delivery_.back().get();
    netsim::Simulator* host_sim = &net_->sim_of(addr);
    host->add_receiver([hd, host_sim](const netsim::Packet& p) {
      const double sec = (host_sim->now() - p.created).sec();
      hd->latency.add(sec);
      hd->hist.add(sec);
    });
  }

  // External population: 198.51.100.x behind a WAN link.
  for (std::size_t i = 0; i < config_.external_hosts; ++i) {
    const Ipv4 addr(198, 51, 100, static_cast<std::uint8_t>(i + 1));
    netsim::LinkSpec spec;
    spec.bandwidth_bps = 2e8;
    spec.latency = SimTime::from_ms(15);
    spec.queue_capacity = 1024;
    net_->add_external_host(util::cat("ext", i + 1), addr, spec);
    external_.push_back(addr);
  }

  // One payload pool serves both traffic sources, so background and
  // attack flows intern against the same variant store.
  payload_pool_ = std::make_unique<traffic::PayloadPool>(
      util::hash64("payloads") ^ config_.seed);
  // Low-entropy industrial payload kinds (ICS control loops, CAN frames)
  // would alias the anomaly engines' entropy estimates at the default 32
  // variants per family; let their families grow instead. Profiles that
  // never emit these kinds keep the pool bit-identical to before.
  for (const traffic::ProtocolShare& share : config_.profile.mix) {
    if (share.kind == traffic::PayloadKind::kIcsControl ||
        share.kind == traffic::PayloadKind::kCanFrame) {
      payload_pool_->enable_growth(share.kind,
                                   traffic::PayloadPool::kGrowthMaxVariants);
    }
  }

  // Background traffic.
  flowgen_ = std::make_unique<traffic::FlowGenerator>(
      sim_, *net_, &ledger_, config_.profile,
      util::hash64("flowgen") ^ config_.seed, payload_pool_.get());
  flowgen_->set_internal_hosts(internal_);
  flowgen_->set_external_hosts(external_);
  flowgen_->set_rate_scale(config_.rate_scale);

  // Stream accounting for the "# simultaneous TCP streams" units.
  net_->lan_switch().add_mirror([this](const netsim::Packet& p) {
    if (p.tuple.proto == netsim::Protocol::kTcp) streams_.observe(p);
  });
  // Attack machinery.
  emitter_ = std::make_unique<attack::AttackEmitter>(
      sim_, *net_, ledger_, util::hash64("attacker") ^ config_.seed,
      payload_pool_.get());
  emitter_->set_flood_train(config_.flood_train);

  // Product under test.
  if (model_ != nullptr) {
    ids::PipelineConfig pipeline_config = model_->make_config(sensitivity_);
    pipeline_config.sensor.scan_cache = config_.scan_cache;
    pipeline_config.agent_sensor.scan_cache = config_.scan_cache;
    // Payload growth mints extra variants; raise the engines' scan-memo
    // capacity by the growth bound so grown variants stay cached instead
    // of falling back to full rescans. Zero headroom (every existing
    // profile) leaves the memos at their default capacity.
    if (const std::size_t headroom = payload_pool_->growth_headroom();
        headroom > 0) {
      const std::size_t cap =
          ids::PayloadMemo<double>::kDefaultCapacity + headroom;
      pipeline_config.sensor.scan_cache_capacity = cap;
      pipeline_config.agent_sensor.scan_cache_capacity = cap;
    }
    pipeline_ = std::make_unique<ids::Pipeline>(sim_, *net_,
                                                std::move(pipeline_config));
    pipeline_->attach(model_->deploys_host_agents ? internal_
                                                  : std::vector<Ipv4>{});
  }
}

RunResult Testbed::run(const attack::Scenario& scenario) {
  return run_phases([&](SimTime measure_start) {
    // Scenario steps are relative to measurement start.
    attack::Scenario shifted;
    for (attack::ScenarioStep step : scenario.steps()) {
      step.when += measure_start;
      shifted.add_step(step);
    }
    shifted.run(*emitter_, external_, internal_);
  });
}

RunResult Testbed::run(const attack::KillChain& chain) {
  // A chain of at most one stage is exactly a flat scenario; route it
  // through the legacy overload so its RNG-draw sequence (and hence the
  // golden determinism hash) is untouched.
  if (chain.singleton()) return run(chain.to_scenario());
  return run_phases([&](SimTime measure_start) {
    chain.run(*emitter_, external_, internal_, measure_start);
  });
}

template <class Inject>
RunResult Testbed::run_phases(const Inject& inject) {
  const SimTime warmup_end = config_.warmup;
  const SimTime measure_end = warmup_end + config_.measure;
  const SimTime drain_end = measure_end + config_.drain;

  // Housekeeping ticks: bounded, so the event queue drains after the run.
  for (SimTime t = SimTime::from_sec(1); t <= drain_end;
       t += SimTime::from_sec(1)) {
    sim_.schedule_at(t, [this] { streams_.expire(sim_.now()); });
  }

  // --- Phase 1: warmup. Anomaly engines learn the clean baseline. --------
  if (pipeline_ != nullptr) pipeline_->set_learning(true);
  flowgen_->start(measure_end);  // arrivals span warmup + measurement
  engine_.run_until(warmup_end);

  // --- Phase 2: measurement. Counters reset; attacks injected. -----------
  // All phase-boundary actions run on this thread while every shard
  // idles at the barrier with its clock aligned to the phase end.
  if (pipeline_ != nullptr) {
    pipeline_->set_learning(false);
    pipeline_->reset_counters();
    // Evidence recording covers exactly the scored window; warmup
    // observations never pollute the score ledger.
    if (score_ledger_ != nullptr) attach_score_ledger();
  }
  net_->reset_link_stats();
  for (const auto& hd : host_delivery_) {
    hd->latency.reset();
    hd->hist = util::LogHistogram{};
  }
  for (Ipv4 addr : internal_) {
    net_->find_host(addr)->begin_accounting(sim_.now());
  }

  // Attack traffic is injected at the barrier; step times are relative
  // to the measurement start the callback receives.
  inject(warmup_end);

  engine_.run_until(measure_end);
  for (Ipv4 addr : internal_) {
    net_->find_host(addr)->end_accounting(sim_.now());
  }

  // --- Phase 3: drain. Let queued analysis and notifications complete. ---
  engine_.run_until(drain_end);

  // Fold per-shard state back into the ambient world in shard order:
  // telemetry registries into the caller's registry, and (in collect)
  // per-shard evidence ledgers into the main score ledger.
  if (telemetry::Registry* ambient = telemetry::current()) {
    engine_.merge_registries_into(*ambient);
  }
  for (std::size_t s = 1; s < engine_.shards(); ++s) {
    // Reset either way so a later run() never double-merges (and an
    // ambient-less run discards shard telemetry exactly like it
    // discards hub telemetry).
    engine_.registry(s)->reset();
  }

  return collect(warmup_end, measure_end);
}

void Testbed::attach_score_ledger() {
  if (engine_.shards() <= 1 || pipeline_->agents().empty()) {
    pipeline_->set_evidence_sink(score_ledger_);
    return;
  }
  // Host agents on remote shards record into per-shard ledgers (each
  // written only by its shard's thread); hub-resident detectors share
  // the main ledger. collect() merges shard ledgers in shard order,
  // which reproduces the single-ledger result exactly because the
  // evidence combine is pure selection.
  shard_score_ledgers_.clear();
  shard_score_ledgers_.resize(engine_.shards());
  for (const auto& sensor : pipeline_->sensors()) {
    sensor->set_evidence_sink(score_ledger_);
  }
  for (const auto& agent : pipeline_->agents()) {
    const std::size_t shard = agent->shard();
    if (shard == 0) {
      agent->set_evidence_sink(score_ledger_);
      continue;
    }
    if (!shard_score_ledgers_[shard]) {
      // Construct under the shard's registry so the ledger's flow-table
      // telemetry binds shard-locally, not into the hub's counters.
      telemetry::ScopedRegistry scope(engine_.registry(shard));
      shard_score_ledgers_[shard] = std::make_unique<score::ScoreLedger>();
    }
    agent->set_evidence_sink(shard_score_ledgers_[shard].get());
  }
}

RunResult Testbed::run_clean() {
  return run(attack::Scenario{});
}

RunResult Testbed::collect(SimTime measure_start, SimTime measure_end) {
  RunResult r;
  r.product = model_ != nullptr ? model_->name : "baseline";
  r.sensitivity = sensitivity_;
  const double window_sec = (measure_end - measure_start).sec();
  if (score_ledger_ != nullptr) {
    for (const auto& shard_ledger : shard_score_ledgers_) {
      if (shard_ledger) score_ledger_->merge_from(*shard_ledger);
    }
    shard_score_ledgers_.clear();
    score_ledger_->finalize(ledger_, measure_start, measure_end);
  }

  // --- Confusion over transactions that began in the window --------------
  std::unordered_set<std::uint64_t> alerted;
  if (pipeline_ != nullptr) {
    for (const auto flow : pipeline_->monitor().alerted_flows()) {
      if (flow != 0) alerted.insert(flow);
    }
  }
  // Firewall-suppressed attacks: launched after their source was blocked.
  std::vector<ids::BlockEvent> blocks;
  if (pipeline_ != nullptr && pipeline_->console() != nullptr) {
    blocks = pipeline_->console()->block_events();
  }
  const auto was_prevented = [&blocks](const traffic::Transaction& t) {
    for (const ids::BlockEvent& b : blocks) {
      if (t.tuple.src_ip == b.source && t.start >= b.effective_at) {
        return true;
      }
    }
    return false;
  };
  // Per-flow earliest alert time, for the breakdown's mean alert latency.
  std::unordered_map<std::uint64_t, SimTime> first_alert;
  if (pipeline_ != nullptr) {
    for (const ids::Alert& alert : pipeline_->monitor().log()) {
      if (alert.flow_id == 0) continue;
      auto [it, inserted] =
          first_alert.try_emplace(alert.flow_id, alert.raised);
      if (!inserted && alert.raised < it->second) it->second = alert.raised;
    }
  }
  std::vector<score::BreakdownInput> breakdown_inputs;
  for (const traffic::Transaction* t : ledger_.all()) {
    if (t->start < measure_start || t->start >= measure_end) continue;
    ++r.transactions;
    const bool is_attack = t->is_attack;
    const bool was_alerted = alerted.contains(t->flow_id);
    if (is_attack) {
      ++r.attacks;
      const bool prevented = !was_alerted && was_prevented(*t);
      auto& outcome =
          r.per_kind[static_cast<AttackKind>(t->attack_kind)];
      ++outcome.launched;
      if (was_alerted) {
        ++r.true_detections;
        ++outcome.detected;
      } else if (prevented) {
        ++r.prevented_attacks;
        ++outcome.prevented;
      } else {
        ++r.missed_attacks;
      }
      score::BreakdownInput bi;
      bi.kind = t->attack_kind;
      bi.stage = t->attack_stage;
      bi.detected = was_alerted;
      bi.prevented = prevented;
      if (was_alerted) {
        if (auto it = first_alert.find(t->flow_id);
            it != first_alert.end()) {
          bi.has_latency = true;
          bi.latency_sec = (it->second - t->start).sec();
        }
      }
      breakdown_inputs.push_back(bi);
    } else if (was_alerted) {
      ++r.false_alarms;
    }
  }
  r.breakdown = score::compute_breakdown(breakdown_inputs);
  r.detected = r.true_detections + r.false_alarms;
  if (r.transactions > 0) {
    r.fp_ratio = static_cast<double>(r.false_alarms) /
                 static_cast<double>(r.transactions);
    r.fn_ratio = static_cast<double>(r.missed_attacks) /
                 static_cast<double>(r.transactions);
  }

  // --- Timeliness ---------------------------------------------------------
  if (pipeline_ != nullptr) {
    util::RunningStats timeliness;
    for (const ids::Alert& alert : pipeline_->monitor().log()) {
      if (alert.flow_id == 0) continue;
      const traffic::Transaction* t = ledger_.find(alert.flow_id);
      if (t == nullptr || !t->is_attack) continue;
      timeliness.add((alert.raised - t->start).sec());
    }
    r.timeliness_mean_sec = timeliness.mean();
    r.timeliness_max_sec = timeliness.max();
  }

  // --- Load / loss ---------------------------------------------------------
  const netsim::LinkStats up = net_->aggregate_uplink_stats();
  r.offered_pps =
      static_cast<double>(up.offered_packets) / std::max(1e-9, window_sec);
  if (pipeline_ != nullptr) {
    const ids::PipelineTotals totals = pipeline_->totals();
    r.tapped_pps = static_cast<double>(totals.packets_tapped) /
                   std::max(1e-9, window_sec);
    // Primary analysis path: the network-sensor fleet when one exists,
    // otherwise the host-agent fleet (hybrids would double-count).
    const std::uint64_t primary_processed =
        totals.network_processed > 0 ? totals.network_processed
                                     : totals.agent_processed;
    r.processed_pps = static_cast<double>(primary_processed) /
                      std::max(1e-9, window_sec);
    r.ids_loss_ratio = totals.ids_loss_ratio();
    r.sensor_failures = totals.sensor_failures + totals.sensors_down;
    r.alerts_raised = totals.alerts;

    // Storage per MB of tapped traffic.
    std::uint64_t stored = 0;
    for (const auto& a : pipeline_->analyzers()) {
      stored += a->stats().bytes_stored;
    }
    // Sensors do not track bytes; the switch saw what the uplinks carried.
    const std::uint64_t tapped_bytes = up.delivered_bytes;
    if (tapped_bytes > 0) {
      r.storage_bytes_per_mb = static_cast<double>(stored) /
                               (static_cast<double>(tapped_bytes) / 1e6);
    }

    if (pipeline_->console() != nullptr) {
      r.firewall_blocks = pipeline_->console()->stats().blocks_issued;
      r.snmp_traps = pipeline_->console()->stats().snmp_traps;
      // Judge each generated filter: what did the block actually stop?
      for (const ids::BlockEvent& block :
           pipeline_->console()->block_events()) {
        for (const traffic::Transaction* t : ledger_.all()) {
          if (t->tuple.src_ip != block.source) continue;
          if (t->start < block.effective_at) continue;
          if (t->is_attack) {
            ++r.post_block_attacks_suppressed;
          } else {
            ++r.post_block_benign_collateral;
          }
        }
      }
    }
  }

  r.peak_concurrent_streams = streams_.peak_streams();
  r.total_streams = streams_.total_streams_seen();

  // --- Production latency --------------------------------------------------
  // Merge the per-host accumulators in host order — deterministic at
  // every shard count, since each host's own sample sequence is.
  util::RunningStats delivery_latency;
  util::LogHistogram delivery_hist;
  for (const auto& hd : host_delivery_) {
    delivery_latency.merge(hd->latency);
    delivery_hist.merge(hd->hist);
  }
  r.mean_delivery_latency_sec = delivery_latency.mean();
  // Interpolated 99th percentile from the log2 histogram. The previous
  // mean + 3σ proxy assumed normality, which queueing delays with a heavy
  // right tail do not satisfy — it overstated p99 badly under load.
  r.p99_delivery_latency_sec = delivery_hist.quantile(0.99);

  // --- Host impact -----------------------------------------------------------
  util::RunningStats host_cpu;
  for (Ipv4 addr : internal_) {
    host_cpu.add(net_->find_host(addr)->ids_cpu_fraction());
  }
  r.max_host_ids_cpu = host_cpu.max();
  r.mean_host_ids_cpu = host_cpu.mean();

  return r;
}

}  // namespace idseval::harness
