#include "harness/run_context.hpp"

namespace idseval::harness {

namespace {

results::Doc product_event(std::string_view type, std::string_view product,
                           std::string_view profile, std::uint64_t seed,
                           const telemetry::Registry& registry) {
  results::Doc event = results::Doc::object();
  event.set("type", type)
      .set("product", product)
      .set("profile", profile)
      .set("seed", seed)
      .set("telemetry", telemetry::to_doc(registry));
  return event;
}

}  // namespace

results::Doc evaluation_event(std::string_view product,
                              std::string_view profile, std::uint64_t seed,
                              const telemetry::Registry& registry) {
  return product_event("evaluation", product, profile, seed, registry);
}

results::Doc load_probes_event(std::string_view product,
                               std::string_view profile, std::uint64_t seed,
                               const telemetry::Registry& registry) {
  return product_event("load_probes", product, profile, seed, registry);
}

}  // namespace idseval::harness
