// Measurement procedures for the load-dependent Table 3 metrics. Each
// procedure runs (several) testbed simulations with controlled knobs and
// extracts one scalar the scorecard's anchor-based autoscorer consumes.
#pragma once

#include <optional>
#include <vector>

#include "harness/run_context.hpp"
#include "harness/testbed.hpp"
#include "products/catalog.hpp"
#include "score/ledger.hpp"
#include "score/roc.hpp"

namespace idseval::harness {

/// One point of a load sweep.
struct LoadPoint {
  double rate_scale = 1.0;
  double offered_pps = 0.0;
  double tapped_pps = 0.0;
  double processed_pps = 0.0;
  double loss_ratio = 0.0;
  std::uint64_t failures = 0;
};

/// Each load measurement optionally accumulates the telemetry its probe
/// simulations generate into `probes->registry()` (counters merged,
/// latency stats pooled; merge order is deterministic — probe order for
/// sequential searches, index order for parallel ladders). Probe-run
/// stage telemetry no longer leaks into the ambient thread registry when
/// a context is supplied; with nullptr the legacy ambient behaviour is
/// kept.

/// Runs the profile at each rate scale (attack-free), short windows.
std::vector<LoadPoint> load_sweep(
    const TestbedConfig& base, const products::ProductModel& model,
    double sensitivity, const std::vector<double>& rate_scales,
    RunContext* probes = nullptr);

/// Flood-train length used by the lethal-dose probe scenarios: bursts of
/// this many same-tick SYN packets per attack train, exercising the
/// coalesced same-tick fan-out path under the exact load that is meant
/// to kill sensors.
inline constexpr std::uint32_t kLethalDoseFloodTrain = 8;

/// Maximal Throughput with Zero Loss: the highest *network traffic
/// level* (offered packets/sec — Table 3's "observed level of traffic")
/// whose IDS-path loss stays under `loss_epsilon`, found by bisection
/// over the rate scale.
double measure_zero_loss_pps(const TestbedConfig& base,
                             const products::ProductModel& model,
                             double sensitivity, double max_scale = 64.0,
                             double loss_epsilon = 1e-4, int iterations = 7,
                             RunContext* probes = nullptr);

/// System Throughput (packets/sec the IDS processes successfully at
/// saturation): processed rate under a deliberately overloading offer.
double measure_system_throughput_pps(
    const TestbedConfig& base, const products::ProductModel& model,
    double sensitivity, double overload_scale = 48.0,
    RunContext* probes = nullptr);

/// Network Lethal Dose: lowest offered pps that trips a sensor failure,
/// searched over geometrically increasing load; nullopt if no failure up
/// to max_scale (scores the "never failed" anchor). Probes run a
/// SYN-flood scenario with same-tick flood trains (kLethalDoseFloodTrain)
/// on top of the scaled background load, so the dose search stresses the
/// batched delivery path the way a real flood does.
std::optional<double> measure_lethal_dose_pps(
    const TestbedConfig& base, const products::ProductModel& model,
    double sensitivity, double max_scale = 96.0,
    RunContext* probes = nullptr);

/// Induced Traffic Latency (seconds added to production delivery):
/// latency with the product attached minus the no-IDS baseline.
double measure_induced_latency_sec(
    const TestbedConfig& base, const products::ProductModel& model,
    double sensitivity, RunContext* probes = nullptr);

/// One sensitivity point of the Figure 4 error-rate sweep.
struct ErrorRatePoint {
  double sensitivity = 0.5;
  double fp_ratio = 0.0;   ///< |D-A|/|T|
  double fn_ratio = 0.0;   ///< |A-D|/|T|
  double fp_percent_of_benign = 0.0;   ///< Of benign transactions alarmed.
  double fn_percent_of_attacks = 0.0;  ///< Of attacks missed.
};

/// Sweeps sensitivity with a fixed mixed attack scenario.
std::vector<ErrorRatePoint> sensitivity_sweep(
    const TestbedConfig& base, const products::ProductModel& model,
    const std::vector<double>& sensitivities, std::size_t attacks_per_kind,
    std::size_t threads = 0);

/// Result of a single-pass sweep: the grid points in the same shape the
/// re-simulated sweep produces, plus the full continuous-threshold ROC
/// they were cut from.
struct SinglePassSweep {
  std::vector<ErrorRatePoint> points;
  score::RocCurve roc;
  double record_sensitivity = 0.5;
  std::uint64_t evidence_observations = 0;
};

/// Single-pass Figure 4: runs the identical mixed scenario ONCE with a
/// score ledger attached, then derives every sweep point offline from
/// the recorded per-transaction evidence (score::RocCurve). One
/// simulation plus a sort instead of one simulation per point.
///
/// Exactly equivalent to `sensitivity_sweep` whenever detection has no
/// feedback into simulation dynamics: pattern-rule signature detection
/// with no management console (no firewall blocks), no anomaly engine
/// (whose winsorized learning and cooldowns are threshold-coupled), and
/// no threshold rules (whose confidence gate also gates window-state
/// updates). Outside that envelope the derived points are a close
/// approximation whose quality the regression tests pin down.
SinglePassSweep single_pass_sensitivity_sweep(
    const TestbedConfig& base, const products::ProductModel& model,
    const std::vector<double>& sensitivities, std::size_t attacks_per_kind,
    double record_sensitivity = 0.5);

/// Equal Error Rate: the sensitivity where the Type I and Type II curves
/// cross (linear interpolation between sweep points; Figure 4). Uses the
/// percent-of-class curves, which is how EER is classically defined.
struct EqualErrorRate {
  double sensitivity = 0.0;
  double error_percent = 0.0;  ///< Common error level at the crossing.
  bool found = false;
};
EqualErrorRate equal_error_rate(const std::vector<ErrorRatePoint>& sweep);

}  // namespace idseval::harness
