#include "harness/evaluate.hpp"

#include <algorithm>
#include <cmath>

#include "core/autoscore.hpp"
#include "products/scoring.hpp"
#include "util/strfmt.hpp"
#include "util/table.hpp"

namespace idseval::harness {

using core::MetricId;
using core::Score;
using netsim::SimTime;
using util::cat;
using util::fmt_si;

Evaluation evaluate_product(const TestbedConfig& env,
                            const products::ProductModel& model,
                            const EvaluationOptions& options,
                            RunContext* ctx) {
  // With a context, its registry becomes the thread-ambient recording
  // target for the whole evaluation; without one, whatever the caller
  // installed (possibly nothing) stays in effect.
  std::optional<RunContext::Scope> scope;
  if (ctx != nullptr) scope.emplace(*ctx);

  Evaluation eval{products::facts_scorecard(model), {}};
  core::Scorecard& card = eval.card;
  Measurements& m = eval.measured;

  // --- Detection run: confusion, timeliness, host impact, storage --------
  {
    Testbed bed(env, &model, options.sensitivity);
    if (ctx != nullptr && ctx->score_ledger() != nullptr) {
      bed.set_score_ledger(ctx->score_ledger());
    }
    if (!options.kill_chain.empty()) {
      // Stage offsets are relative to each stage's dynamic start; the
      // per-stage span keeps a four-stage chain (plus emission tails)
      // comfortably inside the measurement window.
      const auto chain = attack::KillChain::preset(
          options.kill_chain, util::hash64("evaluate") ^ env.seed,
          env.measure * 0.08, env.external_hosts, env.internal_hosts);
      m.detection_run = bed.run(chain);
    } else {
      const auto scenario = attack::Scenario::mixed(
          options.attacks_per_kind, SimTime::zero(), env.measure * 0.9,
          util::hash64("evaluate") ^ env.seed, env.external_hosts,
          env.internal_hosts);
      m.detection_run = bed.run(scenario);
    }
  }
  // Snapshot stage telemetry now: the load probes below rebuild testbeds
  // and would fold their traffic into the same per-thread registry.
  if (const telemetry::Registry* reg = telemetry::current()) {
    m.detection_telemetry = telemetry::snapshot_pipeline(*reg);
  }
  const RunResult& run = m.detection_run;
  const double attack_share =
      run.transactions > 0
          ? static_cast<double>(run.attacks) /
                static_cast<double>(run.transactions)
          : 0.0;

  card.set(MetricId::kObservedFalseNegativeRatio,
           core::score_false_negative_ratio(run.fn_ratio, attack_share),
           cat("|A-D|/|T| = ", util::fmt_fixed(run.fn_ratio, 4)));
  card.set(MetricId::kObservedFalsePositiveRatio,
           core::score_false_positive_ratio(run.fp_ratio),
           cat("|D-A|/|T| = ", util::fmt_fixed(run.fp_ratio, 4)));
  card.set(MetricId::kTimeliness,
           core::score_timeliness(run.timeliness_mean_sec),
           cat(util::fmt_fixed(run.timeliness_mean_sec, 2), "s mean"));
  card.set(MetricId::kOperationalPerformanceImpact,
           core::score_host_cpu_impact(run.max_host_ids_cpu),
           cat(util::fmt_fixed(100.0 * run.max_host_ids_cpu, 1),
               "% worst host"));
  card.set(MetricId::kDataStorage,
           core::score_data_storage(run.storage_bytes_per_mb),
           cat(fmt_si(run.storage_bytes_per_mb), "B/MB"));

  // Measured firewall effectiveness can downgrade the capability score:
  // a product that claims blocking but never blocked a critical attack in
  // the lab keeps at most an average score.
  if (model.facts.firewall_block && run.firewall_blocks == 0 &&
      run.attacks > 0) {
    card.set(MetricId::kFirewallInteraction, Score(2),
             "capability present, no effective block observed");
  } else if (model.facts.firewall_block) {
    card.set(MetricId::kFirewallInteraction, Score(4),
             cat(run.firewall_blocks, " automatic blocks"));
  }

  // Measured filter effectiveness: a filter that suppressed follow-up
  // attacks with no legitimate lockouts scores high; collateral damage
  // drags it down (§2.2). Only overrides the fact score when the lab
  // actually observed blocks.
  if (run.firewall_blocks > 0) {
    const std::size_t stopped = run.post_block_attacks_suppressed;
    const std::size_t collateral = run.post_block_benign_collateral;
    int score = 2;  // blocked, but nothing measurable followed
    if (stopped > 0 && collateral == 0) {
      score = 4;
    } else if (stopped > collateral) {
      score = 3;
    } else if (collateral > 0) {
      score = 1;
    }
    card.set(MetricId::kEffectivenessOfGeneratedFilters, Score(score),
             cat(stopped, " attacks suppressed, ", collateral,
                 " benign lockouts"));
  }

  // --- Load metrics ---------------------------------------------------------
  if (options.include_load_metrics) {
    // All probe simulations accumulate into one context bound to the
    // measurements' registry, so the probe stages are reportable (and
    // traceable) separately from the detection window's snapshot above.
    RunContext probes(&m.load_probe_telemetry,
                      ctx != nullptr ? ctx->trace() : nullptr);
    m.zero_loss_pps = measure_zero_loss_pps(env, model,
                                            options.sensitivity,
                                            /*max_scale=*/96.0,
                                            /*loss_epsilon=*/1e-4,
                                            /*iterations=*/7, &probes);
    m.system_throughput_pps = measure_system_throughput_pps(
        env, model, options.sensitivity, /*overload_scale=*/96.0, &probes);
    // Anything sustained at zero loss was by definition processed
    // successfully; the ladder's granularity must not report less.
    m.system_throughput_pps =
        std::max(m.system_throughput_pps, m.zero_loss_pps);
    m.lethal_dose_pps = measure_lethal_dose_pps(
        env, model, options.sensitivity, /*max_scale=*/128.0, &probes);
    m.induced_latency_sec = measure_induced_latency_sec(
        env, model, options.sensitivity, &probes);

    card.set(MetricId::kMaxThroughputZeroLoss,
             core::score_zero_loss_throughput(m.zero_loss_pps),
             cat(fmt_si(m.zero_loss_pps), " pps"));
    card.set(MetricId::kSystemThroughput,
             core::score_system_throughput(m.system_throughput_pps),
             cat(fmt_si(m.system_throughput_pps), " pps"));
    const double dose_ratio =
        m.lethal_dose_pps.has_value() && m.zero_loss_pps > 0.0
            ? *m.lethal_dose_pps / m.zero_loss_pps
            : std::numeric_limits<double>::infinity();
    card.set(MetricId::kNetworkLethalDose,
             core::score_lethal_dose_ratio(dose_ratio),
             m.lethal_dose_pps.has_value()
                 ? cat(fmt_si(*m.lethal_dose_pps), " pps")
                 : std::string("no failure observed"));
    card.set(MetricId::kInducedTrafficLatency,
             core::score_induced_latency(m.induced_latency_sec),
             cat(util::fmt_fixed(m.induced_latency_sec * 1e6, 1), " us"));
  }

  // --- Unified cost/capability score (Iannacone & Bridges) ---------------
  // Computed after the load probes so the resource term can include the
  // induced-latency measurement when available.
  {
    score::CostInputs in;
    in.transactions = run.transactions;
    in.attacks = run.attacks;
    in.missed_attacks = run.missed_attacks;
    in.false_alarms = run.false_alarms;
    in.true_detections = run.true_detections;
    in.mean_detection_latency_sec = run.timeliness_mean_sec;
    in.mean_host_ids_cpu = run.mean_host_ids_cpu;
    in.induced_latency_sec = m.induced_latency_sec;
    eval.unified = score::unified_score(in, options.cost_weights);
  }

  return eval;
}

}  // namespace idseval::harness
