// The evaluation testbed: one protected enclave (internal hosts on a LAN
// switch), an external attacker/client population behind a WAN link, a
// product under test attached per its architecture, background traffic
// from an environment profile, and a scripted attack scenario with ground
// truth. A Testbed run is a pure function of (config, product,
// sensitivity, scenario) — the scientific repeatability §1 demands.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/emitter.hpp"
#include "attack/killchain.hpp"
#include "attack/scenario.hpp"
#include "ids/pipeline.hpp"
#include "score/breakdown.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "products/catalog.hpp"
#include "traffic/flowgen.hpp"
#include "netsim/stream.hpp"
#include "traffic/ledger.hpp"
#include "traffic/payload_pool.hpp"
#include "traffic/profile.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace idseval::score {
class ScoreLedger;
}  // namespace idseval::score

namespace idseval::harness {

struct TestbedConfig {
  std::size_t internal_hosts = 8;
  std::size_t external_hosts = 4;
  double host_cpu_ops_per_sec = 1e9;
  traffic::EnvironmentProfile profile = traffic::rt_cluster_profile();
  double rate_scale = 1.0;       ///< Load knob over the profile's rate.
  /// Same-tick packets per flood train for attack floods (see
  /// AttackEmitter::set_flood_train); 1 = legacy per-packet emission.
  std::uint32_t flood_train = 1;
  /// Event-queue shards the simulation runs on (netsim::ShardedSimulator,
  /// central plan): shard 0 keeps traffic generation, the switch, every
  /// uplink, and the IDS pipeline; internal hosts hash onto shards
  /// 1..N-1, which execute their downlink deliveries and host agents.
  /// Results are byte-identical at every shard count; 1 = the legacy
  /// single-queue engine with no barriers or mailboxes.
  std::size_t shards = 1;
  /// Interned-payload scan cache in the detection engines (ISSUE 9):
  /// false (--no-scan-cache) replays the exact legacy full-rescan path.
  /// Results are byte-identical either way; only wall-clock changes.
  bool scan_cache = true;
  std::uint64_t seed = 42;
  netsim::SimTime warmup = netsim::SimTime::from_sec(20);   ///< Learning.
  netsim::SimTime measure = netsim::SimTime::from_sec(60);  ///< Scoring.
  netsim::SimTime drain = netsim::SimTime::from_sec(5);     ///< Tail.
};

/// Per-attack-kind detection outcome.
struct KindOutcome {
  std::size_t launched = 0;
  std::size_t detected = 0;
  /// Suppressed by an earlier automated block before any packet reached a
  /// sensor — a response success, not a Type II error.
  std::size_t prevented = 0;
};

/// Everything a single testbed run observes.
struct RunResult {
  std::string product;
  double sensitivity = 0.5;

  // Transaction-level confusion (Figure 3).
  std::size_t transactions = 0;   ///< |T|
  std::size_t attacks = 0;        ///< |A|
  std::size_t detected = 0;       ///< |D| (alerted transactions)
  std::size_t true_detections = 0;   ///< |A ∩ D|
  std::size_t false_alarms = 0;      ///< |D - A|
  std::size_t missed_attacks = 0;    ///< |A - D - P|: genuinely unseen.
  /// P: attacks launched after the console blocked their source — the
  /// firewall discarded them before any sensor could observe them.
  /// Counting these as false negatives would punish products for
  /// reacting, so they are a separate category.
  std::size_t prevented_attacks = 0;
  double fp_ratio = 0.0;          ///< |D - A| / |T|
  double fn_ratio = 0.0;          ///< |A - D - P| / |T|

  // Timeliness (occurrence -> operator report), seconds.
  double timeliness_mean_sec = 0.0;
  double timeliness_max_sec = 0.0;

  // Load / loss.
  double offered_pps = 0.0;       ///< Packets offered to the network.
  double tapped_pps = 0.0;        ///< Packets the IDS saw.
  double processed_pps = 0.0;     ///< Packets the IDS fully analyzed.
  double ids_loss_ratio = 0.0;
  std::uint64_t sensor_failures = 0;  ///< Failure events + sensors still down.

  // Table 3 denominates two metrics "in packets/sec or # of simultaneous
  // TCP streams"; the stream view comes from a tracker on the LAN mirror.
  std::size_t peak_concurrent_streams = 0;
  std::uint64_t total_streams = 0;

  // Production-path latency (for induced-latency measurement).
  double mean_delivery_latency_sec = 0.0;
  double p99_delivery_latency_sec = 0.0;

  // Host impact (Operational Performance Impact).
  double max_host_ids_cpu = 0.0;
  double mean_host_ids_cpu = 0.0;

  // Storage (Data Storage metric): analyzer bytes per MB of tapped data.
  double storage_bytes_per_mb = 0.0;

  // Reaction (Firewall Interaction / Effectiveness of Generated Filters).
  std::uint64_t firewall_blocks = 0;
  std::uint64_t snmp_traps = 0;
  std::uint64_t alerts_raised = 0;
  /// Attack transactions from blocked sources starting after the block
  /// took effect (the filter worked) vs benign transactions from the
  /// same sources equally shut out (collateral damage, §2.2's "faulty
  /// policy risks shutting out legitimate users").
  std::size_t post_block_attacks_suppressed = 0;
  std::size_t post_block_benign_collateral = 0;

  std::map<attack::AttackKind, KindOutcome> per_kind;

  /// Per-technique / per-stage detection breakdown over the labeled
  /// attack transactions of the window (ATT&CK ids from AttackTraits,
  /// stages from the kill-chain ground truth or the kind defaults).
  score::DetectionBreakdown breakdown;
};

class Testbed {
 public:
  /// `model == nullptr` runs a baseline with no IDS attached (used to
  /// difference out the network's own latency for Induced Traffic
  /// Latency).
  Testbed(TestbedConfig config, const products::ProductModel* model,
          double sensitivity);
  ~Testbed();

  /// Runs warmup (attack-free, anomaly engines learning) then the
  /// measurement phase with the scenario injected. Scenario step times
  /// are interpreted relative to the start of the measurement phase.
  RunResult run(const attack::Scenario& scenario);

  /// Runs a kill-chain campaign: stage k+1 launches only after stage k's
  /// flows finish emitting, with lateral/exfil stages pivoting onto
  /// compromised hosts (attack::KillChain::run). Stage offsets are
  /// relative to each stage's dynamic start. Singleton chains degrade to
  /// the flat Scenario overload — the exact legacy code path, so the
  /// golden determinism hash is untouched when no multi-stage chain is
  /// configured.
  RunResult run(const attack::KillChain& chain);

  /// Optional score ledger: when set before run(), the pipeline records
  /// pre-gate detector evidence into it for the measurement window and
  /// collect() finalizes it against ground truth. Off by default, and
  /// purely observational — run results are identical either way.
  void set_score_ledger(score::ScoreLedger* ledger) noexcept {
    score_ledger_ = ledger;
  }

  /// Convenience: run with no attacks at all (pure load measurement).
  RunResult run_clean();

  /// The hub shard's simulator (the only one at shards == 1).
  netsim::Simulator& sim() noexcept { return sim_; }
  netsim::ShardedSimulator& engine() noexcept { return engine_; }
  netsim::Network& net() noexcept { return *net_; }
  ids::Pipeline* pipeline() noexcept { return pipeline_.get(); }
  const traffic::TransactionLedger& ledger() const noexcept {
    return ledger_;
  }
  const std::vector<netsim::Ipv4>& internal_addresses() const noexcept {
    return internal_;
  }
  const std::vector<netsim::Ipv4>& external_addresses() const noexcept {
    return external_;
  }

 private:
  void build();
  /// Wires the evidence sink(s): one shared ledger when everything runs
  /// on the hub, per-shard ledgers for remote host agents otherwise.
  void attach_score_ledger();
  /// The shared three-phase run skeleton (warmup / measure / drain).
  /// `inject` runs at the phase-2 barrier, on this thread, with every
  /// shard idle and clock-aligned — it schedules the attack traffic for
  /// the measurement window starting at `measure_start`.
  template <class Inject>
  RunResult run_phases(const Inject& inject);
  RunResult collect(netsim::SimTime measure_start,
                    netsim::SimTime measure_end);

  TestbedConfig config_;
  const products::ProductModel* model_;
  double sensitivity_;
  score::ScoreLedger* score_ledger_ = nullptr;
  /// Per-shard evidence ledgers for host agents on remote shards (index
  /// = shard; 0 unused), merged into score_ledger_ in shard order before
  /// finalize. Only populated when a ledger is set and shards > 1.
  std::vector<std::unique_ptr<score::ScoreLedger>> shard_score_ledgers_;

  netsim::ShardedSimulator engine_;
  netsim::Simulator& sim_;  ///< engine_.hub(): the shard-0 clock.
  std::unique_ptr<netsim::Network> net_;
  std::unique_ptr<ids::Pipeline> pipeline_;
  /// One pool per simulation, shared by background and attack traffic;
  /// declared before its users so it outlives them.
  std::unique_ptr<traffic::PayloadPool> payload_pool_;
  std::unique_ptr<traffic::FlowGenerator> flowgen_;
  std::unique_ptr<attack::AttackEmitter> emitter_;
  traffic::TransactionLedger ledger_;
  netsim::StreamTracker streams_;

  std::vector<netsim::Ipv4> internal_;
  std::vector<netsim::Ipv4> external_;
  /// Production-path delivery latency, accumulated per host so a host on
  /// a remote shard records on its own thread; collect() merges them in
  /// host order, which makes the aggregate identical at every shard
  /// count (each host sees the same delivery sequence regardless of
  /// which shard executes it).
  struct HostDelivery {
    util::RunningStats latency;       ///< Production path, seconds.
    util::LogHistogram hist;          ///< For the real p99.
  };
  std::vector<std::unique_ptr<HostDelivery>> host_delivery_;
};

}  // namespace idseval::harness
