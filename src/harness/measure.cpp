#include "harness/measure.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/registry.hpp"
#include "util/thread_pool.hpp"

namespace idseval::harness {

using netsim::SimTime;

namespace {

/// Short-window config variant for load probing.
TestbedConfig probe_config(const TestbedConfig& base, double rate_scale) {
  TestbedConfig cfg = base;
  cfg.rate_scale = rate_scale;
  cfg.warmup = SimTime::from_sec(4);
  cfg.measure = SimTime::from_sec(6);
  cfg.drain = SimTime::from_sec(2);
  return cfg;
}

/// `reg` is the registry this probe's telemetry lands in. Non-null:
/// installed for the probe's simulation (kept isolated from the ambient
/// thread registry). Null: the ambient registry is left in place —
/// legacy behaviour, and a no-op on pool workers, which never inherit
/// one.
LoadPoint point_from(const RunResult& r, double rate_scale) {
  LoadPoint p;
  p.rate_scale = rate_scale;
  p.offered_pps = r.offered_pps;
  p.tapped_pps = r.tapped_pps;
  p.processed_pps = r.processed_pps;
  p.loss_ratio = r.ids_loss_ratio;
  p.failures = r.sensor_failures;
  return p;
}

LoadPoint probe(const TestbedConfig& base,
                const products::ProductModel& model, double sensitivity,
                double rate_scale, telemetry::Registry* reg = nullptr) {
  telemetry::ScopedRegistry scope(reg != nullptr ? reg
                                                 : telemetry::current());
  telemetry::count(telemetry::names::kHarnessProbes);
  Testbed bed(probe_config(base, rate_scale), &model, sensitivity);
  return point_from(bed.run_clean(), rate_scale);
}

/// Lethal-dose probe: scaled background load plus a SYN-flood scenario
/// whose packets arrive in same-tick trains (kLethalDoseFloodTrain), so
/// the dose search drives the coalesced fan-out path deliberately rather
/// than relying on background traffic alone to overwhelm sensors.
LoadPoint probe_flood(const TestbedConfig& base,
                      const products::ProductModel& model,
                      double sensitivity, double rate_scale,
                      telemetry::Registry* reg = nullptr) {
  telemetry::ScopedRegistry scope(reg != nullptr ? reg
                                                 : telemetry::current());
  telemetry::count(telemetry::names::kHarnessProbes);
  TestbedConfig cfg = probe_config(base, rate_scale);
  cfg.flood_train = kLethalDoseFloodTrain;
  Testbed bed(cfg, &model, sensitivity);
  const auto scenario = attack::Scenario::of_kinds(
      {attack::AttackKind::kSynFlood}, /*per_kind=*/2,
      netsim::SimTime::zero(), cfg.measure * 0.9,
      util::hash64("lethal-dose") ^ base.seed, base.external_hosts,
      base.internal_hosts);
  return point_from(bed.run(scenario), rate_scale);
}

}  // namespace

std::vector<LoadPoint> load_sweep(const TestbedConfig& base,
                                  const products::ProductModel& model,
                                  double sensitivity,
                                  const std::vector<double>& rate_scales,
                                  RunContext* probes) {
  telemetry::Registry* probe_telemetry =
      probes != nullptr ? &probes->registry() : nullptr;
  std::vector<LoadPoint> points(rate_scales.size());
  // Pool workers have no thread-local registry, so each probe records
  // into its own slot; merging in index order keeps the accumulated
  // result independent of worker count and completion order.
  std::vector<telemetry::Registry> regs(
      probe_telemetry != nullptr ? rate_scales.size() : 0);
  util::ThreadPool pool;
  pool.parallel_for(rate_scales.size(), [&](std::size_t i) {
    points[i] = probe(base, model, sensitivity, rate_scales[i],
                      regs.empty() ? nullptr : &regs[i]);
  });
  for (const telemetry::Registry& r : regs) probe_telemetry->merge_from(r);
  return points;
}

double measure_zero_loss_pps(const TestbedConfig& base,
                             const products::ProductModel& model,
                             double sensitivity, double max_scale,
                             double loss_epsilon, int iterations,
                             RunContext* probes) {
  telemetry::Registry* probe_telemetry =
      probes != nullptr ? &probes->registry() : nullptr;
  // Establish a bracket: grow until loss appears (or max_scale reached).
  double lo = 0.0;        // highest scale with zero loss
  double lo_pps = 0.0;
  double hi = 0.0;        // lowest scale with loss (0 = none found)
  double scale = 1.0;
  while (scale <= max_scale) {
    const LoadPoint p =
        probe(base, model, sensitivity, scale, probe_telemetry);
    if (p.loss_ratio <= loss_epsilon && p.failures == 0) {
      lo = scale;
      lo_pps = p.offered_pps;
      scale *= 2.0;
    } else {
      hi = scale;
      break;
    }
  }
  if (hi == 0.0 && lo < max_scale) {
    // The doubling bracket stopped short of max_scale; probe it directly
    // so fast products are measured at the full range, not at the last
    // power of two.
    const LoadPoint p =
        probe(base, model, sensitivity, max_scale, probe_telemetry);
    if (p.loss_ratio <= loss_epsilon && p.failures == 0) {
      return p.offered_pps;
    }
    hi = max_scale;
  }
  if (hi == 0.0) return lo_pps;  // never lost anything up to max_scale

  // Bisection refines the knee.
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const LoadPoint p =
        probe(base, model, sensitivity, mid, probe_telemetry);
    if (p.loss_ratio <= loss_epsilon && p.failures == 0) {
      lo = mid;
      lo_pps = p.offered_pps;
    } else {
      hi = mid;
    }
  }
  return lo_pps;
}

double measure_system_throughput_pps(const TestbedConfig& base,
                                     const products::ProductModel& model,
                                     double sensitivity,
                                     double overload_scale,
                                     RunContext* probes) {
  telemetry::Registry* probe_telemetry =
      probes != nullptr ? &probes->registry() : nullptr;
  // "Maximal data input rate that can be processed successfully": probe a
  // ladder of loads up to the overload scale and keep the best sustained
  // processing rate — a single overload probe would report the *post-
  // collapse* rate for products whose sensors die past their lethal dose.
  // Each rung is an independent simulation, so the ladder fans out across
  // the thread pool like load_sweep does.
  const std::vector<double> ladder = {
      overload_scale / 8.0, overload_scale / 4.0, overload_scale / 3.0,
      overload_scale * 0.4, overload_scale / 2.0, overload_scale * 0.75,
      overload_scale};
  std::vector<double> processed(ladder.size(), 0.0);
  std::vector<telemetry::Registry> regs(
      probe_telemetry != nullptr ? ladder.size() : 0);
  util::ThreadPool pool;
  pool.parallel_for(ladder.size(), [&](std::size_t i) {
    processed[i] = probe(base, model, sensitivity, ladder[i],
                         regs.empty() ? nullptr : &regs[i])
                       .processed_pps;
  });
  for (const telemetry::Registry& r : regs) probe_telemetry->merge_from(r);
  return *std::max_element(processed.begin(), processed.end());
}

std::optional<double> measure_lethal_dose_pps(
    const TestbedConfig& base, const products::ProductModel& model,
    double sensitivity, double max_scale, RunContext* probes) {
  telemetry::Registry* probe_telemetry =
      probes != nullptr ? &probes->registry() : nullptr;
  for (double scale = 2.0; scale <= max_scale; scale *= 1.6) {
    const LoadPoint p =
        probe_flood(base, model, sensitivity, scale, probe_telemetry);
    if (p.failures > 0) return p.offered_pps;
  }
  return std::nullopt;
}

double measure_induced_latency_sec(const TestbedConfig& base,
                                   const products::ProductModel& model,
                                   double sensitivity, RunContext* probes) {
  telemetry::Registry* probe_telemetry =
      probes != nullptr ? &probes->registry() : nullptr;
  TestbedConfig cfg = base;
  cfg.warmup = SimTime::from_sec(5);
  cfg.measure = SimTime::from_sec(20);
  cfg.drain = SimTime::from_sec(2);

  telemetry::ScopedRegistry scope(
      probe_telemetry != nullptr ? probe_telemetry : telemetry::current());
  // Two probe simulations: the product run and the no-IDS baseline.
  telemetry::count(telemetry::names::kHarnessProbes, 2);
  Testbed with_ids(cfg, &model, sensitivity);
  const RunResult a = with_ids.run_clean();
  Testbed baseline(cfg, nullptr, sensitivity);
  const RunResult b = baseline.run_clean();
  return std::max(0.0, a.mean_delivery_latency_sec -
                           b.mean_delivery_latency_sec);
}

std::vector<ErrorRatePoint> sensitivity_sweep(
    const TestbedConfig& base, const products::ProductModel& model,
    const std::vector<double>& sensitivities, std::size_t attacks_per_kind,
    std::size_t threads) {
  std::vector<ErrorRatePoint> points(sensitivities.size());
  util::ThreadPool pool(threads);
  pool.parallel_for(sensitivities.size(), [&](std::size_t i) {
    Testbed bed(base, &model, sensitivities[i]);
    const auto scenario = attack::Scenario::mixed(
        attacks_per_kind, SimTime::zero(), base.measure * 0.9,
        util::hash64("sweep") ^ base.seed, base.external_hosts,
        base.internal_hosts);
    const RunResult r = bed.run(scenario);
    ErrorRatePoint p;
    p.sensitivity = sensitivities[i];
    p.fp_ratio = r.fp_ratio;
    p.fn_ratio = r.fn_ratio;
    const double benign =
        static_cast<double>(r.transactions - r.attacks);
    p.fp_percent_of_benign =
        benign > 0.0 ? 100.0 * static_cast<double>(r.false_alarms) / benign
                     : 0.0;
    p.fn_percent_of_attacks =
        r.attacks > 0 ? 100.0 * static_cast<double>(r.missed_attacks) /
                            static_cast<double>(r.attacks)
                      : 0.0;
    points[i] = p;
  });
  return points;
}

SinglePassSweep single_pass_sensitivity_sweep(
    const TestbedConfig& base, const products::ProductModel& model,
    const std::vector<double>& sensitivities, std::size_t attacks_per_kind,
    double record_sensitivity) {
  // Same scenario construction as the re-simulated sweep, so the two
  // paths score the identical ground truth.
  score::ScoreLedger ledger;
  Testbed bed(base, &model, record_sensitivity);
  bed.set_score_ledger(&ledger);
  const auto scenario = attack::Scenario::mixed(
      attacks_per_kind, SimTime::zero(), base.measure * 0.9,
      util::hash64("sweep") ^ base.seed, base.external_hosts,
      base.internal_hosts);
  bed.run(scenario);

  SinglePassSweep out;
  out.record_sensitivity = record_sensitivity;
  out.evidence_observations = ledger.observations();
  out.roc = score::RocCurve(ledger.samples());
  out.points.reserve(sensitivities.size());
  for (const double s : sensitivities) {
    const score::ErrorCounts c = out.roc.error_rate_at(s);
    ErrorRatePoint p;
    p.sensitivity = s;
    p.fp_ratio = c.fp_ratio;
    p.fn_ratio = c.fn_ratio;
    p.fp_percent_of_benign = c.fp_percent_of_benign;
    p.fn_percent_of_attacks = c.fn_percent_of_attacks;
    out.points.push_back(p);
  }
  return out;
}

EqualErrorRate equal_error_rate(const std::vector<ErrorRatePoint>& sweep) {
  EqualErrorRate eer;
  // diff = FN% - FP%: positive at low sensitivity (missing attacks),
  // negative at high (false alarms). The crossing is the EER.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const double d0 =
        sweep[i - 1].fn_percent_of_attacks - sweep[i - 1].fp_percent_of_benign;
    const double d1 =
        sweep[i].fn_percent_of_attacks - sweep[i].fp_percent_of_benign;
    if ((d0 >= 0.0 && d1 <= 0.0) || (d0 <= 0.0 && d1 >= 0.0)) {
      const double span = d0 - d1;
      const double t = span == 0.0 ? 0.5 : d0 / span;
      eer.sensitivity = sweep[i - 1].sensitivity +
                        t * (sweep[i].sensitivity - sweep[i - 1].sensitivity);
      const double fp0 = sweep[i - 1].fp_percent_of_benign;
      const double fp1 = sweep[i].fp_percent_of_benign;
      eer.error_percent = fp0 + t * (fp1 - fp0);
      eer.found = true;
      return eer;
    }
  }
  return eer;
}

}  // namespace idseval::harness
