// Full product evaluation: fact-sheet scoring for the open-source
// metrics, laboratory measurement for the performance metrics, anchor
// autoscoring, and assembly into a complete Scorecard — the end-to-end
// methodology of §3 run against one product in one environment.
#pragma once

#include <string>

#include "core/scorecard.hpp"
#include "harness/measure.hpp"
#include "harness/run_context.hpp"
#include "harness/testbed.hpp"
#include "products/catalog.hpp"
#include "score/scorecard.hpp"

namespace idseval::harness {

struct EvaluationOptions {
  double sensitivity = 0.5;
  std::size_t attacks_per_kind = 3;
  /// Skip the expensive load sweeps (zero loss, lethal dose, system
  /// throughput) — useful for quick scorecards and unit tests.
  bool include_load_metrics = true;
  /// Unit costs behind the unified cost/capability score.
  score::CostWeights cost_weights;
  /// Kill-chain preset name (attack::KillChain::preset). Empty runs the
  /// legacy flat mixed scenario; non-empty replaces the detection run
  /// with a staged campaign (recon → exploit → lateral → exfil) whose
  /// ground truth carries per-stage and ATT&CK technique labels.
  std::string kill_chain;
};

/// The measured values backing the scorecard entries, retained so reports
/// can show measurement evidence next to the discrete scores.
struct Measurements {
  RunResult detection_run;        ///< Mixed-scenario detection run.
  double zero_loss_pps = 0.0;
  double system_throughput_pps = 0.0;
  std::optional<double> lethal_dose_pps;
  double induced_latency_sec = 0.0;
  /// Per-stage telemetry snapshot taken right after the detection run,
  /// before the load probes disturb the stage stats. All zeros when no
  /// telemetry::Registry was installed on the evaluating thread.
  telemetry::PipelineSnapshot detection_telemetry;
  /// Accumulated telemetry from every load-probe simulation (zero loss,
  /// system throughput, lethal dose, induced latency) — kept separate
  /// from the detection window's registry; includes `harness.probes`.
  /// Empty when load metrics were skipped.
  telemetry::Registry load_probe_telemetry;
};

struct Evaluation {
  core::Scorecard card;
  Measurements measured;
  /// One comparable number per product: the Iannacone & Bridges unified
  /// cost model over the detection run (and, when load metrics ran, the
  /// induced-latency measurement), rendered beside the paper's three
  /// class scores.
  score::UnifiedScore unified;
};

/// Evaluates one product in the given environment. With a `ctx`, the
/// detection window records into ctx->registry() (installed as the
/// evaluating thread's ambient registry for the call) and load probes
/// accumulate into Measurements::load_probe_telemetry sharing ctx's
/// trace sink; with nullptr the legacy ambient-registry behaviour is
/// kept (whatever ScopedRegistry the caller installed, if any).
Evaluation evaluate_product(const TestbedConfig& env,
                            const products::ProductModel& model,
                            const EvaluationOptions& options = {},
                            RunContext* ctx = nullptr);

}  // namespace idseval::harness
