// Fact-sheet scoring: maps ProductFacts to discrete scores against the
// catalog anchors for every metric observable from open-source material
// or static analysis. The harness later overwrites/fills the metrics that
// must be *measured* (throughput, error ratios, latency, ...), yielding
// the complete per-product scorecard.
#pragma once

#include "core/scorecard.hpp"
#include "products/catalog.hpp"

namespace idseval::products {

/// Scores all fact-derivable metrics (classes 1 and 2 fully; class 3
/// capability metrics like SNMP/Firewall/Router interaction partially —
/// measured effectiveness can upgrade or downgrade them later).
core::Scorecard facts_scorecard(const ProductModel& model);

}  // namespace idseval::products
