#include "products/scoring.hpp"

#include <algorithm>

namespace idseval::products {

using core::MetricId;
using core::Score;
using core::Scorecard;

namespace {

Score clamp_score(int v) { return Score(std::clamp(v, 0, 4)); }

Score score_remote_management(RemoteManagement rm) {
  switch (rm) {
    case RemoteManagement::kLocalOnly:
      return Score(0);
    case RemoteManagement::kLimited:
      return Score(2);
    case RemoteManagement::kFullSecure:
      return Score(4);
  }
  return Score(0);
}

Score score_install_steps(int steps) {
  if (steps <= 5) return Score(4);
  if (steps <= 9) return Score(3);
  if (steps <= 14) return Score(2);
  if (steps <= 20) return Score(1);
  return Score(0);
}

Score score_policy_maintenance(const ProductFacts& f) {
  int s = 0;
  if (f.central_policy_editor) s += 2;
  if (f.policy_hot_reload) s += 1;
  if (f.policy_rollback) s += 1;
  return clamp_score(s);
}

Score score_license(LicenseModel m) {
  switch (m) {
    case LicenseModel::kResearchFree:
      return Score(4);
    case LicenseModel::kPerpetualSite:
      return Score(3);
    case LicenseModel::kAnnualPerSensor:
      return Score(1);
  }
  return Score(0);
}

Score score_outsourced(const ProductFacts& f) {
  // Self-hosted scores high for real-time systems (external scans can
  // disrupt performance in a way that is not locally controllable, §3.2).
  if (!f.outsourced_monitoring) return Score(4);
  return f.vendor_scans_required ? Score(0) : Score(2);
}

Score score_platform(const ProductFacts& f) {
  // Penalize both dedicated boxes and production-host CPU budgets.
  int s = 4;
  s -= std::min(3, f.dedicated_boxes_required);
  if (f.host_cpu_budget >= 0.15) {
    s -= 2;
  } else if (f.host_cpu_budget >= 0.03) {
    s -= 1;
  }
  return clamp_score(s);
}

Score score_sensitivity(SensitivityControl c) {
  switch (c) {
    case SensitivityControl::kFixed:
      return Score(0);
    case SensitivityControl::kCoarsePresets:
      return Score(2);
    case SensitivityControl::kContinuous:
      return Score(4);
  }
  return Score(0);
}

Score score_data_pool(DataPoolControl c) {
  switch (c) {
    case DataPoolControl::kNone:
      return Score(0);
    case DataPoolControl::kAddressPort:
      return Score(2);
    case DataPoolControl::kFilterLanguage:
      return Score(4);
  }
  return Score(0);
}

Score score_share(double share) {
  // Proportion metrics (Host-based / Network-based): 0 -> 0, 1.0 -> 4.
  return clamp_score(static_cast<int>(share * 4.0 + 0.5));
}

Score score_multi_sensor(int max_sensors) {
  if (max_sensors <= 1) return Score(0);
  if (max_sensors <= 4) return Score(2);
  if (max_sensors <= 16) return Score(3);
  return Score(4);
}

Score score_lb(ids::LbStrategy s) {
  switch (s) {
    case ids::LbStrategy::kNone:
      return Score(0);
    case ids::LbStrategy::kStaticByHost:
      return Score(2);
    case ids::LbStrategy::kFlowHash:
      return Score(3);
    case ids::LbStrategy::kLeastLoaded:
      return Score(4);
  }
  return Score(0);
}

Score score_recovery(ids::RecoveryPolicy p) {
  switch (p) {
    case ids::RecoveryPolicy::kHang:
      return Score(0);
    case ids::RecoveryPolicy::kColdReboot:
      return Score(2);
    case ids::RecoveryPolicy::kAppRestart:
      return Score(4);
  }
  return Score(0);
}

Score score_notification(int channels) {
  if (channels <= 0) return Score(0);
  if (channels == 1) return Score(1);
  if (channels == 2) return Score(2);
  if (channels == 3) return Score(3);
  return Score(4);
}

}  // namespace

Scorecard facts_scorecard(const ProductModel& model) {
  const ProductFacts& f = model.facts;
  Scorecard card(model.name);

  // --- Logistical -----------------------------------------------------------
  card.set(MetricId::kDistributedManagement,
           score_remote_management(f.remote_management), "fact sheet");
  card.set(MetricId::kEaseOfConfiguration, score_install_steps(f.install_steps),
           std::to_string(f.install_steps) + " install steps");
  card.set(MetricId::kEaseOfPolicyMaintenance, score_policy_maintenance(f),
           "editor/hot-reload/rollback facts");
  card.set(MetricId::kLicenseManagement, score_license(f.license),
           "license model");
  card.set(MetricId::kOutsourcedSolution, score_outsourced(f),
           "hosting model");
  card.set(MetricId::kPlatformRequirements, score_platform(f),
           "boxes + host CPU budget");
  card.set(MetricId::kQualityOfDocumentation,
           clamp_score(f.documentation_score), "review");
  card.set(MetricId::kEaseOfAttackFilterGeneration,
           f.data_pool == DataPoolControl::kFilterLanguage
               ? Score(f.policy_hot_reload ? 4 : 3)
               : Score(f.central_policy_editor ? 2 : 1),
           "filter authoring facts");
  card.set(MetricId::kEvaluationCopyAvailability,
           clamp_score(f.eval_copy_score), "vendor program");
  card.set(MetricId::kLevelOfAdministration,
           clamp_score(f.administration_score), "review");
  card.set(MetricId::kProductLifetime, clamp_score(f.lifetime_score),
           "vendor maturity");
  card.set(MetricId::kQualityOfTechnicalSupport,
           clamp_score(f.support_score), "review");
  card.set(MetricId::kThreeYearCostOfOwnership, clamp_score(f.cost_score),
           "published pricing");
  card.set(MetricId::kTrainingSupport, clamp_score(f.training_score),
           "vendor program");

  // --- Architectural ----------------------------------------------------------
  card.set(MetricId::kAdjustableSensitivity, score_sensitivity(f.sensitivity),
           "control granularity");
  card.set(MetricId::kDataPoolSelectability, score_data_pool(f.data_pool),
           "filter capability");
  card.set(MetricId::kHostBased, score_share(f.host_based_share),
           "input share");
  card.set(MetricId::kNetworkBased, score_share(f.network_based_share),
           "input share");
  card.set(MetricId::kMultiSensorSupport, score_multi_sensor(f.max_sensors),
           std::to_string(f.max_sensors) + " sensors max");
  card.set(MetricId::kScalableLoadBalancing, score_lb(f.lb_strategy),
           ids::to_string(f.lb_strategy));
  card.set(MetricId::kAnomalyBased,
           f.anomaly_detection ? Score(f.autonomous_learning ? 4 : 2)
                               : Score(0),
           "detection mechanism");
  card.set(MetricId::kSignatureBased,
           f.signature_detection
               ? Score(f.data_pool == DataPoolControl::kFilterLanguage ? 4
                                                                       : 3)
               : Score(0),
           "detection mechanism");
  card.set(MetricId::kAutonomousLearning,
           f.autonomous_learning ? Score(4) : Score(0), "fact sheet");
  card.set(MetricId::kHostOsSecurity, clamp_score(f.host_os_security_score),
           "platform hardening");
  card.set(MetricId::kInteroperability, clamp_score(f.interoperability_score),
           "formats/integrations");
  card.set(MetricId::kPackageContents, clamp_score(f.package_contents_score),
           "package review");
  card.set(MetricId::kProcessSecurity, clamp_score(f.process_security_score),
           "tamper resistance");
  card.set(MetricId::kVisibility, clamp_score(f.visibility_score),
           "deployment coverage");
  // kDataStorage and kSystemThroughput are measured by the harness.

  // --- Performance (capability facts; effectiveness measured later) ---------
  card.set(MetricId::kErrorReportingAndRecovery, score_recovery(f.recovery),
           ids::to_string(f.recovery));
  card.set(MetricId::kFirewallInteraction,
           f.firewall_block ? Score(4) : Score(0), "capability");
  card.set(MetricId::kSnmpInteraction, f.snmp_traps ? Score(3) : Score(0),
           "capability");
  card.set(MetricId::kRouterInteraction,
           f.router_redirect ? Score(4) : Score(0), "capability");
  card.set(MetricId::kAnalysisOfCompromise,
           clamp_score(f.compromise_analysis_score), "analysis review");
  card.set(MetricId::kAnalysisOfIntruderIntent,
           clamp_score(f.intent_analysis_score), "analysis review");
  card.set(MetricId::kClarityOfReports, clamp_score(f.report_clarity_score),
           "console review");
  card.set(MetricId::kEffectivenessOfGeneratedFilters,
           clamp_score(f.filter_effectiveness_score), "filter review");
  card.set(MetricId::kEvidenceCollection,
           clamp_score(f.evidence_collection_score), "capture review");
  card.set(MetricId::kInformationSharing,
           clamp_score(f.information_sharing_score), "export review");
  card.set(MetricId::kNotificationUserAlerts,
           score_notification(f.notification_channels),
           std::to_string(f.notification_channels) + " channels");
  card.set(MetricId::kProgramInteraction,
           clamp_score(f.program_interaction_score), "hook review");
  card.set(MetricId::kSessionRecordingPlayback,
           clamp_score(f.session_playback_score), "capture review");
  card.set(MetricId::kThreatCorrelation,
           clamp_score(f.threat_correlation_score), "analysis review");
  card.set(MetricId::kTrendAnalysis, clamp_score(f.trend_analysis_score),
           "console review");

  return card;
}

}  // namespace idseval::products
