// The evaluated products. Four model IDSes spanning the architecture
// space of the paper's test set: a centralized signature sniffer (in the
// mold of NFR NID 5.0), a console-managed hybrid host+network signature
// system (RealSecure 5.0's class), a flow-anomaly system with dynamic
// load balancing (ManHunt 1.2's class), and an autonomous-agents research
// system (AAFID's class). Built entirely on the ids:: pipeline framework;
// nothing here is vendor code.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ids/pipeline.hpp"
#include "products/facts.hpp"

namespace idseval::products {

enum class ProductId : std::uint8_t {
  kSentryNid = 0,   ///< Centralized network signature sniffer.
  kGuardSecure,     ///< Hybrid host+network signature, strong console.
  kFlowHunt,        ///< Anomaly/flow engine, dynamic load balancing.
  kAgentSwarm,      ///< Autonomous host agents (research prototype).
  kCount
};

inline constexpr std::size_t kProductCount =
    static_cast<std::size_t>(ProductId::kCount);

std::string to_string(ProductId id);

struct ProductModel {
  ProductId id;
  std::string name;
  std::string description;
  ProductFacts facts;
  /// Builds this product's pipeline configuration at a given sensitivity.
  std::function<ids::PipelineConfig(double sensitivity)> make_config;
  /// True when the product deploys host agents on monitored hosts.
  bool deploys_host_agents = false;
};

/// The full evaluated-product catalog, ordered by ProductId.
const std::vector<ProductModel>& product_catalog();
const ProductModel& product(ProductId id);

/// The three "commercial" products (the paper's Table 1-3 columns); the
/// research system was examined separately.
std::vector<ProductId> commercial_products();

}  // namespace idseval::products
