// Product fact sheets: the "open source material" observations (specs,
// white papers, reviews — §3.1) encoded as typed data. The paper's three
// commercial products and the AAFID research system are out of reach, so
// each model product here declares facts in the same architectural class
// as its inspiration; scoring.cpp maps facts to discrete scores against
// the catalog anchors, keeping class-1/2 scoring reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "ids/load_balancer.hpp"
#include "ids/sensor.hpp"

namespace idseval::products {

enum class RemoteManagement : std::uint8_t {
  kLocalOnly,    ///< Each node managed at the node.
  kLimited,      ///< Remote, but weak security or partial control.
  kFullSecure,   ///< Any node, encrypted and authenticated.
};

enum class LicenseModel : std::uint8_t {
  kResearchFree,
  kPerpetualSite,
  kAnnualPerSensor,
};

enum class SensitivityControl : std::uint8_t {
  kFixed,
  kCoarsePresets,
  kContinuous,
};

enum class DataPoolControl : std::uint8_t {
  kNone,          ///< Analyzes everything it sees.
  kAddressPort,   ///< Coarse include/exclude lists.
  kFilterLanguage ///< Full filter language (BPF/N-code style).
};

struct ProductFacts {
  std::string product;

  // --- Logistical ---------------------------------------------------------
  RemoteManagement remote_management = RemoteManagement::kLimited;
  int install_steps = 10;           ///< Manual steps to first detection.
  bool central_policy_editor = false;
  bool policy_hot_reload = false;
  bool policy_rollback = false;
  LicenseModel license = LicenseModel::kAnnualPerSensor;
  bool outsourced_monitoring = false;
  bool vendor_scans_required = false;
  int dedicated_boxes_required = 1; ///< Appliances per protected LAN.
  double host_cpu_budget = 0.0;     ///< Fraction of each production host.
  int documentation_score = 2;      ///< Direct open-source observation 0-4.
  int support_score = 2;
  int lifetime_score = 2;
  int training_score = 2;
  int cost_score = 2;               ///< 4 = cheapest (3yr TCO).
  int eval_copy_score = 2;
  int administration_score = 2;

  // --- Architectural ------------------------------------------------------
  SensitivityControl sensitivity = SensitivityControl::kCoarsePresets;
  DataPoolControl data_pool = DataPoolControl::kAddressPort;
  double host_based_share = 0.0;    ///< Fraction of input from host data.
  double network_based_share = 1.0;
  int max_sensors = 1;
  ids::LbStrategy lb_strategy = ids::LbStrategy::kNone;
  bool anomaly_detection = false;
  bool signature_detection = true;
  bool autonomous_learning = false;
  int host_os_security_score = 2;
  int interoperability_score = 2;
  int package_contents_score = 2;
  int process_security_score = 2;
  int visibility_score = 2;

  // --- Performance facts (capability flags; effectiveness is measured) ----
  bool firewall_block = false;
  bool snmp_traps = false;
  bool router_redirect = false;
  ids::RecoveryPolicy recovery = ids::RecoveryPolicy::kColdReboot;
  int compromise_analysis_score = 2;
  int intent_analysis_score = 1;
  int report_clarity_score = 2;
  int filter_effectiveness_score = 2;
  int evidence_collection_score = 2;
  int information_sharing_score = 1;
  int notification_channels = 1;   ///< Count of operator alert channels.
  int program_interaction_score = 1;
  int session_playback_score = 1;
  int threat_correlation_score = 2;
  int trend_analysis_score = 1;
};

}  // namespace idseval::products
