#include "products/catalog.hpp"

#include <stdexcept>

#include "ids/rules.hpp"

namespace idseval::products {

using ids::LbStrategy;
using ids::PipelineConfig;
using ids::RecoveryPolicy;
using netsim::SimTime;

namespace {

ProductFacts sentry_facts() {
  ProductFacts f;
  f.product = "SentryNID";
  // Logistical: solid commercial sniffer; per-node management is weak.
  f.remote_management = RemoteManagement::kLimited;
  f.install_steps = 8;
  f.central_policy_editor = false;
  f.policy_hot_reload = true;   // filter language hot-loads
  f.policy_rollback = false;
  f.license = LicenseModel::kPerpetualSite;
  f.dedicated_boxes_required = 1;
  f.documentation_score = 3;
  f.support_score = 3;
  f.lifetime_score = 3;
  f.training_score = 2;
  f.cost_score = 2;
  f.eval_copy_score = 3;
  f.administration_score = 2;
  // Architectural: single powerful network sensor, excellent filters.
  f.sensitivity = SensitivityControl::kContinuous;
  f.data_pool = DataPoolControl::kFilterLanguage;
  f.network_based_share = 1.0;
  f.host_based_share = 0.0;
  f.max_sensors = 1;
  f.lb_strategy = LbStrategy::kNone;
  f.signature_detection = true;
  f.anomaly_detection = false;
  f.host_os_security_score = 2;
  f.interoperability_score = 2;
  f.package_contents_score = 3;
  f.process_security_score = 2;
  f.visibility_score = 2;
  // Performance capabilities.
  f.firewall_block = false;
  f.snmp_traps = true;
  f.router_redirect = false;
  f.recovery = RecoveryPolicy::kColdReboot;
  f.compromise_analysis_score = 2;
  f.intent_analysis_score = 1;
  f.report_clarity_score = 3;
  f.filter_effectiveness_score = 2;
  f.evidence_collection_score = 3;  // packet capture heritage
  f.information_sharing_score = 1;
  f.notification_channels = 2;
  f.program_interaction_score = 3;  // scriptable engine
  f.session_playback_score = 3;
  f.threat_correlation_score = 2;
  f.trend_analysis_score = 2;
  return f;
}

ProductFacts guard_facts() {
  ProductFacts f;
  f.product = "GuardSecure";
  // Logistical: enterprise console is the selling point.
  f.remote_management = RemoteManagement::kFullSecure;
  f.install_steps = 12;
  f.central_policy_editor = true;
  f.policy_hot_reload = true;
  f.policy_rollback = true;
  f.license = LicenseModel::kAnnualPerSensor;
  f.dedicated_boxes_required = 2;
  f.host_cpu_budget = 0.05;  // host agents at nominal logging
  f.documentation_score = 3;
  f.support_score = 4;
  f.lifetime_score = 4;
  f.training_score = 4;
  f.cost_score = 1;          // priciest
  f.eval_copy_score = 2;
  f.administration_score = 3;
  // Architectural: hybrid host+network.
  f.sensitivity = SensitivityControl::kCoarsePresets;
  f.data_pool = DataPoolControl::kAddressPort;
  f.network_based_share = 0.6;
  f.host_based_share = 0.4;
  f.max_sensors = 16;
  f.lb_strategy = LbStrategy::kStaticByHost;
  f.signature_detection = true;
  f.anomaly_detection = false;
  f.host_os_security_score = 3;
  f.interoperability_score = 3;
  f.package_contents_score = 4;
  f.process_security_score = 3;
  f.visibility_score = 3;
  // Performance capabilities: strongest response story.
  f.firewall_block = true;
  f.snmp_traps = true;
  f.router_redirect = false;
  f.recovery = RecoveryPolicy::kAppRestart;
  f.compromise_analysis_score = 3;
  f.intent_analysis_score = 2;
  f.report_clarity_score = 4;
  f.filter_effectiveness_score = 3;
  f.evidence_collection_score = 2;
  f.information_sharing_score = 2;
  f.notification_channels = 3;
  f.program_interaction_score = 2;
  f.session_playback_score = 2;
  f.threat_correlation_score = 2;
  f.trend_analysis_score = 3;
  return f;
}

ProductFacts flowhunt_facts() {
  ProductFacts f;
  f.product = "FlowHunt";
  // Logistical.
  f.remote_management = RemoteManagement::kFullSecure;
  f.install_steps = 10;
  f.central_policy_editor = true;
  f.policy_hot_reload = true;
  f.policy_rollback = false;
  f.license = LicenseModel::kAnnualPerSensor;
  f.dedicated_boxes_required = 5;  // LB + 4 sensors
  f.documentation_score = 2;
  f.support_score = 3;
  f.lifetime_score = 2;            // young vendor
  f.training_score = 2;
  f.cost_score = 2;
  f.eval_copy_score = 2;
  f.administration_score = 3;      // mostly autonomous once trained
  // Architectural: scalable anomaly/flow analysis.
  f.sensitivity = SensitivityControl::kContinuous;
  f.data_pool = DataPoolControl::kAddressPort;
  f.network_based_share = 1.0;
  f.host_based_share = 0.0;
  f.max_sensors = 32;
  f.lb_strategy = LbStrategy::kLeastLoaded;
  f.signature_detection = false;
  f.anomaly_detection = true;
  f.autonomous_learning = true;
  f.host_os_security_score = 3;
  f.interoperability_score = 2;
  f.package_contents_score = 2;
  f.process_security_score = 3;
  f.visibility_score = 3;
  // Performance capabilities: traffic-control reactions.
  f.firewall_block = true;
  f.snmp_traps = true;
  f.router_redirect = true;  // honeypot redirect heritage
  f.recovery = RecoveryPolicy::kAppRestart;
  f.compromise_analysis_score = 2;
  f.intent_analysis_score = 3;
  f.report_clarity_score = 2;
  f.filter_effectiveness_score = 3;
  f.evidence_collection_score = 2;
  f.information_sharing_score = 1;
  f.notification_channels = 2;
  f.program_interaction_score = 2;
  f.session_playback_score = 1;
  f.threat_correlation_score = 3;
  f.trend_analysis_score = 3;
  return f;
}

ProductFacts agent_facts() {
  ProductFacts f;
  f.product = "AgentSwarm";
  // Logistical: research prototype economics.
  f.remote_management = RemoteManagement::kLocalOnly;
  f.install_steps = 25;  // build from source, per host
  f.central_policy_editor = false;
  f.policy_hot_reload = false;
  f.policy_rollback = false;
  f.license = LicenseModel::kResearchFree;
  f.dedicated_boxes_required = 0;
  f.host_cpu_budget = 0.20;  // C2-grade auditing on every host
  f.documentation_score = 1;
  f.support_score = 0;
  f.lifetime_score = 1;
  f.training_score = 0;
  f.cost_score = 4;          // free
  f.eval_copy_score = 4;     // source available
  f.administration_score = 1;
  // Architectural: purely host-based, every host an agent.
  f.sensitivity = SensitivityControl::kContinuous;
  f.data_pool = DataPoolControl::kAddressPort;
  f.network_based_share = 0.0;
  f.host_based_share = 1.0;
  f.max_sensors = 64;        // agents scale with hosts
  f.lb_strategy = LbStrategy::kNone;
  f.signature_detection = true;
  f.anomaly_detection = true;
  f.autonomous_learning = true;
  f.host_os_security_score = 1;
  f.interoperability_score = 1;
  f.package_contents_score = 1;
  f.process_security_score = 3;  // mutually monitoring agents
  f.visibility_score = 3;        // every host instrumented
  // Performance capabilities: detection research, no response path.
  f.firewall_block = false;
  f.snmp_traps = false;
  f.router_redirect = false;
  f.recovery = RecoveryPolicy::kHang;
  f.compromise_analysis_score = 3;  // knows exactly which host
  f.intent_analysis_score = 2;
  f.report_clarity_score = 1;
  f.filter_effectiveness_score = 0;
  f.evidence_collection_score = 2;
  f.information_sharing_score = 2;
  f.notification_channels = 1;
  f.program_interaction_score = 2;
  f.session_playback_score = 0;
  f.threat_correlation_score = 3;
  f.trend_analysis_score = 1;
  return f;
}

// ---------------------------------------------------------------------------
// Pipeline configurations. Capacities are chosen so the measured Table 3
// values reproduce the expected differentiation: a single fast sniffer
// saturates before the load-balanced fleet; host agents never stress the
// network path but tax their hosts.
// ---------------------------------------------------------------------------

PipelineConfig sentry_config(double sensitivity) {
  PipelineConfig c;
  c.product = "SentryNID";
  c.sensor_count = 1;
  c.sensor.name = "sentry-sensor";
  c.sensor.base_ops_per_packet = 3000.0;
  c.sensor.ops_per_sec = 2.4e8;
  c.sensor.queue_capacity = 4096;
  c.sensor.overload_tolerance = SimTime::from_ms(100);
  c.sensor.recovery = RecoveryPolicy::kColdReboot;
  c.sensor.reboot_delay = SimTime::from_sec(40);
  c.signature_engine = true;
  // N-code-style engines reassemble streams: boundary-split exploits
  // (kEvasiveExploit) do not slip past.
  c.stream_reassembly = true;
  c.anomaly_engine = false;
  c.rules = ids::standard_rule_set();
  c.analyzer_count = 1;
  c.analyzer.name = "sentry-analyzer";
  c.analyzer.ops_per_detection = 30000.0;
  c.analyzer.transfer_delay = SimTime::zero();  // combined sensor/analyzer
  c.monitor.name = "sentry-monitor";
  c.monitor.notification_delay = SimTime::from_ms(250);
  c.use_console = true;
  c.console.name = "sentry-console";
  c.console.can_block_firewall = false;
  c.console.can_snmp = true;
  c.console.can_redirect_router = false;
  c.console.reaction_delay = SimTime::from_ms(400);
  c.console.policy = ids::default_policy();
  c.sensitivity = sensitivity;
  return c;
}

PipelineConfig guard_config(double sensitivity) {
  PipelineConfig c;
  c.product = "GuardSecure";
  c.sensor_count = 2;
  c.sensor.name = "guard-sensor";
  c.sensor.base_ops_per_packet = 5000.0;
  c.sensor.ops_per_sec = 1e8;
  c.sensor.queue_capacity = 2048;
  c.sensor.overload_tolerance = SimTime::from_ms(120);
  c.sensor.recovery = RecoveryPolicy::kAppRestart;
  c.sensor.restart_delay = SimTime::from_sec(3);
  c.signature_engine = true;
  // Per-packet matching only — the classic stream-evasion blind spot of
  // this product class (Ptacek-Newsham 1998).
  c.stream_reassembly = false;
  c.anomaly_engine = false;
  c.rules = ids::standard_rule_set();
  // Host agents with nominal event logging on monitored hosts.
  c.use_host_agents = true;
  c.agent.name = "guard-agent";
  c.agent.logging = ids::LoggingLevel::kNominal;
  c.agent.cpu_share = 0.10;
  c.agent_sensor.name = "guard-agent-sensor";
  c.agent_sensor.base_ops_per_packet = 6000.0;
  c.agent_sensor.queue_capacity = 1024;
  c.agent_sensor.recovery = RecoveryPolicy::kAppRestart;
  c.analyzer_count = 1;
  c.analyzer.name = "guard-analyzer";
  c.analyzer.ops_per_detection = 60000.0;
  c.analyzer.transfer_delay = SimTime::from_ms(5);  // separate console box
  c.monitor.name = "guard-monitor";
  c.monitor.notification_delay = SimTime::from_ms(150);
  c.use_console = true;
  c.console.name = "guard-console";
  c.console.can_block_firewall = true;
  c.console.can_snmp = true;
  c.console.can_redirect_router = false;
  c.console.reaction_delay = SimTime::from_ms(300);
  c.console.policy = ids::default_policy();
  c.sensitivity = sensitivity;
  return c;
}

PipelineConfig flowhunt_config(double sensitivity) {
  PipelineConfig c;
  c.product = "FlowHunt";
  c.use_load_balancer = true;
  c.lb.name = "flowhunt-lb";
  c.lb.strategy = LbStrategy::kLeastLoaded;
  c.lb.ops_per_packet = 1200.0;
  c.lb.ops_per_sec = 3e9;
  c.lb.queue_capacity = 16384;
  c.lb.in_line = true;  // traffic-control heritage: sits in the path
  c.sensor_count = 4;
  c.sensor.name = "flowhunt-sensor";
  c.sensor.base_ops_per_packet = 3500.0;
  c.sensor.ops_per_sec = 1e8;
  c.sensor.queue_capacity = 4096;
  c.sensor.overload_tolerance = SimTime::from_ms(200);
  c.sensor.recovery = RecoveryPolicy::kAppRestart;
  c.sensor.restart_delay = SimTime::from_sec(2);
  c.signature_engine = false;
  c.anomaly_engine = true;
  c.anomaly.ewma_alpha = 0.05;
  c.analyzer_count = 2;
  c.analyzer.name = "flowhunt-analyzer";
  c.analyzer.ops_per_detection = 80000.0;  // flow correlation is heavy
  c.analyzer.transfer_delay = SimTime::from_ms(2);
  c.analyzer.correlation_window = SimTime::from_sec(20);
  c.monitor.name = "flowhunt-monitor";
  c.monitor.notification_delay = SimTime::from_ms(300);
  c.use_console = true;
  c.console.name = "flowhunt-console";
  c.console.can_block_firewall = true;
  c.console.can_snmp = true;
  c.console.can_redirect_router = true;
  c.console.reaction_delay = SimTime::from_ms(200);
  c.console.policy = ids::default_policy();
  c.sensitivity = sensitivity;
  return c;
}

PipelineConfig agent_config(double sensitivity) {
  PipelineConfig c;
  c.product = "AgentSwarm";
  c.sensor_count = 0;  // purely host-based
  c.signature_engine = true;
  // Host agents read the reassembled application byte stream, so stream
  // evasion cannot hide content from them.
  c.stream_reassembly = true;
  c.anomaly_engine = true;
  c.rules = ids::standard_rule_set();
  c.use_host_agents = true;
  c.agent.name = "swarm-agent";
  c.agent.logging = ids::LoggingLevel::kC2Audit;
  c.agent.cpu_share = 0.08;
  c.agent.report_over_network = true;
  c.agent.report_bytes = 240;
  c.agent_sensor.name = "swarm-agent-sensor";
  c.agent_sensor.base_ops_per_packet = 8000.0;  // research-grade code
  c.agent_sensor.queue_capacity = 512;
  c.agent_sensor.overload_tolerance = SimTime::from_ms(50);
  c.agent_sensor.recovery = RecoveryPolicy::kHang;
  c.analyzer_count = 1;
  c.analyzer.name = "swarm-analyzer";
  c.analyzer.ops_per_detection = 50000.0;
  c.analyzer.transfer_delay = SimTime::from_ms(20);  // agent gossip hops
  c.monitor.name = "swarm-monitor";
  c.monitor.notification_delay = SimTime::from_sec(1);  // batch reporting
  c.use_console = false;  // research prototype: no management console
  c.sensitivity = sensitivity;
  return c;
}

}  // namespace

std::string to_string(ProductId id) {
  switch (id) {
    case ProductId::kSentryNid:
      return "SentryNID";
    case ProductId::kGuardSecure:
      return "GuardSecure";
    case ProductId::kFlowHunt:
      return "FlowHunt";
    case ProductId::kAgentSwarm:
      return "AgentSwarm";
    case ProductId::kCount:
      break;
  }
  throw std::invalid_argument("bad ProductId");
}

const std::vector<ProductModel>& product_catalog() {
  static const std::vector<ProductModel> catalog = [] {
    std::vector<ProductModel> v;
    v.push_back({ProductId::kSentryNid, "SentryNID",
                 "Centralized network signature sniffer with a "
                 "programmable filter language (NFR NID 5.0's class).",
                 sentry_facts(), sentry_config, false});
    v.push_back({ProductId::kGuardSecure, "GuardSecure",
                 "Console-managed hybrid host+network signature system "
                 "with firewall response (RealSecure 5.0's class).",
                 guard_facts(), guard_config, true});
    v.push_back({ProductId::kFlowHunt, "FlowHunt",
                 "Flow-anomaly engine behind a dynamic load balancer with "
                 "router/honeypot reactions (ManHunt 1.2's class).",
                 flowhunt_facts(), flowhunt_config, false});
    v.push_back({ProductId::kAgentSwarm, "AgentSwarm",
                 "Autonomous host agents with hybrid detection, reporting "
                 "over the production network (AAFID's class).",
                 agent_facts(), agent_config, true});
    return v;
  }();
  return catalog;
}

const ProductModel& product(ProductId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= kProductCount) throw std::invalid_argument("bad ProductId");
  return product_catalog()[idx];
}

std::vector<ProductId> commercial_products() {
  return {ProductId::kSentryNid, ProductId::kGuardSecure,
          ProductId::kFlowHunt};
}

}  // namespace idseval::products
