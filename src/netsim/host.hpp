// Simulated host with a simple CPU budget model. Host-based IDS agents
// charge work against the host's CPU; the fraction consumed is exactly
// the paper's "Operational Performance Impact" metric (Table 3), and the
// 3-5% nominal / ~20% C2-audit logging overhead discussion in §2.1.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>
#include <string>

#include "netsim/address.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim_time.hpp"

namespace idseval::netsim {

class Host {
 public:
  using ReceiveFn = std::function<void(const Packet&)>;
  /// Batch observer: a same-tick arrival run off the downlink, FIFO order.
  using ReceiveBatchFn = std::function<void(const Packet*, std::size_t)>;

  Host(std::string name, Ipv4 address, double cpu_ops_per_sec = 1e9);

  const std::string& name() const noexcept { return name_; }
  Ipv4 address() const noexcept { return address_; }

  /// Registers a delivery observer; all observers see every packet in
  /// registration order (production stack, host IDS agent, ...). Batch and
  /// per-packet observers share one registration order.
  void add_receiver(ReceiveFn fn) {
    receivers_.push_back(ReceiverEntry{std::move(fn), nullptr});
  }
  void add_receiver_batch(ReceiveBatchFn fn) {
    receivers_.push_back(ReceiverEntry{nullptr, std::move(fn)});
  }
  void deliver(const Packet& packet);
  /// Batched delivery; a single-packet batch takes the legacy path.
  void deliver_batch(const Packet* packets, std::size_t count);

  /// --- CPU accounting -------------------------------------------------
  /// Components charge abstract "ops". Utilization is reported against a
  /// window established by begin_accounting()/end_accounting().
  void charge_ops(double ops, bool ids_work) noexcept;
  void begin_accounting(SimTime now) noexcept;
  void end_accounting(SimTime now) noexcept;

  double cpu_ops_per_sec() const noexcept { return cpu_ops_per_sec_; }
  /// Fraction of the host CPU consumed by IDS components in the window.
  double ids_cpu_fraction() const noexcept;
  /// Fraction consumed by everything (production + IDS) in the window.
  double total_cpu_fraction() const noexcept;
  std::uint64_t packets_received() const noexcept { return received_; }

 private:
  /// Exactly one of the two callbacks is set per entry.
  struct ReceiverEntry {
    ReceiveFn each;
    ReceiveBatchFn batch;
  };

  std::string name_;
  Ipv4 address_;
  double cpu_ops_per_sec_;

  std::vector<ReceiverEntry> receivers_;
  std::uint64_t received_ = 0;

  double ids_ops_ = 0.0;
  double other_ops_ = 0.0;
  SimTime window_start_;
  SimTime window_end_;
  bool accounting_open_ = false;
};

}  // namespace idseval::netsim
