// Network addressing primitives: IPv4 addresses, protocol identifiers,
// ports, and the five-tuple that keys flows and TCP streams.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace idseval::netsim {

/// IPv4 address as a host-order 32-bit value with dotted-quad rendering.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  explicit constexpr Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr auto operator<=>(const Ipv4&) const = default;

  /// True when this address falls inside `net/prefix_len`.
  constexpr bool in_subnet(Ipv4 net, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? ~0u : ~((1u << (32 - prefix_len)) - 1u);
    return (value_ & mask) == (net.value_ & mask);
  }

  std::string to_string() const;

 private:
  std::uint32_t value_ = 0;
};

enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17, kIcmp = 1 };

std::string to_string(Protocol p);

/// Well-known ports used by the payload synthesizers and signature rules.
namespace ports {
inline constexpr std::uint16_t kFtp = 21;
inline constexpr std::uint16_t kSsh = 22;
inline constexpr std::uint16_t kTelnet = 23;
inline constexpr std::uint16_t kSmtp = 25;
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kPop3 = 110;
inline constexpr std::uint16_t kSnmp = 161;
inline constexpr std::uint16_t kHttps = 443;
inline constexpr std::uint16_t kClusterRpc = 7400;  // simulated RT bus
inline constexpr std::uint16_t kModbus = 502;       // ICS control loops
inline constexpr std::uint16_t kCanBus = 3020;      // CAN bus-over-IP bridge
}  // namespace ports

/// Flow key: the classic 5-tuple.
struct FiveTuple {
  Ipv4 src_ip;
  Ipv4 dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol proto = Protocol::kTcp;

  auto operator<=>(const FiveTuple&) const = default;

  /// Canonical form ignoring direction (both directions of a TCP session
  /// map to the same key).
  FiveTuple canonical() const;

  std::string to_string() const;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept;
};

}  // namespace idseval::netsim
