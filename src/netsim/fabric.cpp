#include "netsim/fabric.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace idseval::netsim {

CrossShardFabric::CrossShardFabric(ShardedSimulator& engine, LinkSpec trunk,
                                   std::uint32_t lane_base)
    : engine_(engine), shards_(engine.shards()) {
  switches_.resize(shards_, nullptr);
  trunks_.resize(shards_ * shards_);
  dirty_.resize(shards_);
  for (std::size_t src = 0; src < shards_; ++src) {
    for (std::size_t dst = 0; dst < shards_; ++dst) {
      if (src == dst) continue;
      auto link = std::make_unique<Link>(
          engine_.shard(src),
          "trunk." + std::to_string(src) + "-" + std::to_string(dst),
          trunk.bandwidth_bps, trunk.latency, trunk.queue_capacity);
      link->set_lane(lane_base +
                     static_cast<std::uint32_t>(src * shards_ + dst));
      Link* l = link.get();
      engine_.add_channel(src, dst, trunk.latency);
      l->set_deliver_batch([this, dst](const Packet* p, std::size_t n) {
        switches_[dst]->receive_batch(p, n);
      });
      l->set_remote_flush(
          [this, l, src, dst](SimTime when, std::vector<Packet>&& batch) {
            engine_.post(src, dst, when, l->lane(),
                         [l, b = std::move(batch)]() mutable {
                           l->deliver_remote_batch(b);
                         });
          },
          [this, l, src] {
            if (!l->remote_listed()) {
              l->set_remote_listed(true);
              dirty_[src].push_back(l);
            }
          });
      trunks_[src * shards_ + dst] = std::move(link);
    }
    engine_.add_source(
        src, ShardedSimulator::Source{
                 [this, src] {
                   SimTime m = SimTime::max();
                   for (const Link* l : dirty_[src]) {
                     m = std::min(m, l->remote_pending_min());
                   }
                   return m;
                 },
                 [this, src](SimTime global_min) {
                   auto it = dirty_[src].begin();
                   while (it != dirty_[src].end()) {
                     Link* l = *it;
                     l->flush_remote(global_min);
                     if (l->remote_pending_min() == SimTime::max()) {
                       l->set_remote_listed(false);
                       it = dirty_[src].erase(it);
                     } else {
                       ++it;
                     }
                   }
                 }});
  }
}

void CrossShardFabric::set_switch(std::size_t s, Switch* sw) {
  switches_[s] = sw;
}

void CrossShardFabric::add_route(Ipv4 addr, std::size_t home) {
  for (std::size_t s = 0; s < shards_; ++s) {
    if (s == home) continue;
    switches_[s]->attach(addr, trunk(s, home));
  }
}

}  // namespace idseval::netsim
