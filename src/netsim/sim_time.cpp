#include "netsim/sim_time.hpp"

#include <cstdlib>

#include "util/strfmt.hpp"

namespace idseval::netsim {

std::string SimTime::to_string() const {
  using util::fmt_fixed;
  const std::int64_t a = std::llabs(ns_);
  if (a >= 1'000'000'000) return fmt_fixed(sec(), 3) + "s";
  if (a >= 1'000'000) return fmt_fixed(ms(), 3) + "ms";
  if (a >= 1'000) return fmt_fixed(us(), 3) + "us";
  return util::cat(ns_, "ns");
}

}  // namespace idseval::netsim
