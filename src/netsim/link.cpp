#include "netsim/link.hpp"

#include <algorithm>
#include <utility>

namespace idseval::netsim {

Link::Link(Simulator& sim, std::string name, double bandwidth_bps,
           SimTime latency, std::size_t queue_capacity_packets)
    : sim_(sim),
      name_(std::move(name)),
      bandwidth_bps_(bandwidth_bps),
      latency_(latency),
      queue_capacity_(queue_capacity_packets) {}

SimTime Link::serialization_delay(std::uint32_t bytes) const noexcept {
  if (bandwidth_bps_ <= 0.0) return SimTime::zero();
  const double seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  return SimTime::from_sec(seconds);
}

void Link::release_elapsed_slots() noexcept {
  const SimTime now = sim_.now();
  while (!slot_release_.empty() && slot_release_.front() <= now) {
    slot_release_.pop_front();
    --queued_;
  }
}

std::size_t Link::queue_depth() const noexcept {
  const SimTime now = sim_.now();
  std::size_t released = 0;
  for (const SimTime t : slot_release_) {
    if (t > now) break;
    ++released;
  }
  return queued_ - released;
}

bool Link::send(const Packet& packet) {
  ++stats_.offered_packets;
  stats_.offered_bytes += packet.wire_bytes();

  release_elapsed_slots();
  if (queued_ >= queue_capacity_) {
    ++stats_.dropped_packets;
    return false;
  }
  ++queued_;

  // The transmitter serializes packets back to back; a packet begins
  // serialization when the line frees up, then propagates for latency_.
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime tx_done = start + serialization_delay(packet.wire_bytes());
  busy_until_ = tx_done;
  const SimTime arrival = tx_done + latency_;

  // The slot frees when serialization finishes (propagation does not hold
  // buffer space). No event is scheduled for it: the tx-done time queues
  // here and drains at the next depth observation.
  slot_release_.push_back(tx_done);

  // FIFO serialization + constant latency make arrivals monotone, so a
  // same-tick arrival always lands in the newest group and rides its
  // already-scheduled delivery event.
  in_flight_.push_back(packet);
  if (coalesce_ && !groups_.empty() && groups_.back().when == arrival) {
    ++groups_.back().count;
  } else {
    const bool was_idle = groups_.empty();
    groups_.push_back({arrival, 1});
    if (remote_flush_) {
      // Remote mode: groups accumulate until a barrier flush; announce
      // the empty -> non-empty transition so the engine tracks us dirty.
      if (was_idle && on_first_pending_) on_first_pending_();
    } else {
      sim_.schedule_at_lane(arrival, lane_, [this] { deliver_group(); });
    }
  }
  return true;
}

void Link::set_remote_flush(RemoteFlushFn fn,
                            std::function<void()> on_first_pending) {
  remote_flush_ = std::move(fn);
  on_first_pending_ = std::move(on_first_pending);
}

void Link::flush_remote(SimTime global_min) {
  const SimTime bound = global_min + latency_;
  while (!groups_.empty() && groups_.front().when < bound) {
    const DeliveryGroup group = groups_.front();
    groups_.pop_front();
    std::vector<Packet> batch;
    batch.reserve(group.count);
    for (std::uint32_t i = 0; i < group.count; ++i) {
      batch.push_back(std::move(in_flight_.front()));
      in_flight_.pop_front();
    }
    remote_flush_(group.when, std::move(batch));
  }
}

void Link::deliver_remote_batch(std::vector<Packet>& batch) {
  stats_.delivered_packets += batch.size();
  std::uint64_t bytes = 0;
  for (const Packet& p : batch) bytes += p.wire_bytes();
  stats_.delivered_bytes += bytes;
  if (deliver_batch_) {
    deliver_batch_(batch.data(), batch.size());
  } else if (deliver_) {
    for (const Packet& p : batch) deliver_(p);
  }
}

void Link::deliver_group() {
  release_elapsed_slots();
  const DeliveryGroup group = groups_.front();
  groups_.pop_front();
  stats_.delivered_packets += group.count;
  if (group.count == 1) {
    // Move out before delivering: the deliver callback may re-enter
    // send() on this link and grow in_flight_.
    Packet p = std::move(in_flight_.front());
    in_flight_.pop_front();
    stats_.delivered_bytes += p.wire_bytes();
    if (deliver_batch_) {
      deliver_batch_(&p, 1);
    } else if (deliver_) {
      deliver_(p);
    }
    return;
  }

  batch_scratch_.clear();
  std::uint64_t bytes = 0;
  for (std::uint32_t i = 0; i < group.count; ++i) {
    bytes += in_flight_.front().wire_bytes();
    batch_scratch_.push_back(std::move(in_flight_.front()));
    in_flight_.pop_front();
  }
  stats_.delivered_bytes += bytes;
  if (deliver_batch_) {
    deliver_batch_(batch_scratch_.data(), batch_scratch_.size());
  } else if (deliver_) {
    for (const Packet& p : batch_scratch_) deliver_(p);
  }
  batch_scratch_.clear();  // drop payload references promptly
}

}  // namespace idseval::netsim
