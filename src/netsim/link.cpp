#include "netsim/link.hpp"

#include <algorithm>
#include <utility>

namespace idseval::netsim {

Link::Link(Simulator& sim, std::string name, double bandwidth_bps,
           SimTime latency, std::size_t queue_capacity_packets)
    : sim_(sim),
      name_(std::move(name)),
      bandwidth_bps_(bandwidth_bps),
      latency_(latency),
      queue_capacity_(queue_capacity_packets) {}

SimTime Link::serialization_delay(std::uint32_t bytes) const noexcept {
  if (bandwidth_bps_ <= 0.0) return SimTime::zero();
  const double seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  return SimTime::from_sec(seconds);
}

bool Link::send(const Packet& packet) {
  ++stats_.offered_packets;
  stats_.offered_bytes += packet.wire_bytes();

  if (queued_ >= queue_capacity_) {
    ++stats_.dropped_packets;
    return false;
  }
  ++queued_;

  // The transmitter serializes packets back to back; a packet begins
  // serialization when the line frees up, then propagates for latency_.
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime tx_done = start + serialization_delay(packet.wire_bytes());
  busy_until_ = tx_done;
  const SimTime arrival = tx_done + latency_;

  // The slot frees when serialization finishes (propagation does not hold
  // buffer space); delivery happens one propagation delay later.
  sim_.schedule_at(tx_done, [this] { --queued_; });
  // Copy the packet into the closure; payload is shared, headers are
  // small. Init-capture keeps the stored copy non-const so queue moves
  // are true moves (a const shared_ptr "move" is an atomic refcount op).
  sim_.schedule_at(arrival, [this, packet = packet] {
    ++stats_.delivered_packets;
    stats_.delivered_bytes += packet.wire_bytes();
    if (deliver_) deliver_(packet);
  });
  return true;
}

}  // namespace idseval::netsim
