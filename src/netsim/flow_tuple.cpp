#include "netsim/flow_tuple.hpp"

namespace idseval::netsim {

std::string FlowTuple::to_string() const {
  return to_five_tuple().to_string();
}

}  // namespace idseval::netsim
