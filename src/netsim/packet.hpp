// The simulated network packet. Carries realistic L3/L4 headers plus an
// actual payload string: the paper's first lesson learned (§4) is that an
// IDS testbed must generate packets with realistic *content*, because
// payload-inspecting IDSes behave differently from header-only ones.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "netsim/address.hpp"
#include "netsim/sim_time.hpp"

namespace idseval::netsim {

/// TCP flag bits (subset sufficient for session modeling and scans).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  bool operator==(const TcpFlags&) const = default;
  std::string to_string() const;
};

/// A simulated packet. Copyable; the payload is shared (COW-like) because
/// mirroring duplicates packets at the switch and the IDS pipeline passes
/// them between stages.
struct Packet {
  std::uint64_t id = 0;           ///< Unique per simulation run.
  std::uint64_t flow_id = 0;      ///< Generator-assigned flow identity.
  SimTime created;                ///< Time the source emitted the packet.
  FiveTuple tuple;
  TcpFlags flags;
  std::uint32_t seq = 0;          ///< Sequence number within the flow.
  std::uint32_t header_bytes = 40;
  std::shared_ptr<const std::string> payload;  ///< May be null (pure ctrl).

  std::uint32_t payload_bytes() const noexcept {
    return payload ? static_cast<std::uint32_t>(payload->size()) : 0;
  }
  std::uint32_t wire_bytes() const noexcept {
    return header_bytes + payload_bytes();
  }
  const std::string& payload_view() const noexcept {
    static const std::string kEmpty;
    return payload ? *payload : kEmpty;
  }

  std::string to_string() const;
};

/// Convenience factory keeping payload sharing explicit at call sites.
Packet make_packet(std::uint64_t id, std::uint64_t flow_id, SimTime created,
                   const FiveTuple& tuple, std::string payload,
                   TcpFlags flags = {});

/// Allocation-free variant: attaches an already-interned payload (e.g.
/// from traffic::PayloadPool) without copying the bytes. A null or empty
/// payload yields a pure-control packet.
Packet make_packet(std::uint64_t id, std::uint64_t flow_id, SimTime created,
                   const FiveTuple& tuple,
                   std::shared_ptr<const std::string> payload,
                   TcpFlags flags = {});

}  // namespace idseval::netsim
