#include "netsim/stream.hpp"

#include <algorithm>
#include <vector>

namespace idseval::netsim {

StreamTracker::StreamTracker(SimTime idle_timeout)
    : idle_timeout_(idle_timeout) {}

const StreamInfo& StreamTracker::observe(const Packet& packet) {
  const FiveTuple key = packet.tuple.canonical();
  auto [it, inserted] = streams_.try_emplace(key);
  StreamInfo& info = it->second;
  if (inserted) {
    info.key = key;
    info.first_seen = packet.created;
    info.state = packet.flags.syn ? StreamState::kSynSeen
                                  : StreamState::kEstablished;
    ++total_seen_;
    peak_ = std::max(peak_, streams_.size());
  }
  info.last_seen = packet.created;
  ++info.packets;
  info.bytes += packet.wire_bytes();

  // Coarse state machine: SYN -> (ACK) established -> FIN closing -> RST/2nd
  // FIN closed. Precise TCP reassembly is unnecessary for the metrics.
  if (packet.flags.rst) {
    info.state = StreamState::kClosed;
  } else if (packet.flags.fin) {
    info.state = info.state == StreamState::kClosing ? StreamState::kClosed
                                                     : StreamState::kClosing;
  } else if (packet.flags.ack && info.state == StreamState::kSynSeen) {
    info.state = StreamState::kEstablished;
  }
  return info;
}

void StreamTracker::expire(SimTime now) {
  std::vector<FiveTuple> dead;
  for (const auto& [key, info] : streams_) {
    const bool idle = now - info.last_seen > idle_timeout_;
    if (idle || info.state == StreamState::kClosed) dead.push_back(key);
  }
  for (const auto& key : dead) streams_.erase(key);
}

const StreamInfo* StreamTracker::find(const FiveTuple& tuple) const {
  const auto it = streams_.find(tuple.canonical());
  return it == streams_.end() ? nullptr : &it->second;
}

}  // namespace idseval::netsim
