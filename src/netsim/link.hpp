// Point-to-point link with finite bandwidth, propagation latency, and a
// bounded FIFO queue with tail drop. Links are where the performance
// metrics become observable: induced latency, loss under load, and the
// saturation behaviour behind "maximal throughput with zero loss" and
// "network lethal dose" (Table 3).
//
// Delivery is batched: packets whose last bit arrives at the far end on
// the same simulation tick form one DeliveryGroup and are delivered by a
// single scheduled event (the FIFO transmitter makes arrival times
// monotone, so a group is always a contiguous run of the in-flight
// queue). Queue-slot release is lazy — tx-done times drain whenever the
// depth is next observed — so a packet costs one scheduled event, not
// three.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"

namespace idseval::netsim {

struct LinkStats {
  std::uint64_t offered_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;

  double drop_ratio() const noexcept {
    return offered_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets) /
                     static_cast<double>(offered_packets);
  }
};

/// Unidirectional link. `deliver` is invoked in simulation time when the
/// packet's last bit arrives at the far end.
class Link {
 public:
  using DeliverFn = std::function<void(const Packet&)>;
  /// Batch delivery: a contiguous run of packets that all arrived on the
  /// same tick, in FIFO order. Preferred over DeliverFn when both are
  /// set; single-packet arrivals come through with count == 1.
  using DeliverBatchFn = std::function<void(const Packet*, std::size_t)>;

  Link(Simulator& sim, std::string name, double bandwidth_bps,
       SimTime latency, std::size_t queue_capacity_packets);

  /// Offers a packet to the link; returns false when the queue tail-drops.
  bool send(const Packet& packet);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_deliver_batch(DeliverBatchFn fn) {
    deliver_batch_ = std::move(fn);
  }

  /// When disabled, every packet gets its own delivery group and event
  /// even at identical arrival ticks — the single-packet reference path
  /// that batch-equivalence tests and benches compare against.
  void set_coalescing(bool enabled) noexcept { coalesce_ = enabled; }
  bool coalescing() const noexcept { return coalesce_; }

  /// Delivery-event lane (see Simulator::schedule_at_lane). Networks
  /// assign each link a unique lane in attach order so same-tick
  /// deliveries on different links fire in a canonical order regardless
  /// of which shard scheduled them.
  void set_lane(std::uint32_t lane) noexcept { lane_ = lane; }
  std::uint32_t lane() const noexcept { return lane_; }

  // -- Cross-shard remote delivery --------------------------------------
  //
  // A remote link's send side lives on one shard and its receive side on
  // another. Instead of scheduling local delivery events, final delivery
  // groups are handed to `fn` at shard barriers; the receiving shard
  // replays them through deliver_remote_batch(), which updates only the
  // delivered_* stats fields (the send side owns offered/dropped — the
  // two field sets are disjoint, so the halves never race).

  using RemoteFlushFn =
      std::function<void(SimTime when, std::vector<Packet>&& batch)>;
  /// Switches the link to remote mode. `on_first_pending` (optional) is
  /// invoked on the send shard whenever the pending-group queue goes from
  /// empty to non-empty — shard engines use it to keep a dirty list so
  /// barrier flushes skip idle links.
  void set_remote_flush(RemoteFlushFn fn,
                        std::function<void()> on_first_pending = {});
  bool remote() const noexcept { return static_cast<bool>(remote_flush_); }
  /// Earliest pending remote group tick (SimTime::max() when none).
  SimTime remote_pending_min() const noexcept {
    return groups_.empty() ? SimTime::max() : groups_.front().when;
  }
  /// Emits every group whose arrival tick is final: given that no shard
  /// will send before `global_min`, a group at tick t can still grow
  /// until its send time t - latency, so t < global_min + latency means
  /// the group can no longer change. Called at barriers, on the send
  /// shard's thread, while all shards are quiescent.
  void flush_remote(SimTime global_min);
  /// Receive-side replay of one flushed group (runs on the dst shard).
  void deliver_remote_batch(std::vector<Packet>& batch);
  /// Dirty-list bookkeeping for the owning shard engine's flush scan.
  bool remote_listed() const noexcept { return remote_listed_; }
  void set_remote_listed(bool listed) noexcept { remote_listed_ = listed; }

  const std::string& name() const noexcept { return name_; }
  double bandwidth_bps() const noexcept { return bandwidth_bps_; }
  SimTime latency() const noexcept { return latency_; }
  const LinkStats& stats() const noexcept { return stats_; }
  /// Packets queued or in serialization right now (slots whose tx-done
  /// time has passed are counted as released even if not yet drained).
  std::size_t queue_depth() const noexcept;
  void reset_stats() noexcept { stats_ = LinkStats{}; }

  /// Serialization delay for a packet of `bytes` at this bandwidth.
  SimTime serialization_delay(std::uint32_t bytes) const noexcept;

 private:
  void deliver_group();
  void release_elapsed_slots() noexcept;

  /// Packets sharing one arrival tick, delivered by a single event.
  struct DeliveryGroup {
    SimTime when;
    std::uint32_t count = 0;
  };

  Simulator& sim_;
  std::string name_;
  double bandwidth_bps_;
  SimTime latency_;
  std::size_t queue_capacity_;

  DeliverFn deliver_;
  DeliverBatchFn deliver_batch_;
  RemoteFlushFn remote_flush_;
  std::function<void()> on_first_pending_;
  LinkStats stats_;
  std::size_t queued_ = 0;      ///< Packets queued or in serialization.
  SimTime busy_until_;          ///< When the transmitter frees up.
  bool coalesce_ = true;
  bool remote_listed_ = false;
  std::uint32_t lane_ = 0;

  std::deque<Packet> in_flight_;       ///< FIFO toward delivery.
  std::deque<DeliveryGroup> groups_;   ///< Arrival ticks are monotone.
  std::deque<SimTime> slot_release_;   ///< Pending tx-done times (lazy).
  std::vector<Packet> batch_scratch_;  ///< Contiguous view for batches.
};

}  // namespace idseval::netsim
