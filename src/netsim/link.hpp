// Point-to-point link with finite bandwidth, propagation latency, and a
// bounded FIFO queue with tail drop. Links are where the performance
// metrics become observable: induced latency, loss under load, and the
// saturation behaviour behind "maximal throughput with zero loss" and
// "network lethal dose" (Table 3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"

namespace idseval::netsim {

struct LinkStats {
  std::uint64_t offered_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t delivered_bytes = 0;

  double drop_ratio() const noexcept {
    return offered_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets) /
                     static_cast<double>(offered_packets);
  }
};

/// Unidirectional link. `deliver` is invoked in simulation time when the
/// packet's last bit arrives at the far end.
class Link {
 public:
  using DeliverFn = std::function<void(const Packet&)>;

  Link(Simulator& sim, std::string name, double bandwidth_bps,
       SimTime latency, std::size_t queue_capacity_packets);

  /// Offers a packet to the link; returns false when the queue tail-drops.
  bool send(const Packet& packet);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  const std::string& name() const noexcept { return name_; }
  double bandwidth_bps() const noexcept { return bandwidth_bps_; }
  SimTime latency() const noexcept { return latency_; }
  const LinkStats& stats() const noexcept { return stats_; }
  std::size_t queue_depth() const noexcept { return queued_; }
  void reset_stats() noexcept { stats_ = LinkStats{}; }

  /// Serialization delay for a packet of `bytes` at this bandwidth.
  SimTime serialization_delay(std::uint32_t bytes) const noexcept;

 private:
  Simulator& sim_;
  std::string name_;
  double bandwidth_bps_;
  SimTime latency_;
  std::size_t queue_capacity_;

  DeliverFn deliver_;
  LinkStats stats_;
  std::size_t queued_ = 0;      ///< Packets queued or in serialization.
  SimTime busy_until_;          ///< When the transmitter frees up.
};

}  // namespace idseval::netsim
