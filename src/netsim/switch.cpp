#include "netsim/switch.hpp"

#include <utility>

namespace idseval::netsim {

Switch::Switch(Simulator& sim, std::string name)
    : sim_(sim),
      name_(std::move(name)),
      tele_mirrored_(telemetry::counter_handle(
          telemetry::names::kSwitchMirrored)),
      tele_forwarded_(telemetry::counter_handle(
          telemetry::names::kSwitchForwarded)),
      tele_blocked_(telemetry::counter_handle(
          telemetry::names::kSwitchBlocked)) {}

void Switch::attach(Ipv4 addr, Link* egress) {
  routes_[addr.value()] = egress;
}

void Switch::receive(const Packet& packet) {
  if (blocked_.contains(packet.tuple.src_ip.value())) {
    ++stats_.blocked;
    telemetry::bump(tele_blocked_);
    return;
  }
  // Mirrors observe traffic as it traverses the switch, before any
  // in-line device: a SPAN copy is taken at the ingress ASIC.
  for (const auto& mirror : mirrors_) {
    ++stats_.mirrored;
    telemetry::bump(tele_mirrored_);
    mirror(packet);
  }
  if (inline_hook_) {
    inline_hook_(packet, [this](const Packet& p) { forward(p); });
  } else {
    forward(packet);
  }
}

void Switch::forward(const Packet& packet) {
  const auto it = routes_.find(packet.tuple.dst_ip.value());
  if (it == routes_.end() || it->second == nullptr) {
    ++stats_.no_route;
    return;
  }
  ++stats_.forwarded;
  telemetry::bump(tele_forwarded_);
  it->second->send(packet);
}

void Switch::add_mirror(MirrorFn fn) { mirrors_.push_back(std::move(fn)); }

void Switch::block_source(Ipv4 addr) { blocked_.insert(addr.value()); }

void Switch::unblock_source(Ipv4 addr) { blocked_.erase(addr.value()); }

bool Switch::is_blocked(Ipv4 addr) const {
  return blocked_.contains(addr.value());
}

}  // namespace idseval::netsim
