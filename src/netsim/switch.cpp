#include "netsim/switch.hpp"

#include <utility>

namespace idseval::netsim {

Switch::Switch(Simulator& sim, std::string name)
    : sim_(sim),
      name_(std::move(name)),
      tele_mirrored_(telemetry::counter_handle(
          telemetry::names::kSwitchMirrored)),
      tele_forwarded_(telemetry::counter_handle(
          telemetry::names::kSwitchForwarded)),
      tele_blocked_(telemetry::counter_handle(
          telemetry::names::kSwitchBlocked)) {}

void Switch::attach(Ipv4 addr, Link* egress) {
  routes_[addr.value()] = egress;
}

void Switch::receive(const Packet& packet) {
  if (!blocked_.empty() && blocked_.contains(packet.tuple.src_ip.value())) {
    ++stats_.blocked;
    telemetry::bump(tele_blocked_);
    return;
  }
  // Mirrors observe traffic as it traverses the switch, before any
  // in-line device: a SPAN copy is taken at the ingress ASIC.
  for (const auto& mirror : mirrors_) {
    ++stats_.mirrored;
    telemetry::bump(tele_mirrored_);
    if (mirror.batch) {
      mirror.batch(&packet, 1);
    } else {
      mirror.each(packet);
    }
  }
  if (inline_hook_) {
    inline_hook_(packet, [this](const Packet& p) { forward(p); });
  } else {
    forward(packet);
  }
}

void Switch::receive_batch(const Packet* packets, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    receive(*packets);
    return;
  }
  if (!blocked_.empty()) {
    // Block-list filtering can split the batch; fall back to the exact
    // per-packet path so blocked/mirrored ordering stays identical.
    for (std::size_t i = 0; i < count; ++i) receive(packets[i]);
    return;
  }
  // Hoisted: one stats/telemetry update for the whole fan-out.
  const std::uint64_t mirror_copies =
      static_cast<std::uint64_t>(mirrors_.size()) *
      static_cast<std::uint64_t>(count);
  if (mirror_copies != 0) {
    stats_.mirrored += mirror_copies;
    telemetry::bump(tele_mirrored_, mirror_copies);
  }
  for (const auto& mirror : mirrors_) {
    if (mirror.batch) {
      mirror.batch(packets, count);
    } else {
      for (std::size_t i = 0; i < count; ++i) mirror.each(packets[i]);
    }
  }
  if (inline_hook_) {
    for (std::size_t i = 0; i < count; ++i) {
      inline_hook_(packets[i], [this](const Packet& p) { forward(p); });
    }
  } else {
    forward_batch(packets, count);
  }
}

void Switch::forward(const Packet& packet) {
  const auto it = routes_.find(packet.tuple.dst_ip.value());
  if (it == routes_.end() || it->second == nullptr) {
    ++stats_.no_route;
    return;
  }
  ++stats_.forwarded;
  telemetry::bump(tele_forwarded_);
  it->second->send(packet);
}

void Switch::forward_batch(const Packet* packets, std::size_t count) {
  // Same-tick batches overwhelmingly share one destination (they came off
  // one uplink); cache the last route to skip repeat hash lookups.
  std::uint32_t cached_dst = 0;
  Link* cached_link = nullptr;
  bool cache_valid = false;
  std::uint64_t forwarded = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Packet& packet = packets[i];
    const std::uint32_t dst = packet.tuple.dst_ip.value();
    if (!cache_valid || dst != cached_dst) {
      const auto it = routes_.find(dst);
      cached_dst = dst;
      cached_link = (it == routes_.end()) ? nullptr : it->second;
      cache_valid = true;
    }
    if (cached_link == nullptr) {
      ++stats_.no_route;
      continue;
    }
    ++forwarded;
    cached_link->send(packet);
  }
  stats_.forwarded += forwarded;
  telemetry::bump(tele_forwarded_, forwarded);
}

void Switch::add_mirror(MirrorFn fn) {
  mirrors_.push_back(MirrorEntry{std::move(fn), nullptr});
}

void Switch::add_mirror_batch(MirrorBatchFn fn) {
  mirrors_.push_back(MirrorEntry{nullptr, std::move(fn)});
}

void Switch::block_source(Ipv4 addr) { blocked_.insert(addr.value()); }

void Switch::unblock_source(Ipv4 addr) { blocked_.erase(addr.value()); }

bool Switch::is_blocked(Ipv4 addr) const {
  return blocked_.contains(addr.value());
}

}  // namespace idseval::netsim
