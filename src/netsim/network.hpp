// Topology assembly: hosts attached to one LAN switch via per-host link
// pairs, plus "external" hosts behind a higher-latency WAN uplink —
// mirroring Figure 1's border-router / LAN split. The traffic generators
// and attack emitters inject through Network::send().
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/host.hpp"
#include "netsim/link.hpp"
#include "netsim/packet.hpp"
#include "netsim/sharded.hpp"
#include "netsim/simulator.hpp"
#include "netsim/switch.hpp"

namespace idseval::netsim {

struct LinkSpec {
  double bandwidth_bps = 1e9;     // 1 Gb/s default LAN
  SimTime latency = SimTime::from_us(50);
  std::size_t queue_capacity = 256;
};

class Network {
 public:
  explicit Network(Simulator& sim);

  /// Sharded-central topology: traffic generation, the LAN switch, and
  /// every uplink stay on the engine's hub shard; hosts whose plan shard
  /// is non-zero receive their downlink deliveries (and run their host
  /// agents) on that shard, fed through cross-shard mailboxes. With a
  /// one-shard plan this is exactly the legacy single-queue topology.
  Network(ShardedSimulator& engine, const ShardPlan& plan);

  /// Adds an internal (LAN) host. Returns a stable pointer owned by the
  /// network.
  Host* add_host(const std::string& name, Ipv4 addr,
                 const LinkSpec& spec = {}, double cpu_ops_per_sec = 1e9);

  /// Adds an external host (reaches the LAN via the WAN link spec —
  /// typically lower bandwidth, higher latency).
  Host* add_external_host(const std::string& name, Ipv4 addr,
                          const LinkSpec& spec = {1e8, SimTime::from_ms(20),
                                                  512},
                          double cpu_ops_per_sec = 1e9);

  Host* find_host(Ipv4 addr);
  const Host* find_host(Ipv4 addr) const;

  Switch& lan_switch() noexcept { return switch_; }
  const Switch& lan_switch() const noexcept { return switch_; }
  Simulator& sim() noexcept { return sim_; }

  /// The shard engine behind this network, or nullptr for the legacy
  /// single-simulator construction.
  ShardedSimulator* engine() noexcept { return engine_; }
  /// Shard that owns `addr`'s receive side (0 without an engine).
  std::size_t shard_of(Ipv4 addr) const noexcept {
    return engine_ ? plan_.shard_of(addr) : 0;
  }
  /// Simulator whose clock governs `addr`'s receive side — the hub for
  /// legacy networks and hub-resident hosts, the host's shard otherwise.
  Simulator& sim_of(Ipv4 addr) noexcept {
    return engine_ ? engine_->shard(plan_.shard_of(addr)) : sim_;
  }

  /// Allocates a fresh event lane (links take them in attach order; host
  /// agents draw theirs from the same sequence so every same-tick stream
  /// has a canonical cross-entity order).
  std::uint32_t alloc_lane() noexcept { return next_lane_++; }

  Link* uplink(Ipv4 addr);
  Link* downlink(Ipv4 addr);

  /// Emits a packet from its source host: it traverses the source uplink,
  /// the switch (mirrors/in-line/block list), and the destination
  /// downlink. Returns false if the uplink tail-dropped it immediately.
  bool send(const Packet& packet);

  /// Aggregate ingress/egress statistics across all host links.
  LinkStats aggregate_uplink_stats() const;
  LinkStats aggregate_downlink_stats() const;
  void reset_link_stats();

  /// Toggles same-tick delivery coalescing on every host link. Off gives
  /// the one-event-per-packet reference path batch-equivalence tests and
  /// benches compare against.
  void set_delivery_coalescing(bool enabled);

  const std::vector<Host*>& hosts() const noexcept { return host_order_; }

 private:
  struct Attachment {
    std::unique_ptr<Host> host;
    std::unique_ptr<Link> uplink;    // host -> switch
    std::unique_ptr<Link> downlink;  // switch -> host
  };

  Host* attach(const std::string& name, Ipv4 addr, const LinkSpec& spec,
               double cpu_ops_per_sec);
  void wire_remote_downlink(Link* downlink, std::size_t shard,
                            const LinkSpec& spec);

  Simulator& sim_;
  Switch switch_;
  ShardedSimulator* engine_ = nullptr;
  ShardPlan plan_;
  std::uint32_t next_lane_ = 1;
  std::unordered_map<std::uint32_t, Attachment> attachments_;
  std::vector<Host*> host_order_;
  /// Remote downlinks with pending delivery groups, scanned by the hub
  /// shard's barrier flush (order is irrelevant for determinism: the
  /// injection sort on (when, lane, seq) canonicalizes it).
  std::vector<Link*> dirty_remote_;
};

}  // namespace idseval::netsim
