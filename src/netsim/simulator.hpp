// Discrete-event simulation core. A single Simulator owns virtual time;
// every component (links, hosts, traffic generators, IDS pipeline stages)
// schedules callbacks on it. Events at equal timestamps fire in schedule
// order (a monotonic sequence number breaks ties), which makes whole runs
// bit-reproducible for a given seed — the repeatability the methodology
// requires.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netsim/sim_time.hpp"

namespace idseval::netsim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when` (>= now, else clamped to now).
  void schedule_at(SimTime when, Callback cb);
  /// Schedules `cb` after a relative delay.
  void schedule_in(SimTime delay, Callback cb);

  /// Runs events until the queue drains or `deadline` is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline = SimTime::max());

  /// Executes at most one event. Returns false when the queue is empty or
  /// the next event lies beyond `deadline` (time does not advance then).
  bool step(SimTime deadline = SimTime::max());

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Fresh unique ids for packets/flows within this simulation.
  std::uint64_t next_packet_id() noexcept { return ++packet_ids_; }
  std::uint64_t next_flow_id() noexcept { return ++flow_ids_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t packet_ids_ = 0;
  std::uint64_t flow_ids_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace idseval::netsim
