// Discrete-event simulation core. A single Simulator owns virtual time;
// every component (links, hosts, traffic generators, IDS pipeline stages)
// schedules callbacks on it. Events at equal timestamps fire in schedule
// order (a monotonic sequence number breaks ties), which makes whole runs
// bit-reproducible for a given seed — the repeatability the methodology
// requires.
//
// The hot path is allocation-free in steady state: callbacks are
// move-only InlineCallbacks (captures stored in place, no per-event
// std::function heap cell) parked in a recycled slab, and the event
// queue is a binary heap of 24-byte (when, seq, slot) keys over a
// reserved vector — heap sifts move small keys, never the ~150-byte
// callback storage. Oversized captures take a heap fallback, counted in
// alloc_fallbacks() and the "sim.callback_fallbacks" telemetry counter.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/sim_time.hpp"
#include "telemetry/registry.hpp"
#include "util/inline_callback.hpp"

namespace idseval::netsim {

class Simulator {
 public:
  using Callback = util::InlineCallback;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `when` (>= now, else clamped to now).
  void schedule_at(SimTime when, Callback cb);
  /// Schedules `cb` after a relative delay.
  void schedule_in(SimTime delay, Callback cb);

  /// Lanes give same-tick events a canonical cross-entity order that does
  /// not depend on which queue they were scheduled from: the tie-break key
  /// is (lane, per-simulator sequence), so two events at the same tick on
  /// different lanes compare the same whether they were pushed onto one
  /// serial heap or injected from a cross-shard mailbox after a barrier.
  /// Link deliveries and host-agent reports carry the lane of their stream
  /// (assigned by Network in attach order); plain schedule_at uses lane 0.
  static constexpr std::uint32_t kMaxLane = (1u << 24) - 1;
  void schedule_at_lane(SimTime when, std::uint32_t lane, Callback cb);

  /// Timestamp of the earliest pending event (SimTime::max() when empty).
  SimTime next_event_time() const noexcept {
    return heap_.empty() ? SimTime::max() : heap_.front().when;
  }

  /// Runs events until the queue drains or `deadline` is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline = SimTime::max());

  /// Executes at most one event. Returns false when the queue is empty or
  /// the next event lies beyond `deadline` (time does not advance then).
  bool step(SimTime deadline = SimTime::max());

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Grows the reserved event storage (never shrinks). The queue also
  /// grows on demand; reserving up front just moves the growth out of the
  /// measured window.
  void reserve_events(std::size_t capacity) {
    heap_.reserve(capacity);
    slab_.reserve(capacity);
    free_slots_.reserve(capacity);
  }
  std::size_t event_capacity() const noexcept { return heap_.capacity(); }

  /// Number of scheduled callbacks whose captures exceeded the inline
  /// buffer and fell back to a heap cell. Zero in steady state on the
  /// default profiles; nonzero means a capture outgrew
  /// util::InlineCallback::kInlineBytes and the hot path regressed.
  std::uint64_t alloc_fallbacks() const noexcept { return alloc_fallbacks_; }

  /// Fresh unique ids for packets/flows within this simulation.
  std::uint64_t next_packet_id() noexcept { return ++packet_ids_; }
  std::uint64_t next_flow_id() noexcept { return ++flow_ids_; }

 private:
  /// Heap entry: ordering key plus the callback's slab slot. Small on
  /// purpose — sift-up/down traffic is the queue's dominant cost. The seq
  /// field packs (lane << 40 | counter): comparing seq then orders equal
  /// ticks by lane first, schedule order second.
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t packet_ids_ = 0;
  std::uint64_t flow_ids_ = 0;
  std::uint64_t alloc_fallbacks_ = 0;
  telemetry::Counter* tele_fallbacks_ = nullptr;
  std::vector<Event> heap_;  ///< Binary min-heap on (when, seq).
  std::vector<Callback> slab_;          ///< Parked callbacks, by slot.
  std::vector<std::uint32_t> free_slots_;  ///< Recycled slab slots.
};

}  // namespace idseval::netsim
