// LAN switch with forwarding, SPAN port mirroring (how passive network
// IDS sensors see traffic), an optional in-line hook (how an in-line
// load-balancer/IDS induces latency, §2.2), and a firewall-style block
// list that the IDS management console manipulates in response to threats
// ("Firewall Interaction", Table 3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"

namespace idseval::netsim {

struct SwitchStats {
  std::uint64_t forwarded = 0;
  std::uint64_t no_route = 0;
  std::uint64_t blocked = 0;
  std::uint64_t mirrored = 0;
};

class Switch {
 public:
  using MirrorFn = std::function<void(const Packet&)>;
  /// Batch SPAN mirror: observes a same-tick arrival batch in one call.
  using MirrorBatchFn = std::function<void(const Packet*, std::size_t)>;
  /// In-line hook: receives the packet and a continuation that resumes
  /// normal forwarding; the hook may delay, drop, or forward immediately.
  using InlineFn =
      std::function<void(const Packet&, std::function<void(const Packet&)>)>;

  explicit Switch(Simulator& sim, std::string name = "switch0");

  /// Registers the egress link toward `addr`.
  void attach(Ipv4 addr, Link* egress);

  /// Ingress entry point: called when a packet arrives at the switch.
  void receive(const Packet& packet);
  /// Batched ingress: a same-tick arrival run from one uplink, in FIFO
  /// order. Mirror fan-out and stats/telemetry updates happen once per
  /// batch; a single-packet batch takes the exact legacy receive() path.
  void receive_batch(const Packet* packets, std::size_t count);

  /// SPAN: every forwarded packet is also copied to each mirror. Batch
  /// and per-packet mirrors share one registration order.
  void add_mirror(MirrorFn fn);
  void add_mirror_batch(MirrorBatchFn fn);
  /// Installs / clears the in-line device hook.
  void set_inline_hook(InlineFn fn) { inline_hook_ = std::move(fn); }

  /// Firewall block list manipulated by IDS consoles.
  void block_source(Ipv4 addr);
  void unblock_source(Ipv4 addr);
  bool is_blocked(Ipv4 addr) const;
  std::size_t blocked_count() const noexcept { return blocked_.size(); }

  const SwitchStats& stats() const noexcept { return stats_; }
  const std::string& name() const noexcept { return name_; }

 private:
  void forward(const Packet& packet);
  void forward_batch(const Packet* packets, std::size_t count);

  /// Exactly one of the two callbacks is set per entry; the vector keeps
  /// the combined registration order mirrors fire in.
  struct MirrorEntry {
    MirrorFn each;
    MirrorBatchFn batch;
  };

  Simulator& sim_;
  std::string name_;
  std::unordered_map<std::uint32_t, Link*> routes_;
  std::unordered_set<std::uint32_t> blocked_;
  std::vector<MirrorEntry> mirrors_;
  InlineFn inline_hook_;
  SwitchStats stats_;
  // Whole-run telemetry (the switch is network infrastructure, never
  // reset between measurement windows).
  telemetry::Counter* tele_mirrored_;
  telemetry::Counter* tele_forwarded_;
  telemetry::Counter* tele_blocked_;
};

}  // namespace idseval::netsim
