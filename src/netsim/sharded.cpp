#include "netsim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "util/rng.hpp"

namespace idseval::netsim {

namespace {

// Salt for the host -> shard topology hash; any fixed constant works, it
// just decorrelates the partition from other uses of the address bits.
constexpr std::uint64_t kShardSalt = 0x5ca1ab1e0ddba11ULL;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool threads_forced() {
  const char* env = std::getenv("IDSEVAL_SHARD_THREADS");
  return env != nullptr && env[0] == '1';
}

}  // namespace

ShardPlan ShardPlan::central(std::size_t shards) {
  ShardPlan plan;
  plan.shards_ = shards == 0 ? 1 : shards;
  plan.central_ = true;
  return plan;
}

ShardPlan ShardPlan::distributed(std::size_t shards) {
  ShardPlan plan;
  plan.shards_ = shards == 0 ? 1 : shards;
  plan.central_ = false;
  return plan;
}

std::size_t ShardPlan::shard_of(Ipv4 addr) const noexcept {
  if (shards_ == 1) return 0;
  const std::uint64_t h = util::derive_seed(kShardSalt, addr.value());
  if (central_) return 1 + static_cast<std::size_t>(h % (shards_ - 1));
  return static_cast<std::size_t>(h % shards_);
}

ShardedSimulator::ShardedSimulator(const ShardPlan& plan) : plan_(plan) {
  const std::size_t n = plan.shards();
  sims_.reserve(n);
  registries_.resize(n);
  for (std::size_t i = 1; i < n; ++i) {
    registries_[i] = std::make_unique<telemetry::Registry>();
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Construct each shard's Simulator under its own registry so its
    // telemetry handles (sim.callback_fallbacks) bind shard-locally;
    // shard 0 binds the ambient registry of the constructing thread.
    if (registries_[i]) {
      telemetry::ScopedRegistry scope(registries_[i].get());
      sims_.push_back(std::make_unique<Simulator>());
    } else {
      sims_.push_back(std::make_unique<Simulator>());
    }
  }
  boxes_.resize(n * n);
  sources_.resize(n);
  inject_scratch_.resize(n);
  stats_.shard.resize(n);
  threaded_ =
      n > 1 && (std::thread::hardware_concurrency() > 1 || threads_forced());
}

ShardedSimulator::~ShardedSimulator() { stop_workers(); }

void ShardedSimulator::add_channel(std::size_t /*src*/, std::size_t /*dst*/,
                                   SimTime min_delay) {
  if (min_delay <= SimTime::zero()) min_delay = SimTime::from_ns(1);
  lookahead_ = std::min(lookahead_, min_delay);
}

void ShardedSimulator::add_source(std::size_t s, Source source) {
  sources_[s].push_back(std::move(source));
}

void ShardedSimulator::post(std::size_t src, std::size_t dst, SimTime when,
                            std::uint32_t lane, util::InlineCallback cb) {
  Mailbox& b = box(src, dst);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(lane) << 40) | ++b.seq;
  b.min_when = std::min(b.min_when, when);
  b.msgs.push_back(Msg{when, key, std::move(cb)});
}

void ShardedSimulator::set_threaded(bool threaded) {
  if (!threaded) stop_workers();
  threaded_ = threaded && shards() > 1;
}

SimTime ShardedSimulator::local_min(std::size_t s) const {
  SimTime m = sims_[s]->next_event_time();
  for (const Source& source : sources_[s]) {
    m = std::min(m, source.pending_min());
  }
  const std::size_t n = sims_.size();
  for (std::size_t src = 0; src < n; ++src) {
    m = std::min(m, boxes_[src * n + s].min_when);
  }
  return m;
}

void ShardedSimulator::flush_shard(std::size_t s, SimTime global_min) {
  for (const Source& source : sources_[s]) source.flush(global_min);
}

void ShardedSimulator::inject_shard(std::size_t s) {
  // Inject inbound mailboxes: concatenate in source-shard order, then a
  // stable sort on (when, lane, seq) — the canonical merged order a
  // single serial heap would have produced for these events. Runs only
  // at barriers (no shard is executing), so draining a mailbox never
  // races its writer; deferring a post made during the previous window
  // to this barrier cannot reorder anything, because a lane has exactly
  // one writing shard and the heap orders distinct lanes by lane key
  // regardless of insertion order.
  const std::size_t n = sims_.size();
  std::vector<Msg>& scratch = inject_scratch_[s];
  scratch.clear();
  for (std::size_t src = 0; src < n; ++src) {
    Mailbox& b = box(src, s);
    if (b.msgs.empty()) continue;
    for (Msg& m : b.msgs) scratch.push_back(std::move(m));
    b.msgs.clear();
    b.min_when = SimTime::max();
  }
  if (!scratch.empty()) {
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const Msg& a, const Msg& b) {
                       if (a.when != b.when) return a.when < b.when;
                       return a.key < b.key;
                     });
    stats_.shard[s].messages += scratch.size();
    for (Msg& m : scratch) {
      sims_[s]->schedule_at_lane(
          m.when, static_cast<std::uint32_t>(m.key >> 40), std::move(m.cb));
    }
    scratch.clear();
  }
}

std::uint64_t ShardedSimulator::run_shard_window(std::size_t s,
                                                 SimTime window_last) {
  return sims_[s]->run_until(window_last);
}

std::uint64_t ShardedSimulator::run_windows_sequential(SimTime deadline) {
  std::uint64_t ran = 0;
  for (;;) {
    SimTime gm = SimTime::max();
    for (std::size_t s = 0; s < sims_.size(); ++s) {
      gm = std::min(gm, local_min(s));
    }
    if (gm > deadline) break;
    SimTime window_last =
        gm > SimTime::max() - lookahead_
            ? SimTime::max()
            : gm + lookahead_ - SimTime::from_ns(1);
    window_last = std::min(window_last, deadline);
    for (std::size_t s = 0; s < sims_.size(); ++s) flush_shard(s, gm);
    for (std::size_t s = 0; s < sims_.size(); ++s) inject_shard(s);
    for (std::size_t s = 0; s < sims_.size(); ++s) {
      if (telemetry::Registry* reg = registry(s)) {
        telemetry::ScopedRegistry scope(reg);
        ran += run_shard_window(s, window_last);
      } else {
        ran += run_shard_window(s, window_last);
      }
    }
    ++stats_.windows;
  }
  return ran;
}

std::uint64_t ShardedSimulator::run_windows_threaded(SimTime deadline) {
  start_workers();
  const std::uint64_t start_executed = executed();
  for (;;) {
    SimTime gm = SimTime::max();
    for (std::size_t s = 0; s < sims_.size(); ++s) {
      gm = std::min(gm, local_min(s));
    }
    if (gm > deadline) break;
    SimTime window_last =
        gm > SimTime::max() - lookahead_
            ? SimTime::max()
            : gm + lookahead_ - SimTime::from_ns(1);
    window_last = std::min(window_last, deadline);
    // Mailbox writes (flush) and reads (inject) both happen here, while
    // every worker idles at the barrier; the epoch hand-off below
    // publishes the injected heaps to the workers.
    for (std::size_t s = 0; s < sims_.size(); ++s) flush_shard(s, gm);
    for (std::size_t s = 0; s < sims_.size(); ++s) inject_shard(s);

    const auto window_t0 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lk(mu_);
      phase_ = Phase::kRun;
      phase_bound_ = window_last;
      done_ = 0;
      ++epoch_;
    }
    cv_go_.notify_all();
    const auto main_t0 = std::chrono::steady_clock::now();
    run_shard_window(0, window_last);
    const double main_work = seconds_since(main_t0);
    stats_.shard[0].work_sec += main_work;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] { return done_ == workers_.size(); });
    }
    stats_.shard[0].barrier_stall_sec +=
        std::max(0.0, seconds_since(window_t0) - main_work);
    ++stats_.windows;
  }
  return executed() - start_executed;
}

std::uint64_t ShardedSimulator::run_until(SimTime deadline) {
  if (sims_.size() == 1) {
    // The exact legacy single-queue path: no windows, no barriers, no
    // mailboxes — just the serial heap loop.
    return sims_[0]->run_until(deadline);
  }
  const std::uint64_t ran = threaded_ ? run_windows_threaded(deadline)
                                      : run_windows_sequential(deadline);
  // No events <= deadline remain anywhere; align every shard's clock so
  // barrier-time actions (stat resets, phase boundaries) see `deadline`.
  for (auto& sim : sims_) sim->run_until(deadline);
  return ran;
}

std::uint64_t ShardedSimulator::executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->executed();
  return total;
}

std::uint64_t ShardedSimulator::alloc_fallbacks() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->alloc_fallbacks();
  return total;
}

void ShardedSimulator::merge_registries_into(telemetry::Registry& into) {
  for (std::size_t i = 1; i < sims_.size(); ++i) {
    into.merge_from(*registries_[i]);
  }
}

void ShardedSimulator::start_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(sims_.size() - 1);
  for (std::size_t s = 1; s < sims_.size(); ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

void ShardedSimulator::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    phase_ = Phase::kExit;
    ++epoch_;
  }
  cv_go_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  phase_ = Phase::kIdle;
}

void ShardedSimulator::worker_loop(std::size_t s) {
  std::uint64_t seen = 0;
  for (;;) {
    Phase phase;
    SimTime bound;
    {
      std::unique_lock<std::mutex> lk(mu_);
      const auto wait_t0 = std::chrono::steady_clock::now();
      cv_go_.wait(lk, [&] { return epoch_ != seen; });
      stats_.shard[s].barrier_stall_sec += seconds_since(wait_t0);
      seen = epoch_;
      phase = phase_;
      bound = phase_bound_;
    }
    if (phase == Phase::kExit) return;
    const auto work_t0 = std::chrono::steady_clock::now();
    {
      telemetry::ScopedRegistry scope(registries_[s].get());
      run_shard_window(s, bound);
    }
    stats_.shard[s].work_sec += seconds_since(work_t0);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++done_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace idseval::netsim
