// Distributed sharding glue: per-shard-pair trunk links connecting N
// per-shard switches. In a distributed plan every shard owns a full
// local topology (hosts, switch, links); a packet whose destination
// hashes to another shard is routed by the local switch onto the trunk
// toward the destination shard, crosses at the barrier through the
// engine mailboxes, and enters the destination switch's batched-ingest
// path — the border-router shape of Figure 1, one hop wider.
//
// Distributed runs are bit-reproducible at a fixed shard count, but not
// shard-count-invariant (each shard drives its own traffic generator
// stream); the shard-count-invariant path is the central plan built by
// Network(ShardedSimulator&, ShardPlan). This fabric exists for
// scale-out benchmarking (bench_netsim shard_scaling) and tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/network.hpp"
#include "netsim/sharded.hpp"
#include "netsim/switch.hpp"

namespace idseval::netsim {

class CrossShardFabric {
 public:
  /// `trunk` sizes the per-pair trunk links; its latency is the declared
  /// cross-shard lookahead, so keep it >= the LAN link latency. Trunk
  /// lanes start at `lane_base` (pick a range no host link uses).
  CrossShardFabric(ShardedSimulator& engine, LinkSpec trunk,
                   std::uint32_t lane_base = 1u << 22);

  /// Registers shard `s`'s switch. Call for every shard before add_route.
  void set_switch(std::size_t s, Switch* sw);

  /// Declares a host address homed on shard `home`: every other shard's
  /// switch routes it onto the trunk toward `home`.
  void add_route(Ipv4 addr, std::size_t home);

  Link* trunk(std::size_t src, std::size_t dst) noexcept {
    return trunks_[src * shards_ + dst].get();
  }

 private:
  ShardedSimulator& engine_;
  std::size_t shards_;
  std::vector<Switch*> switches_;
  std::vector<std::unique_ptr<Link>> trunks_;  ///< N*N, [src][dst].
  std::vector<std::vector<Link*>> dirty_;      ///< Per source shard.
};

}  // namespace idseval::netsim
