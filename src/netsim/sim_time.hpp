// Simulation time: signed 64-bit nanosecond ticks. A distinct type (not a
// bare integer) so packet timestamps, link latencies, and alert deadlines
// cannot be mixed with counts by accident.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace idseval::netsim {

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_ns(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime from_us(double us) {
    return SimTime{static_cast<std::int64_t>(us * 1e3)};
  }
  static constexpr SimTime from_ms(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e6)};
  }
  static constexpr SimTime from_sec(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{INT64_MAX};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime rhs) const {
    return SimTime{ns_ + rhs.ns_};
  }
  constexpr SimTime operator-(SimTime rhs) const {
    return SimTime{ns_ - rhs.ns_};
  }
  constexpr SimTime& operator+=(SimTime rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }
  constexpr SimTime operator*(double k) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace idseval::netsim
