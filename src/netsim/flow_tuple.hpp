// Packed 13-byte flow key, after the ns-3 FlowTuple idiom: the five
// tuple fields laid out contiguously (src addr, dst addr, src port, dst
// port, proto) so the key hashes as raw bytes — one FNV pass over 13
// bytes instead of field-by-field mixing — and compares as five integer
// fields. This is the key type of every FlowTable in the tree; FiveTuple
// remains the packet-facing representation and converts loss-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "netsim/address.hpp"
#include "util/flow_table.hpp"

namespace idseval::netsim {

struct FlowTuple {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  /// Bytes participating in the raw-byte hash: the five fields occupy
  /// the first 13 bytes with no interior padding; the trailing struct
  /// padding is excluded so it can never leak into the hash.
  static constexpr std::size_t kPackedBytes = 13;

  static constexpr FlowTuple from(const FiveTuple& t) noexcept {
    return FlowTuple{t.src_ip.value(), t.dst_ip.value(), t.src_port,
                     t.dst_port, static_cast<std::uint8_t>(t.proto)};
  }

  constexpr FiveTuple to_five_tuple() const noexcept {
    return FiveTuple{Ipv4(src_addr), Ipv4(dst_addr), src_port, dst_port,
                     static_cast<Protocol>(proto)};
  }

  /// Direction-insensitive form; same endpoint ordering rule as
  /// FiveTuple::canonical, so from(t.canonical()) == from(t).canonical().
  constexpr FlowTuple canonical() const noexcept {
    if (src_addr < dst_addr ||
        (src_addr == dst_addr && src_port <= dst_port)) {
      return *this;
    }
    return FlowTuple{dst_addr, src_addr, dst_port, src_port, proto};
  }

  std::uint64_t hash() const noexcept {
    return util::hash_bytes(this, kPackedBytes);
  }

  constexpr bool operator==(const FlowTuple&) const noexcept = default;

  std::string to_string() const;
};

static_assert(std::is_trivially_copyable_v<FlowTuple> &&
                  std::is_standard_layout_v<FlowTuple>,
              "FlowTuple must stay a plain packed record");
static_assert(offsetof(FlowTuple, src_addr) == 0 &&
                  offsetof(FlowTuple, dst_addr) == 4 &&
                  offsetof(FlowTuple, src_port) == 8 &&
                  offsetof(FlowTuple, dst_port) == 10 &&
                  offsetof(FlowTuple, proto) == 12,
              "hash() reads the first kPackedBytes bytes raw");

struct FlowTupleHash {
  std::uint64_t operator()(const FlowTuple& t) const noexcept {
    return t.hash();
  }
};

/// Flow tables keyed by the packed tuple.
template <class T>
using FlowMap = util::FlowTable<FlowTuple, T, FlowTupleHash>;
using FlowTupleSet = util::FlowSet<FlowTuple, FlowTupleHash>;

}  // namespace idseval::netsim
