#include "netsim/simulator.hpp"

#include <utility>

namespace idseval::netsim {

void Simulator::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  queue_.push(Event{when, ++seq_, std::move(cb)});
}

void Simulator::schedule_in(SimTime delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  while (step(deadline)) ++ran;
  // If we stopped because the next event is past the deadline, advance
  // time to the deadline so subsequent scheduling is relative to it.
  if (!queue_.empty() && queue_.top().when > deadline && now_ < deadline) {
    now_ = deadline;
  }
  if (queue_.empty() && now_ < deadline && deadline < SimTime::max()) {
    now_ = deadline;
  }
  return ran;
}

bool Simulator::step(SimTime deadline) {
  if (queue_.empty()) return false;
  if (queue_.top().when > deadline) return false;
  // priority_queue::top() is const; move via const_cast is the standard
  // idiom-free workaround — copy the callback instead to stay clean.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.cb();
  return true;
}

}  // namespace idseval::netsim
