#include "netsim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace idseval::netsim {

namespace {
// Enough for the default testbed profiles (peak pending events in a
// campaign cell sit in the low thousands); one reallocation ladder at
// startup, then steady-state pushes reuse the storage.
constexpr std::size_t kInitialEventCapacity = 4096;
}  // namespace

Simulator::Simulator()
    : tele_fallbacks_(telemetry::counter_handle(
          telemetry::names::kSimCallbackFallbacks)) {
  heap_.reserve(kInitialEventCapacity);
  slab_.reserve(kInitialEventCapacity);
  free_slots_.reserve(kInitialEventCapacity);
}

void Simulator::schedule_at(SimTime when, Callback cb) {
  schedule_at_lane(when, 0, std::move(cb));
}

void Simulator::schedule_at_lane(SimTime when, std::uint32_t lane,
                                 Callback cb) {
  if (when < now_) when = now_;
  if (cb.on_heap()) {
    ++alloc_fallbacks_;
    telemetry::bump(tele_fallbacks_);
  }
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(cb));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(cb);
  }
  // 40 bits of schedule counter under 24 bits of lane: ~1.1e12 events per
  // simulator before wraparound, far beyond any profile.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(lane) << 40) | ++seq_;
  heap_.push_back(Event{when, key, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::schedule_in(SimTime delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  while (step(deadline)) ++ran;
  // If we stopped because the next event is past the deadline, advance
  // time to the deadline so subsequent scheduling is relative to it.
  if (!heap_.empty() && heap_.front().when > deadline && now_ < deadline) {
    now_ = deadline;
  }
  if (heap_.empty() && now_ < deadline && deadline < SimTime::max()) {
    now_ = deadline;
  }
  return ran;
}

bool Simulator::step(SimTime deadline) {
  if (heap_.empty()) return false;
  if (heap_.front().when > deadline) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Event ev = heap_.back();
  heap_.pop_back();
  // Move the callback out and recycle its slot before invoking, so
  // events the callback schedules can reuse it immediately.
  Callback cb = std::move(slab_[ev.slot]);
  free_slots_.push_back(ev.slot);
  now_ = ev.when;
  ++executed_;
  cb();
  return true;
}

}  // namespace idseval::netsim
