// Conservative parallel discrete-event engine: N independent Simulators
// ("shards"), each owning its own binary-heap event queue, advanced in
// lockstep windows bounded by a lookahead horizon. The horizon is the
// minimum declared cross-shard channel delay — for packet channels that
// is the cross-shard Link's propagation latency, which the constant-
// latency FIFO links guarantee is a valid lower bound on send-to-arrival.
//
// Window protocol (the classic conservative-lookahead barrier):
//   1. compute gm = min over shards of (next local event, pending remote
//      groups, undelivered mailbox messages); stop if gm > deadline
//   2. flush: each shard emits every cross-shard delivery group that can
//      no longer grow (group tick < gm + that link's latency) into
//      per-(src,dst) mailboxes
//   3. inject: every shard's inbound mailboxes — concatenated in
//      source-shard order, stably sorted by (when, lane, seq) — are
//      scheduled into its heap, still at the barrier
//   4. run: each shard runs its queue through [gm, gm + lookahead)
//
// Safety: any message produced while running the window is sent at time
// s >= gm and arrives at s + channel_delay >= gm + lookahead, i.e. at or
// beyond the window end — no shard can receive a message from its past.
//
// Determinism: mailboxes are single-writer (the source shard) during the
// run phase and only drained at barriers while every shard is quiescent,
// so the exchange is lock-free by phase separation; the (when, lane, seq)
// injection sort makes the merged order identical to the order a single
// serial heap would have produced (lanes give same-tick events a
// canonical cross-entity order — see Simulator::schedule_at_lane, and a
// lane has exactly one writing shard, so barrier-deferred injection can
// never reorder a lane's messages). Sequential and threaded execution
// run the exact same per-shard work and are bit-identical; with one
// shard run_until() delegates straight to the legacy single-queue loop.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "netsim/address.hpp"
#include "netsim/sim_time.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "util/inline_callback.hpp"

namespace idseval::netsim {

/// Deterministic host -> shard partition. Central plans keep shard 0 as
/// the hub (traffic generation, switch, IDS pipeline) and spread hosts
/// over shards 1..N-1 by topology hash; distributed plans spread hosts
/// over all N shards. The map depends only on the address and the shard
/// count, never on attach order.
class ShardPlan {
 public:
  ShardPlan() = default;  ///< Single shard; everything on shard 0.
  static ShardPlan central(std::size_t shards);
  static ShardPlan distributed(std::size_t shards);

  std::size_t shards() const noexcept { return shards_; }
  bool central_hub() const noexcept { return central_; }
  std::size_t shard_of(Ipv4 addr) const noexcept;

 private:
  std::size_t shards_ = 1;
  bool central_ = true;
};

/// N shards, per-(src,dst) mailboxes, conservative window loop.
class ShardedSimulator {
 public:
  struct ShardStats {
    std::uint64_t messages = 0;        ///< Cross-shard messages injected.
    double barrier_stall_sec = 0.0;    ///< Wall time idle at barriers.
    double work_sec = 0.0;             ///< Wall time running events.
  };
  struct Stats {
    std::uint64_t windows = 0;  ///< Lookahead windows executed.
    std::vector<ShardStats> shard;

    std::uint64_t total_messages() const noexcept {
      std::uint64_t total = 0;
      for (const ShardStats& s : shard) total += s.messages;
      return total;
    }
  };

  /// A per-shard source of cross-shard messages drained at barriers
  /// (remote links register one per owning network).
  struct Source {
    std::function<SimTime()> pending_min;       ///< Earliest pending tick.
    std::function<void(SimTime)> flush;         ///< Flush final groups.
  };

  explicit ShardedSimulator(const ShardPlan& plan);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::size_t shards() const noexcept { return sims_.size(); }
  const ShardPlan& plan() const noexcept { return plan_; }
  Simulator& shard(std::size_t i) noexcept { return *sims_[i]; }
  /// Shard 0 — the hub in central plans, and the only shard at N=1.
  Simulator& hub() noexcept { return *sims_[0]; }
  /// Telemetry registry owned for shard i (nullptr for shard 0, which
  /// records into the ambient thread-local registry of the caller).
  telemetry::Registry* registry(std::size_t i) noexcept {
    return i == 0 ? nullptr : registries_[i].get();
  }

  /// Declares a message channel src -> dst with its minimum delay; the
  /// window lookahead is the minimum over all declared channels. Must be
  /// called before run_until; delays must be > 0.
  void add_channel(std::size_t src, std::size_t dst, SimTime min_delay);
  SimTime lookahead() const noexcept { return lookahead_; }

  /// Registers a barrier-drained message source owned by shard `s`.
  void add_source(std::size_t s, Source source);

  /// Posts a message from shard `src` to shard `dst`, to be executed at
  /// `when` on lane `lane`. Callable only from src's own execution (its
  /// event callbacks or its flush phase) — mailboxes are single-writer.
  void post(std::size_t src, std::size_t dst, SimTime when,
            std::uint32_t lane, util::InlineCallback cb);

  /// Threaded execution: one worker per shard. Defaults to on when the
  /// machine has >1 hardware thread or IDSEVAL_SHARD_THREADS=1 is set;
  /// sequential round-robin otherwise. Both orders are bit-identical.
  void set_threaded(bool threaded);
  bool threaded() const noexcept { return threaded_; }

  /// Advances every shard to `deadline` (inclusive, like
  /// Simulator::run_until). Returns total events executed.
  std::uint64_t run_until(SimTime deadline = SimTime::max());

  std::uint64_t executed() const noexcept;
  std::uint64_t alloc_fallbacks() const noexcept;
  const Stats& stats() const noexcept { return stats_; }

  /// Merges the per-shard registries (shards 1..N-1, in shard order) into
  /// `into`; called once at finalize so per-shard counters land
  /// deterministically. No-op at N=1.
  void merge_registries_into(telemetry::Registry& into);

 private:
  struct Msg {
    SimTime when;
    std::uint64_t key;  ///< (lane << 40) | per-mailbox seq — sort key.
    util::InlineCallback cb;
  };
  struct Mailbox {
    std::vector<Msg> msgs;
    SimTime min_when = SimTime::max();  ///< Over undelivered messages.
    std::uint64_t seq = 0;
  };

  Mailbox& box(std::size_t src, std::size_t dst) noexcept {
    return boxes_[src * sims_.size() + dst];
  }
  SimTime local_min(std::size_t s) const;
  void flush_shard(std::size_t s, SimTime global_min);
  /// Drains shard s's inbound mailboxes into its heap. Barrier-phase
  /// only: every shard must be quiescent (run_windows_* call it from the
  /// coordinating thread before releasing the window).
  void inject_shard(std::size_t s);
  std::uint64_t run_shard_window(std::size_t s, SimTime window_last);
  std::uint64_t run_windows_sequential(SimTime deadline);
  std::uint64_t run_windows_threaded(SimTime deadline);
  void start_workers();
  void stop_workers();
  void worker_loop(std::size_t s);

  ShardPlan plan_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<telemetry::Registry>> registries_;
  std::vector<Mailbox> boxes_;  ///< N*N, row-major [src][dst].
  std::vector<std::vector<Source>> sources_;  ///< Per owning shard.
  std::vector<std::vector<Msg>> inject_scratch_;  ///< Per dst shard.
  SimTime lookahead_ = SimTime::max();
  bool threaded_ = false;
  Stats stats_;

  // Threaded mode: persistent workers (one per shard 1..N-1; the main
  // thread runs shard 0's slice) coordinated by a window epoch. Between
  // windows — while every worker idles at the barrier — the main thread
  // alone computes the global minimum and flushes every shard's remote
  // groups into mailboxes, so mailboxes are only ever written while
  // their readers are quiescent and vice versa. The mutex hand-offs
  // order all cross-thread memory.
  enum class Phase { kIdle, kRun, kExit };
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_go_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  Phase phase_ = Phase::kIdle;
  SimTime phase_bound_;  ///< Last tick of the window (inclusive).
  std::size_t done_ = 0;
};

}  // namespace idseval::netsim
