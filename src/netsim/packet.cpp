#include "netsim/packet.hpp"

#include "util/strfmt.hpp"

namespace idseval::netsim {

std::string TcpFlags::to_string() const {
  std::string out;
  if (syn) out += 'S';
  if (ack) out += 'A';
  if (fin) out += 'F';
  if (rst) out += 'R';
  return out.empty() ? "-" : out;
}

std::string Packet::to_string() const {
  return util::cat('#', id, " flow=", flow_id, " t=", created.to_string(),
                   ' ', tuple.to_string(), " [", flags.to_string(), "] ",
                   wire_bytes(), 'B');
}

Packet make_packet(std::uint64_t id, std::uint64_t flow_id, SimTime created,
                   const FiveTuple& tuple, std::string payload,
                   TcpFlags flags) {
  Packet p;
  p.id = id;
  p.flow_id = flow_id;
  p.created = created;
  p.tuple = tuple;
  p.flags = flags;
  if (!payload.empty()) {
    p.payload = std::make_shared<const std::string>(std::move(payload));
  }
  return p;
}

Packet make_packet(std::uint64_t id, std::uint64_t flow_id, SimTime created,
                   const FiveTuple& tuple,
                   std::shared_ptr<const std::string> payload,
                   TcpFlags flags) {
  Packet p;
  p.id = id;
  p.flow_id = flow_id;
  p.created = created;
  p.tuple = tuple;
  p.flags = flags;
  if (payload != nullptr && !payload->empty()) {
    p.payload = std::move(payload);
  }
  return p;
}

}  // namespace idseval::netsim
