#include "netsim/address.hpp"

#include "util/strfmt.hpp"

namespace idseval::netsim {

using util::cat;

std::string Ipv4::to_string() const {
  return cat((value_ >> 24) & 0xff, '.', (value_ >> 16) & 0xff, '.',
             (value_ >> 8) & 0xff, '.', value_ & 0xff);
}

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kTcp:
      return "tcp";
    case Protocol::kUdp:
      return "udp";
    case Protocol::kIcmp:
      return "icmp";
  }
  return "?";
}

FiveTuple FiveTuple::canonical() const {
  // Order endpoints so (src, dst) and (dst, src) collapse to one key.
  if (src_ip.value() < dst_ip.value() ||
      (src_ip == dst_ip && src_port <= dst_port)) {
    return *this;
  }
  FiveTuple flipped = *this;
  std::swap(flipped.src_ip, flipped.dst_ip);
  std::swap(flipped.src_port, flipped.dst_port);
  return flipped;
}

std::string FiveTuple::to_string() const {
  return cat(src_ip.to_string(), ':', src_port, " -> ", dst_ip.to_string(),
             ':', dst_port, " (", netsim::to_string(proto), ')');
}

std::size_t FiveTupleHash::operator()(const FiveTuple& t) const noexcept {
  // FNV-style mix over the tuple fields.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(t.src_ip.value());
  mix(t.dst_ip.value());
  mix(t.src_port);
  mix(t.dst_port);
  mix(static_cast<std::uint64_t>(t.proto));
  return static_cast<std::size_t>(h);
}

}  // namespace idseval::netsim
