#include "netsim/address.hpp"

#include "netsim/flow_tuple.hpp"
#include "util/strfmt.hpp"

namespace idseval::netsim {

using util::cat;

std::string Ipv4::to_string() const {
  return cat((value_ >> 24) & 0xff, '.', (value_ >> 16) & 0xff, '.',
             (value_ >> 8) & 0xff, '.', value_ & 0xff);
}

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kTcp:
      return "tcp";
    case Protocol::kUdp:
      return "udp";
    case Protocol::kIcmp:
      return "icmp";
  }
  return "?";
}

FiveTuple FiveTuple::canonical() const {
  // Order endpoints so (src, dst) and (dst, src) collapse to one key.
  if (src_ip.value() < dst_ip.value() ||
      (src_ip == dst_ip && src_port <= dst_port)) {
    return *this;
  }
  FiveTuple flipped = *this;
  std::swap(flipped.src_ip, flipped.dst_ip);
  std::swap(flipped.src_port, flipped.dst_port);
  return flipped;
}

std::string FiveTuple::to_string() const {
  return cat(src_ip.to_string(), ':', src_port, " -> ", dst_ip.to_string(),
             ':', dst_port, " (", netsim::to_string(proto), ')');
}

std::size_t FiveTupleHash::operator()(const FiveTuple& t) const noexcept {
  // Packed-bytes hash over the 13-byte FlowTuple view of the tuple —
  // one raw-byte FNV pass shared with every FlowTable keyed by flows.
  return static_cast<std::size_t>(FlowTuple::from(t).hash());
}

}  // namespace idseval::netsim
