// TCP-session tracking over the packet stream. Load balancers must be
// TCP-session aware to keep a connection pinned to one sensor (§2.2), and
// two Table 3 metrics are denominated in "# of simultaneous TCP streams".
#pragma once

#include <cstdint>
#include <unordered_map>

#include "netsim/address.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim_time.hpp"

namespace idseval::netsim {

enum class StreamState : std::uint8_t {
  kSynSeen,
  kEstablished,
  kClosing,
  kClosed,
};

struct StreamInfo {
  FiveTuple key;                 ///< Canonical (direction-less) tuple.
  StreamState state = StreamState::kSynSeen;
  SimTime first_seen;
  SimTime last_seen;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Observes packets and maintains per-session state with idle expiry.
class StreamTracker {
 public:
  explicit StreamTracker(SimTime idle_timeout = SimTime::from_sec(60));

  /// Feeds one packet; returns the (possibly new) stream record.
  const StreamInfo& observe(const Packet& packet);

  /// Drops sessions idle beyond the timeout relative to `now`.
  void expire(SimTime now);

  std::size_t active_streams() const noexcept { return streams_.size(); }
  std::uint64_t total_streams_seen() const noexcept { return total_seen_; }
  /// Highest simultaneous stream count observed so far.
  std::size_t peak_streams() const noexcept { return peak_; }

  const StreamInfo* find(const FiveTuple& tuple) const;

 private:
  SimTime idle_timeout_;
  std::unordered_map<FiveTuple, StreamInfo, FiveTupleHash> streams_;
  std::uint64_t total_seen_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace idseval::netsim
