#include "netsim/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace idseval::netsim {

Network::Network(Simulator& sim) : sim_(sim), switch_(sim) {}

Network::Network(ShardedSimulator& engine, const ShardPlan& plan)
    : sim_(engine.hub()), switch_(engine.hub()), engine_(&engine),
      plan_(plan) {
  if (plan_.shards() > 1) {
    // One barrier source for all this network's remote downlinks: their
    // send side (the switch) lives on the hub shard, so the hub's flush
    // phase drains them.
    engine_->add_source(
        0, ShardedSimulator::Source{
               [this] {
                 SimTime m = SimTime::max();
                 for (const Link* l : dirty_remote_) {
                   m = std::min(m, l->remote_pending_min());
                 }
                 return m;
               },
               [this](SimTime global_min) {
                 auto it = dirty_remote_.begin();
                 while (it != dirty_remote_.end()) {
                   Link* l = *it;
                   l->flush_remote(global_min);
                   if (l->remote_pending_min() == SimTime::max()) {
                     l->set_remote_listed(false);
                     it = dirty_remote_.erase(it);
                   } else {
                     ++it;
                   }
                 }
               }});
  }
}

Host* Network::attach(const std::string& name, Ipv4 addr,
                      const LinkSpec& spec, double cpu_ops_per_sec) {
  if (attachments_.contains(addr.value())) {
    throw std::invalid_argument("Network: duplicate address " +
                                addr.to_string());
  }
  Attachment a;
  a.host = std::make_unique<Host>(name, addr, cpu_ops_per_sec);
  // Both link halves are driven from the hub clock: the uplink entirely,
  // the downlink on its send (switch) side; a remote downlink's receive
  // side replays on the host's shard via the engine mailboxes.
  a.uplink = std::make_unique<Link>(sim_, name + ".up", spec.bandwidth_bps,
                                    spec.latency, spec.queue_capacity);
  a.downlink = std::make_unique<Link>(sim_, name + ".down",
                                      spec.bandwidth_bps, spec.latency,
                                      spec.queue_capacity);
  a.uplink->set_lane(alloc_lane());
  a.downlink->set_lane(alloc_lane());
  Host* host = a.host.get();
  a.uplink->set_deliver_batch([this](const Packet* p, std::size_t n) {
    switch_.receive_batch(p, n);
  });
  a.downlink->set_deliver_batch([host](const Packet* p, std::size_t n) {
    host->deliver_batch(p, n);
  });
  if (const std::size_t shard = shard_of(addr); shard != 0) {
    wire_remote_downlink(a.downlink.get(), shard, spec);
  }
  switch_.attach(addr, a.downlink.get());
  attachments_.emplace(addr.value(), std::move(a));
  host_order_.push_back(host);
  return host;
}

void Network::wire_remote_downlink(Link* downlink, std::size_t shard,
                                   const LinkSpec& spec) {
  engine_->add_channel(0, shard, spec.latency);
  downlink->set_remote_flush(
      [this, downlink, shard](SimTime when, std::vector<Packet>&& batch) {
        engine_->post(0, shard, when, downlink->lane(),
                      [downlink, b = std::move(batch)]() mutable {
                        downlink->deliver_remote_batch(b);
                      });
      },
      [this, downlink] {
        if (!downlink->remote_listed()) {
          downlink->set_remote_listed(true);
          dirty_remote_.push_back(downlink);
        }
      });
}

Host* Network::add_host(const std::string& name, Ipv4 addr,
                        const LinkSpec& spec, double cpu_ops_per_sec) {
  return attach(name, addr, spec, cpu_ops_per_sec);
}

Host* Network::add_external_host(const std::string& name, Ipv4 addr,
                                 const LinkSpec& spec,
                                 double cpu_ops_per_sec) {
  return attach(name, addr, spec, cpu_ops_per_sec);
}

Host* Network::find_host(Ipv4 addr) {
  const auto it = attachments_.find(addr.value());
  return it == attachments_.end() ? nullptr : it->second.host.get();
}

const Host* Network::find_host(Ipv4 addr) const {
  const auto it = attachments_.find(addr.value());
  return it == attachments_.end() ? nullptr : it->second.host.get();
}

Link* Network::uplink(Ipv4 addr) {
  const auto it = attachments_.find(addr.value());
  return it == attachments_.end() ? nullptr : it->second.uplink.get();
}

Link* Network::downlink(Ipv4 addr) {
  const auto it = attachments_.find(addr.value());
  return it == attachments_.end() ? nullptr : it->second.downlink.get();
}

bool Network::send(const Packet& packet) {
  const auto it = attachments_.find(packet.tuple.src_ip.value());
  if (it == attachments_.end()) {
    throw std::invalid_argument("Network: unknown source " +
                                packet.tuple.src_ip.to_string());
  }
  return it->second.uplink->send(packet);
}

LinkStats Network::aggregate_uplink_stats() const {
  LinkStats total;
  for (const auto& [addr, a] : attachments_) {
    const LinkStats& s = a.uplink->stats();
    total.offered_packets += s.offered_packets;
    total.delivered_packets += s.delivered_packets;
    total.dropped_packets += s.dropped_packets;
    total.offered_bytes += s.offered_bytes;
    total.delivered_bytes += s.delivered_bytes;
  }
  return total;
}

LinkStats Network::aggregate_downlink_stats() const {
  LinkStats total;
  for (const auto& [addr, a] : attachments_) {
    const LinkStats& s = a.downlink->stats();
    total.offered_packets += s.offered_packets;
    total.delivered_packets += s.delivered_packets;
    total.dropped_packets += s.dropped_packets;
    total.offered_bytes += s.offered_bytes;
    total.delivered_bytes += s.delivered_bytes;
  }
  return total;
}

void Network::reset_link_stats() {
  for (auto& [addr, a] : attachments_) {
    a.uplink->reset_stats();
    a.downlink->reset_stats();
  }
}

void Network::set_delivery_coalescing(bool enabled) {
  for (auto& [addr, a] : attachments_) {
    a.uplink->set_coalescing(enabled);
    a.downlink->set_coalescing(enabled);
  }
}

}  // namespace idseval::netsim
