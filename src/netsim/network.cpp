#include "netsim/network.hpp"

#include <stdexcept>

namespace idseval::netsim {

Network::Network(Simulator& sim) : sim_(sim), switch_(sim) {}

Host* Network::attach(const std::string& name, Ipv4 addr,
                      const LinkSpec& spec, double cpu_ops_per_sec) {
  if (attachments_.contains(addr.value())) {
    throw std::invalid_argument("Network: duplicate address " +
                                addr.to_string());
  }
  Attachment a;
  a.host = std::make_unique<Host>(name, addr, cpu_ops_per_sec);
  a.uplink = std::make_unique<Link>(sim_, name + ".up", spec.bandwidth_bps,
                                    spec.latency, spec.queue_capacity);
  a.downlink = std::make_unique<Link>(sim_, name + ".down",
                                      spec.bandwidth_bps, spec.latency,
                                      spec.queue_capacity);
  Host* host = a.host.get();
  a.uplink->set_deliver_batch([this](const Packet* p, std::size_t n) {
    switch_.receive_batch(p, n);
  });
  a.downlink->set_deliver_batch([host](const Packet* p, std::size_t n) {
    host->deliver_batch(p, n);
  });
  switch_.attach(addr, a.downlink.get());
  attachments_.emplace(addr.value(), std::move(a));
  host_order_.push_back(host);
  return host;
}

Host* Network::add_host(const std::string& name, Ipv4 addr,
                        const LinkSpec& spec, double cpu_ops_per_sec) {
  return attach(name, addr, spec, cpu_ops_per_sec);
}

Host* Network::add_external_host(const std::string& name, Ipv4 addr,
                                 const LinkSpec& spec,
                                 double cpu_ops_per_sec) {
  return attach(name, addr, spec, cpu_ops_per_sec);
}

Host* Network::find_host(Ipv4 addr) {
  const auto it = attachments_.find(addr.value());
  return it == attachments_.end() ? nullptr : it->second.host.get();
}

const Host* Network::find_host(Ipv4 addr) const {
  const auto it = attachments_.find(addr.value());
  return it == attachments_.end() ? nullptr : it->second.host.get();
}

bool Network::send(const Packet& packet) {
  const auto it = attachments_.find(packet.tuple.src_ip.value());
  if (it == attachments_.end()) {
    throw std::invalid_argument("Network: unknown source " +
                                packet.tuple.src_ip.to_string());
  }
  return it->second.uplink->send(packet);
}

LinkStats Network::aggregate_uplink_stats() const {
  LinkStats total;
  for (const auto& [addr, a] : attachments_) {
    const LinkStats& s = a.uplink->stats();
    total.offered_packets += s.offered_packets;
    total.delivered_packets += s.delivered_packets;
    total.dropped_packets += s.dropped_packets;
    total.offered_bytes += s.offered_bytes;
    total.delivered_bytes += s.delivered_bytes;
  }
  return total;
}

LinkStats Network::aggregate_downlink_stats() const {
  LinkStats total;
  for (const auto& [addr, a] : attachments_) {
    const LinkStats& s = a.downlink->stats();
    total.offered_packets += s.offered_packets;
    total.delivered_packets += s.delivered_packets;
    total.dropped_packets += s.dropped_packets;
    total.offered_bytes += s.offered_bytes;
    total.delivered_bytes += s.delivered_bytes;
  }
  return total;
}

void Network::reset_link_stats() {
  for (auto& [addr, a] : attachments_) {
    a.uplink->reset_stats();
    a.downlink->reset_stats();
  }
}

void Network::set_delivery_coalescing(bool enabled) {
  for (auto& [addr, a] : attachments_) {
    a.uplink->set_coalescing(enabled);
    a.downlink->set_coalescing(enabled);
  }
}

}  // namespace idseval::netsim
