#include "netsim/host.hpp"

#include <utility>

namespace idseval::netsim {

Host::Host(std::string name, Ipv4 address, double cpu_ops_per_sec)
    : name_(std::move(name)),
      address_(address),
      cpu_ops_per_sec_(cpu_ops_per_sec) {}

void Host::deliver(const Packet& packet) {
  ++received_;
  for (const auto& r : receivers_) {
    if (r.batch) {
      r.batch(&packet, 1);
    } else {
      r.each(packet);
    }
  }
}

void Host::deliver_batch(const Packet* packets, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    deliver(*packets);
    return;
  }
  received_ += count;
  for (const auto& r : receivers_) {
    if (r.batch) {
      r.batch(packets, count);
    } else {
      for (std::size_t i = 0; i < count; ++i) r.each(packets[i]);
    }
  }
}

void Host::charge_ops(double ops, bool ids_work) noexcept {
  if (!accounting_open_) return;
  if (ids_work) {
    ids_ops_ += ops;
  } else {
    other_ops_ += ops;
  }
}

void Host::begin_accounting(SimTime now) noexcept {
  ids_ops_ = 0.0;
  other_ops_ = 0.0;
  window_start_ = now;
  window_end_ = now;
  accounting_open_ = true;
}

void Host::end_accounting(SimTime now) noexcept {
  window_end_ = now;
  accounting_open_ = false;
}

double Host::ids_cpu_fraction() const noexcept {
  const double window_sec = (window_end_ - window_start_).sec();
  if (window_sec <= 0.0 || cpu_ops_per_sec_ <= 0.0) return 0.0;
  return ids_ops_ / (cpu_ops_per_sec_ * window_sec);
}

double Host::total_cpu_fraction() const noexcept {
  const double window_sec = (window_end_ - window_start_).sec();
  if (window_sec <= 0.0 || cpu_ops_per_sec_ <= 0.0) return 0.0;
  return (ids_ops_ + other_ops_) / (cpu_ops_per_sec_ * window_sec);
}

}  // namespace idseval::netsim
