// Scorecards and weighted scoring — the Figure 5 computation:
//   S_j = sum over metrics i in class j of (U_ij * W_ij)
// with discrete unweighted scores U and flexible real weights W (negative
// weights mark counterproductive features, §3.1).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/catalog.hpp"
#include "core/metric.hpp"

namespace idseval::core {

/// One scored metric entry: the discrete score plus the evidence note the
/// evaluator recorded (measurement value, spec citation, ...).
struct ScoredMetric {
  Score score;
  std::string note;
};

/// A product's scorecard: scores for some subset of the catalog.
class Scorecard {
 public:
  explicit Scorecard(std::string product_name);

  const std::string& product() const noexcept { return product_; }

  void set(MetricId id, Score score, std::string note = "");
  bool has(MetricId id) const;
  const ScoredMetric& at(MetricId id) const;
  std::optional<Score> score(MetricId id) const;

  std::size_t size() const noexcept { return entries_.size(); }
  const std::map<MetricId, ScoredMetric>& entries() const noexcept {
    return entries_;
  }

  /// Metrics scored within one class, in id order.
  std::vector<MetricId> scored_in_class(MetricClass c) const;

 private:
  std::string product_;
  std::map<MetricId, ScoredMetric> entries_;
};

/// A weighting of the metric set. Unmentioned metrics weigh 0 — they do
/// not contribute to any requirement the procurer stated.
class WeightSet {
 public:
  WeightSet() = default;

  void set(MetricId id, double weight);
  void add(MetricId id, double weight);  ///< Accumulates (Figure 6 sums).
  double get(MetricId id) const;
  const std::map<MetricId, double>& weights() const noexcept {
    return weights_;
  }

  /// Scales every weight by k (weighting systems are only meaningful up
  /// to consistent scale, §3.1).
  void scale(double k);

 private:
  std::map<MetricId, double> weights_;
};

/// Figure 5's weighted class score S_j and the overall sum.
struct WeightedScores {
  double logistical = 0.0;
  double architectural = 0.0;
  double performance = 0.0;

  double total() const noexcept {
    return logistical + architectural + performance;
  }
};

/// Computes S_j for each class. Metrics with weights but no score are
/// reported through `missing` (scorecards must cover what the procurer
/// cares about); they contribute 0.
WeightedScores weighted_scores(const Scorecard& card, const WeightSet& weights,
                               std::vector<MetricId>* missing = nullptr);

}  // namespace idseval::core
