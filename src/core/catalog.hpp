// The metric catalog: definitions and scoring anchors for the general
// metric set (Tables 1-3 plus every metric the paper names but omits for
// brevity). The catalog is immutable reference data — the "user-definable,
// dynamically-changing standard" is expressed as weights over it, never by
// editing it.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/metric.hpp"

namespace idseval::core {

/// Returns the full catalog, ordered by MetricId.
const std::vector<Metric>& metric_catalog();

/// Looks up one metric's definition.
const Metric& metric(MetricId id);

std::string to_string(MetricId id);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
MetricId metric_id_from_string(std::string_view name);

/// All metrics belonging to a class, in id order.
std::vector<MetricId> metrics_in_class(MetricClass c);

/// The "selected" metrics the paper prints in Tables 1-3 — the subset it
/// judges most applicable to distributed real-time environments.
std::span<const MetricId> table1_logistical_metrics();
std::span<const MetricId> table2_architectural_metrics();
std::span<const MetricId> table3_performance_metrics();

}  // namespace idseval::core
