// The metric model at the heart of the methodology (§3.1): well-defined
// (observable, reproducible, quantifiable, characteristic) metrics in
// three classes, scored discretely 0-4 with documented low/average/high
// anchors, combined under flexible real-valued weights.
#pragma once

#include <cstdint>
#include <string>

namespace idseval::core {

/// The paper's three metric classes (§3.1).
enum class MetricClass : std::uint8_t {
  kLogistical = 1,    ///< Expense, maintainability, manageability.
  kArchitectural = 2, ///< Fit between IDS scope/architecture and deployment.
  kPerformance = 3,   ///< Ability to do the job within constraints.
};

std::string to_string(MetricClass c);

/// How a metric's value is observed (§3.1): direct laboratory analysis,
/// open-source material (specs, white papers, reviews), or both.
enum class Observation : std::uint8_t {
  kAnalysis,
  kOpenSource,
  kBoth,
};

std::string to_string(Observation o);

/// Every metric in the general set, Tables 1-3 plus the metrics the paper
/// names but omits "for brevity's sake".
enum class MetricId : std::uint8_t {
  // --- Logistical (class 1) ----------------------------------------------
  kDistributedManagement = 0,
  kEaseOfConfiguration,
  kEaseOfPolicyMaintenance,
  kLicenseManagement,
  kOutsourcedSolution,
  kPlatformRequirements,
  kQualityOfDocumentation,
  kEaseOfAttackFilterGeneration,
  kEvaluationCopyAvailability,
  kLevelOfAdministration,
  kProductLifetime,
  kQualityOfTechnicalSupport,
  kThreeYearCostOfOwnership,
  kTrainingSupport,
  // --- Architectural (class 2) ---------------------------------------------
  kAdjustableSensitivity,
  kDataPoolSelectability,
  kDataStorage,
  kHostBased,
  kMultiSensorSupport,
  kNetworkBased,
  kScalableLoadBalancing,
  kSystemThroughput,
  kAnomalyBased,
  kAutonomousLearning,
  kHostOsSecurity,
  kInteroperability,
  kPackageContents,
  kProcessSecurity,
  kSignatureBased,
  kVisibility,
  // --- Performance (class 3) -----------------------------------------------
  kAnalysisOfCompromise,
  kErrorReportingAndRecovery,
  kFirewallInteraction,
  kInducedTrafficLatency,
  kMaxThroughputZeroLoss,
  kNetworkLethalDose,
  kObservedFalseNegativeRatio,
  kObservedFalsePositiveRatio,
  kOperationalPerformanceImpact,
  kRouterInteraction,
  kSnmpInteraction,
  kTimeliness,
  kAnalysisOfIntruderIntent,
  kClarityOfReports,
  kEffectivenessOfGeneratedFilters,
  kEvidenceCollection,
  kInformationSharing,
  kNotificationUserAlerts,
  kProgramInteraction,
  kSessionRecordingPlayback,
  kThreatCorrelation,
  kTrendAnalysis,
  kCount  ///< Sentinel.
};

inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(MetricId::kCount);

/// A metric definition: the scorecard's unit of vocabulary.
struct Metric {
  MetricId id;
  MetricClass metric_class;
  std::string name;
  std::string definition;
  Observation observation;
  /// Anchor descriptions for discrete scores 0 / 2 / 4 (§3.1-3.2).
  std::string low_anchor;
  std::string average_anchor;
  std::string high_anchor;
};

/// Discrete metric score: integers 0..4, higher is more favorable (§3.1).
class Score {
 public:
  Score() = default;
  explicit Score(int value);

  int value() const noexcept { return value_; }
  static constexpr int kMin = 0;
  static constexpr int kMax = 4;

  bool operator==(const Score&) const = default;
  auto operator<=>(const Score&) const = default;

 private:
  int value_ = 0;
};

}  // namespace idseval::core
