#include "core/catalog.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>

namespace idseval::core {

namespace {

using MC = MetricClass;
using Ob = Observation;

std::vector<Metric> build_catalog() {
  std::vector<Metric> m;
  m.reserve(kMetricCount);

  // ---- Logistical (Table 1 + named-but-omitted) ---------------------------
  m.push_back({MetricId::kDistributedManagement, MC::kLogistical,
               "Distributed Management",
               "Capability of managing and monitoring the IDS securely from "
               "multiple, possibly remote systems.",
               Ob::kBoth,
               "Management of each node must be done at the node.",
               "Nodes may be remotely managed, but either security or degree "
               "of administrative control is limited.",
               "Complete management of all nodes from any node or remotely; "
               "appropriate encryption and authentication employed."});
  m.push_back({MetricId::kEaseOfConfiguration, MC::kLogistical,
               "Ease of Configuration",
               "Difficulty in initially installing and subsequently "
               "configuring the IDS.",
               Ob::kAnalysis,
               "Manual, undocumented multi-day install per node.",
               "Guided install; significant manual tuning per sensor.",
               "Turnkey install with centralized, scriptable configuration."});
  m.push_back({MetricId::kEaseOfPolicyMaintenance, MC::kLogistical,
               "Ease of Policy Maintenance",
               "The ease of creating, updating, and managing IDS detection "
               "and reaction policies.",
               Ob::kAnalysis,
               "Policies edited per node in proprietary formats, no "
               "validation.",
               "Central policy editor, but updates require component "
               "restarts.",
               "Versioned central policy with live push, rollback, and "
               "validation."});
  m.push_back({MetricId::kLicenseManagement, MC::kLogistical,
               "License Management",
               "The difficulty of obtaining, updating, and extending "
               "licenses for the IDS.",
               Ob::kOpenSource,
               "Per-node licenses, manual renewal, vendor contact required "
               "for every change.",
               "Per-site license with periodic renewal keys.",
               "Open/perpetual license or fully automated enterprise "
               "licensing."});
  m.push_back({MetricId::kOutsourcedSolution, MC::kLogistical,
               "Outsourced Solution",
               "The degree to which the IDS services are provided by an "
               "external entity. (External vulnerability scans can disrupt "
               "real-time systems, so self-hosted scores high here.)",
               Ob::kOpenSource,
               "Monitoring and response fully outsourced, including "
               "unscheduled external scans.",
               "Vendor-assisted monitoring with locally controllable "
               "scanning windows.",
               "Fully self-hosted; all monitoring under local control."});
  m.push_back({MetricId::kPlatformRequirements, MC::kLogistical,
               "Platform Requirements",
               "System resources actually required to implement the IDS in "
               "the expected environment.",
               Ob::kBoth,
               "Dedicated high-end hardware per monitored segment.",
               "Dedicated commodity box, or noticeable share of a "
               "production host.",
               "Runs in spare cycles of existing hosts or one small "
               "appliance."});
  m.push_back({MetricId::kQualityOfDocumentation, MC::kLogistical,
               "Quality of Documentation",
               "Completeness, accuracy and usability of the product "
               "documentation.",
               Ob::kOpenSource,
               "Sparse README; undocumented failure modes.",
               "Complete manuals with some gaps around tuning.",
               "Thorough, current manuals including tuning and recovery "
               "procedures."});
  m.push_back({MetricId::kEaseOfAttackFilterGeneration, MC::kLogistical,
               "Ease of Attack Filter Generation",
               "Difficulty of producing a new attack filter/signature from "
               "an observed incident.",
               Ob::kAnalysis,
               "Vendor-only signature updates.",
               "Custom signatures possible in a proprietary language with "
               "restarts.",
               "Operators author and hot-load filters with a documented "
               "language and test harness."});
  m.push_back({MetricId::kEvaluationCopyAvailability, MC::kLogistical,
               "Evaluation Copy Availability",
               "Availability of a no-cost or low-cost evaluation copy for "
               "testbed use.",
               Ob::kOpenSource,
               "No evaluation program.",
               "Time-limited evaluation after sales contact.",
               "Freely downloadable full-function evaluation."});
  m.push_back({MetricId::kLevelOfAdministration, MC::kLogistical,
               "Level of Administration",
               "Ongoing operator effort required to keep the IDS effective.",
               Ob::kAnalysis,
               "Full-time dedicated administrator per segment.",
               "Part-time attention, daily tuning.",
               "Mostly autonomous; weekly review suffices."});
  m.push_back({MetricId::kProductLifetime, MC::kLogistical,
               "Product Lifetime",
               "Expected supported lifetime of the product and its "
               "signature/knowledge updates.",
               Ob::kOpenSource,
               "Research prototype; no support commitment.",
               "Supported, but vendor viability or roadmap unclear.",
               "Established product line with long-term support commitment."});
  m.push_back({MetricId::kQualityOfTechnicalSupport, MC::kLogistical,
               "Quality of Technical Support",
               "Responsiveness and competence of vendor support.",
               Ob::kOpenSource,
               "No support channel.",
               "Business-hours support with variable quality.",
               "24/7 support with security-cleared engineers available."});
  m.push_back({MetricId::kThreeYearCostOfOwnership, MC::kLogistical,
               "Three Year Cost of Ownership",
               "Total cost over three years: licenses, hardware, training, "
               "administration.",
               Ob::kOpenSource,
               "Highest-quartile cost for the capability class.",
               "Mid-range cost.",
               "Free/open source or lowest-quartile cost."});
  m.push_back({MetricId::kTrainingSupport, MC::kLogistical,
               "Training Support",
               "Availability and quality of operator training.",
               Ob::kOpenSource,
               "None.",
               "Vendor classes at extra cost.",
               "Included training with certification and refreshers."});

  // ---- Architectural (Table 2 + named-but-omitted) ------------------------
  m.push_back({MetricId::kAdjustableSensitivity, MC::kArchitectural,
               "Adjustable Sensitivity",
               "Ability to change the sensitivity of the IDS to compensate "
               "for high false positive or false negative ratios.",
               Ob::kBoth,
               "Fixed sensitivity.",
               "Coarse presets (low/medium/high).",
               "Continuous, per-rule/per-feature sensitivity control."});
  m.push_back({MetricId::kDataPoolSelectability, MC::kArchitectural,
               "Data Pool Selectability",
               "Ability to define the source data to be analyzed (by "
               "protocol, source and destination addresses, etc.).",
               Ob::kBoth,
               "Analyzes everything it sees, no filtering.",
               "Coarse include/exclude by address or port.",
               "Full filter language over protocol/address/port/content."});
  m.push_back({MetricId::kDataStorage, MC::kArchitectural, "Data Storage",
               "Average required amount of storage per megabyte of source "
               "data (predictor of network bandwidth in a distributed IDS).",
               Ob::kAnalysis,
               ">100 KB stored per MB of traffic.",
               "10-100 KB per MB.",
               "<10 KB per MB of monitored traffic."});
  m.push_back({MetricId::kHostBased, MC::kArchitectural, "Host-based",
               "Proportion of IDS input from log files, audit trails and "
               "other host data (indicates monitored-host resource use).",
               Ob::kBoth,
               "No host visibility.",
               "Host data from a few designated hosts.",
               "Full host audit coverage across the enclave."});
  m.push_back({MetricId::kMultiSensorSupport, MC::kArchitectural,
               "Multi-sensor Support",
               "Ability of an IDS to integrate management and input of "
               "multiple sensors or analyzers.",
               Ob::kBoth,
               "Single sensor only.",
               "Several sensors, individually managed.",
               "Fleet of sensors centrally integrated and correlated."});
  m.push_back({MetricId::kNetworkBased, MC::kArchitectural, "Network-based",
               "Proportion of IDS input from packet analysis and other "
               "network data.",
               Ob::kBoth,
               "No network visibility.",
               "Single segment sniffing.",
               "Multi-segment capture up to the border router."});
  m.push_back({MetricId::kScalableLoadBalancing, MC::kArchitectural,
               "Scalable Load-balancing",
               "Ability to partition traffic into independent balanced "
               "sensor loads and to scale that partitioning up and down.",
               Ob::kBoth,
               "No load balancing.",
               "Load balancing via static methods such as placement.",
               "Intelligent, dynamic load balancing."});
  m.push_back({MetricId::kSystemThroughput, MC::kArchitectural,
               "System Throughput",
               "Maximal data input rate processed successfully by the IDS "
               "(packets/sec for network IDSs).",
               Ob::kAnalysis,
               "<5k packets/sec.",
               "5k-50k packets/sec.",
               ">50k packets/sec."});
  m.push_back({MetricId::kAnomalyBased, MC::kArchitectural, "Anomaly Based",
               "Degree to which detection uses behavior/anomaly analysis "
               "(may detect novel attacks; §2.1).",
               Ob::kOpenSource,
               "None.",
               "Statistical thresholds on a few features.",
               "Learned multi-feature behavioral baselines."});
  m.push_back({MetricId::kAutonomousLearning, MC::kArchitectural,
               "Autonomous Learning",
               "Ability to learn normal behavior without manual profiling.",
               Ob::kBoth,
               "All profiles hand-built.",
               "Assisted training runs.",
               "Continuous unsupervised baseline adaptation."});
  m.push_back({MetricId::kHostOsSecurity, MC::kArchitectural,
               "Host/OS Security",
               "Hardening of the platform the IDS itself runs on.",
               Ob::kOpenSource,
               "Runs as root on an unhardened general-purpose OS.",
               "Vendor hardening guide applied.",
               "Minimized, hardened appliance with signed updates."});
  m.push_back({MetricId::kInteroperability, MC::kArchitectural,
               "Interoperability",
               "Ability to exchange data with other security tools "
               "(common formats, management protocols).",
               Ob::kOpenSource,
               "Closed formats only.",
               "Exports logs in documented formats.",
               "Standard alert formats plus bidirectional integrations."});
  m.push_back({MetricId::kPackageContents, MC::kArchitectural,
               "Package Contents",
               "Completeness of what ships in the box (sensors, console, "
               "signatures, docs).",
               Ob::kOpenSource,
               "Core engine only; everything else separate.",
               "Complete but minimal.",
               "Complete suite including response and reporting tools."});
  m.push_back({MetricId::kProcessSecurity, MC::kArchitectural,
               "Process Security",
               "Resistance of IDS processes to tampering or evasion "
               "(§2.1: host IDSs must survive attack on their host).",
               Ob::kBoth,
               "IDS processes are killable by any local admin; no "
               "self-monitoring.",
               "Watchdog restarts; tamper logging.",
               "Mutually monitoring components; can migrate off a "
               "compromised host."});
  m.push_back({MetricId::kSignatureBased, MC::kArchitectural,
               "Signature Based",
               "Degree to which detection uses known-attack signatures "
               "(precise on known attacks; §2.1).",
               Ob::kOpenSource,
               "None.",
               "Static vendor signature set.",
               "Large, frequently updated, user-extensible signature "
               "database."});
  m.push_back({MetricId::kVisibility, MC::kArchitectural, "Visibility",
               "Fraction of the protected enclave's traffic/hosts the "
               "deployed IDS can observe.",
               Ob::kAnalysis,
               "Single host or single link.",
               "Most of one LAN.",
               "All segments and key hosts."});

  // ---- Performance (Table 3 + named-but-omitted) --------------------------
  m.push_back({MetricId::kAnalysisOfCompromise, MC::kPerformance,
               "Analysis of Compromise",
               "Ability to report the extent of damage and compromise due "
               "to intrusions (which hosts are affected, for safe resource "
               "allocation).",
               Ob::kAnalysis,
               "Alert only; no compromise context.",
               "Affected host/service identified.",
               "Damage scope, affected resources and confidence reported."});
  m.push_back({MetricId::kErrorReportingAndRecovery, MC::kPerformance,
               "Error Reporting and Recovery",
               "Appropriateness of the behavior of the IDS under "
               "error/failure conditions.",
               Ob::kAnalysis,
               "No notification, no log; fatal errors hang the system "
               "indefinitely.",
               "Failure logged, user eventually notified; fatal errors "
               "cause cold reboot of the entire machine.",
               "Failure reported near real time via attack notification "
               "channels; fatal errors restart only the application or "
               "service."});
  m.push_back({MetricId::kFirewallInteraction, MC::kPerformance,
               "Firewall Interaction",
               "Ability to interact with a firewall, e.g. updating its "
               "block list in response to a threat.",
               Ob::kBoth,
               "None.",
               "Manual, operator-driven block-list updates.",
               "Automatic, policy-driven blocking with rollback."});
  m.push_back({MetricId::kInducedTrafficLatency, MC::kPerformance,
               "Induced Traffic Latency",
               "Degree to which traffic is delayed by the IDS's presence "
               "or operation.",
               Ob::kAnalysis,
               ">1 ms added to production traffic.",
               "100 us - 1 ms added.",
               "No measurable delay (passive tap)."});
  m.push_back({MetricId::kMaxThroughputZeroLoss, MC::kPerformance,
               "Maximal Throughput with Zero Loss",
               "Observed traffic level sustaining zero lost packets or "
               "streams (packets/sec or simultaneous TCP streams).",
               Ob::kAnalysis,
               "<2k packets/sec.",
               "2k-20k packets/sec.",
               ">20k packets/sec."});
  m.push_back({MetricId::kNetworkLethalDose, MC::kPerformance,
               "Network Lethal Dose",
               "Observed traffic level causing shutdown or malfunction of "
               "the IDS (packets/sec or simultaneous TCP streams).",
               Ob::kAnalysis,
               "Fails below 2x its zero-loss rate.",
               "Fails between 2x and 5x its zero-loss rate.",
               "No failure observed up to the network's own capacity."});
  m.push_back({MetricId::kObservedFalseNegativeRatio, MC::kPerformance,
               "Observed False Negative Ratio",
               "Ratio of actual attacks not detected to total transactions "
               "(|A - D| / |T|, Figure 3).",
               Ob::kAnalysis,
               "Misses most attack transactions in the replayed corpus.",
               "Misses only novel/insider attacks.",
               "Near-zero misses on the replayed corpus."});
  m.push_back({MetricId::kObservedFalsePositiveRatio, MC::kPerformance,
               "Observed False Positive Ratio",
               "Ratio of alarms not corresponding to actual attacks to "
               "total transactions (|D - A| / |T|, Figure 3).",
               Ob::kAnalysis,
               "Alarms on a large share of benign transactions.",
               "Occasional alarms on unusual-but-benign activity.",
               "Near-zero benign alarms at the evaluated sensitivity."});
  m.push_back({MetricId::kOperationalPerformanceImpact, MC::kPerformance,
               "Operational Performance Impact",
               "Negative impact on host processing capacity due to IDS "
               "operation, as a percentage of processing power.",
               Ob::kAnalysis,
               ">=20% of a monitored host's CPU (C2-audit class).",
               "3-5% of host CPU (nominal event logging).",
               "No production-host impact (dedicated sensors)."});
  m.push_back({MetricId::kRouterInteraction, MC::kPerformance,
               "Router Interaction",
               "Degree of interaction with a router, e.g. redirecting "
               "attacker traffic to a honeypot.",
               Ob::kBoth,
               "None.",
               "Static route changes via operator.",
               "Automated redirect/quarantine of offending traffic."});
  m.push_back({MetricId::kSnmpInteraction, MC::kPerformance,
               "SNMP Interaction",
               "Ability to send an SNMP trap to one or more network "
               "devices in response to a detected attack.",
               Ob::kBoth,
               "None.",
               "Traps to a single configured manager.",
               "Policy-selected traps to multiple devices."});
  m.push_back({MetricId::kTimeliness, MC::kPerformance, "Timeliness",
               "Average/maximal time between an intrusion's occurrence and "
               "its being reported.",
               Ob::kAnalysis,
               ">60 s average to report.",
               "1-60 s average.",
               "<1 s average (near real time)."});
  m.push_back({MetricId::kAnalysisOfIntruderIntent, MC::kPerformance,
               "Analysis of Intruder Intent",
               "Ability to infer what the intruder is trying to accomplish "
               "(secondary analysis, §2.2).",
               Ob::kAnalysis,
               "None.",
               "Categorizes attacks by goal class.",
               "Correlates campaigns and predicts likely next targets."});
  m.push_back({MetricId::kClarityOfReports, MC::kPerformance,
               "Clarity of Reports",
               "How clearly threat information is presented to operators.",
               Ob::kAnalysis,
               "Raw logs only.",
               "Structured alerts with severity.",
               "Prioritized, contextualized reporting with drill-down."});
  m.push_back({MetricId::kEffectivenessOfGeneratedFilters, MC::kPerformance,
               "Effectiveness of Generated Filters",
               "Accuracy of automatically generated attack filters: block "
               "the offender without shutting out legitimate users (§2.2).",
               Ob::kAnalysis,
               "Filters block whole subnets or fail to block the attack.",
               "Filters block the offender with some collateral damage.",
               "Filters surgically stop offending traffic only."});
  m.push_back({MetricId::kEvidenceCollection, MC::kPerformance,
               "Evidence Collection",
               "Capture and preservation of forensic evidence (key to ex "
               "post facto unraveling of a distributed compromise, §3.3).",
               Ob::kBoth,
               "Nothing retained beyond the alert.",
               "Triggering packets retained.",
               "Full session capture with integrity protection."});
  m.push_back({MetricId::kInformationSharing, MC::kPerformance,
               "Information Sharing",
               "Ability to share threat data with other IDS installations "
               "or authorities.",
               Ob::kOpenSource,
               "None.",
               "Manual export.",
               "Automated standardized sharing."});
  m.push_back({MetricId::kNotificationUserAlerts, MC::kPerformance,
               "Notification: User Alerts",
               "Variety and interoperability of operator notification "
               "(console, email, pager, SNMP; §2.2 monitoring metrics).",
               Ob::kBoth,
               "Console log only.",
               "Console plus one out-of-band channel.",
               "Multiple prioritized channels with escalation."});
  m.push_back({MetricId::kProgramInteraction, MC::kPerformance,
               "Program Interaction",
               "Ability to trigger external programs/scripts on events.",
               Ob::kBoth,
               "None.",
               "Fixed set of built-in actions.",
               "Arbitrary user hooks with alert context passed in."});
  m.push_back({MetricId::kSessionRecordingPlayback, MC::kPerformance,
               "Session Recording and Playback",
               "Ability to record suspect sessions and replay them for "
               "analysis.",
               Ob::kAnalysis,
               "None.",
               "Byte-stream capture, offline decoding.",
               "Full decoded session playback in the console."});
  m.push_back({MetricId::kThreatCorrelation, MC::kPerformance,
               "Threat Correlation",
               "Depth of analysis: ability to correlate one attack with "
               "another or determine no correlation is appropriate (§2.2).",
               Ob::kAnalysis,
               "Every detection independent.",
               "Same-source/same-flow grouping.",
               "Cross-sensor, cross-time campaign correlation."});
  m.push_back({MetricId::kTrendAnalysis, MC::kPerformance, "Trend Analysis",
               "Ability to report threat trends over time.",
               Ob::kAnalysis,
               "None.",
               "Simple counts over time.",
               "Statistical trending with anomaly flagging on the trend "
               "itself."});

  return m;
}

constexpr std::array<MetricId, 6> kTable1 = {
    MetricId::kDistributedManagement, MetricId::kEaseOfConfiguration,
    MetricId::kEaseOfPolicyMaintenance, MetricId::kLicenseManagement,
    MetricId::kOutsourcedSolution, MetricId::kPlatformRequirements,
};

constexpr std::array<MetricId, 8> kTable2 = {
    MetricId::kAdjustableSensitivity, MetricId::kDataPoolSelectability,
    MetricId::kDataStorage, MetricId::kHostBased,
    MetricId::kMultiSensorSupport, MetricId::kNetworkBased,
    MetricId::kScalableLoadBalancing, MetricId::kSystemThroughput,
};

constexpr std::array<MetricId, 12> kTable3 = {
    MetricId::kAnalysisOfCompromise, MetricId::kErrorReportingAndRecovery,
    MetricId::kFirewallInteraction, MetricId::kInducedTrafficLatency,
    MetricId::kMaxThroughputZeroLoss, MetricId::kNetworkLethalDose,
    MetricId::kObservedFalseNegativeRatio,
    MetricId::kObservedFalsePositiveRatio,
    MetricId::kOperationalPerformanceImpact, MetricId::kRouterInteraction,
    MetricId::kSnmpInteraction, MetricId::kTimeliness,
};

}  // namespace

const std::vector<Metric>& metric_catalog() {
  static const std::vector<Metric> catalog = [] {
    auto c = build_catalog();
    if (c.size() != kMetricCount) {
      throw std::logic_error("metric catalog incomplete");
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (static_cast<std::size_t>(c[i].id) != i) {
        throw std::logic_error("metric catalog out of order");
      }
    }
    return c;
  }();
  return catalog;
}

const Metric& metric(MetricId id) {
  const auto idx = static_cast<std::size_t>(id);
  if (idx >= kMetricCount) throw std::invalid_argument("bad MetricId");
  return metric_catalog()[idx];
}

std::string to_string(MetricId id) { return metric(id).name; }

MetricId metric_id_from_string(std::string_view name) {
  static const std::unordered_map<std::string_view, MetricId> index = [] {
    std::unordered_map<std::string_view, MetricId> idx;
    for (const Metric& m : metric_catalog()) idx.emplace(m.name, m.id);
    return idx;
  }();
  const auto it = index.find(name);
  if (it == index.end()) {
    throw std::invalid_argument("unknown metric name: " + std::string(name));
  }
  return it->second;
}

std::vector<MetricId> metrics_in_class(MetricClass c) {
  std::vector<MetricId> out;
  for (const Metric& m : metric_catalog()) {
    if (m.metric_class == c) out.push_back(m.id);
  }
  return out;
}

std::span<const MetricId> table1_logistical_metrics() { return kTable1; }
std::span<const MetricId> table2_architectural_metrics() { return kTable2; }
std::span<const MetricId> table3_performance_metrics() { return kTable3; }

}  // namespace idseval::core
