#include "core/report.hpp"

#include <algorithm>

#include "results/table.hpp"
#include "util/strfmt.hpp"
#include "util/table.hpp"

namespace idseval::core {

results::Doc metric_table_doc(std::string title,
                              std::span<const MetricId> metrics,
                              std::span<const Scorecard> cards,
                              bool show_notes) {
  std::vector<std::string> columns = {"Metric"};
  std::vector<std::string> aligns = {"left"};
  for (const Scorecard& card : cards) {
    columns.push_back(card.product());
    aligns.push_back("right");
  }
  results::TableBuilder table(std::move(columns), std::move(aligns));
  table.title(std::move(title));

  for (const MetricId id : metrics) {
    std::vector<results::Doc> row = {to_string(id)};
    for (const Scorecard& card : cards) {
      if (const auto s = card.score(id)) {
        std::string cell = std::to_string(s->value());
        if (show_notes && !card.at(id).note.empty()) {
          cell += " (" + card.at(id).note + ")";
        }
        row.emplace_back(std::move(cell));
      } else {
        row.emplace_back("-");
      }
    }
    table.row(std::move(row));
  }
  return table.build();
}

std::string render_metric_table(std::string title,
                                std::span<const MetricId> metrics,
                                std::span<const Scorecard> cards,
                                bool show_notes) {
  return results::render_table_text(
      metric_table_doc(std::move(title), metrics, cards, show_notes));
}

results::Doc weighted_summary_doc(std::string title,
                                  std::span<const Scorecard> cards,
                                  const WeightSet& weights) {
  struct RankedRow {
    const Scorecard* card;
    WeightedScores scores;
  };
  std::vector<RankedRow> rows;
  for (const Scorecard& card : cards) {
    rows.push_back({&card, weighted_scores(card, weights)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const RankedRow& a, const RankedRow& b) {
              return a.scores.total() > b.scores.total();
            });

  results::TableBuilder table(
      {"Rank", "Product", "S1 (Logistical)", "S2 (Architectural)",
       "S3 (Performance)", "Total"},
      {"right", "left", "right", "right", "right", "right"});
  table.title(std::move(title));
  int rank = 0;
  for (const RankedRow& row : rows) {
    table.row({std::to_string(++rank), row.card->product(),
               util::fmt_double(row.scores.logistical, 1),
               util::fmt_double(row.scores.architectural, 1),
               util::fmt_double(row.scores.performance, 1),
               util::fmt_double(row.scores.total(), 1)});
  }
  return table.build();
}

std::string render_weighted_summary(std::string title,
                                    std::span<const Scorecard> cards,
                                    const WeightSet& weights) {
  return results::render_table_text(
      weighted_summary_doc(std::move(title), cards, weights));
}

std::string render_requirement_mapping(const RequirementMapper& mapper,
                                       double base, double step) {
  std::string out;
  {
    results::TableBuilder table(
        {"Rank", "Requirement", "Weight", "Contributes to"},
        {"right", "left", "right", "left"});
    table.title("Requirements (least to most important)");
    const auto weights = mapper.requirement_weights(base, step);
    for (std::size_t i = 0; i < mapper.requirements().size(); ++i) {
      const Requirement& r = mapper.requirements()[i];
      std::string targets;
      for (const MetricId id : r.contributes_to) {
        if (!targets.empty()) targets += ", ";
        targets += to_string(id);
      }
      table.row({std::to_string(r.importance_rank), r.statement,
                 util::fmt_double(weights[i], 1), targets});
    }
    out += results::render_table_text(table.build());
  }
  {
    const WeightSet weights = mapper.derive_weights(base, step);
    results::TableBuilder table({"Metric", "Derived weight"},
                                {"left", "right"});
    table.title("Derived metric weights (sum over contributing "
                "requirements)");
    for (const auto& [id, w] : weights.weights()) {
      table.row({to_string(id), util::fmt_double(w, 1)});
    }
    out += results::render_table_text(table.build());
  }
  return out;
}

std::string render_metric_definition(MetricId id) {
  const Metric& m = metric(id);
  return util::cat(
      m.name, " [", to_string(m.metric_class), ", observed by ",
      to_string(m.observation), "]\n  ", m.definition,
      "\n  Low (0):     ", m.low_anchor,
      "\n  Average (2): ", m.average_anchor,
      "\n  High (4):    ", m.high_anchor, "\n");
}

}  // namespace idseval::core
