#include "core/scorecard.hpp"

#include <stdexcept>

namespace idseval::core {

Scorecard::Scorecard(std::string product_name)
    : product_(std::move(product_name)) {}

void Scorecard::set(MetricId id, Score score, std::string note) {
  entries_[id] = ScoredMetric{score, std::move(note)};
}

bool Scorecard::has(MetricId id) const { return entries_.contains(id); }

const ScoredMetric& Scorecard::at(MetricId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::out_of_range("Scorecard: metric not scored: " +
                            to_string(id));
  }
  return it->second;
}

std::optional<Score> Scorecard::score(MetricId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.score;
}

std::vector<MetricId> Scorecard::scored_in_class(MetricClass c) const {
  std::vector<MetricId> out;
  for (const auto& [id, entry] : entries_) {
    if (metric(id).metric_class == c) out.push_back(id);
  }
  return out;
}

void WeightSet::set(MetricId id, double weight) { weights_[id] = weight; }

void WeightSet::add(MetricId id, double weight) { weights_[id] += weight; }

double WeightSet::get(MetricId id) const {
  const auto it = weights_.find(id);
  return it == weights_.end() ? 0.0 : it->second;
}

void WeightSet::scale(double k) {
  for (auto& [id, w] : weights_) w *= k;
}

WeightedScores weighted_scores(const Scorecard& card,
                               const WeightSet& weights,
                               std::vector<MetricId>* missing) {
  WeightedScores s;
  for (const auto& [id, weight] : weights.weights()) {
    if (weight == 0.0) continue;
    const auto score = card.score(id);
    if (!score) {
      if (missing != nullptr) missing->push_back(id);
      continue;
    }
    const double contribution = weight * static_cast<double>(score->value());
    switch (metric(id).metric_class) {
      case MetricClass::kLogistical:
        s.logistical += contribution;
        break;
      case MetricClass::kArchitectural:
        s.architectural += contribution;
        break;
      case MetricClass::kPerformance:
        s.performance += contribution;
        break;
    }
  }
  return s;
}

}  // namespace idseval::core
