// Report rendering: the comparison tables the evaluation produces —
// per-class metric tables across products (the shape of Tables 1-3), the
// weighted-score summary (Figure 5), and the requirement-to-weight trace
// (Figure 6).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/requirement.hpp"
#include "core/scorecard.hpp"
#include "results/table.hpp"

namespace idseval::core {

/// One class-table as a results::Doc table document (see
/// results/table.hpp): rows are `metrics`, columns are products. The
/// same document renders to text (render_metric_table) or CSV
/// (results::table_to_csv).
results::Doc metric_table_doc(std::string title,
                              std::span<const MetricId> metrics,
                              std::span<const Scorecard> cards,
                              bool show_notes = false);

/// Renders one class-table: rows are `metrics`, columns are products;
/// cells show the discrete score (and the note when `show_notes`).
std::string render_metric_table(std::string title,
                                std::span<const MetricId> metrics,
                                std::span<const Scorecard> cards,
                                bool show_notes = false);

/// The Figure 5 summary as a table document, ranked by total.
results::Doc weighted_summary_doc(std::string title,
                                  std::span<const Scorecard> cards,
                                  const WeightSet& weights);

/// Renders the Figure 5 summary: S_1..S_3 and the total per product,
/// ranked by total (descending).
std::string render_weighted_summary(std::string title,
                                    std::span<const Scorecard> cards,
                                    const WeightSet& weights);

/// Renders the Figure 6 trace: each requirement, its derived weight, and
/// the per-metric weight sums.
std::string render_requirement_mapping(const RequirementMapper& mapper,
                                       double base = 1.0, double step = 1.0);

/// Renders a single metric's full definition with anchors (catalog page).
std::string render_metric_definition(MetricId id);

}  // namespace idseval::core
