// Scorecard and weight-set persistence. The methodology's reuse claim
// (§1): "the evaluation may be reused with the metrics given different
// weighting according to the needs of the next customer" — which requires
// scorecards to outlive the process that measured them. The text format
// is line-oriented and diff-friendly so evaluations can live in version
// control next to the canned traffic traces.
#pragma once

#include <string>

#include "core/requirement.hpp"
#include "core/scorecard.hpp"

namespace idseval::core {

/// Serializes a scorecard:
///   idseval-scorecard v1
///   product: <name>
///   <metric name> | <score> | <note>
std::string serialize_scorecard(const Scorecard& card);

/// Parses the text form; throws std::invalid_argument on malformed input
/// or unknown metric names.
Scorecard deserialize_scorecard(const std::string& text);

/// Serializes a weight set:
///   idseval-weights v1
///   <metric name> | <weight>
std::string serialize_weights(const WeightSet& weights);
WeightSet deserialize_weights(const std::string& text);

}  // namespace idseval::core
