#include "core/metric.hpp"

#include <stdexcept>

namespace idseval::core {

std::string to_string(MetricClass c) {
  switch (c) {
    case MetricClass::kLogistical:
      return "Logistical";
    case MetricClass::kArchitectural:
      return "Architectural";
    case MetricClass::kPerformance:
      return "Performance";
  }
  return "?";
}

std::string to_string(Observation o) {
  switch (o) {
    case Observation::kAnalysis:
      return "analysis";
    case Observation::kOpenSource:
      return "open-source";
    case Observation::kBoth:
      return "both";
  }
  return "?";
}

Score::Score(int value) : value_(value) {
  if (value < kMin || value > kMax) {
    throw std::invalid_argument(
        "Score: discrete scores range 0..4 (got " + std::to_string(value) +
        ")");
  }
}

}  // namespace idseval::core
