#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "util/strfmt.hpp"
#include "util/table.hpp"

namespace idseval::core {

std::vector<std::size_t> rank_products(std::span<const Scorecard> cards,
                                       const WeightSet& weights) {
  std::vector<std::size_t> order(cards.size());
  for (std::size_t i = 0; i < cards.size(); ++i) order[i] = i;
  std::vector<double> totals(cards.size());
  for (std::size_t i = 0; i < cards.size(); ++i) {
    totals[i] = weighted_scores(cards[i], weights).total();
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return totals[a] > totals[b];
                   });
  return order;
}

namespace {

/// Unweighted score of `metric` for a card, 0 when unscored (consistent
/// with weighted_scores, which contributes nothing for missing entries).
double u_of(const Scorecard& card, MetricId metric) {
  const auto s = card.score(metric);
  return s ? static_cast<double>(s->value()) : 0.0;
}

}  // namespace

std::optional<double> winner_flip_scale(std::span<const Scorecard> cards,
                                        const WeightSet& weights,
                                        MetricId metric, double max_scale) {
  if (cards.size() < 2) return std::nullopt;
  const double w = weights.get(metric);
  if (w == 0.0) return std::nullopt;

  const auto order = rank_products(cards, weights);
  const Scorecard& winner = cards[order[0]];
  const double winner_total = weighted_scores(winner, weights).total();
  const double winner_u = u_of(winner, metric);

  // Total_i(k) = base_i + (k - 1) * w * U_i  — linear in k. The winner is
  // overtaken by challenger j at k* where the lines cross.
  std::optional<double> best;
  for (std::size_t idx = 1; idx < order.size(); ++idx) {
    const Scorecard& challenger = cards[order[idx]];
    const double challenger_total =
        weighted_scores(challenger, weights).total();
    const double du = u_of(challenger, metric) - winner_u;
    const double gap = winner_total - challenger_total;  // >= 0
    const double slope = w * du;  // challenger gain per unit k
    if (slope == 0.0) continue;   // parallel: never crosses
    // gap == 0 with a non-zero slope is an exact tie: the crossing sits
    // at k = 1 and any perturbation of this weight flips the winner —
    // the most fragile case, so it must be reported, not skipped.
    const double k = 1.0 + gap / slope;
    if (k < 0.0 || k > max_scale) continue;
    // Prefer the k closest to 1 (smallest relative change).
    if (!best || std::abs(std::log(std::max(k, 1e-9))) <
                     std::abs(std::log(std::max(*best, 1e-9)))) {
      best = k;
    }
  }
  return best;
}

std::vector<MetricRobustness> weight_robustness(
    std::span<const Scorecard> cards, const WeightSet& weights,
    double max_scale) {
  std::vector<MetricRobustness> out;
  for (const auto& [metric, weight] : weights.weights()) {
    if (weight == 0.0) continue;
    MetricRobustness entry;
    entry.metric = metric;
    entry.weight = weight;
    entry.flip_scale = winner_flip_scale(cards, weights, metric, max_scale);
    out.push_back(entry);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MetricRobustness& a, const MetricRobustness& b) {
                     const double fa =
                         a.flip_scale
                             ? std::abs(std::log(std::max(*a.flip_scale,
                                                          1e-9)))
                             : 1e18;
                     const double fb =
                         b.flip_scale
                             ? std::abs(std::log(std::max(*b.flip_scale,
                                                          1e-9)))
                             : 1e18;
                     return fa < fb;
                   });
  return out;
}

std::string render_weight_robustness(std::span<const Scorecard> cards,
                                     const WeightSet& weights,
                                     double max_scale) {
  const auto order = rank_products(cards, weights);
  const auto robustness = weight_robustness(cards, weights, max_scale);

  util::TextTable table({"Metric", "Weight", "Winner flips at", "Verdict"},
                        {util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kLeft});
  table.set_title(util::cat("Decision robustness (winner: ",
                            cards[order[0]].product(), ")"));
  for (const auto& entry : robustness) {
    std::string at = "-";
    std::string verdict = "decision insensitive to this weight";
    if (entry.flip_scale) {
      at = util::cat(util::fmt_fixed(*entry.flip_scale, 2), "x");
      const double log_dist = std::abs(std::log(*entry.flip_scale));
      if (log_dist < std::log(1.5)) {
        verdict = "FRAGILE: defend this weight explicitly";
      } else if (log_dist < std::log(3.0)) {
        verdict = "moderately sensitive";
      } else {
        verdict = "robust";
      }
    }
    table.add_row({to_string(entry.metric),
                   util::fmt_double(entry.weight, 1), at, verdict});
  }
  return table.render();
}

}  // namespace idseval::core
