// Requirement-to-weight mapping (§3.3, Figure 6): the procurer lists
// requirements in a partial order from least to most important; the least
// important gets the lowest weight; each metric's weight is the sum of
// the weights of the requirements it contributes to. This is what turns
// the static metric set into a user-definable standard.
#pragma once

#include <string>
#include <vector>

#include "core/scorecard.hpp"

namespace idseval::core {

/// One formalized user requirement. `importance_rank` expresses the
/// partial ordering: requirements sharing a rank are equally important
/// (duplicate weights are explicitly acceptable, §3.3).
struct Requirement {
  std::string statement;            ///< Positive form where possible.
  int importance_rank = 1;          ///< 1 = least important.
  std::vector<MetricId> contributes_to;
};

class RequirementMapper {
 public:
  RequirementMapper() = default;

  void add(Requirement requirement);
  const std::vector<Requirement>& requirements() const noexcept {
    return requirements_;
  }

  /// Assigns requirement weights from the partial order: distinct ranks
  /// are sorted and mapped to weights base, base+step, base+2*step, ...
  /// (§3.3's "assign the lowest weight, then increasing weights in
  /// proportion to relative importance"). Returns the per-requirement
  /// weights in insertion order.
  std::vector<double> requirement_weights(double base = 1.0,
                                          double step = 1.0) const;

  /// Builds the metric WeightSet: each metric's weight is the sum of the
  /// weights of the requirements it contributes to (Figure 6).
  WeightSet derive_weights(double base = 1.0, double step = 1.0) const;

 private:
  std::vector<Requirement> requirements_;
};

/// The weighting profile §3.3 recommends for distributed real-time
/// systems: emphasis on speed and accuracy of attack recognition, on
/// automatic reaction (firewall/router/SNMP), on minimal resource impact,
/// and — for distributed trust — on driving the false-negative ratio
/// down even at the cost of more false positives, with historical logging
/// for ex post facto analysis.
RequirementMapper realtime_distributed_requirements();

/// A contrasting commercial profile (e-commerce web front): cost,
/// manageability and false-positive suppression dominate; resource
/// overhead and hard-real-time response matter less.
RequirementMapper ecommerce_requirements();

}  // namespace idseval::core
