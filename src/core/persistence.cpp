#include "core/persistence.hpp"

#include <sstream>
#include <stdexcept>

namespace idseval::core {

namespace {

constexpr const char* kScorecardHeader = "idseval-scorecard v1";
constexpr const char* kWeightsHeader = "idseval-weights v1";

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Splits "a | b | c" into at most `max_fields` trimmed fields; the last
/// field keeps any further separators (notes may contain '|').
std::vector<std::string> split_fields(const std::string& line,
                                      std::size_t max_fields) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (fields.size() + 1 < max_fields) {
    const std::size_t bar = line.find('|', pos);
    if (bar == std::string::npos) break;
    fields.push_back(trim(line.substr(pos, bar - pos)));
    pos = bar + 1;
  }
  fields.push_back(trim(line.substr(pos)));
  return fields;
}

}  // namespace

std::string serialize_scorecard(const Scorecard& card) {
  std::ostringstream out;
  out << kScorecardHeader << "\n";
  out << "product: " << card.product() << "\n";
  for (const auto& [id, entry] : card.entries()) {
    out << to_string(id) << " | " << entry.score.value() << " | "
        << entry.note << "\n";
  }
  return out.str();
}

Scorecard deserialize_scorecard(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || trim(line) != kScorecardHeader) {
    throw std::invalid_argument("scorecard: bad header");
  }
  if (!std::getline(in, line) || line.rfind("product: ", 0) != 0) {
    throw std::invalid_argument("scorecard: missing product line");
  }
  Scorecard card(trim(line.substr(9)));
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto fields = split_fields(line, 3);
    if (fields.size() != 3) {
      throw std::invalid_argument("scorecard: malformed line: " + line);
    }
    const MetricId id = metric_id_from_string(fields[0]);
    int value = 0;
    try {
      value = std::stoi(fields[1]);
    } catch (const std::exception&) {
      throw std::invalid_argument("scorecard: bad score: " + fields[1]);
    }
    card.set(id, Score(value), fields[2]);
  }
  return card;
}

std::string serialize_weights(const WeightSet& weights) {
  std::ostringstream out;
  out << kWeightsHeader << "\n";
  for (const auto& [id, w] : weights.weights()) {
    out << to_string(id) << " | " << w << "\n";
  }
  return out.str();
}

WeightSet deserialize_weights(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || trim(line) != kWeightsHeader) {
    throw std::invalid_argument("weights: bad header");
  }
  WeightSet weights;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto fields = split_fields(line, 2);
    if (fields.size() != 2) {
      throw std::invalid_argument("weights: malformed line: " + line);
    }
    try {
      weights.set(metric_id_from_string(fields[0]), std::stod(fields[1]));
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("weights: bad value: " + fields[1]);
    }
  }
  return weights;
}

}  // namespace idseval::core
