// Anchor-based automatic scoring: converts measured quantities into the
// catalog's discrete 0-4 scores. Each converter encodes the low/average/
// high anchors of its metric so a measurement maps to the same score any
// evaluator would assign — the "observable, reproducible, quantifiable"
// requirement of §3.1.
#pragma once

#include "core/metric.hpp"

namespace idseval::core {

/// Generic 5-point bucketing between a low and a high anchor value.
/// With higher_is_better, values <= low_anchor score 0 and values >=
/// high_anchor score 4; buckets are geometric when `geometric` (suits
/// rates spanning decades), else linear.
Score score_between(double value, double low_anchor, double high_anchor,
                    bool higher_is_better, bool geometric = false);

// --- Table 2 converters -----------------------------------------------------
/// System Throughput: packets/sec processed successfully.
Score score_system_throughput(double pps);
/// Data Storage: bytes stored per megabyte of monitored traffic.
Score score_data_storage(double bytes_per_mb);

// --- Table 3 converters -----------------------------------------------------
/// Induced Traffic Latency: added production-path delay, seconds.
Score score_induced_latency(double seconds);
/// Maximal Throughput with Zero Loss: packets/sec.
Score score_zero_loss_throughput(double pps);
/// Network Lethal Dose: ratio of failure rate to zero-loss rate; infinite
/// (never failed) scores 4.
Score score_lethal_dose_ratio(double dose_over_zero_loss);
/// Observed False Negative Ratio: |A - D| / |T|, given the attack share
/// of transactions (a FN ratio equal to the attack share means every
/// attack was missed and scores 0).
Score score_false_negative_ratio(double ratio, double attack_share);
/// Observed False Positive Ratio: |D - A| / |T|.
Score score_false_positive_ratio(double ratio);
/// Operational Performance Impact: fraction of host CPU consumed (0..1).
Score score_host_cpu_impact(double fraction);
/// Timeliness: mean seconds from intrusion occurrence to operator report.
Score score_timeliness(double mean_seconds);

}  // namespace idseval::core
