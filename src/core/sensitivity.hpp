// Weight-robustness analysis — the paper's future-work item: "Mapping of
// requirements to metric weights is an area where we hope to do more
// work... as long as the weighting accurately and consistently reflects
// the goals of the procurer's organization, the scorecard methodology
// will work effectively" (§3.3). Because the Figure-5 total is linear in
// every weight, we can answer exactly: how much would any single metric's
// weight have to move before the procurement decision (the winner)
// changes? Metrics with small flip factors are where the subjective
// mapping must be defended hardest.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/scorecard.hpp"

namespace idseval::core {

/// Indices into `cards`, best total first. Ties keep input order.
std::vector<std::size_t> rank_products(std::span<const Scorecard> cards,
                                       const WeightSet& weights);

/// The smallest multiplicative change k (k >= 0, k != 1) to `metric`'s
/// weight that changes the winner, or nullopt when no k in
/// [0, max_scale] flips the decision. k < 1 means shrinking the weight
/// flips it; k > 1 means growing it does.
std::optional<double> winner_flip_scale(std::span<const Scorecard> cards,
                                        const WeightSet& weights,
                                        MetricId metric,
                                        double max_scale = 100.0);

/// Robustness entry for one weighted metric.
struct MetricRobustness {
  MetricId metric;
  double weight = 0.0;
  /// Flip factor; nullopt = decision insensitive to this weight within
  /// the scanned range.
  std::optional<double> flip_scale;
};

/// Flip factors for every non-zero-weight metric, sorted most fragile
/// first (smallest |log(flip_scale)|); insensitive metrics last.
std::vector<MetricRobustness> weight_robustness(
    std::span<const Scorecard> cards, const WeightSet& weights,
    double max_scale = 100.0);

/// Renders the robustness table.
std::string render_weight_robustness(std::span<const Scorecard> cards,
                                     const WeightSet& weights,
                                     double max_scale = 100.0);

}  // namespace idseval::core
