#include "core/requirement.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace idseval::core {

void RequirementMapper::add(Requirement requirement) {
  if (requirement.importance_rank < 1) {
    throw std::invalid_argument("Requirement: rank must be >= 1");
  }
  requirements_.push_back(std::move(requirement));
}

std::vector<double> RequirementMapper::requirement_weights(
    double base, double step) const {
  // Collect the distinct ranks and map them onto an increasing weight
  // ladder. Duplicate ranks share a weight (the ordering is partial).
  std::vector<int> ranks;
  for (const auto& r : requirements_) ranks.push_back(r.importance_rank);
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());

  std::map<int, double> rank_weight;
  double w = base;
  for (const int rank : ranks) {
    rank_weight[rank] = w;
    w += step;
  }

  std::vector<double> out;
  out.reserve(requirements_.size());
  for (const auto& r : requirements_) {
    out.push_back(rank_weight.at(r.importance_rank));
  }
  return out;
}

WeightSet RequirementMapper::derive_weights(double base, double step) const {
  const std::vector<double> req_weights = requirement_weights(base, step);
  WeightSet weights;
  for (std::size_t i = 0; i < requirements_.size(); ++i) {
    for (const MetricId id : requirements_[i].contributes_to) {
      weights.add(id, req_weights[i]);
    }
  }
  return weights;
}

RequirementMapper realtime_distributed_requirements() {
  using M = MetricId;
  RequirementMapper mapper;
  // Rank 1 (least important): affordability and vendor logistics.
  mapper.add({"Acquisition and sustainment costs are bounded", 1,
              {M::kThreeYearCostOfOwnership, M::kLicenseManagement}});
  mapper.add({"Operators can be trained on the system", 1,
              {M::kTrainingSupport, M::kQualityOfDocumentation}});
  // Rank 2: manageability of a multi-sensor enclave.
  mapper.add({"The IDS is manageable across the distributed enclave", 2,
              {M::kDistributedManagement, M::kMultiSensorSupport,
               M::kEaseOfConfiguration, M::kEaseOfPolicyMaintenance}});
  mapper.add({"Monitoring remains under local control", 2,
              {M::kOutsourcedSolution}});
  // Rank 3: scale with the system.
  mapper.add({"Monitoring scales with system growth", 3,
              {M::kScalableLoadBalancing, M::kSystemThroughput,
               M::kMultiSensorSupport}});
  mapper.add({"Historical traffic is logged for post-incident analysis", 3,
              {M::kEvidenceCollection, M::kDataStorage,
               M::kSessionRecordingPlayback}});
  // Rank 4: real-time constraints — overhead and determinism.
  mapper.add({"The IDS must not perturb real-time computation or "
              "communication", 4,
              {M::kOperationalPerformanceImpact, M::kInducedTrafficLatency,
               M::kPlatformRequirements}});
  mapper.add({"The IDS degrades gracefully and deterministically under "
              "overload", 4,
              {M::kErrorReportingAndRecovery, M::kNetworkLethalDose,
               M::kMaxThroughputZeroLoss, M::kProcessSecurity}});
  // Rank 5 (most important): catch the initial compromise, react fast.
  mapper.add({"Attacks are recognized quickly and automatically countered",
              5,
              {M::kTimeliness, M::kFirewallInteraction,
               M::kRouterInteraction, M::kSnmpInteraction,
               M::kEffectivenessOfGeneratedFilters}});
  mapper.add({"The false negative ratio is minimized, accepting extra "
              "false positives (inter-host trust makes a missed initial "
              "compromise catastrophic)", 5,
              {M::kObservedFalseNegativeRatio, M::kAdjustableSensitivity,
               M::kAnomalyBased, M::kThreatCorrelation}});
  return mapper;
}

RequirementMapper ecommerce_requirements() {
  using M = MetricId;
  RequirementMapper mapper;
  // Rank 1: niceties.
  mapper.add({"Evidence can be collected for prosecution", 1,
              {M::kEvidenceCollection, M::kSessionRecordingPlayback}});
  mapper.add({"Some automated response is available", 1,
              {M::kFirewallInteraction, M::kSnmpInteraction}});
  // Rank 2: performance at commodity web scale.
  mapper.add({"The IDS keeps up with peak shopping traffic", 2,
              {M::kSystemThroughput, M::kMaxThroughputZeroLoss}});
  mapper.add({"Known web attacks are reliably detected", 2,
              {M::kSignatureBased, M::kObservedFalseNegativeRatio}});
  // Rank 3: operations economics.
  mapper.add({"Total cost of ownership is low", 3,
              {M::kThreeYearCostOfOwnership, M::kLicenseManagement,
               M::kLevelOfAdministration}});
  mapper.add({"Deployment and upkeep are simple for a small ops team", 3,
              {M::kEaseOfConfiguration, M::kEaseOfPolicyMaintenance,
               M::kQualityOfTechnicalSupport, M::kProductLifetime}});
  // Rank 4 (most important): operators aren't drowned in alarms.
  mapper.add({"Alarms are rare enough to act on (suppress false "
              "positives)", 4,
              {M::kObservedFalsePositiveRatio, M::kClarityOfReports,
               M::kAdjustableSensitivity}});
  return mapper;
}

}  // namespace idseval::core
