#include "core/autoscore.hpp"

#include <algorithm>
#include <cmath>

namespace idseval::core {

Score score_between(double value, double low_anchor, double high_anchor,
                    bool higher_is_better, bool geometric) {
  double position;  // 0 at the low anchor, 1 at the high anchor
  if (geometric) {
    const double lo = std::max(low_anchor, 1e-12);
    const double hi = std::max(high_anchor, lo * (1.0 + 1e-12));
    const double v = std::clamp(value, lo, hi);
    position = std::log(v / lo) / std::log(hi / lo);
  } else {
    const double v = std::clamp(value, std::min(low_anchor, high_anchor),
                                std::max(low_anchor, high_anchor));
    position = (v - low_anchor) / (high_anchor - low_anchor);
  }
  if (!higher_is_better) position = 1.0 - position;
  position = std::clamp(position, 0.0, 1.0);
  // 5 equal buckets over [0,1]; exact 1.0 lands in the top bucket.
  const int score = std::min(4, static_cast<int>(position * 5.0));
  return Score(score);
}

Score score_system_throughput(double pps) {
  // Anchors from the catalog: <5k low, 5k-50k average, >50k high.
  return score_between(pps, 1'500.0, 150'000.0, /*higher=*/true,
                       /*geometric=*/true);
}

Score score_data_storage(double bytes_per_mb) {
  // <10 KB/MB high, >100 KB/MB low.
  return score_between(bytes_per_mb, 3'000.0, 300'000.0, /*higher=*/false,
                       /*geometric=*/true);
}

Score score_induced_latency(double seconds) {
  // Passive taps (~0) score 4; >1 ms scores 0.
  return score_between(seconds, 10e-6, 3e-3, /*higher=*/false,
                       /*geometric=*/true);
}

Score score_zero_loss_throughput(double pps) {
  // <2k low, 2k-20k average, >20k high.
  return score_between(pps, 600.0, 60'000.0, /*higher=*/true,
                       /*geometric=*/true);
}

Score score_lethal_dose_ratio(double dose_over_zero_loss) {
  if (!std::isfinite(dose_over_zero_loss)) return Score(4);
  return score_between(dose_over_zero_loss, 1.2, 8.0, /*higher=*/true,
                       /*geometric=*/true);
}

Score score_false_negative_ratio(double ratio, double attack_share) {
  if (attack_share <= 0.0) return Score(4);
  // Normalize: miss-everything == attack_share -> 0; miss-nothing -> 4.
  const double missed_fraction =
      std::clamp(ratio / attack_share, 0.0, 1.0);
  return score_between(missed_fraction, 0.0, 1.0, /*higher=*/false);
}

Score score_false_positive_ratio(double ratio) {
  // 10% of transactions alarmed falsely is unusable (0); ~0 is ideal (4).
  return score_between(ratio, 1e-4, 0.10, /*higher=*/false,
                       /*geometric=*/true);
}

Score score_host_cpu_impact(double fraction) {
  // Catalog anchors: >=20% low, 3-5% average, ~0 high.
  return score_between(fraction, 0.004, 0.25, /*higher=*/false,
                       /*geometric=*/true);
}

Score score_timeliness(double mean_seconds) {
  // <1s high, 1-60s average, >60s low.
  return score_between(mean_seconds, 0.3, 120.0, /*higher=*/false,
                       /*geometric=*/true);
}

}  // namespace idseval::core
