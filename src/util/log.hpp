// Minimal leveled logger. Kept deliberately simple: the harness's primary
// outputs are structured tables, not log lines; logging exists for
// debugging testbed wiring.
#pragma once

#include <mutex>
#include <string>
#include <string_view>

#include "util/strfmt.hpp"

namespace idseval::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log sink with a runtime severity threshold.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  void write(LogLevel level, std::string_view msg);

  template <typename... Args>
  void log(LogLevel level, Args&&... args) {
    if (level < level_) return;
    write(level, cat(std::forward<Args>(args)...));
  }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

template <typename... Args>
void log_debug(Args&&... args) {
  Logger::instance().log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  Logger::instance().log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  Logger::instance().log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  Logger::instance().log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace idseval::util
