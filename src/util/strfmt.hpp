// Small string-formatting helpers. libstdc++ 12 does not ship <format>,
// so the project uses stream concatenation (`cat`) and snprintf-backed
// numeric formatting instead.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace idseval::util {

/// Streams all arguments into one string: cat("x=", 3, " y=", 4.5).
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}

/// Fixed-point double: fmt_fixed(3.14159, 2) == "3.14".
inline std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace idseval::util
