// Work-queue thread pool used by the harness to run independent sweep
// points (sensitivity settings, load levels, products) in parallel.
// Simulation runs themselves stay single-threaded and deterministic;
// parallelism lives one level up, across runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace idseval::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// If any invocation throws, remaining indices may be skipped, every
  /// worker is still drained before returning (no task outlives the call
  /// or touches `fn` after it unwinds), and the first exception observed
  /// is rethrown to the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace idseval::util
