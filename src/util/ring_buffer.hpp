// Single-producer/single-consumer lock-free ring buffer. Models the
// bounded queues between IDS pipeline stages (load balancer -> sensor ->
// analyzer -> monitor) when the harness runs stages on real threads, and
// provides the bounded-queue semantics (tail drop on full) that the
// zero-loss-throughput measurement depends on.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace idseval::util {

#if defined(__cpp_lib_hardware_interference_size)
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

/// Bounded SPSC queue. `try_push` fails (returns false) when full — the
/// caller decides whether that is back-pressure or a drop. Capacity is
/// rounded up to a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  bool try_push(T value) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_cache_;
    if (head - tail >= slots_.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= slots_.size()) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_cache_;
    if (tail >= head) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail >= head_cache_) return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Approximate occupancy; exact only when quiescent.
  std::size_t size() const noexcept {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::size_t tail_cache_ = 0;  // producer-side
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLine) std::size_t head_cache_ = 0;  // consumer-side
};

}  // namespace idseval::util
