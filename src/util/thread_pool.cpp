#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace idseval::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  // Join here, not via ~jthread: the queue/mutex/cv members are declared
  // after workers_ and would otherwise be destroyed while workers still
  // touch them.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so tiny bodies do not drown in queue overhead.
  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t per = (n + chunks - 1) / chunks;
  // Chunks trap their own exceptions instead of throwing through the
  // packaged_task future: rethrowing from the first future.get() would
  // unwind the caller while other chunks still hold the reference to
  // `fn`. Every chunk must finish before the first exception resurfaces.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn, &first_error, &error_mutex,
                              &failed] {
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          if (failed.load(std::memory_order_relaxed)) return;
          fn(i);
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace idseval::util
