// Open-addressing flow table: the generic per-flow state substrate
// (ROADMAP "flow-table core"). Keys live in a flat power-of-two slot
// array probed linearly; values live in a recycled chunked slab (the
// event-core callback-slab idiom), so value pointers stay stable across
// rehash and erase — holders may cache them like the ledger's cached
// Transaction*. Deletion is tombstone-free backward-shift, so probe
// chains never accrete dead slots and lookup cost stays bounded by load
// factor alone. Probe/lookup counts are tracked per table and can be
// mirrored into telemetry counter cells (util cannot depend on the
// telemetry layer, so the binding is a pair of raw uint64 cells).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace idseval::util {

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over raw bytes, finalized with mix64 so the low bits (the only
/// ones a power-of-two table uses) carry the whole key.
inline std::uint64_t hash_bytes(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

/// Default hasher for integral keys (flow ids, packed host addresses).
template <class Key>
struct FlowKeyHash {
  static_assert(std::is_integral_v<Key>,
                "provide an explicit hasher for non-integral keys");
  std::uint64_t operator()(const Key& key) const noexcept {
    return mix64(static_cast<std::uint64_t>(key));
  }
};

/// Per-table access statistics. `probes` counts slots inspected across
/// all key searches (find/insert/erase); `lookups` counts the searches
/// themselves, so probes/lookups is the mean chain length actually paid.
struct FlowTableStats {
  std::uint64_t lookups = 0;
  std::uint64_t probes = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t rehashes = 0;

  double probes_per_lookup() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(probes) / static_cast<double>(lookups);
  }
};

template <class Key, class T, class Hash = FlowKeyHash<Key>>
class FlowTable {
  static constexpr std::uint32_t kNoValue = 0xffffffffu;
  static constexpr std::uint32_t kChunkShift = 9;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

 public:
  FlowTable() = default;
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;
  FlowTable(FlowTable&& other) noexcept { move_from(other); }
  FlowTable& operator=(FlowTable&& other) noexcept {
    if (this != &other) {
      destroy_values();
      chunks_.clear();
      move_from(other);
    }
    return *this;
  }
  ~FlowTable() { destroy_values(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Slab high-water mark: value slots ever allocated (erased slots are
  /// recycled, so this only grows with peak live size).
  std::size_t slab_high_water() const noexcept { return slab_used_; }
  /// Bytes held by the slot array, value slab, and free list.
  std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) + chunks_.size() * sizeof(Chunk) +
           free_.capacity() * sizeof(std::uint32_t);
  }
  const FlowTableStats& stats() const noexcept { return stats_; }

  /// Mirrors probe/lookup counts into external cells (e.g. telemetry
  /// counters); either may be null. Past counts are not replayed.
  void bind_counters(std::uint64_t* probes, std::uint64_t* lookups) noexcept {
    probe_cell_ = probes;
    lookup_cell_ = lookups;
  }

  T* find(const Key& key) noexcept {
    return const_cast<T*>(std::as_const(*this).find(key));
  }

  const T* find(const Key& key) const noexcept {
    note_lookup();
    if (size_ == 0) return nullptr;
    std::size_t i = Hash{}(key) & mask_;
    for (;;) {
      note_probe();
      const Slot& slot = slots_[i];
      if (slot.value == kNoValue) return nullptr;
      if (slot.key == key) return value_ptr(slot.value);
      i = (i + 1) & mask_;
    }
  }

  bool contains(const Key& key) const noexcept { return find(key) != nullptr; }

  /// Inserts key -> T(args...) unless present; returns {value, inserted}.
  /// The returned pointer is stable until the entry is erased.
  template <class... Args>
  std::pair<T*, bool> try_emplace(const Key& key, Args&&... args) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    note_lookup();
    std::size_t i = Hash{}(key) & mask_;
    for (;;) {
      note_probe();
      Slot& slot = slots_[i];
      if (slot.value == kNoValue) {
        const std::uint32_t ref = allocate_value();
        T* value = value_ptr(ref);
        ::new (static_cast<void*>(value)) T(std::forward<Args>(args)...);
        slot.key = key;
        slot.value = ref;
        ++size_;
        ++stats_.inserts;
        return {value, true};
      }
      if (slot.key == key) return {value_ptr(slot.value), false};
      i = (i + 1) & mask_;
    }
  }

  /// Erases the key if present. Backward-shift deletion: every element
  /// whose probe chain crossed the hole slides back into it, so no
  /// tombstone is left and chains stay minimal.
  bool erase(const Key& key) {
    note_lookup();
    if (size_ == 0) return false;
    std::size_t i = Hash{}(key) & mask_;
    for (;;) {
      note_probe();
      Slot& slot = slots_[i];
      if (slot.value == kNoValue) return false;
      if (slot.key == key) break;
      i = (i + 1) & mask_;
    }
    value_ptr(slots_[i].value)->~T();
    free_.push_back(slots_[i].value);
    --size_;
    ++stats_.erases;

    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      const Slot& cand = slots_[j];
      if (cand.value == kNoValue) break;
      // cand may move into the hole only if its home slot does not lie
      // strictly inside the cyclic range (hole, j] — otherwise its probe
      // chain never crossed the hole and moving it would break lookup.
      const std::size_t home = Hash{}(cand.key) & mask_;
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = cand;
        hole = j;
      }
    }
    slots_[hole].value = kNoValue;
    return true;
  }

  /// Destroys all values and recycles the whole slab; keeps allocated
  /// capacity for reuse.
  void clear() noexcept {
    destroy_values();
    for (Slot& slot : slots_) slot.value = kNoValue;
    size_ = 0;
    free_.clear();
    slab_used_ = 0;
  }

  /// Pre-sizes the slot array for `n` live entries (one rehash up front
  /// instead of log2(n) incremental ones).
  void reserve(std::size_t n) {
    std::size_t cap = 16;
    while (cap * 3 < n * 4) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  template <class Fn>
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.value != kNoValue) fn(slot.key, *value_ptr(slot.value));
    }
  }
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.value != kNoValue) {
        fn(slot.key, *const_cast<const T*>(value_ptr(slot.value)));
      }
    }
  }

 private:
  struct Slot {
    Key key{};
    std::uint32_t value = kNoValue;
  };
  struct Chunk {
    alignas(T) unsigned char bytes[sizeof(T) * kChunkSlots];
  };

  T* value_ptr(std::uint32_t ref) const noexcept {
    return reinterpret_cast<T*>(chunks_[ref >> kChunkShift]->bytes) +
           (ref & (kChunkSlots - 1));
  }

  std::uint32_t allocate_value() {
    if (!free_.empty()) {
      const std::uint32_t ref = free_.back();
      free_.pop_back();
      return ref;
    }
    if ((slab_used_ >> kChunkShift) == chunks_.size()) {
      chunks_.emplace_back(new Chunk);  // default-init: no byte zeroing
    }
    return slab_used_++;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    ++stats_.rehashes;
    for (const Slot& slot : old) {
      if (slot.value == kNoValue) continue;
      std::size_t i = Hash{}(slot.key) & mask_;
      while (slots_[i].value != kNoValue) i = (i + 1) & mask_;
      slots_[i] = slot;
    }
  }

  void destroy_values() noexcept {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (const Slot& slot : slots_) {
        if (slot.value != kNoValue) value_ptr(slot.value)->~T();
      }
    }
  }

  void move_from(FlowTable& other) noexcept {
    slots_ = std::move(other.slots_);
    mask_ = other.mask_;
    size_ = other.size_;
    chunks_ = std::move(other.chunks_);
    free_ = std::move(other.free_);
    slab_used_ = other.slab_used_;
    stats_ = other.stats_;
    probe_cell_ = other.probe_cell_;
    lookup_cell_ = other.lookup_cell_;
    other.mask_ = 0;
    other.size_ = 0;
    other.slab_used_ = 0;
    other.stats_ = FlowTableStats{};
  }

  void note_lookup() const noexcept {
    ++stats_.lookups;
    if (lookup_cell_ != nullptr) ++*lookup_cell_;
  }
  void note_probe() const noexcept {
    ++stats_.probes;
    if (probe_cell_ != nullptr) ++*probe_cell_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t slab_used_ = 0;
  mutable FlowTableStats stats_;
  std::uint64_t* probe_cell_ = nullptr;
  std::uint64_t* lookup_cell_ = nullptr;
};

/// Set facade over FlowTable (keys only, empty values).
template <class Key, class Hash = FlowKeyHash<Key>>
class FlowSet {
 public:
  /// True when the key was newly inserted.
  bool insert(const Key& key) { return table_.try_emplace(key).second; }
  bool contains(const Key& key) const noexcept {
    return table_.contains(key);
  }
  bool erase(const Key& key) { return table_.erase(key); }
  std::size_t size() const noexcept { return table_.size(); }
  bool empty() const noexcept { return table_.empty(); }
  void clear() noexcept { table_.clear(); }
  std::size_t memory_bytes() const noexcept { return table_.memory_bytes(); }
  const FlowTableStats& stats() const noexcept { return table_.stats(); }
  void bind_counters(std::uint64_t* probes, std::uint64_t* lookups) noexcept {
    table_.bind_counters(probes, lookups);
  }

 private:
  struct Empty {};
  FlowTable<Key, Empty, Hash> table_;
};

}  // namespace idseval::util
