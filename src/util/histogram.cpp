#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace idseval::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: require lo < hi and bins > 0");
  }
  bin_width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i) + bin_width_;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t cum = underflow_;
  if (cum > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] > target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : static_cast<double>(target - cum) /
                    static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * bin_width_;
    }
    cum += counts_[i];
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(std::max<std::size_t>(bar, 1), '#') << " "
        << counts_[i] << "\n";
  }
  if (underflow_) out << "underflow: " << underflow_ << "\n";
  if (overflow_) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

LogHistogram::LogHistogram()
    : counts_(static_cast<std::size_t>(kMaxExp - kMinExp + 1), 0) {}

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (x <= 0.0) {
    ++zeros_;
    return;
  }
  int exp = static_cast<int>(std::floor(std::log2(x)));
  exp = std::clamp(exp, kMinExp, kMaxExp);
  ++counts_[static_cast<std::size_t>(exp - kMinExp)];
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  zeros_ += other.zeros_;
}

double LogHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cum = zeros_;
  if (cum > target) return 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] > target) {
      const double lo = std::exp2(static_cast<double>(kMinExp) +
                                  static_cast<double>(i));
      return lo * 1.5;  // bucket midpoint in linear terms
    }
    cum += counts_[i];
  }
  return std::exp2(kMaxExp);
}

std::string LogHistogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  if (zeros_) out << "zeros: " << zeros_ << "\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int exp = kMinExp + static_cast<int>(i);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "2^" << exp << " "
        << std::string(std::max<std::size_t>(bar, 1), '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace idseval::util
