#include "util/log.hpp"

#include <cstdio>

namespace idseval::util {

namespace {
constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view msg) {
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(msg.size()),
               msg.data());
}

}  // namespace idseval::util
