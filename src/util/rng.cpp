#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace idseval::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // A state of all zeros is the one degenerate fixed point; SplitMix64
  // cannot produce four zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full range requested
  // Rejection-free Lemire-style mapping is fine here; modulo bias is
  // negligible for simulation spans << 2^64.
  return lo + next() % span;
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(next() % n);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) noexcept {
  // Inverse CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Direct inverse-CDF over the (small) rank table would require caching;
  // for generator use we apply rejection sampling on the continuous
  // bounding envelope, which needs no per-n state.
  if (s <= 0.0) return index(n);
  const double nd = static_cast<double>(n);
  for (;;) {
    const double u = uniform();
    double x;
    if (s == 1.0) {
      x = std::exp(u * std::log(nd + 1.0));
    } else {
      const double t = std::pow(nd + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const std::size_t k = static_cast<std::size_t>(x);
    if (k >= 1 && k <= n) {
      const double ratio = std::pow(static_cast<double>(k) / x, s);
      if (uniform() < ratio) return k - 1;
    }
  }
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return 0;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= std::max(0.0, weights[i]);
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  SplitMix64 sm(next() ^ (tag * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

std::uint64_t hash64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // index + 1 keeps index 0 from collapsing to SplitMix64(base), whose
  // first output is also what Rng(base) seeds itself from.
  SplitMix64 sm(base ^ ((index + 1) * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

}  // namespace idseval::util
