#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strfmt.hpp"

namespace idseval::util {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kLeft);
  }
  if (aligns_.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: aligns/headers size mismatch");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto emit_cells = [&](std::ostringstream& out,
                        const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = widths[c] - cells[c].size();
      out << "| ";
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << cells[c];
      if (aligns_[c] == Align::kLeft) out << std::string(pad, ' ');
      out << ' ';
    }
    out << "|\n";
  };
  auto emit_rule = [&](std::ostringstream& out) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  emit_rule(out);
  emit_cells(out, headers_);
  emit_rule(out);
  for (const auto& row : rows_) {
    if (row.rule_before) emit_rule(out);
    emit_cells(out, row.cells);
  }
  emit_rule(out);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  return fmt_fixed(v, precision);
}

std::string fmt_si(double v, int precision) {
  const double a = std::abs(v);
  if (a >= 1e9) return fmt_fixed(v / 1e9, precision) + "G";
  if (a >= 1e6) return fmt_fixed(v / 1e6, precision) + "M";
  if (a >= 1e3) return fmt_fixed(v / 1e3, precision) + "k";
  return fmt_fixed(v, precision);
}

}  // namespace idseval::util
