// Small-buffer-optimized, move-only callable for the simulator hot path.
// std::function's inline buffer (16 bytes on mainstream libstdc++) is too
// small for the event captures the testbed schedules — a {this, Packet}
// pair is ~80 bytes — so every scheduled event heap-allocates twice: once
// when the closure is built and once when priority_queue::top() is copied
// out. InlineCallback stores captures up to kInlineBytes in place and is
// move-only, so the event queue never allocates or copies closures in
// steady state. Oversized or over-aligned captures fall back to a single
// heap cell; on_heap() lets the scheduler count those fallbacks.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#ifdef IDSEVAL_DEBUG_CALLBACK_FALLBACKS
#include <cstdio>
#include <typeinfo>
#endif

namespace idseval::util {

class InlineCallback {
 public:
  /// Inline capture capacity. Sized to hold the largest hot-path closure
  /// (an Alert plus a this-pointer) with headroom; anything larger is a
  /// cold path and may take the heap fallback.
  static constexpr std::size_t kInlineBytes = 128;

  InlineCallback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>();
    } else {
      // Define IDSEVAL_DEBUG_CALLBACK_FALLBACKS to print the closure type
      // and the disqualifying property at every heap fallback site.
#ifdef IDSEVAL_DEBUG_CALLBACK_FALLBACKS
      std::fprintf(stderr, "fallback: %s size=%zu align=%zu nothrow=%d\n",
                   typeid(D).name(), sizeof(D), alignof(D),
                   (int)std::is_nothrow_move_constructible_v<D>);
#endif
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &heap_ops<D>();
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the capture did not fit inline and lives in a heap cell.
  bool on_heap() const noexcept { return ops_ != nullptr && ops_->heap; }

  /// Whether a callable of type F would be stored inline.
  template <typename F>
  static constexpr bool fits_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    /// Move-constructs the callable from src into dst, destroying src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
    bool heap;
  };

  template <typename D>
  static const Ops& inline_ops() noexcept {
    static constexpr Ops ops{
        [](void* buf) { (*std::launder(static_cast<D*>(buf)))(); },
        [](void* dst, void* src) noexcept {
          D* from = std::launder(static_cast<D*>(src));
          ::new (dst) D(std::move(*from));
          from->~D();
        },
        [](void* buf) noexcept { std::launder(static_cast<D*>(buf))->~D(); },
        /*heap=*/false};
    return ops;
  }

  template <typename D>
  static const Ops& heap_ops() noexcept {
    static constexpr Ops ops{
        [](void* buf) { (**std::launder(static_cast<D**>(buf)))(); },
        [](void* dst, void* src) noexcept {
          D** from = std::launder(static_cast<D**>(src));
          ::new (dst) D*(*from);
        },
        [](void* buf) noexcept {
          delete *std::launder(static_cast<D**>(buf));
        },
        /*heap=*/true};
    return ops;
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace idseval::util
