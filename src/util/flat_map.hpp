// Small flat sorted-vector map for tiny hot-path windows (a handful of
// ports per source, not thousands of flows). One contiguous allocation,
// binary-search lookup, shift-based insert/erase: for the single-digit
// sizes the detection-engine windows hold, that beats a node-based
// unordered_map on both allocation count and cache behaviour, and the
// sorted layout makes iteration order deterministic for free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace idseval::util {

template <class Key, class Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  /// Upsert access, map-style: inserts a default Value for a new key.
  Value& operator[](const Key& key) {
    iterator it = lower_bound(key);
    if (it == items_.end() || it->first != key) {
      it = items_.insert(it, value_type{key, Value{}});
    }
    return it->second;
  }

  Value* find(const Key& key) noexcept {
    iterator it = lower_bound(key);
    return it != items_.end() && it->first == key ? &it->second : nullptr;
  }
  const Value* find(const Key& key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }
  bool contains(const Key& key) const noexcept {
    return find(key) != nullptr;
  }

  bool erase(const Key& key) {
    iterator it = lower_bound(key);
    if (it == items_.end() || it->first != key) return false;
    items_.erase(it);
    return true;
  }

  /// Removes every entry the predicate accepts (called with the
  /// key/value pair); returns how many were removed. Order-preserving,
  /// one pass — the window-pruning idiom `std::erase_if` serves for the
  /// standard maps.
  template <class Pred>
  std::size_t erase_if(Pred&& pred) {
    const iterator keep =
        std::remove_if(items_.begin(), items_.end(), pred);
    const std::size_t removed =
        static_cast<std::size_t>(items_.end() - keep);
    items_.erase(keep, items_.end());
    return removed;
  }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  /// Iteration in ascending key order.
  iterator begin() noexcept { return items_.begin(); }
  iterator end() noexcept { return items_.end(); }
  const_iterator begin() const noexcept { return items_.begin(); }
  const_iterator end() const noexcept { return items_.end(); }

  std::size_t memory_bytes() const noexcept {
    return items_.capacity() * sizeof(value_type);
  }

 private:
  iterator lower_bound(const Key& key) noexcept {
    return std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& item, const Key& k) { return item.first < k; });
  }

  std::vector<value_type> items_;
};

}  // namespace idseval::util
