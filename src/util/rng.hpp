// Deterministic pseudo-random number generation for reproducible
// simulation runs. Every stochastic component in idseval takes an explicit
// Rng (or a seed) so that a testbed run is a pure function of its
// configuration — the paper's methodology demands "scientific
// repeatability" (§1), and that starts with the load generator.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace idseval::util {

/// SplitMix64: used to expand a single 64-bit seed into a full state for
/// Xoshiro256**. Also a fine standalone generator for seed derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, 256-bit state PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x1d5e0A11ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;
  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;
  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;
  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;
  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;
  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept;
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double xm, double alpha) noexcept;
  /// Zipf-like rank selection over n items with exponent s >= 0.
  std::size_t zipf(std::size_t n, double s) noexcept;
  /// Poisson-distributed count with the given mean (Knuth / normal approx).
  std::uint64_t poisson(double mean) noexcept;

  /// Picks an index according to non-negative weights (sum must be > 0).
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Derives an independent child generator; children with distinct tags
  /// are statistically independent streams.
  Rng fork(std::uint64_t tag) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stable 64-bit FNV-1a hash of a string — used to derive per-component
/// seeds from names so adding a component does not perturb others.
std::uint64_t hash64(std::string_view s) noexcept;

/// Derives the seed for the `index`-th unit of work under a base seed
/// (SplitMix64 over base and index). Constant-time in `index`, so the
/// seed for cell k is the same whether cells run in order, shuffled, or
/// across any number of workers — campaign results depend only on
/// (base, index), never on scheduling.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

}  // namespace idseval::util
