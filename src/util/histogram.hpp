// Fixed-bin and log-scale histograms used for latency and rate reporting
// in the benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace idseval::util {

/// Linear histogram over [lo, hi) with `bins` equal-width buckets plus
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  /// Approximate quantile by linear interpolation within the bucket.
  double quantile(double q) const noexcept;
  /// Renders a terminal bar chart, one line per non-empty bin.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Log2-bucketed histogram for values spanning many orders of magnitude
/// (e.g. alert latencies from microseconds to seconds).
class LogHistogram {
 public:
  LogHistogram();

  void add(double x) noexcept;
  /// Element-wise accumulation of another histogram (fixed bucket
  /// layout, so merging is exact and order-independent).
  void merge(const LogHistogram& other) noexcept;
  std::uint64_t count() const noexcept { return total_; }
  double quantile(double q) const noexcept;
  std::string render(std::size_t width = 50) const;

  /// Bucket introspection for serialization: bucket i covers
  /// [2^(min_exp()+i), 2^(min_exp()+i+1)).
  static constexpr int min_exp() noexcept { return kMinExp; }
  static constexpr int max_exp() noexcept { return kMaxExp; }
  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t zeros() const noexcept { return zeros_; }

 private:
  static constexpr int kMinExp = -30;  // 2^-30 ~ 1e-9
  static constexpr int kMaxExp = 40;   // 2^40 ~ 1e12
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t zeros_ = 0;
};

}  // namespace idseval::util
