// Streaming statistics used throughout the measurement harness:
// Welford running moments, exponentially weighted moving averages, and
// percentile extraction over retained samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace idseval::util {

/// Numerically stable streaming mean/variance (Welford's algorithm),
/// plus min/max tracking. O(1) per observation, O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::uint64_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (n denominator). 0 when n < 2.
  double variance() const noexcept;
  /// Sample variance (n-1 denominator). 0 when n < 2.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average: y += alpha * (x - y).
/// Used by the anomaly engine's feature baselines.
class Ewma {
 public:
  explicit Ewma(double alpha) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }
  double value() const noexcept { return value_; }
  bool seeded() const noexcept { return seeded_; }
  double alpha() const noexcept { return alpha_; }
  void reset() noexcept {
    value_ = 0.0;
    seeded_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// EWMA of mean and mean-square, exposing a streaming z-score. This is
/// the statistical core of the anomaly-based sensor (§2.1).
class EwmaBaseline {
 public:
  explicit EwmaBaseline(double alpha) noexcept : mean_(alpha), sq_(alpha) {}

  void add(double x) noexcept {
    mean_.add(x);
    sq_.add(x * x);
  }
  double mean() const noexcept { return mean_.value(); }
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Deviation of x from the learned baseline in stddev units.
  /// Returns 0 until the baseline has seen at least one sample.
  /// `min_stddev` floors the spread so a near-constant baseline does not
  /// turn measurement noise into unbounded scores.
  double zscore(double x, double min_stddev = 0.0) const noexcept;
  bool seeded() const noexcept { return mean_.seeded(); }

 private:
  Ewma mean_;
  Ewma sq_;
};

/// Percentile over a sample vector (linear interpolation between order
/// statistics). p in [0, 100]. Sorts a copy; call sparingly.
double percentile(std::span<const double> samples, double p);

/// In-place variant for hot paths that own their sample buffer.
double percentile_inplace(std::vector<double>& samples, double p);

/// Reservoir sampler retaining up to `capacity` uniformly-chosen samples
/// of an unbounded stream — keeps latency percentiles cheap over long runs.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity, std::uint64_t seed = 1);

  void add(double x) noexcept;
  std::span<const double> samples() const noexcept { return samples_; }
  std::uint64_t seen() const noexcept { return seen_; }
  double percentile(double p) const;

 private:
  std::uint64_t next_u64() noexcept;
  /// Unbiased draw in [0, range) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t range) noexcept;

  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::uint64_t rng_state_;
  std::vector<double> samples_;
};

}  // namespace idseval::util
