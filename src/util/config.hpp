// Flat key=value configuration with typed accessors. Experiment configs
// in the harness are expressible as text so runs can be reproduced from a
// single string.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace idseval::util {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines; '#' starts a comment; blank lines are
  /// ignored. Later keys override earlier ones. Throws on malformed lines.
  static Config parse(std::string_view text);

  void set(std::string key, std::string value);
  bool contains(std::string_view key) const;

  std::optional<std::string> get(std::string_view key) const;
  std::string get_or(std::string_view key, std::string fallback) const;
  /// Typed accessors throw std::invalid_argument when the value does not
  /// parse; *_or variants return the fallback when the key is absent but
  /// still throw when present-and-malformed (silent fallback hides typos).
  std::int64_t get_int(std::string_view key) const;
  std::int64_t get_int_or(std::string_view key, std::int64_t fallback) const;
  double get_double(std::string_view key) const;
  double get_double_or(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key) const;
  bool get_bool_or(std::string_view key, bool fallback) const;

  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

  /// Serializes back to parseable "key = value" lines in key order.
  std::string to_string() const;

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace idseval::util
