#include "util/config.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace idseval::util {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void bad_value(std::string_view key, std::string_view value,
                            std::string_view type) {
  throw std::invalid_argument("Config: key '" + std::string(key) +
                              "' value '" + std::string(value) +
                              "' is not a valid " + std::string(type));
}

}  // namespace

Config Config::parse(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("Config: line " + std::to_string(line_no) +
                                  " has no '='");
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("Config: line " + std::to_string(line_no) +
                                  " has empty key");
    }
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(std::string_view key, std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Config::get_int(std::string_view key) const {
  const auto v = get(key);
  if (!v) throw std::invalid_argument("Config: missing key " + std::string(key));
  std::int64_t out = 0;
  const char* first = v->data();
  const char* last = first + v->size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last) bad_value(key, *v, "integer");
  return out;
}

std::int64_t Config::get_int_or(std::string_view key,
                                std::int64_t fallback) const {
  return contains(key) ? get_int(key) : fallback;
}

double Config::get_double(std::string_view key) const {
  const auto v = get(key);
  if (!v) throw std::invalid_argument("Config: missing key " + std::string(key));
  try {
    std::size_t consumed = 0;
    const double out = std::stod(*v, &consumed);
    if (consumed != v->size()) bad_value(key, *v, "double");
    return out;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "double");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "double");
  }
}

double Config::get_double_or(std::string_view key, double fallback) const {
  return contains(key) ? get_double(key) : fallback;
}

bool Config::get_bool(std::string_view key) const {
  const auto v = get(key);
  if (!v) throw std::invalid_argument("Config: missing key " + std::string(key));
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  bad_value(key, *v, "bool");
}

bool Config::get_bool_or(std::string_view key, bool fallback) const {
  return contains(key) ? get_bool(key) : fallback;
}

std::string Config::to_string() const {
  std::ostringstream out;
  for (const auto& [k, v] : entries_) out << k << " = " << v << "\n";
  return out.str();
}

}  // namespace idseval::util
