// Plain-text table rendering. The paper's evaluation artifacts are tables
// (Tables 1-3) and the benches must print the same row/column structure,
// so a shared renderer keeps their output uniform.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace idseval::util {

enum class Align { kLeft, kRight };

/// Column-aligned text table with an optional title and header rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  void set_title(std::string title) { title_ = std::move(title); }
  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row added.
  void add_rule();

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Formats a double with fixed precision, trimming trailing zeros is NOT
/// done (stable column widths matter more than minimal digits).
std::string fmt_double(double v, int precision = 2);

/// Formats a rate as "12.3k"/"4.56M" style for compact table cells.
std::string fmt_si(double v, int precision = 2);

}  // namespace idseval::util
