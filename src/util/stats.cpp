#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace idseval::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double EwmaBaseline::variance() const noexcept {
  const double m = mean_.value();
  return std::max(0.0, sq_.value() - m * m);
}

double EwmaBaseline::stddev() const noexcept { return std::sqrt(variance()); }

double EwmaBaseline::zscore(double x, double min_stddev) const noexcept {
  if (!seeded()) return 0.0;
  // Floor the spread so a perfectly constant baseline still yields finite
  // scores; otherwise any deviation would be an infinite anomaly.
  const double sd = std::max({stddev(), min_stddev,
                              1e-9 + 0.01 * std::abs(mean())});
  return (x - mean()) / sd;
}

double percentile(std::span<const double> samples, double p) {
  std::vector<double> copy(samples.begin(), samples.end());
  return percentile_inplace(copy, p);
}

double percentile_inplace(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed ? seed : 1) {
  samples_.reserve(capacity);
}

std::uint64_t Reservoir::next_u64() noexcept {
  // xorshift64* — cheap, local, and with well-mixed high bits (the
  // multiply matters: bounded() consumes the draw from the top down).
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_ * 0x2545F4914F6CDD1DULL;
}

std::uint64_t Reservoir::bounded(std::uint64_t range) noexcept {
  // Lemire's multiply-shift with rejection: x*range >> 64 is uniform in
  // [0, range) once draws landing in the biased low fringe (fewer than
  // 2^64 mod range of them) are rejected. A plain `x % range` keeps that
  // fringe and systematically favours low slots.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * range;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * range;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Reservoir::add(double x) noexcept {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  const std::uint64_t slot = bounded(seen_);
  if (slot < capacity_) samples_[static_cast<std::size_t>(slot)] = x;
}

double Reservoir::percentile(double p) const {
  return util::percentile(samples_, p);
}

}  // namespace idseval::util
