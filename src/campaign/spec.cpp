#include "campaign/spec.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "attack/killchain.hpp"
#include "core/requirement.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"

namespace idseval::campaign {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

products::ProductId product_by_name(const std::string& name) {
  for (const auto& model : products::product_catalog()) {
    if (model.name == name) return model.id;
  }
  throw std::invalid_argument("campaign spec: unknown product: " + name);
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

/// Doubles in the canonical form must survive a parse/serialize cycle
/// exactly; %.17g round-trips every finite double.
std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

CampaignSpec CampaignSpec::defaults() {
  CampaignSpec spec;
  for (const auto& model : products::product_catalog()) {
    spec.products.push_back(model.id);
  }
  spec.profiles = {"rt_cluster", "ecommerce"};
  spec.sensitivities = {0.5};
  return spec;
}

CampaignSpec CampaignSpec::parse(std::string_view text) {
  return from_config(util::Config::parse(text));
}

CampaignSpec CampaignSpec::from_config(const util::Config& config) {
  const CampaignSpec base = defaults();
  CampaignSpec spec;
  spec.name = config.get_or("name", base.name);

  const std::string products_value =
      trim(config.get_or("products", "all"));
  if (products_value == "all") {
    spec.products = base.products;
  } else {
    for (const auto& name : split_list(products_value)) {
      spec.products.push_back(product_by_name(name));
    }
  }

  for (const auto& name :
       split_list(config.get_or("profiles", join(base.profiles)))) {
    spec.profiles.push_back(name);
  }

  for (const auto& value :
       split_list(config.get_or("sensitivities", "0.5"))) {
    try {
      spec.sensitivities.push_back(std::stod(value));
    } catch (const std::exception&) {
      throw std::invalid_argument(
          "campaign spec: bad sensitivity: " + value);
    }
  }

  spec.replicates = static_cast<std::size_t>(
      config.get_int_or("replicates", static_cast<std::int64_t>(
                                          base.replicates)));
  spec.base_seed = static_cast<std::uint64_t>(
      config.get_int_or("seed", static_cast<std::int64_t>(base.base_seed)));
  spec.weights = config.get_or("weights", base.weights);
  spec.attacks_per_kind = static_cast<std::size_t>(config.get_int_or(
      "attacks_per_kind", static_cast<std::int64_t>(base.attacks_per_kind)));
  spec.load_metrics = config.get_bool_or("load_metrics", base.load_metrics);
  spec.kill_chain = config.get_or("kill_chain", base.kill_chain);
  spec.internal_hosts = static_cast<std::size_t>(config.get_int_or(
      "internal_hosts", static_cast<std::int64_t>(base.internal_hosts)));
  spec.external_hosts = static_cast<std::size_t>(config.get_int_or(
      "external_hosts", static_cast<std::int64_t>(base.external_hosts)));
  spec.warmup_sec = config.get_double_or("warmup_sec", base.warmup_sec);
  spec.measure_sec = config.get_double_or("measure_sec", base.measure_sec);
  spec.shards = static_cast<std::size_t>(
      config.get_int_or("shards", static_cast<std::int64_t>(base.shards)));

  spec.validate();
  return spec;
}

util::Config CampaignSpec::to_config() const {
  util::Config config;
  config.set("name", name);
  {
    std::vector<std::string> names;
    names.reserve(products.size());
    for (const auto id : products) {
      names.push_back(products::product(id).name);
    }
    config.set("products", join(names));
  }
  config.set("profiles", join(profiles));
  {
    std::vector<std::string> values;
    values.reserve(sensitivities.size());
    for (const double s : sensitivities) values.push_back(fmt_exact(s));
    config.set("sensitivities", join(values));
  }
  config.set("replicates", std::to_string(replicates));
  config.set("seed", std::to_string(base_seed));
  config.set("weights", weights);
  config.set("attacks_per_kind", std::to_string(attacks_per_kind));
  config.set("load_metrics", load_metrics ? "true" : "false");
  // Only serialized when set so pre-kill-chain stores keep their
  // fingerprint and stay resumable.
  if (!kill_chain.empty()) config.set("kill_chain", kill_chain);
  config.set("internal_hosts", std::to_string(internal_hosts));
  config.set("external_hosts", std::to_string(external_hosts));
  config.set("warmup_sec", fmt_exact(warmup_sec));
  config.set("measure_sec", fmt_exact(measure_sec));
  // Only serialized when sharded so pre-shards stores keep their
  // fingerprint and stay resumable.
  if (shards != 1) config.set("shards", std::to_string(shards));
  return config;
}

std::string CampaignSpec::to_string() const { return to_config().to_string(); }

std::uint64_t CampaignSpec::fingerprint() const {
  return util::hash64(to_string());
}

core::WeightSet CampaignSpec::weight_set() const {
  if (weights == "realtime") {
    return core::realtime_distributed_requirements().derive_weights();
  }
  if (weights == "ecommerce") {
    return core::ecommerce_requirements().derive_weights();
  }
  throw std::invalid_argument(
      "campaign spec: weights must be realtime or ecommerce, got: " +
      weights);
}

void CampaignSpec::validate() const {
  if (products.empty()) {
    throw std::invalid_argument("campaign spec: no products");
  }
  if (profiles.empty()) {
    throw std::invalid_argument("campaign spec: no profiles");
  }
  if (sensitivities.empty()) {
    throw std::invalid_argument("campaign spec: no sensitivities");
  }
  for (const double s : sensitivities) {
    if (!(s >= 0.0 && s <= 1.0)) {
      throw std::invalid_argument(
          "campaign spec: sensitivity out of [0,1]: " + fmt_exact(s));
    }
  }
  if (replicates == 0) {
    throw std::invalid_argument("campaign spec: replicates must be >= 1");
  }
  if (internal_hosts == 0 || external_hosts == 0) {
    throw std::invalid_argument("campaign spec: need at least one host "
                                "on each side of the WAN link");
  }
  if (warmup_sec < 0.0 || measure_sec <= 0.0) {
    throw std::invalid_argument("campaign spec: bad testbed window");
  }
  if (shards == 0) {
    throw std::invalid_argument("campaign spec: shards must be >= 1");
  }
  // Fail fast on typos rather than after hours of cells.
  for (const auto& name : profiles) {
    (void)traffic::profile_by_name(name);
  }
  if (!kill_chain.empty()) {
    bool known = false;
    for (const std::string& preset : attack::KillChain::preset_names()) {
      if (kill_chain == preset) known = true;
    }
    if (!known) {
      throw std::invalid_argument(
          "campaign spec: unknown kill_chain preset: " + kill_chain);
    }
  }
  (void)weight_set();
}

}  // namespace idseval::campaign
