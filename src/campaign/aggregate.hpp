// Campaign aggregation: collapses seed replicates into dispersion
// statistics per (product, profile, sensitivity) group. Single-run IDS
// evaluations are exactly what recent surveys fault; a campaign reports
// mean/min/max/stddev of the weighted class scores and the Table-3
// measurements, plus a per-(product, profile) EER computed across the
// campaign's own sensitivity grid — replication and variance for free
// once the grid exists.
#pragma once

#include <map>
#include <string>

#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "results/doc.hpp"
#include "util/stats.hpp"

namespace idseval::campaign {

/// Aggregation group: one (product, profile, sensitivity) point, the
/// statistics running over its seed replicates.
struct GroupKey {
  std::string product;
  std::string profile;
  double sensitivity = 0.0;

  bool operator<(const GroupKey& other) const {
    if (product != other.product) return product < other.product;
    if (profile != other.profile) return profile < other.profile;
    return sensitivity < other.sensitivity;
  }
};

struct GroupStats {
  util::RunningStats score_total;
  util::RunningStats score_logistical;
  util::RunningStats score_architectural;
  util::RunningStats score_performance;
  util::RunningStats fp_percent;
  util::RunningStats fn_percent;
  util::RunningStats timeliness_sec;
  util::RunningStats offered_pps;
  util::RunningStats processed_pps;
  util::RunningStats zero_loss_pps;
  util::RunningStats system_throughput_pps;
  util::RunningStats induced_latency_sec;
  util::RunningStats unified_total_cost;
  util::RunningStats unified_capability;
};

/// EER dispersion for one (product, profile): the equal error rate is
/// computed per replicate across the campaign's sensitivity axis (needs
/// >= 2 sensitivities and a Type I / Type II crossing to contribute).
struct EerStats {
  util::RunningStats error_percent;
  util::RunningStats sensitivity;
  std::size_t replicates_without_crossing = 0;
};

/// One (product, profile, kill-chain stage) aggregation key, ordered by
/// chain position (recon before exploit before lateral before exfil)
/// rather than alphabetically.
struct StageKey {
  std::string product;
  std::string profile;
  int stage_order = 0;  ///< Chain position of `stage`.
  std::string stage;

  bool operator<(const StageKey& other) const {
    if (product != other.product) return product < other.product;
    if (profile != other.profile) return profile < other.profile;
    if (stage_order != other.stage_order) {
      return stage_order < other.stage_order;
    }
    return stage < other.stage;
  }
};

/// Detection rollup for one kill-chain stage across seed replicates:
/// raw counts summed, detection rate and latency as per-cell dispersion.
struct StageStats {
  std::size_t launched = 0;
  std::size_t detected = 0;
  std::size_t prevented = 0;
  util::RunningStats detection_rate;    ///< Per-cell detected/launched.
  util::RunningStats mean_latency_sec;  ///< Per-cell mean alert latency.
};

struct CampaignAggregate {
  std::map<GroupKey, GroupStats> groups;
  std::map<std::pair<std::string, std::string>, EerStats> eer;  ///< (product, profile)
  /// Kill-chain stage rollups; empty for flat-scenario campaigns.
  std::map<StageKey, StageStats> stages;
  std::size_t ok_cells = 0;
  std::size_t failed_cells = 0;
};

/// Folds every ok cell into its group; failed cells are only counted.
CampaignAggregate aggregate(const CampaignSpec& spec,
                            const std::map<std::size_t, CellResult>& results);

/// Replicate-dispersion sample stddev (n-1); 0 for fewer than 2 samples.
double dispersion(const util::RunningStats& s);

/// The per-group score/measurement table (mean ± stddev cells, unified
/// capability included) as a table-shaped Doc — one source for the text,
/// CSV, and HTML/markdown renderings.
results::Doc summary_table_doc(const CampaignSpec& spec,
                               const CampaignAggregate& agg);

/// The per-(product, profile) EER table as a table Doc; a null Doc when
/// the spec has fewer than 2 sensitivities (no curve to cross).
results::Doc eer_table_doc(const CampaignSpec& spec,
                           const CampaignAggregate& agg);

/// The per-(product, profile, kill-chain stage) detection table as a
/// table Doc; a null Doc when no cell carried stage rollups (flat
/// campaigns).
results::Doc killchain_table_doc(const CampaignSpec& spec,
                                 const CampaignAggregate& agg);

/// CSV export of the kill-chain stage rollups (one row per StageKey);
/// empty string when there are none.
std::string killchain_to_csv(const CampaignSpec& spec,
                             const CampaignAggregate& agg);

/// Renders the per-group score/measurement table (mean ± stddev columns)
/// through util::TextTable.
std::string render_summary(const CampaignSpec& spec,
                           const CampaignAggregate& agg);

/// Renders the per-(product, profile) EER table; empty string when the
/// spec has fewer than 2 sensitivities (no curve to cross).
std::string render_eer_summary(const CampaignSpec& spec,
                               const CampaignAggregate& agg);

/// CSV export: one row per group, header included, mean/min/max/stddev
/// for every aggregated quantity.
std::string to_csv(const CampaignSpec& spec, const CampaignAggregate& agg);

/// Columnar per-stage latency export across the sensitivity axis: one
/// row per (cell, pipeline stage) — four stage rows per cell, failed
/// cells included with their all-zero snapshots — with columns
/// cell_index,product,profile,sensitivity,replicate,seed,stage,events,
/// mean_sec,p99_sec,max_sec. Row count is therefore always
/// 4 * results.size(), which CI checks after a traced campaign.
std::string stages_to_csv(const CampaignSpec& spec,
                          const std::map<std::size_t, CellResult>& results);

}  // namespace idseval::campaign
