// Campaign scheduler: expands a CampaignSpec into concrete cells, runs
// them across a util::ThreadPool, and records every outcome in a
// ResultStore. Each cell's seed is derived from (campaign seed, cell
// index) alone, so the numbers a cell produces are byte-identical
// whether the grid runs on one worker or sixteen, in order or shuffled.
// One throwing cell is recorded as failed and the campaign carries on —
// a 10'000-cell overnight run must not die at cell 9'999.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "harness/run_context.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace idseval::campaign {

class ResultStore;

/// One point of the campaign grid.
struct CampaignCell {
  std::size_t index = 0;           ///< Position in expansion order.
  products::ProductId product = products::ProductId::kSentryNid;
  std::string profile;
  double sensitivity = 0.5;
  std::size_t replicate = 0;
  std::uint64_t seed = 0;          ///< derive_seed(spec.base_seed, index).
};

/// Everything one cell evaluation yields. Wall time is tracked for
/// progress reporting and the bench but is NOT persisted — store rows
/// must be identical across runs and worker counts.
struct CellResult {
  CampaignCell cell;
  bool ok = false;
  std::string error;               ///< Exception message when !ok.
  double wall_sec = 0.0;           ///< Not persisted (see above).

  // Figure-5 weighted class scores under the spec's weight profile.
  double score_logistical = 0.0;
  double score_architectural = 0.0;
  double score_performance = 0.0;
  double score_total = 0.0;

  // Detection-run measurements (Figure 3 / Figure 4 inputs).
  double fp_ratio = 0.0;               ///< |D-A|/|T|
  double fn_ratio = 0.0;               ///< |A-D-P|/|T|
  double fp_percent_of_benign = 0.0;
  double fn_percent_of_attacks = 0.0;
  double timeliness_sec = 0.0;

  // Table-3 load measurements (zero unless spec.load_metrics).
  double offered_pps = 0.0;
  double processed_pps = 0.0;
  double zero_loss_pps = 0.0;
  double system_throughput_pps = 0.0;
  double induced_latency_sec = 0.0;

  // Unified cost/capability score (Iannacone & Bridges) over the cell's
  // detection run, under the default cost weights.
  double unified_total_cost = 0.0;
  double unified_capability = 0.0;

  /// Per-stage telemetry from the cell's detection run. Derived from
  /// simulation time only, so it is persisted with the row and stays
  /// byte-identical across worker counts and trace settings.
  telemetry::PipelineSnapshot telemetry;

  /// One kill-chain stage's detection rollup (ordered recon → exfil).
  /// Empty when the cell ran the flat scenario with no labeled stages —
  /// and then omitted from the serialized row, so pre-kill-chain stores
  /// round-trip unchanged.
  struct StageOutcome {
    std::string stage;
    std::size_t launched = 0;
    std::size_t detected = 0;
    std::size_t prevented = 0;
    double mean_latency_sec = 0.0;
  };
  std::vector<StageOutcome> stages;
};

/// Expands the spec's grid in canonical order: products (outer) ×
/// profiles × sensitivities × replicates (inner), with per-cell seeds
/// already derived.
std::vector<CampaignCell> expand_cells(const CampaignSpec& spec);

/// Evaluates one cell: builds the testbed environment, runs the full
/// evaluate_product methodology against `ctx` (the cell's telemetry
/// registry and trace sink), scores the card under the spec's weight
/// profile. Throws whatever the harness throws — failure isolation is
/// the scheduler's job.
CellResult run_cell(const CampaignSpec& spec, const CampaignCell& cell,
                    harness::RunContext& ctx);

struct RunOptions {
  std::size_t jobs = 1;            ///< 0 selects hardware concurrency.
  /// Progress hook, invoked (serialized) after each cell is stored;
  /// `done` counts cells finished this run, `total` the cells this run
  /// set out to execute (i.e. excluding resumed-over cells).
  std::function<void(const CellResult&, std::size_t done,
                     std::size_t total)>
      on_cell;
  /// Test hook: replaces run_cell as the per-cell evaluator. The
  /// scheduler hands every cell its own RunContext (installed as the
  /// worker thread's ambient registry for the call) so per-cell
  /// telemetry stays isolated and mergeable in index order.
  std::function<CellResult(const CampaignSpec&, const CampaignCell&,
                           harness::RunContext&)>
      runner;
  /// When set, every executed cell's telemetry registry is merged into
  /// this aggregate after the pool drains — in cell-index order, so the
  /// aggregate is independent of worker count. Wall-clock cell times are
  /// additionally recorded here under names::kCampaignCellWall.
  telemetry::Registry* telemetry = nullptr;
  /// When set, one JSONL event per executed cell (cell identity, outcome
  /// and the cell's full telemetry registry) is emitted and the sink is
  /// flushed at each cell boundary.
  telemetry::TraceSink* trace = nullptr;
};

struct RunStats {
  std::size_t total_cells = 0;     ///< Grid size.
  std::size_t skipped = 0;         ///< Already ok in the store (resume).
  std::size_t executed = 0;        ///< Run this time.
  std::size_t failed = 0;          ///< Of executed, recorded as failed.
  double wall_sec = 0.0;           ///< Whole-run wall clock.
};

/// Runs every cell of the spec that the store does not already hold an
/// ok result for. Failed cells are appended to the store with ok=false
/// and counted, never rethrown.
RunStats run_campaign(const CampaignSpec& spec, ResultStore& store,
                      const RunOptions& options = {});

}  // namespace idseval::campaign
