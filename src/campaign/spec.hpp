// Campaign specification: the cross-product of products × traffic
// profiles × sensitivities × seed replicates one evaluation campaign
// covers, plus the per-cell evaluation options. The paper's methodology
// is meant to be rerun per environment and per requirement set (§3.3);
// a CampaignSpec is the reproducible description of one such rerun —
// expressible as a key=value config file so a campaign can be launched,
// resumed, and audited from a single piece of text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scorecard.hpp"
#include "products/catalog.hpp"
#include "util/config.hpp"

namespace idseval::campaign {

struct CampaignSpec {
  std::string name = "campaign";

  // Grid axes. Empty products/profiles/sensitivities are invalid; use
  // defaults() or the config defaults for the usual full grid.
  std::vector<products::ProductId> products;
  std::vector<std::string> profiles;       ///< traffic profile names
  std::vector<double> sensitivities;
  std::size_t replicates = 1;              ///< seed replicates per point

  /// Campaign-level seed; every cell derives its own deterministic seed
  /// from this via util::derive_seed(base_seed, cell index).
  std::uint64_t base_seed = 42;

  // Per-cell evaluation options.
  std::string weights = "realtime";        ///< realtime | ecommerce
  std::size_t attacks_per_kind = 3;
  bool load_metrics = false;
  /// Kill-chain preset run per cell instead of the flat mixed scenario
  /// (attack::KillChain::preset names). Empty keeps the legacy scenario —
  /// and is omitted from the serialization, so pre-kill-chain stores keep
  /// their fingerprint and stay resumable.
  std::string kill_chain;

  // Testbed environment knobs.
  std::size_t internal_hosts = 8;
  std::size_t external_hosts = 4;
  double warmup_sec = 20.0;
  double measure_sec = 60.0;
  /// Event-queue shards per cell simulation (TestbedConfig::shards).
  /// Results are byte-identical at any value, so it is a performance
  /// knob — but it still goes into the fingerprint (serialized only when
  /// != 1, keeping stores from older specs resumable) so a resume that
  /// silently changes the execution engine is refused like any other
  /// spec edit.
  std::size_t shards = 1;

  /// Full grid over the product catalog on the canonical profiles.
  static CampaignSpec defaults();

  /// Builds a spec from key=value text (util::Config syntax). Missing
  /// keys take the defaults above; `products = all` selects the whole
  /// catalog. Throws std::invalid_argument on unknown products/profiles,
  /// empty axes, or out-of-range values.
  static CampaignSpec parse(std::string_view text);
  static CampaignSpec from_config(const util::Config& config);

  /// Canonical serialization; parse(to_string()) reproduces the spec.
  util::Config to_config() const;
  std::string to_string() const;

  /// Stable hash of the canonical serialization — stored in the result
  /// manifest so a resume against a different spec is refused instead of
  /// silently mixing grids.
  std::uint64_t fingerprint() const;

  std::size_t cell_count() const noexcept {
    return products.size() * profiles.size() * sensitivities.size() *
           replicates;
  }

  /// The metric weighting the campaign scores cells under.
  core::WeightSet weight_set() const;

  /// Throws std::invalid_argument when the spec cannot be executed.
  void validate() const;
};

}  // namespace idseval::campaign
