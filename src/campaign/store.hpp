// Append-only JSONL result store for campaign runs. Line 1 is a manifest
// carrying the spec fingerprint; every further line is one completed (or
// failed) cell. Appending one flushed line per cell means a campaign
// killed mid-flight loses at most the cell that was being written;
// re-opening the store against the same spec resumes by skipping every
// cell already recorded as ok. The on-disk content is deterministic in
// the spec — cell rows are byte-identical regardless of worker count or
// completion order (wall-clock timings deliberately stay out of rows).
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "results/doc.hpp"

namespace idseval::campaign {

/// One cell result as a results::Doc (the row shape serialize_cell
/// writes): fixed key order, nested telemetry snapshot object.
results::Doc cell_to_doc(const CellResult& result);
/// Serializes one cell result as a single JSON line (no trailing
/// newline). Deterministic: fixed key order, %.17g doubles.
std::string serialize_cell(const CellResult& result);
/// Parses serialize_cell's output; throws std::invalid_argument on
/// malformed lines or unknown product names.
CellResult deserialize_cell(const std::string& line);

class ResultStore {
 public:
  /// Opens the store at `path`. `fresh == true` truncates any existing
  /// file and writes a new manifest; `fresh == false` (resume) loads the
  /// existing rows first — throwing std::invalid_argument when the
  /// manifest fingerprint does not match `spec` — and appends after
  /// them. A missing file is created either way.
  ResultStore(std::string path, const CampaignSpec& spec, bool fresh);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& path() const noexcept { return path_; }

  /// True when the cell completed successfully in a previous (or this)
  /// run — failed cells are recorded but stay eligible for re-running.
  bool has_ok(std::size_t index) const;
  std::size_t ok_count() const;
  std::size_t failed_count() const;

  /// Latest result per cell index (a resumed re-run overrides an earlier
  /// failure).
  const std::map<std::size_t, CellResult>& results() const noexcept {
    return results_;
  }

  /// Appends one row and flushes. Thread-safe.
  void append(const CellResult& result);

  /// Reads a store file without opening it for writing; verifies the
  /// manifest against `spec` the same way resume does.
  static std::map<std::size_t, CellResult> load(
      const std::string& path, const CampaignSpec& spec);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  std::map<std::size_t, CellResult> results_;
};

}  // namespace idseval::campaign
