#include "campaign/store.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/trace.hpp"

namespace idseval::campaign {

namespace {

constexpr const char* kFormat = "idseval-campaign-v1";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal parser for the one-line objects this store writes: string,
/// number, and bool values, plus nested objects which are captured as
/// raw balanced-brace tokens (re-parse them with this same function).
/// Strings are unescaped; other values stay raw tokens.
std::map<std::string, std::string> parse_flat_json(const std::string& line) {
  std::map<std::string, std::string> fields;
  std::size_t pos = 0;
  const auto fail = [&](const char* why) {
    throw std::invalid_argument(std::string("campaign store: ") + why +
                                ": " + line);
  };
  const auto skip_ws = [&] {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  };
  const auto parse_string = [&]() -> std::string {
    if (line[pos] != '"') fail("expected string");
    ++pos;
    std::string out;
    while (pos < line.size() && line[pos] != '"') {
      char c = line[pos++];
      if (c == '\\') {
        if (pos >= line.size()) fail("bad escape");
        const char esc = line[pos++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos + 4 > line.size()) fail("bad \\u escape");
            c = static_cast<char>(
                std::strtoul(line.substr(pos, 4).c_str(), nullptr, 16));
            pos += 4;
            break;
          }
          default: fail("bad escape");
        }
      }
      out += c;
    }
    if (pos >= line.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  };

  skip_ws();
  if (pos >= line.size() || line[pos] != '{') fail("expected object");
  ++pos;
  skip_ws();
  if (pos < line.size() && line[pos] == '}') return fields;
  for (;;) {
    skip_ws();
    const std::string key = parse_string();
    skip_ws();
    if (pos >= line.size() || line[pos] != ':') fail("expected colon");
    ++pos;
    skip_ws();
    if (pos >= line.size()) fail("truncated value");
    if (line[pos] == '"') {
      fields[key] = parse_string();
    } else if (line[pos] == '{') {
      const std::size_t start = pos;
      int depth = 0;
      bool in_string = false;
      while (pos < line.size()) {
        const char c = line[pos];
        if (in_string) {
          if (c == '\\') {
            ++pos;  // skip the escaped character
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
          if (depth == 0) {
            ++pos;
            break;
          }
        }
        ++pos;
      }
      if (depth != 0) fail("unbalanced nested object");
      fields[key] = line.substr(start, pos - start);
    } else {
      const std::size_t start = pos;
      while (pos < line.size() && line[pos] != ',' && line[pos] != '}') {
        ++pos;
      }
      std::string token = line.substr(start, pos - start);
      while (!token.empty() &&
             std::isspace(static_cast<unsigned char>(token.back()))) {
        token.pop_back();
      }
      if (token.empty()) fail("empty value");
      fields[key] = token;
    }
    skip_ws();
    if (pos >= line.size()) fail("truncated object");
    if (line[pos] == '}') break;
    if (line[pos] != ',') fail("expected comma");
    ++pos;
  }
  return fields;
}

const std::string& field(const std::map<std::string, std::string>& fields,
                         const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    throw std::invalid_argument("campaign store: missing field: " + key);
  }
  return it->second;
}

double field_double(const std::map<std::string, std::string>& fields,
                    const std::string& key) {
  const std::string& token = field(fields, key);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    throw std::invalid_argument("campaign store: bad number for " + key +
                                ": " + token);
  }
  return v;
}

std::uint64_t field_u64(const std::map<std::string, std::string>& fields,
                        const std::string& key) {
  const std::string& token = field(fields, key);
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    throw std::invalid_argument("campaign store: bad integer for " + key +
                                ": " + token);
  }
  return v;
}

telemetry::StageSummary parse_stage(const std::string& token) {
  const auto f = parse_flat_json(token);
  telemetry::StageSummary s;
  s.count = field_u64(f, "count");
  s.mean_sec = field_double(f, "mean_sec");
  s.p99_sec = field_double(f, "p99_sec");
  s.max_sec = field_double(f, "max_sec");
  return s;
}

telemetry::PipelineSnapshot parse_snapshot(const std::string& token) {
  const auto f = parse_flat_json(token);
  telemetry::PipelineSnapshot s;
  s.tapped = field_u64(f, "tapped");
  s.filtered = field_u64(f, "filtered");
  s.lb_offered = field_u64(f, "lb_offered");
  s.lb_dropped = field_u64(f, "lb_dropped");
  s.sensor_offered = field_u64(f, "sensor_offered");
  s.sensor_dropped = field_u64(f, "sensor_dropped");
  s.detections = field_u64(f, "detections");
  s.reports = field_u64(f, "reports");
  s.alerts = field_u64(f, "alerts");
  s.blocks = field_u64(f, "blocks");
  s.lb_wait = parse_stage(field(f, "lb_wait"));
  s.sensor_service = parse_stage(field(f, "sensor_service"));
  s.analyzer_batch = parse_stage(field(f, "analyzer_batch"));
  s.monitor_alert = parse_stage(field(f, "monitor_alert"));
  return s;
}

std::string manifest_line(const CampaignSpec& spec) {
  std::ostringstream out;
  out << "{\"type\":\"manifest\",\"format\":\"" << kFormat
      << "\",\"name\":\"" << json_escape(spec.name)
      << "\",\"fingerprint\":\"" << std::hex << spec.fingerprint()
      << std::dec << "\",\"cells\":" << spec.cell_count() << "}";
  return out.str();
}

void check_manifest(const std::string& line, const CampaignSpec& spec,
                    const std::string& path) {
  const auto fields = parse_flat_json(line);
  if (field(fields, "type") != "manifest" ||
      field(fields, "format") != kFormat) {
    throw std::invalid_argument("campaign store: " + path +
                                " is not an idseval campaign store");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(spec.fingerprint()));
  if (field(fields, "fingerprint") != buf) {
    throw std::invalid_argument(
        "campaign store: " + path +
        " was written for a different spec (fingerprint mismatch); "
        "refusing to resume into it");
  }
}

std::map<std::size_t, CellResult> load_rows(std::istream& in,
                                            const CampaignSpec& spec,
                                            const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument("campaign store: " + path + " is empty");
  }
  check_manifest(line, spec, path);
  std::map<std::size_t, CellResult> results;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const CellResult result = deserialize_cell(line);
    // Later rows win: a resumed run re-records previously failed cells.
    results.insert_or_assign(result.cell.index, result);
  }
  return results;
}

}  // namespace

std::string serialize_cell(const CellResult& r) {
  std::ostringstream out;
  out << "{\"type\":\"cell\",\"index\":" << r.cell.index << ",\"product\":\""
      << json_escape(products::product(r.cell.product).name)
      << "\",\"profile\":\"" << json_escape(r.cell.profile)
      << "\",\"sensitivity\":" << fmt_exact(r.cell.sensitivity)
      << ",\"replicate\":" << r.cell.replicate << ",\"seed\":" << r.cell.seed
      << ",\"ok\":" << (r.ok ? "true" : "false") << ",\"error\":\""
      << json_escape(r.error) << "\",\"score_logistical\":"
      << fmt_exact(r.score_logistical) << ",\"score_architectural\":"
      << fmt_exact(r.score_architectural) << ",\"score_performance\":"
      << fmt_exact(r.score_performance) << ",\"score_total\":"
      << fmt_exact(r.score_total) << ",\"fp_ratio\":" << fmt_exact(r.fp_ratio)
      << ",\"fn_ratio\":" << fmt_exact(r.fn_ratio)
      << ",\"fp_percent_of_benign\":" << fmt_exact(r.fp_percent_of_benign)
      << ",\"fn_percent_of_attacks\":" << fmt_exact(r.fn_percent_of_attacks)
      << ",\"timeliness_sec\":" << fmt_exact(r.timeliness_sec)
      << ",\"offered_pps\":" << fmt_exact(r.offered_pps)
      << ",\"processed_pps\":" << fmt_exact(r.processed_pps)
      << ",\"zero_loss_pps\":" << fmt_exact(r.zero_loss_pps)
      << ",\"system_throughput_pps\":" << fmt_exact(r.system_throughput_pps)
      << ",\"induced_latency_sec\":" << fmt_exact(r.induced_latency_sec)
      << ",\"telemetry\":" << telemetry::to_json(r.telemetry) << "}";
  return out.str();
}

CellResult deserialize_cell(const std::string& line) {
  const auto fields = parse_flat_json(line);
  if (field(fields, "type") != "cell") {
    throw std::invalid_argument("campaign store: not a cell row: " + line);
  }
  CellResult r;
  r.cell.index = static_cast<std::size_t>(field_u64(fields, "index"));
  {
    const std::string& name = field(fields, "product");
    bool found = false;
    for (const auto& model : products::product_catalog()) {
      if (model.name == name) {
        r.cell.product = model.id;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("campaign store: unknown product: " +
                                  name);
    }
  }
  r.cell.profile = field(fields, "profile");
  r.cell.sensitivity = field_double(fields, "sensitivity");
  r.cell.replicate = static_cast<std::size_t>(field_u64(fields, "replicate"));
  r.cell.seed = field_u64(fields, "seed");
  {
    const std::string& ok = field(fields, "ok");
    if (ok != "true" && ok != "false") {
      throw std::invalid_argument("campaign store: bad ok flag: " + ok);
    }
    r.ok = ok == "true";
  }
  r.error = field(fields, "error");
  r.score_logistical = field_double(fields, "score_logistical");
  r.score_architectural = field_double(fields, "score_architectural");
  r.score_performance = field_double(fields, "score_performance");
  r.score_total = field_double(fields, "score_total");
  r.fp_ratio = field_double(fields, "fp_ratio");
  r.fn_ratio = field_double(fields, "fn_ratio");
  r.fp_percent_of_benign = field_double(fields, "fp_percent_of_benign");
  r.fn_percent_of_attacks = field_double(fields, "fn_percent_of_attacks");
  r.timeliness_sec = field_double(fields, "timeliness_sec");
  r.offered_pps = field_double(fields, "offered_pps");
  r.processed_pps = field_double(fields, "processed_pps");
  r.zero_loss_pps = field_double(fields, "zero_loss_pps");
  r.system_throughput_pps = field_double(fields, "system_throughput_pps");
  r.induced_latency_sec = field_double(fields, "induced_latency_sec");
  // Stores written before the telemetry field existed still load; their
  // rows simply carry an all-zero snapshot.
  const auto telemetry_it = fields.find("telemetry");
  if (telemetry_it != fields.end()) {
    r.telemetry = parse_snapshot(telemetry_it->second);
  }
  return r;
}

ResultStore::ResultStore(std::string path, const CampaignSpec& spec,
                         bool fresh)
    : path_(std::move(path)) {
  bool exists = false;
  if (!fresh) {
    std::ifstream in(path_);
    if (in.good()) {
      exists = true;
      results_ = load_rows(in, spec, path_);
    }
  }
  file_ = std::fopen(path_.c_str(), exists ? "ab" : "wb");
  if (!file_) {
    throw std::runtime_error("campaign store: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (!exists) {
    const std::string manifest = manifest_line(spec);
    std::fprintf(file_, "%s\n", manifest.c_str());
    std::fflush(file_);
  }
}

ResultStore::~ResultStore() {
  if (file_) std::fclose(file_);
}

bool ResultStore::has_ok(std::size_t index) const {
  std::scoped_lock lock(mutex_);
  const auto it = results_.find(index);
  return it != results_.end() && it->second.ok;
}

std::size_t ResultStore::ok_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [index, result] : results_) {
    if (result.ok) ++n;
  }
  return n;
}

std::size_t ResultStore::failed_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [index, result] : results_) {
    if (!result.ok) ++n;
  }
  return n;
}

void ResultStore::append(const CellResult& result) {
  const std::string line = serialize_cell(result);
  std::scoped_lock lock(mutex_);
  std::fprintf(file_, "%s\n", line.c_str());
  std::fflush(file_);
  results_.insert_or_assign(result.cell.index, result);
}

std::map<std::size_t, CellResult> ResultStore::load(
    const std::string& path, const CampaignSpec& spec) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("campaign store: cannot read " + path);
  }
  return load_rows(in, spec, path);
}

}  // namespace idseval::campaign
