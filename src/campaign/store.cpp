#include "campaign/store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "results/doc.hpp"
#include "telemetry/trace.hpp"

namespace idseval::campaign {

namespace {

constexpr const char* kFormat = "idseval-campaign-v1";

std::string fingerprint_hex(const CampaignSpec& spec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(spec.fingerprint()));
  return buf;
}

results::Doc parse_line(const std::string& line) {
  try {
    return results::parse_json(line);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("campaign store: ") + e.what() +
                                ": " + line);
  }
}

const results::Doc& member(const results::Doc& doc, const char* key) {
  const results::Doc* v = doc.find(key);
  if (v == nullptr) {
    throw std::invalid_argument(std::string("campaign store: missing field: ") +
                                key);
  }
  return *v;
}

std::string field_string(const results::Doc& doc, const char* key) {
  const results::Doc& v = member(doc, key);
  if (!v.is_string()) {
    throw std::invalid_argument(std::string("campaign store: ") + key +
                                " is not a string");
  }
  return v.as_string();
}

double field_double(const results::Doc& doc, const char* key) {
  const results::Doc& v = member(doc, key);
  if (!v.is_number()) {
    throw std::invalid_argument(std::string("campaign store: ") + key +
                                " is not a number");
  }
  return v.as_double();
}

std::uint64_t field_u64(const results::Doc& doc, const char* key) {
  const results::Doc& v = member(doc, key);
  if (!v.is_number()) {
    throw std::invalid_argument(std::string("campaign store: ") + key +
                                " is not an integer");
  }
  return v.as_u64();
}

bool field_bool(const results::Doc& doc, const char* key) {
  const results::Doc& v = member(doc, key);
  if (!v.is_bool()) {
    throw std::invalid_argument(std::string("campaign store: bad flag: ") +
                                key);
  }
  return v.as_bool();
}

std::string manifest_line(const CampaignSpec& spec) {
  results::Doc doc = results::Doc::object();
  doc.set("type", "manifest")
      .set("format", kFormat)
      .set("name", spec.name)
      .set("fingerprint", fingerprint_hex(spec))
      .set("cells", spec.cell_count());
  return results::to_json(doc);
}

void check_manifest(const std::string& line, const CampaignSpec& spec,
                    const std::string& path) {
  const results::Doc doc = parse_line(line);
  const results::Doc* type = doc.find("type");
  const results::Doc* format = doc.find("format");
  if (type == nullptr || !type->is_string() ||
      type->as_string() != "manifest" || format == nullptr ||
      !format->is_string() || format->as_string() != kFormat) {
    throw std::invalid_argument("campaign store: " + path +
                                " is not an idseval campaign store");
  }
  if (field_string(doc, "fingerprint") != fingerprint_hex(spec)) {
    throw std::invalid_argument(
        "campaign store: " + path +
        " was written for a different spec (fingerprint mismatch); "
        "refusing to resume into it");
  }
}

std::map<std::size_t, CellResult> load_rows(std::istream& in,
                                            const CampaignSpec& spec,
                                            const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument("campaign store: " + path + " is empty");
  }
  check_manifest(line, spec, path);
  std::map<std::size_t, CellResult> results;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const CellResult result = deserialize_cell(line);
    // Later rows win: a resumed run re-records previously failed cells.
    results.insert_or_assign(result.cell.index, result);
  }
  return results;
}

}  // namespace

results::Doc cell_to_doc(const CellResult& r) {
  results::Doc doc = results::Doc::object();
  doc.set("type", "cell")
      .set("index", r.cell.index)
      .set("product", products::product(r.cell.product).name)
      .set("profile", r.cell.profile)
      .set("sensitivity", r.cell.sensitivity)
      .set("replicate", r.cell.replicate)
      .set("seed", r.cell.seed)
      .set("ok", r.ok)
      .set("error", r.error)
      .set("score_logistical", r.score_logistical)
      .set("score_architectural", r.score_architectural)
      .set("score_performance", r.score_performance)
      .set("score_total", r.score_total)
      .set("fp_ratio", r.fp_ratio)
      .set("fn_ratio", r.fn_ratio)
      .set("fp_percent_of_benign", r.fp_percent_of_benign)
      .set("fn_percent_of_attacks", r.fn_percent_of_attacks)
      .set("timeliness_sec", r.timeliness_sec)
      .set("offered_pps", r.offered_pps)
      .set("processed_pps", r.processed_pps)
      .set("zero_loss_pps", r.zero_loss_pps)
      .set("system_throughput_pps", r.system_throughput_pps)
      .set("induced_latency_sec", r.induced_latency_sec)
      .set("unified_total_cost", r.unified_total_cost)
      .set("unified_capability", r.unified_capability)
      .set("telemetry", telemetry::to_doc(r.telemetry));
  // Kill-chain stage rollups: only written when present, so flat-scenario
  // rows (and pre-kill-chain stores) keep their exact byte shape.
  if (!r.stages.empty()) {
    results::Doc stages = results::Doc::array();
    for (const auto& stage : r.stages) {
      results::Doc row = results::Doc::object();
      row.set("stage", stage.stage)
          .set("launched", stage.launched)
          .set("detected", stage.detected)
          .set("prevented", stage.prevented)
          .set("mean_latency_sec", stage.mean_latency_sec);
      stages.push(std::move(row));
    }
    doc.set("stages", std::move(stages));
  }
  return doc;
}

std::string serialize_cell(const CellResult& r) {
  return results::to_json(cell_to_doc(r));
}

CellResult deserialize_cell(const std::string& line) {
  const results::Doc doc = parse_line(line);
  if (!doc.is_object() || field_string(doc, "type") != "cell") {
    throw std::invalid_argument("campaign store: not a cell row: " + line);
  }
  CellResult r;
  r.cell.index = static_cast<std::size_t>(field_u64(doc, "index"));
  {
    const std::string name = field_string(doc, "product");
    bool found = false;
    for (const auto& model : products::product_catalog()) {
      if (model.name == name) {
        r.cell.product = model.id;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("campaign store: unknown product: " +
                                  name);
    }
  }
  r.cell.profile = field_string(doc, "profile");
  r.cell.sensitivity = field_double(doc, "sensitivity");
  r.cell.replicate = static_cast<std::size_t>(field_u64(doc, "replicate"));
  r.cell.seed = field_u64(doc, "seed");
  r.ok = field_bool(doc, "ok");
  r.error = field_string(doc, "error");
  r.score_logistical = field_double(doc, "score_logistical");
  r.score_architectural = field_double(doc, "score_architectural");
  r.score_performance = field_double(doc, "score_performance");
  r.score_total = field_double(doc, "score_total");
  r.fp_ratio = field_double(doc, "fp_ratio");
  r.fn_ratio = field_double(doc, "fn_ratio");
  r.fp_percent_of_benign = field_double(doc, "fp_percent_of_benign");
  r.fn_percent_of_attacks = field_double(doc, "fn_percent_of_attacks");
  r.timeliness_sec = field_double(doc, "timeliness_sec");
  r.offered_pps = field_double(doc, "offered_pps");
  r.processed_pps = field_double(doc, "processed_pps");
  r.zero_loss_pps = field_double(doc, "zero_loss_pps");
  r.system_throughput_pps = field_double(doc, "system_throughput_pps");
  r.induced_latency_sec = field_double(doc, "induced_latency_sec");
  // Stores written before the unified score existed still load; their
  // rows simply carry zeros for both fields.
  if (const results::Doc* v = doc.find("unified_total_cost")) {
    r.unified_total_cost = v->as_double();
  }
  if (const results::Doc* v = doc.find("unified_capability")) {
    r.unified_capability = v->as_double();
  }
  // Stores written before the kill-chain stage rollups existed (or rows
  // from flat-scenario cells) simply carry no stages.
  if (const results::Doc* stages = doc.find("stages")) {
    for (const results::Doc& row : stages->elements()) {
      CellResult::StageOutcome stage;
      stage.stage = field_string(row, "stage");
      stage.launched = static_cast<std::size_t>(field_u64(row, "launched"));
      stage.detected = static_cast<std::size_t>(field_u64(row, "detected"));
      stage.prevented =
          static_cast<std::size_t>(field_u64(row, "prevented"));
      stage.mean_latency_sec = field_double(row, "mean_latency_sec");
      r.stages.push_back(std::move(stage));
    }
  }
  // Stores written before the telemetry field existed still load; their
  // rows simply carry an all-zero snapshot.
  if (const results::Doc* snap = doc.find("telemetry")) {
    try {
      r.telemetry = telemetry::snapshot_from_doc(*snap);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("campaign store: ") + e.what());
    }
  }
  return r;
}

ResultStore::ResultStore(std::string path, const CampaignSpec& spec,
                         bool fresh)
    : path_(std::move(path)) {
  bool exists = false;
  if (!fresh) {
    std::ifstream in(path_);
    if (in.good()) {
      exists = true;
      results_ = load_rows(in, spec, path_);
    }
  }
  file_ = std::fopen(path_.c_str(), exists ? "ab" : "wb");
  if (!file_) {
    throw std::runtime_error("campaign store: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (!exists) {
    const std::string manifest = manifest_line(spec);
    std::fprintf(file_, "%s\n", manifest.c_str());
    std::fflush(file_);
  }
}

ResultStore::~ResultStore() {
  if (file_) std::fclose(file_);
}

bool ResultStore::has_ok(std::size_t index) const {
  std::scoped_lock lock(mutex_);
  const auto it = results_.find(index);
  return it != results_.end() && it->second.ok;
}

std::size_t ResultStore::ok_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [index, result] : results_) {
    if (result.ok) ++n;
  }
  return n;
}

std::size_t ResultStore::failed_count() const {
  std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [index, result] : results_) {
    if (!result.ok) ++n;
  }
  return n;
}

void ResultStore::append(const CellResult& result) {
  const std::string line = serialize_cell(result);
  std::scoped_lock lock(mutex_);
  std::fprintf(file_, "%s\n", line.c_str());
  std::fflush(file_);
  results_.insert_or_assign(result.cell.index, result);
}

std::map<std::size_t, CellResult> ResultStore::load(
    const std::string& path, const CampaignSpec& spec) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("campaign store: cannot read " + path);
  }
  return load_rows(in, spec, path);
}

}  // namespace idseval::campaign
