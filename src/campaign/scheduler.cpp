#include "campaign/scheduler.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

#include "campaign/store.hpp"
#include "harness/evaluate.hpp"
#include "netsim/sim_time.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace idseval::campaign {

std::vector<CampaignCell> expand_cells(const CampaignSpec& spec) {
  std::vector<CampaignCell> cells;
  cells.reserve(spec.cell_count());
  std::size_t index = 0;
  for (const auto product : spec.products) {
    for (const auto& profile : spec.profiles) {
      for (const double sensitivity : spec.sensitivities) {
        for (std::size_t rep = 0; rep < spec.replicates; ++rep) {
          CampaignCell cell;
          cell.index = index;
          cell.product = product;
          cell.profile = profile;
          cell.sensitivity = sensitivity;
          cell.replicate = rep;
          cell.seed = util::derive_seed(spec.base_seed, index);
          cells.push_back(std::move(cell));
          ++index;
        }
      }
    }
  }
  return cells;
}

CellResult run_cell(const CampaignSpec& spec, const CampaignCell& cell) {
  harness::TestbedConfig env;
  env.profile = traffic::profile_by_name(cell.profile);
  env.internal_hosts = spec.internal_hosts;
  env.external_hosts = spec.external_hosts;
  env.warmup = netsim::SimTime::from_sec(spec.warmup_sec);
  env.measure = netsim::SimTime::from_sec(spec.measure_sec);
  env.seed = cell.seed;

  harness::EvaluationOptions options;
  options.sensitivity = cell.sensitivity;
  options.attacks_per_kind = spec.attacks_per_kind;
  options.include_load_metrics = spec.load_metrics;

  const harness::Evaluation eval =
      harness::evaluate_product(env, products::product(cell.product),
                                options);

  CellResult result;
  result.cell = cell;
  result.ok = true;

  const core::WeightedScores scores =
      core::weighted_scores(eval.card, spec.weight_set());
  result.score_logistical = scores.logistical;
  result.score_architectural = scores.architectural;
  result.score_performance = scores.performance;
  result.score_total = scores.total();

  const harness::RunResult& run = eval.measured.detection_run;
  result.fp_ratio = run.fp_ratio;
  result.fn_ratio = run.fn_ratio;
  const std::size_t benign = run.transactions - run.attacks;
  result.fp_percent_of_benign =
      benign > 0 ? 100.0 * static_cast<double>(run.false_alarms) /
                       static_cast<double>(benign)
                 : 0.0;
  result.fn_percent_of_attacks =
      run.attacks > 0 ? 100.0 * static_cast<double>(run.missed_attacks) /
                            static_cast<double>(run.attacks)
                      : 0.0;
  result.timeliness_sec = run.timeliness_mean_sec;
  result.offered_pps = run.offered_pps;
  result.processed_pps = run.processed_pps;

  if (spec.load_metrics) {
    result.zero_loss_pps = eval.measured.zero_loss_pps;
    result.system_throughput_pps = eval.measured.system_throughput_pps;
    result.induced_latency_sec = eval.measured.induced_latency_sec;
  }
  result.telemetry = eval.measured.detection_telemetry;
  return result;
}

namespace {

std::string cell_trace_event(const CellResult& result,
                             const telemetry::Registry& registry) {
  char sens[64];
  std::snprintf(sens, sizeof(sens), "%.17g", result.cell.sensitivity);
  std::ostringstream out;
  out << "{\"type\":\"cell\",\"index\":" << result.cell.index
      << ",\"product\":\""
      << telemetry::json_escape(products::product(result.cell.product).name)
      << "\",\"profile\":\"" << telemetry::json_escape(result.cell.profile)
      << "\",\"sensitivity\":" << sens
      << ",\"replicate\":" << result.cell.replicate
      << ",\"seed\":" << result.cell.seed
      << ",\"ok\":" << (result.ok ? "true" : "false") << ",\"error\":\""
      << telemetry::json_escape(result.error)
      << "\",\"telemetry\":" << telemetry::to_json(registry) << "}";
  return out.str();
}

}  // namespace

RunStats run_campaign(const CampaignSpec& spec, ResultStore& store,
                      const RunOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  const std::vector<CampaignCell> cells = expand_cells(spec);

  std::vector<const CampaignCell*> pending;
  pending.reserve(cells.size());
  for (const auto& cell : cells) {
    if (!store.has_ok(cell.index)) pending.push_back(&cell);
  }

  RunStats stats;
  stats.total_cells = cells.size();
  stats.skipped = cells.size() - pending.size();

  const auto runner = options.runner
                          ? options.runner
                          : [](const CampaignSpec& s, const CampaignCell& c) {
                              return run_cell(s, c);
                            };

  std::mutex progress_mutex;
  std::size_t done = 0;
  std::size_t failed = 0;
  // One registry per pending cell, created unconditionally (recording is
  // cheap and keeps results byte-identical with tracing on or off) and
  // merged into the aggregate in cell-index order after the pool drains.
  std::vector<std::unique_ptr<telemetry::Registry>> cell_regs(
      pending.size());
  util::ThreadPool pool(options.jobs);
  pool.parallel_for(pending.size(), [&](std::size_t i) {
    const CampaignCell& cell = *pending[i];
    const auto cell_started = std::chrono::steady_clock::now();
    cell_regs[i] = std::make_unique<telemetry::Registry>();
    CellResult result;
    {
      telemetry::ScopedRegistry scope(cell_regs[i].get());
      try {
        result = runner(spec, cell);
      } catch (const std::exception& e) {
        result = CellResult{};
        result.cell = cell;
        result.ok = false;
        result.error = e.what();
      } catch (...) {
        result = CellResult{};
        result.cell = cell;
        result.ok = false;
        result.error = "unknown error";
      }
    }
    result.wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cell_started)
            .count();
    store.append(result);
    std::scoped_lock lock(progress_mutex);
    ++done;
    if (!result.ok) ++failed;
    if (options.telemetry) {
      // Wall clock goes only into the aggregate (progress/bench view),
      // never into rows — rows must not depend on machine speed.
      options.telemetry->latency(telemetry::names::kCampaignCellWall)
          .record(result.wall_sec);
    }
    if (options.trace) {
      options.trace->emit(cell_trace_event(result, *cell_regs[i]));
      options.trace->flush();
    }
    if (options.on_cell) options.on_cell(result, done, pending.size());
  });

  if (options.telemetry) {
    for (const auto& reg : cell_regs) {
      if (reg) options.telemetry->merge(*reg);
    }
  }

  stats.executed = done;
  stats.failed = failed;
  stats.wall_sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  return stats;
}

}  // namespace idseval::campaign
