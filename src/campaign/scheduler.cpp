#include "campaign/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "attack/kind.hpp"
#include "campaign/store.hpp"
#include "harness/evaluate.hpp"
#include "results/doc.hpp"
#include "netsim/sim_time.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace idseval::campaign {

std::vector<CampaignCell> expand_cells(const CampaignSpec& spec) {
  std::vector<CampaignCell> cells;
  cells.reserve(spec.cell_count());
  std::size_t index = 0;
  for (const auto product : spec.products) {
    for (const auto& profile : spec.profiles) {
      for (const double sensitivity : spec.sensitivities) {
        for (std::size_t rep = 0; rep < spec.replicates; ++rep) {
          CampaignCell cell;
          cell.index = index;
          cell.product = product;
          cell.profile = profile;
          cell.sensitivity = sensitivity;
          cell.replicate = rep;
          cell.seed = util::derive_seed(spec.base_seed, index);
          cells.push_back(std::move(cell));
          ++index;
        }
      }
    }
  }
  return cells;
}

CellResult run_cell(const CampaignSpec& spec, const CampaignCell& cell,
                    harness::RunContext& ctx) {
  harness::TestbedConfig env;
  env.profile = traffic::profile_by_name(cell.profile);
  env.internal_hosts = spec.internal_hosts;
  env.external_hosts = spec.external_hosts;
  env.warmup = netsim::SimTime::from_sec(spec.warmup_sec);
  env.measure = netsim::SimTime::from_sec(spec.measure_sec);
  env.shards = spec.shards;
  env.seed = cell.seed;

  harness::EvaluationOptions options;
  options.sensitivity = cell.sensitivity;
  options.attacks_per_kind = spec.attacks_per_kind;
  options.include_load_metrics = spec.load_metrics;
  options.kill_chain = spec.kill_chain;

  const harness::Evaluation eval =
      harness::evaluate_product(env, products::product(cell.product),
                                options, &ctx);

  CellResult result;
  result.cell = cell;
  result.ok = true;

  const core::WeightedScores scores =
      core::weighted_scores(eval.card, spec.weight_set());
  result.score_logistical = scores.logistical;
  result.score_architectural = scores.architectural;
  result.score_performance = scores.performance;
  result.score_total = scores.total();

  const harness::RunResult& run = eval.measured.detection_run;
  result.fp_ratio = run.fp_ratio;
  result.fn_ratio = run.fn_ratio;
  const std::size_t benign = run.transactions - run.attacks;
  result.fp_percent_of_benign =
      benign > 0 ? 100.0 * static_cast<double>(run.false_alarms) /
                       static_cast<double>(benign)
                 : 0.0;
  result.fn_percent_of_attacks =
      run.attacks > 0 ? 100.0 * static_cast<double>(run.missed_attacks) /
                            static_cast<double>(run.attacks)
                      : 0.0;
  result.timeliness_sec = run.timeliness_mean_sec;
  result.offered_pps = run.offered_pps;
  result.processed_pps = run.processed_pps;

  if (spec.load_metrics) {
    result.zero_loss_pps = eval.measured.zero_loss_pps;
    result.system_throughput_pps = eval.measured.system_throughput_pps;
    result.induced_latency_sec = eval.measured.induced_latency_sec;
  }
  result.unified_total_cost = eval.unified.total_cost;
  result.unified_capability = eval.unified.capability;
  result.telemetry = eval.measured.detection_telemetry;
  // Stage rollups are only persisted for kill-chain cells; flat cells
  // still label stages (the kinds' defaults) but keeping the rows empty
  // there preserves pre-kill-chain store bytes.
  if (!spec.kill_chain.empty()) {
    for (const score::StageRow& row : run.breakdown.stages) {
      CellResult::StageOutcome stage;
      stage.stage = attack::to_string(static_cast<attack::Stage>(row.stage));
      stage.launched = row.launched;
      stage.detected = row.detected;
      stage.prevented = row.prevented;
      stage.mean_latency_sec = row.mean_latency_sec();
      result.stages.push_back(std::move(stage));
    }
  }
  return result;
}

namespace {

results::Doc cell_trace_event(const CellResult& result,
                              const telemetry::Registry& registry) {
  results::Doc event = results::Doc::object();
  event.set("type", "cell")
      .set("index", result.cell.index)
      .set("product", products::product(result.cell.product).name)
      .set("profile", result.cell.profile)
      .set("sensitivity", result.cell.sensitivity)
      .set("replicate", result.cell.replicate)
      .set("seed", result.cell.seed)
      .set("ok", result.ok)
      .set("error", result.error)
      .set("telemetry", telemetry::to_doc(registry));
  return event;
}

}  // namespace

RunStats run_campaign(const CampaignSpec& spec, ResultStore& store,
                      const RunOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  const std::vector<CampaignCell> cells = expand_cells(spec);

  std::vector<const CampaignCell*> pending;
  pending.reserve(cells.size());
  for (const auto& cell : cells) {
    if (!store.has_ok(cell.index)) pending.push_back(&cell);
  }

  RunStats stats;
  stats.total_cells = cells.size();
  stats.skipped = cells.size() - pending.size();

  const auto runner =
      options.runner
          ? options.runner
          : [](const CampaignSpec& s, const CampaignCell& c,
               harness::RunContext& ctx) { return run_cell(s, c, ctx); };

  std::mutex progress_mutex;
  std::size_t done = 0;
  std::size_t failed = 0;
  // One RunContext per pending cell, created unconditionally (recording
  // is cheap and keeps results byte-identical with tracing on or off)
  // and merged into the aggregate in cell-index order after the pool
  // drains. Every context shares the campaign's trace sink.
  std::vector<std::unique_ptr<harness::RunContext>> cell_ctxs(
      pending.size());
  // Sharded cells each want spec.shards threads of their own, so clamp
  // the worker count to keep jobs x shards within the machine instead of
  // oversubscribing every core with barrier-spinning shard workers.
  std::size_t jobs = options.jobs;
  if (spec.shards > 1 && jobs > 1) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    jobs = std::max<std::size_t>(1, std::min(jobs, hw / spec.shards));
  }
  util::ThreadPool pool(jobs);
  pool.parallel_for(pending.size(), [&](std::size_t i) {
    const CampaignCell& cell = *pending[i];
    const auto cell_started = std::chrono::steady_clock::now();
    cell_ctxs[i] = std::make_unique<harness::RunContext>(options.trace);
    CellResult result;
    {
      harness::RunContext::Scope scope(*cell_ctxs[i]);
      try {
        result = runner(spec, cell, *cell_ctxs[i]);
      } catch (const std::exception& e) {
        result = CellResult{};
        result.cell = cell;
        result.ok = false;
        result.error = e.what();
      } catch (...) {
        result = CellResult{};
        result.cell = cell;
        result.ok = false;
        result.error = "unknown error";
      }
    }
    result.wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cell_started)
            .count();
    store.append(result);
    std::scoped_lock lock(progress_mutex);
    ++done;
    if (!result.ok) ++failed;
    if (options.telemetry) {
      // Wall clock goes only into the aggregate (progress/bench view),
      // never into rows — rows must not depend on machine speed.
      options.telemetry->latency(telemetry::names::kCampaignCellWall)
          .record(result.wall_sec);
    }
    if (options.trace) {
      options.trace->emit(cell_trace_event(result, cell_ctxs[i]->registry()));
      options.trace->flush();
    }
    if (options.on_cell) options.on_cell(result, done, pending.size());
  });

  if (options.telemetry) {
    for (const auto& ctx : cell_ctxs) {
      if (ctx) options.telemetry->merge_from(ctx->registry());
    }
  }

  stats.executed = done;
  stats.failed = failed;
  stats.wall_sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  return stats;
}

}  // namespace idseval::campaign
