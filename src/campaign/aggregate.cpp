#include "campaign/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "harness/measure.hpp"
#include "results/csv.hpp"
#include "results/table.hpp"
#include "util/table.hpp"

namespace idseval::campaign {

namespace {

std::string fmt_mean_sd(const util::RunningStats& s, int precision = 2) {
  return util::fmt_double(s.mean(), precision) + " ±" +
         util::fmt_double(dispersion(s), precision);
}

struct CsvQuantity {
  const char* name;
  util::RunningStats GroupStats::* member;
};

constexpr CsvQuantity kCsvQuantities[] = {
    {"score_total", &GroupStats::score_total},
    {"score_logistical", &GroupStats::score_logistical},
    {"score_architectural", &GroupStats::score_architectural},
    {"score_performance", &GroupStats::score_performance},
    {"fp_percent", &GroupStats::fp_percent},
    {"fn_percent", &GroupStats::fn_percent},
    {"timeliness_sec", &GroupStats::timeliness_sec},
    {"offered_pps", &GroupStats::offered_pps},
    {"processed_pps", &GroupStats::processed_pps},
    {"zero_loss_pps", &GroupStats::zero_loss_pps},
    {"system_throughput_pps", &GroupStats::system_throughput_pps},
    {"induced_latency_sec", &GroupStats::induced_latency_sec},
    {"unified_total_cost", &GroupStats::unified_total_cost},
    {"unified_capability", &GroupStats::unified_capability},
};

/// Chain position of a stage name (attack::kStageNames order); unknown
/// names sort after the known chain.
int stage_order(const std::string& stage) {
  static constexpr const char* kOrder[] = {"recon", "exploit", "lateral",
                                           "exfil"};
  for (int i = 0; i < 4; ++i) {
    if (stage == kOrder[i]) return i;
  }
  return 4;
}

}  // namespace

double dispersion(const util::RunningStats& s) {
  return s.count() > 1 ? std::sqrt(s.sample_variance()) : 0.0;
}

CampaignAggregate aggregate(
    const CampaignSpec& spec,
    const std::map<std::size_t, CellResult>& results) {
  CampaignAggregate agg;

  // (product, profile, replicate) -> sensitivity sweep for the EER pass.
  std::map<std::tuple<std::string, std::string, std::size_t>,
           std::vector<harness::ErrorRatePoint>>
      sweeps;

  for (const auto& [index, result] : results) {
    if (!result.ok) {
      ++agg.failed_cells;
      continue;
    }
    ++agg.ok_cells;
    const std::string product = products::product(result.cell.product).name;
    GroupStats& g = agg.groups[{product, result.cell.profile,
                                result.cell.sensitivity}];
    g.score_total.add(result.score_total);
    g.score_logistical.add(result.score_logistical);
    g.score_architectural.add(result.score_architectural);
    g.score_performance.add(result.score_performance);
    g.fp_percent.add(result.fp_percent_of_benign);
    g.fn_percent.add(result.fn_percent_of_attacks);
    g.timeliness_sec.add(result.timeliness_sec);
    g.offered_pps.add(result.offered_pps);
    g.processed_pps.add(result.processed_pps);
    g.zero_loss_pps.add(result.zero_loss_pps);
    g.system_throughput_pps.add(result.system_throughput_pps);
    g.induced_latency_sec.add(result.induced_latency_sec);
    g.unified_total_cost.add(result.unified_total_cost);
    g.unified_capability.add(result.unified_capability);

    for (const CellResult::StageOutcome& stage : result.stages) {
      StageStats& s = agg.stages[{product, result.cell.profile,
                                  stage_order(stage.stage), stage.stage}];
      s.launched += stage.launched;
      s.detected += stage.detected;
      s.prevented += stage.prevented;
      if (stage.launched > 0) {
        s.detection_rate.add(static_cast<double>(stage.detected) /
                             static_cast<double>(stage.launched));
      }
      s.mean_latency_sec.add(stage.mean_latency_sec);
    }

    harness::ErrorRatePoint point;
    point.sensitivity = result.cell.sensitivity;
    point.fp_ratio = result.fp_ratio;
    point.fn_ratio = result.fn_ratio;
    point.fp_percent_of_benign = result.fp_percent_of_benign;
    point.fn_percent_of_attacks = result.fn_percent_of_attacks;
    sweeps[{product, result.cell.profile, result.cell.replicate}]
        .push_back(point);
  }

  if (spec.sensitivities.size() >= 2) {
    for (auto& [key, sweep] : sweeps) {
      if (sweep.size() < 2) continue;
      std::sort(sweep.begin(), sweep.end(),
                [](const auto& a, const auto& b) {
                  return a.sensitivity < b.sensitivity;
                });
      EerStats& e =
          agg.eer[{std::get<0>(key), std::get<1>(key)}];
      const harness::EqualErrorRate eer = harness::equal_error_rate(sweep);
      if (eer.found) {
        e.error_percent.add(eer.error_percent);
        e.sensitivity.add(eer.sensitivity);
      } else {
        ++e.replicates_without_crossing;
      }
    }
  }
  return agg;
}

results::Doc summary_table_doc(const CampaignSpec& spec,
                               const CampaignAggregate& agg) {
  results::TableBuilder table(
      {"Product", "Profile", "Sens", "N", "Total", "Logist", "Archit",
       "Perf", "FP %", "FN %", "Timel s", "Capab"},
      {"left", "left", "right", "right", "right", "right", "right", "right",
       "right", "right", "right", "right"});
  table.title("Campaign '" + spec.name + "' — " + spec.weights +
              " weights, mean ± stddev over seed replicates");
  std::string last_product;
  for (const auto& [key, g] : agg.groups) {
    if (!last_product.empty() && key.product != last_product) {
      table.rule();
    }
    last_product = key.product;
    table.row({key.product, key.profile,
               util::fmt_double(key.sensitivity, 2),
               std::to_string(g.score_total.count()),
               fmt_mean_sd(g.score_total), fmt_mean_sd(g.score_logistical),
               fmt_mean_sd(g.score_architectural),
               fmt_mean_sd(g.score_performance),
               fmt_mean_sd(g.fp_percent), fmt_mean_sd(g.fn_percent),
               fmt_mean_sd(g.timeliness_sec),
               fmt_mean_sd(g.unified_capability)});
  }
  return table.build();
}

results::Doc eer_table_doc(const CampaignSpec& spec,
                           const CampaignAggregate& agg) {
  if (spec.sensitivities.size() < 2 || agg.eer.empty()) {
    return results::Doc();
  }
  results::TableBuilder table({"Product", "Profile", "N", "EER %", "EER min",
                               "EER max", "at sens", "no-cross"},
                              {"left", "left", "right", "right", "right",
                               "right", "right", "right"});
  table.title(
      "Equal Error Rate across the campaign sensitivity grid (per "
      "replicate)");
  for (const auto& [key, e] : agg.eer) {
    table.row({key.first, key.second,
               std::to_string(e.error_percent.count()),
               fmt_mean_sd(e.error_percent),
               util::fmt_double(e.error_percent.min(), 2),
               util::fmt_double(e.error_percent.max(), 2),
               fmt_mean_sd(e.sensitivity),
               std::to_string(e.replicates_without_crossing)});
  }
  return table.build();
}

results::Doc killchain_table_doc(const CampaignSpec& spec,
                                 const CampaignAggregate& agg) {
  if (agg.stages.empty()) return results::Doc();
  results::TableBuilder table(
      {"Product", "Profile", "Stage", "Launched", "Detected", "Prevented",
       "Det rate", "Latency s"},
      {"left", "left", "left", "right", "right", "right", "right",
       "right"});
  table.title("Campaign '" + spec.name + "' — kill-chain '" +
              spec.kill_chain + "' per-stage detection, mean ± stddev "
              "over seed replicates");
  std::string last_product;
  for (const auto& [key, s] : agg.stages) {
    if (!last_product.empty() && key.product != last_product) {
      table.rule();
    }
    last_product = key.product;
    table.row({key.product, key.profile, key.stage,
               std::to_string(s.launched), std::to_string(s.detected),
               std::to_string(s.prevented), fmt_mean_sd(s.detection_rate),
               fmt_mean_sd(s.mean_latency_sec)});
  }
  return table.build();
}

std::string killchain_to_csv(const CampaignSpec& spec,
                             const CampaignAggregate& agg) {
  (void)spec;
  if (agg.stages.empty()) return "";
  results::Csv csv({"product", "profile", "stage", "launched", "detected",
                    "prevented", "detection_rate_mean",
                    "detection_rate_stddev", "mean_latency_sec_mean",
                    "mean_latency_sec_stddev"});
  for (const auto& [key, s] : agg.stages) {
    csv.add_row({key.product, key.profile, key.stage, s.launched,
                 s.detected, s.prevented, s.detection_rate.mean(),
                 dispersion(s.detection_rate), s.mean_latency_sec.mean(),
                 dispersion(s.mean_latency_sec)});
  }
  return results::to_csv(csv);
}

std::string render_summary(const CampaignSpec& spec,
                           const CampaignAggregate& agg) {
  std::string out = results::render_table_text(summary_table_doc(spec, agg));
  if (agg.failed_cells > 0) {
    out += "!! " + std::to_string(agg.failed_cells) +
           " cell(s) failed and are excluded from the statistics\n";
  }
  return out;
}

std::string render_eer_summary(const CampaignSpec& spec,
                               const CampaignAggregate& agg) {
  const results::Doc table = eer_table_doc(spec, agg);
  if (table.is_null()) return "";
  return results::render_table_text(table);
}

std::string to_csv(const CampaignSpec& spec, const CampaignAggregate& agg) {
  (void)spec;
  std::vector<std::string> columns = {"product", "profile", "sensitivity",
                                      "replicates"};
  for (const auto& q : kCsvQuantities) {
    columns.push_back(std::string(q.name) + "_mean");
    columns.push_back(std::string(q.name) + "_min");
    columns.push_back(std::string(q.name) + "_max");
    columns.push_back(std::string(q.name) + "_stddev");
  }
  results::Csv csv(std::move(columns));
  for (const auto& [key, g] : agg.groups) {
    std::vector<results::Doc> row = {key.product, key.profile,
                                     key.sensitivity,
                                     g.score_total.count()};
    for (const auto& q : kCsvQuantities) {
      const util::RunningStats& s = g.*(q.member);
      row.emplace_back(s.mean());
      row.emplace_back(s.min());
      row.emplace_back(s.max());
      row.emplace_back(dispersion(s));
    }
    csv.add_row(std::move(row));
  }
  return results::to_csv(csv);
}

std::string stages_to_csv(const CampaignSpec& spec,
                          const std::map<std::size_t, CellResult>& results) {
  (void)spec;
  results::Csv csv({"cell_index", "product", "profile", "sensitivity",
                    "replicate", "seed", "stage", "events", "mean_sec",
                    "p99_sec", "max_sec"});
  const auto stage_row = [&csv](const CellResult& r, const char* stage,
                                const telemetry::StageSummary& s) {
    csv.add_row({r.cell.index, products::product(r.cell.product).name,
                 r.cell.profile, r.cell.sensitivity, r.cell.replicate,
                 r.cell.seed, stage, s.count, s.mean_sec, s.p99_sec,
                 s.max_sec});
  };
  for (const auto& [index, r] : results) {
    stage_row(r, "lb_wait", r.telemetry.lb_wait);
    stage_row(r, "sensor_service", r.telemetry.sensor_service);
    stage_row(r, "analyzer_batch", r.telemetry.analyzer_batch);
    stage_row(r, "monitor_alert", r.telemetry.monitor_alert);
  }
  return results::to_csv(csv);
}

}  // namespace idseval::campaign
