// Protocol-shaped payload synthesis. The paper's first lesson learned
// (§4): flooding with meaningless data is sufficient for benchmarking a
// switch but not an IDS — payload-inspecting engines must be fed content
// with realistic structure. These synthesizers produce plausible
// application-layer text for each protocol the profiles use, plus a
// deliberately-unrealistic random generator used by the X3 ablation.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace idseval::traffic {

enum class PayloadKind : std::uint8_t {
  kHttpRequest,
  kHttpResponse,
  kSmtp,
  kFtp,
  kTelnet,
  kDns,
  kClusterRpc,  ///< Simulated distributed real-time bus traffic.
  kRandom,      ///< Printable noise — realistic *only* in length.
  kIcsControl,  ///< Periodic industrial control-loop register frames:
                ///< fixed fields, tiny value jitter — very low entropy.
  kCanFrame,    ///< CAN-style bus frame: tiny, fixed size, small id space.
};

std::string to_string(PayloadKind kind);

/// Generates one payload of the given kind with a target length hint
/// (the result may differ by a few bytes to keep content well-formed).
std::string synthesize(PayloadKind kind, std::size_t target_len,
                       util::Rng& rng);

/// Payload helpers reused by attack emitters -------------------------------

/// A plausible URL path like "/api/track/status?id=4821".
std::string random_http_path(util::Rng& rng);
/// A plausible login username.
std::string random_username(util::Rng& rng);
/// A plausible hostname like "tactical-12.fleet.mil".
std::string random_hostname(util::Rng& rng);
/// English-ish filler words, space separated, roughly `target_len` bytes.
std::string random_words(std::size_t target_len, util::Rng& rng);
/// Printable random characters of exactly `len` bytes.
std::string random_printable(std::size_t len, util::Rng& rng);

}  // namespace idseval::traffic
