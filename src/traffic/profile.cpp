#include "traffic/profile.hpp"

#include <stdexcept>

namespace idseval::traffic {

using netsim::Protocol;
namespace ports = netsim::ports;

EnvironmentProfile rt_cluster_profile() {
  EnvironmentProfile p;
  p.name = "rt_cluster";
  p.mix = {
      {PayloadKind::kClusterRpc, Protocol::kUdp, ports::kClusterRpc, 0.80},
      {PayloadKind::kClusterRpc, Protocol::kTcp, ports::kClusterRpc, 0.10},
      {PayloadKind::kDns, Protocol::kUdp, ports::kDns, 0.04},
      {PayloadKind::kTelnet, Protocol::kTcp, ports::kTelnet, 0.03},
      {PayloadKind::kHttpRequest, Protocol::kTcp, ports::kHttp, 0.03},
  };
  p.flows_per_sec = 120.0;        // dense periodic bus updates
  p.burst_factor = 1.5;           // engagement bursts are mild
  p.burst_fraction = 0.05;
  p.mean_burst_sec = 0.2;
  p.mean_packets_per_flow = 6.0;  // short, regular exchanges
  p.flow_tail_alpha = 3.0;        // light tail: few long flows
  p.mean_payload_bytes = 160.0;
  p.payload_jitter = 0.10;        // very regular sizes
  p.mean_pkt_interval_ms = 0.5;   // fast LAN pacing
  p.external_fraction = 0.02;     // almost everything is intra-cluster
  return p;
}

EnvironmentProfile ecommerce_profile() {
  EnvironmentProfile p;
  p.name = "ecommerce";
  p.mix = {
      {PayloadKind::kHttpRequest, Protocol::kTcp, ports::kHttp, 0.45},
      {PayloadKind::kHttpResponse, Protocol::kTcp, ports::kHttp, 0.30},
      {PayloadKind::kHttpRequest, Protocol::kTcp, ports::kHttps, 0.10},
      {PayloadKind::kSmtp, Protocol::kTcp, ports::kSmtp, 0.07},
      {PayloadKind::kDns, Protocol::kUdp, ports::kDns, 0.08},
  };
  p.flows_per_sec = 80.0;
  p.burst_factor = 4.0;           // flash crowds
  p.burst_fraction = 0.15;
  p.mean_burst_sec = 1.0;
  p.mean_packets_per_flow = 14.0;
  p.flow_tail_alpha = 1.5;        // heavy tail: big downloads
  p.mean_payload_bytes = 420.0;
  p.payload_jitter = 0.60;        // wildly varying sizes
  p.mean_pkt_interval_ms = 3.0;
  p.external_fraction = 0.85;     // customers are outside
  return p;
}

EnvironmentProfile office_profile() {
  EnvironmentProfile p;
  p.name = "office";
  p.mix = {
      {PayloadKind::kHttpRequest, Protocol::kTcp, ports::kHttp, 0.30},
      {PayloadKind::kHttpResponse, Protocol::kTcp, ports::kHttp, 0.20},
      {PayloadKind::kSmtp, Protocol::kTcp, ports::kSmtp, 0.15},
      {PayloadKind::kFtp, Protocol::kTcp, ports::kFtp, 0.10},
      {PayloadKind::kTelnet, Protocol::kTcp, ports::kTelnet, 0.10},
      {PayloadKind::kDns, Protocol::kUdp, ports::kDns, 0.15},
  };
  p.flows_per_sec = 40.0;
  p.burst_factor = 2.0;
  p.burst_fraction = 0.10;
  p.mean_burst_sec = 0.7;
  p.mean_packets_per_flow = 10.0;
  p.flow_tail_alpha = 1.8;
  p.mean_payload_bytes = 320.0;
  p.payload_jitter = 0.45;
  p.mean_pkt_interval_ms = 4.0;
  p.external_fraction = 0.35;
  return p;
}

EnvironmentProfile random_flood_profile() {
  EnvironmentProfile p;
  p.name = "random_flood";
  p.mix = {
      {PayloadKind::kRandom, Protocol::kTcp, ports::kHttp, 0.70},
      {PayloadKind::kRandom, Protocol::kUdp, ports::kDns, 0.30},
  };
  p.flows_per_sec = 80.0;
  p.burst_factor = 1.0;
  p.burst_fraction = 0.0;
  p.mean_packets_per_flow = 14.0;
  p.flow_tail_alpha = 1.5;
  p.mean_payload_bytes = 420.0;
  p.payload_jitter = 0.60;
  p.mean_pkt_interval_ms = 3.0;
  p.external_fraction = 0.85;
  return p;
}

EnvironmentProfile megaflow_profile() {
  EnvironmentProfile p;
  p.name = "megaflow";
  // Pure TCP so every flow carries an explicit FIN: flow-table entries
  // keyed on liveness (LB pins, monitor dedup) can all be reclaimed.
  p.mix = {
      {PayloadKind::kHttpRequest, Protocol::kTcp, ports::kHttp, 0.45},
      {PayloadKind::kClusterRpc, Protocol::kTcp, ports::kClusterRpc, 0.35},
      {PayloadKind::kSmtp, Protocol::kTcp, ports::kSmtp, 0.20},
  };
  p.flows_per_sec = 250.0;         // bench scales this up ~200x
  p.burst_factor = 1.0;            // steady state: liveness is the knob
  p.burst_fraction = 0.0;
  p.mean_packets_per_flow = 20.0;
  p.flow_tail_alpha = 2.2;
  p.mean_payload_bytes = 96.0;     // thin keep-alive style packets
  p.payload_jitter = 0.25;
  p.mean_pkt_interval_ms = 1000.0; // slow pacing -> ~19s mean lifetime
  p.external_fraction = 0.10;
  return p;
}

EnvironmentProfile ics_profile() {
  EnvironmentProfile p;
  p.name = "ics";
  // A control enclave polls field devices on a fixed scan cycle: almost
  // everything is Modbus-style register readout, with a thin supervisory
  // RPC/DNS sliver. No burst state — the scan clock never flash-crowds.
  p.mix = {
      {PayloadKind::kIcsControl, Protocol::kTcp, ports::kModbus, 0.88},
      {PayloadKind::kClusterRpc, Protocol::kTcp, ports::kClusterRpc, 0.08},
      {PayloadKind::kDns, Protocol::kUdp, ports::kDns, 0.04},
  };
  p.flows_per_sec = 90.0;         // fixed-rate scan cycles
  p.burst_factor = 1.0;           // periodic traffic does not burst
  p.burst_fraction = 0.0;
  p.mean_packets_per_flow = 8.0;  // one poll/response exchange per device
  p.flow_tail_alpha = 4.0;        // essentially no long flows
  p.mean_payload_bytes = 64.0;    // tiny register frames
  p.payload_jitter = 0.05;        // near-constant sizes
  p.mean_pkt_interval_ms = 0.4;   // tight inter-arrival jitter
  p.external_fraction = 0.01;     // air-gapped except a historian uplink
  return p;
}

EnvironmentProfile canbus_profile() {
  EnvironmentProfile p;
  p.name = "canbus";
  // A CAN segment bridged onto the LAN: a firehose of fixed-size frames
  // from a small id space, plus a sliver of diagnostic register reads.
  p.mix = {
      {PayloadKind::kCanFrame, Protocol::kUdp, ports::kCanBus, 0.97},
      {PayloadKind::kIcsControl, Protocol::kTcp, ports::kModbus, 0.03},
  };
  p.flows_per_sec = 300.0;        // high frame rate, short bursts of ids
  p.burst_factor = 1.0;
  p.burst_fraction = 0.0;
  p.mean_packets_per_flow = 4.0;  // a frame train per arbitration id
  p.flow_tail_alpha = 4.0;
  p.mean_payload_bytes = 40.0;    // frames are fixed-size (~40 B bridged)
  p.payload_jitter = 0.0;         // zero size variance
  p.mean_pkt_interval_ms = 0.2;   // bus-speed pacing
  p.external_fraction = 0.0;      // nothing on a CAN segment is external
  return p;
}

EnvironmentProfile profile_by_name(const std::string& name) {
  if (name == "rt_cluster") return rt_cluster_profile();
  if (name == "ecommerce") return ecommerce_profile();
  if (name == "office") return office_profile();
  if (name == "random_flood") return random_flood_profile();
  if (name == "megaflow") return megaflow_profile();
  if (name == "ics") return ics_profile();
  if (name == "canbus") return canbus_profile();
  throw std::invalid_argument("unknown traffic profile: " + name);
}

}  // namespace idseval::traffic
