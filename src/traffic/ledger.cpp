#include "traffic/ledger.hpp"

#include <stdexcept>

namespace idseval::traffic {

TransactionLedger::TransactionLedger() {
  telemetry::bind_flow_table(by_flow_);
}

Transaction& TransactionLedger::begin(std::uint64_t flow_id,
                                      const netsim::FiveTuple& tuple,
                                      netsim::SimTime start, bool is_attack,
                                      int attack_kind, int attack_stage) {
  auto [value, inserted] = by_flow_.try_emplace(flow_id);
  if (!inserted) {
    throw std::invalid_argument("TransactionLedger: duplicate flow id " +
                                std::to_string(flow_id));
  }
  Transaction& t = *value;
  t.flow_id = flow_id;
  t.tuple = tuple;
  t.start = start;
  t.end = start;
  t.is_attack = is_attack;
  t.attack_kind = attack_kind;
  t.attack_stage = attack_stage;
  order_.push_back(flow_id);
  if (is_attack) ++attacks_;
  return t;
}

void TransactionLedger::touch(std::uint64_t flow_id, netsim::SimTime when,
                              std::uint64_t bytes) {
  Transaction* t = by_flow_.find(flow_id);
  if (t == nullptr) return;
  ++t->packets;
  t->bytes += bytes;
  if (when > t->end) t->end = when;
}

const Transaction* TransactionLedger::find(std::uint64_t flow_id) const {
  return by_flow_.find(flow_id);
}

bool TransactionLedger::is_attack(std::uint64_t flow_id) const {
  const Transaction* t = find(flow_id);
  return t != nullptr && t->is_attack;
}

std::vector<const Transaction*> TransactionLedger::all() const {
  std::vector<const Transaction*> out;
  out.reserve(order_.size());
  for (const auto id : order_) out.push_back(by_flow_.find(id));
  return out;
}

std::vector<const Transaction*> TransactionLedger::attacks() const {
  std::vector<const Transaction*> out;
  out.reserve(attacks_);
  for (const auto id : order_) {
    const Transaction* t = by_flow_.find(id);
    if (t->is_attack) out.push_back(t);
  }
  return out;
}

}  // namespace idseval::traffic
