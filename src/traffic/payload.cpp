#include "traffic/payload.hpp"

#include <array>
#include <string_view>

#include "util/strfmt.hpp"

namespace idseval::traffic {

using util::cat;

namespace {

constexpr std::array<std::string_view, 24> kWords = {
    "track",  "sensor",  "update",  "status",  "contact", "bearing",
    "range",  "report",  "system",  "channel", "message", "engage",
    "radar",  "console", "monitor", "network", "cluster", "packet",
    "signal", "vector",  "profile", "target",  "station", "relay"};

// "root" appears because real operators do log in as root; a weak
// signature rule keyed on root logins will therefore occasionally fire on
// legitimate traffic — the paper's Type I error source (Figure 3).
constexpr std::array<std::string_view, 13> kUsers = {
    "operator", "admin",   "jsmith",  "mbrown", "watch1", "watch2",
    "sysop",    "analyst", "chief",   "tech3",  "ensign", "ops",
    "root"};

constexpr std::array<std::string_view, 8> kHostPrefixes = {
    "tactical", "console", "sensor", "relay",
    "gateway",  "archive", "bridge", "node"};

constexpr std::array<std::string_view, 6> kDomains = {
    "fleet.mil", "lan.local", "ops.net", "corp.example",
    "shop.example", "cluster.grid"};

constexpr std::array<std::string_view, 8> kUserAgents = {
    "Mozilla/4.0 (compatible; MSIE 5.5; Windows NT 5.0)",
    "Mozilla/4.7 [en] (X11; U; SunOS 5.8)",
    "Lynx/2.8.4rel.1 libwww-FM/2.14",
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows 98)",
    "Wget/1.7",
    "Java1.3.1",
    "libwww-perl/5.53",
    "Mozilla/4.76 [en] (Windows NT 5.0; U)"};

// Includes genuine sysadmin commands ("cat /etc/passwd", "su - root")
// that overlap weak attack signatures — legitimate admin work is the
// classic source of signature false positives.
constexpr std::array<std::string_view, 12> kShellCmds = {
    "ls -la /var/log", "ps -ef | grep ids", "cat status.txt",
    "tail -f /var/log/messages", "df -k", "netstat -an",
    "uptime", "who", "vmstat 5 3", "top -b -n 1",
    "cat /etc/passwd | wc -l", "su - root"};

std::string_view pick(util::Rng& rng, const auto& table) {
  return table[rng.index(table.size())];
}

}  // namespace

std::string to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kHttpRequest:
      return "http-request";
    case PayloadKind::kHttpResponse:
      return "http-response";
    case PayloadKind::kSmtp:
      return "smtp";
    case PayloadKind::kFtp:
      return "ftp";
    case PayloadKind::kTelnet:
      return "telnet";
    case PayloadKind::kDns:
      return "dns";
    case PayloadKind::kClusterRpc:
      return "cluster-rpc";
    case PayloadKind::kRandom:
      return "random";
    case PayloadKind::kIcsControl:
      return "ics-control";
    case PayloadKind::kCanFrame:
      return "can-frame";
  }
  return "?";
}

std::string random_http_path(util::Rng& rng) {
  std::string path = cat("/", pick(rng, kWords), "/", pick(rng, kWords));
  if (rng.chance(0.4)) {
    path += cat("?id=", rng.uniform_u64(1, 9999));
  } else if (rng.chance(0.3)) {
    path += ".html";
  }
  return path;
}

std::string random_username(util::Rng& rng) {
  return std::string(pick(rng, kUsers));
}

std::string random_hostname(util::Rng& rng) {
  return cat(pick(rng, kHostPrefixes), "-", rng.uniform_u64(1, 48), ".",
             pick(rng, kDomains));
}

std::string random_words(std::size_t target_len, util::Rng& rng) {
  std::string out;
  while (out.size() < target_len) {
    if (!out.empty()) out += ' ';
    out += pick(rng, kWords);
  }
  if (out.size() > target_len) out.resize(target_len);
  return out;
}

std::string random_printable(std::size_t len, util::Rng& rng) {
  std::string out(len, ' ');
  for (auto& c : out) {
    c = static_cast<char>('!' + rng.index(94));  // printable ASCII
  }
  return out;
}

namespace {

std::string make_http_request(std::size_t target_len, util::Rng& rng) {
  const bool is_post = rng.chance(0.15);
  std::string body;
  std::string req =
      cat(is_post ? "POST" : "GET", " ", random_http_path(rng),
          " HTTP/1.0\r\nHost: ", random_hostname(rng),
          "\r\nUser-Agent: ", pick(rng, kUserAgents),
          "\r\nAccept: text/html, image/gif, image/jpeg\r\n");
  if (is_post) {
    const std::size_t body_len =
        target_len > req.size() + 64 ? target_len - req.size() - 64 : 32;
    body = cat("user=", random_username(rng),
               "&note=", random_words(body_len, rng));
    req += cat("Content-Type: application/x-www-form-urlencoded\r\n",
               "Content-Length: ", body.size(), "\r\n");
  }
  req += "\r\n";
  req += body;
  if (req.size() < target_len) {
    // Pad with a benign header rather than trailing junk.
    req.insert(req.find("\r\n\r\n"),
               cat("\r\nX-Padding: ",
                   random_printable(target_len - req.size(), rng)));
  }
  return req;
}

std::string make_http_response(std::size_t target_len, util::Rng& rng) {
  const std::size_t head = 120;
  const std::size_t body_len = target_len > head ? target_len - head : 64;
  std::string body =
      cat("<html><head><title>", pick(rng, kWords),
          "</title></head><body><p>", random_words(body_len, rng),
          "</p></body></html>");
  return cat("HTTP/1.0 200 OK\r\nServer: Apache/1.3.20 (Unix)\r\n",
             "Content-Type: text/html\r\nContent-Length: ", body.size(),
             "\r\n\r\n", body);
}

std::string make_smtp(std::size_t target_len, util::Rng& rng) {
  const std::size_t body_len = target_len > 200 ? target_len - 200 : 64;
  return cat("HELO ", random_hostname(rng), "\r\nMAIL FROM:<",
             random_username(rng), "@", pick(rng, kDomains),
             ">\r\nRCPT TO:<", random_username(rng), "@",
             pick(rng, kDomains), ">\r\nDATA\r\nSubject: ",
             random_words(24, rng), "\r\n\r\n", random_words(body_len, rng),
             "\r\n.\r\nQUIT\r\n");
}

std::string make_ftp(std::size_t /*target_len*/, util::Rng& rng) {
  return cat("USER ", random_username(rng), "\r\nPASS ",
             random_printable(8, rng), "\r\nCWD /pub/", pick(rng, kWords),
             "\r\nTYPE I\r\nRETR ", pick(rng, kWords), ".dat\r\nQUIT\r\n");
}

std::string make_telnet(std::size_t target_len, util::Rng& rng) {
  std::string out = cat("login: ", random_username(rng),
                        "\r\nPassword: ", random_printable(8, rng), "\r\n$ ");
  while (out.size() < target_len) {
    out += cat(pick(rng, kShellCmds), "\r\n$ ");
  }
  return out;
}

std::string make_dns(std::size_t /*target_len*/, util::Rng& rng) {
  return cat("QUERY A ", random_hostname(rng), " ID=",
             rng.uniform_u64(0, 65535), " RD=1");
}

std::string make_cluster_rpc(std::size_t target_len, util::Rng& rng) {
  // Simulated real-time bus message: fixed-field header + telemetry body.
  // Cluster traffic is highly regular — that regularity is what lets an
  // anomaly-based IDS learn a tight baseline in a constrained environment
  // (§2.1's maxim about constrained application environments).
  std::string out = cat(
      "RTBUS/1 seq=", rng.uniform_u64(1, 1u << 20),
      " node=", rng.uniform_u64(1, 32), " cmd=TRACK_UPDATE tracks=",
      rng.uniform_u64(1, 12), " ");
  while (out.size() < target_len) {
    out += cat("t", rng.uniform_u64(100, 999), "=",
               util::fmt_fixed(rng.uniform(-90.0, 90.0), 4), ",",
               util::fmt_fixed(rng.uniform(-180.0, 180.0), 4), ",",
               util::fmt_fixed(rng.uniform(0.0, 600.0), 1), " ");
  }
  if (out.size() > target_len) out.resize(target_len);
  return out;
}

std::string make_ics_control(std::size_t target_len, util::Rng& rng) {
  // Periodic control-loop frame (SCADA/Modbus-style register readout):
  // the same fixed fields every cycle with only small sensed-value jitter
  // — the near-zero-entropy workload the ICS evaluation SoK singles out.
  // Drawing each register from a narrow band keeps byte-level entropy far
  // below any web/mail payload while remaining deterministic per seed.
  std::string out =
      cat("ICS/1 unit=", rng.uniform_u64(1, 8),
          " fc=READ_HOLDING addr=", 40001 + 10 * rng.uniform_u64(0, 7),
          " ");
  while (out.size() < target_len) {
    out += cat("r=", util::fmt_fixed(50.0 + rng.uniform(-0.5, 0.5), 2),
               " ");
  }
  if (out.size() > target_len) out.resize(target_len);
  return out;
}

std::string make_can_frame(std::size_t /*target_len*/, util::Rng& rng) {
  // CAN-style frame bridged onto the simulated network: an 11-bit-ish id
  // from a deliberately tiny id space and exactly eight data bytes, most
  // of which sit at fixed idle values. Length is fixed regardless of the
  // target hint — real CAN frames don't stretch.
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string data(16, '0');
  // Two live signal bytes; the rest of the frame stays at idle 0x00.
  data[0] = kHex[rng.index(16)];
  data[1] = kHex[rng.index(16)];
  data[2] = kHex[rng.index(16)];
  data[3] = kHex[rng.index(16)];
  return cat("CAN id=0x10", kHex[rng.index(16)], " dlc=8 data=", data);
}

}  // namespace

std::string synthesize(PayloadKind kind, std::size_t target_len,
                       util::Rng& rng) {
  switch (kind) {
    case PayloadKind::kHttpRequest:
      return make_http_request(target_len, rng);
    case PayloadKind::kHttpResponse:
      return make_http_response(target_len, rng);
    case PayloadKind::kSmtp:
      return make_smtp(target_len, rng);
    case PayloadKind::kFtp:
      return make_ftp(target_len, rng);
    case PayloadKind::kTelnet:
      return make_telnet(target_len, rng);
    case PayloadKind::kDns:
      return make_dns(target_len, rng);
    case PayloadKind::kClusterRpc:
      return make_cluster_rpc(target_len, rng);
    case PayloadKind::kRandom:
      return random_printable(target_len, rng);
    case PayloadKind::kIcsControl:
      return make_ics_control(target_len, rng);
    case PayloadKind::kCanFrame:
      return make_can_frame(target_len, rng);
  }
  return {};
}

}  // namespace idseval::traffic
