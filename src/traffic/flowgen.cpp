#include "traffic/flowgen.hpp"

#include <algorithm>
#include <stdexcept>

namespace idseval::traffic {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimTime;

FlowGenerator::FlowGenerator(netsim::Simulator& sim, netsim::Network& net,
                             TransactionLedger* ledger,
                             EnvironmentProfile profile, std::uint64_t seed,
                             PayloadPool* pool)
    : sim_(sim),
      net_(net),
      ledger_(ledger),
      profile_(std::move(profile)),
      rng_(seed),
      owned_pool_(pool == nullptr
                      ? std::make_unique<PayloadPool>(
                            seed ^ util::hash64("flowgen-payloads"))
                      : nullptr),
      pool_(pool == nullptr ? owned_pool_.get() : pool) {
  mix_weights_.reserve(profile_.mix.size());
  for (const auto& share : profile_.mix) {
    mix_weights_.push_back(share.weight);
  }
  if (profile_.mix.empty()) {
    throw std::invalid_argument("FlowGenerator: profile has empty mix");
  }
}

void FlowGenerator::set_internal_hosts(std::vector<Ipv4> hosts) {
  internal_ = std::move(hosts);
}

void FlowGenerator::set_external_hosts(std::vector<Ipv4> hosts) {
  external_ = std::move(hosts);
}

void FlowGenerator::set_source_hosts(std::vector<Ipv4> hosts) {
  sources_ = std::move(hosts);
}

void FlowGenerator::start(SimTime until) {
  if (internal_.empty()) {
    throw std::logic_error("FlowGenerator: no internal hosts configured");
  }
  stop_time_ = until;
  started_ = true;
  schedule_next_arrival();
  if (profile_.burst_fraction > 0.0) toggle_burst();
}

double FlowGenerator::current_rate() const noexcept {
  const double base = profile_.flows_per_sec * rate_scale_;
  return in_burst_ ? base * profile_.burst_factor : base;
}

void FlowGenerator::toggle_burst() {
  // Two-state MMPP: sojourn times chosen so the long-run burst-state
  // fraction matches profile_.burst_fraction.
  const double f = std::clamp(profile_.burst_fraction, 0.0, 0.95);
  if (f <= 0.0) return;
  const double mean_burst = std::max(1e-3, profile_.mean_burst_sec);
  const double mean_normal = mean_burst * (1.0 - f) / f;
  const double sojourn =
      rng_.exponential(1.0 / (in_burst_ ? mean_burst : mean_normal));
  sim_.schedule_in(SimTime::from_sec(sojourn), [this] {
    if (sim_.now() >= stop_time_) return;
    in_burst_ = !in_burst_;
    toggle_burst();
  });
}

void FlowGenerator::schedule_next_arrival() {
  const double rate = current_rate();
  if (rate <= 0.0) return;
  const double gap = rng_.exponential(rate);
  sim_.schedule_in(SimTime::from_sec(gap), [this] {
    if (sim_.now() >= stop_time_) return;
    launch_flow();
    schedule_next_arrival();
  });
}

Ipv4 FlowGenerator::pick_source() {
  const bool external =
      !external_.empty() && rng_.chance(profile_.external_fraction);
  const auto& pool =
      external ? external_ : (sources_.empty() ? internal_ : sources_);
  return pool[rng_.index(pool.size())];
}

Ipv4 FlowGenerator::pick_destination(Ipv4 source) {
  // Destinations are always internal (the protected enclave); avoid
  // self-talk when possible. A Zipf exponent concentrates load on the
  // first hosts of the pool (the "busy servers").
  auto pick = [this]() -> Ipv4 {
    if (profile_.dest_zipf_s > 0.0) {
      return internal_[rng_.zipf(internal_.size(), profile_.dest_zipf_s)];
    }
    return internal_[rng_.index(internal_.size())];
  };
  for (int attempt = 0; attempt < 8; ++attempt) {
    const Ipv4 dst = pick();
    if (dst != source) return dst;
  }
  return pick();
}

FlowGenerator::FlowHandle FlowGenerator::alloc_flow_state() {
  if (free_head_ != kNilHandle) {
    const FlowHandle handle = free_head_;
    free_head_ = slab_[handle].next_free;
    slab_[handle].next_free = kNilHandle;
    ++live_flows_;
    return handle;
  }
  slab_.emplace_back();
  ++live_flows_;
  return static_cast<FlowHandle>(slab_.size() - 1);
}

void FlowGenerator::release_flow_state(FlowHandle handle) {
  slab_[handle].next_free = free_head_;
  free_head_ = handle;
  --live_flows_;
}

void FlowGenerator::launch_flow() {
  const auto& share = profile_.mix[rng_.weighted_index(mix_weights_)];

  FiveTuple tuple;
  tuple.src_ip = pick_source();
  tuple.dst_ip = pick_destination(tuple.src_ip);
  tuple.src_port =
      static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = share.dst_port;
  tuple.proto = share.proto;

  // Pareto-distributed flow length with the configured mean:
  // E[X] = xm * alpha / (alpha - 1)  =>  xm = mean * (alpha - 1) / alpha.
  const double alpha = std::max(1.05, profile_.flow_tail_alpha);
  const double xm = profile_.mean_packets_per_flow * (alpha - 1.0) / alpha;
  const auto packets = static_cast<std::uint32_t>(
      std::clamp(rng_.pareto(std::max(1.0, xm), alpha), 1.0, 10000.0));

  const std::uint64_t flow_id = sim_.next_flow_id();
  Transaction* txn = nullptr;
  if (ledger_ != nullptr) {
    txn = &ledger_->begin(flow_id, tuple, sim_.now(), /*is_attack=*/false);
  }
  ++stats_.flows_started;

  const FlowHandle handle = alloc_flow_state();
  FlowState& st = slab_[handle];
  st.tuple = tuple;
  st.flow_id = flow_id;
  st.txn = txn;
  st.interval_ms = profile_.mean_pkt_interval_ms;
  st.seq = 0;
  st.remaining = packets;
  st.kind = share.kind;
  step_flow(handle);
}

void FlowGenerator::step_flow(FlowHandle handle) {
  FlowState& st = slab_[handle];

  const double jitter = std::max(
      16.0, rng_.normal(profile_.mean_payload_bytes,
                        profile_.mean_payload_bytes * profile_.payload_jitter));
  const auto payload_len =
      static_cast<std::size_t>(std::min(jitter, 1400.0));

  Packet p = netsim::make_packet(sim_.next_packet_id(), st.flow_id,
                                 sim_.now(), st.tuple,
                                 pool_->background(st.kind, payload_len));
  p.seq = st.seq;
  if (st.tuple.proto == Protocol::kTcp) {
    p.flags.syn = (st.seq == 0);
    p.flags.ack = (st.seq != 0);
    p.flags.fin = (st.remaining == 1);
  }

  net_.send(p);
  ++stats_.packets_emitted;
  stats_.bytes_emitted += p.wire_bytes();
  if (st.txn != nullptr) {
    TransactionLedger::touch(*st.txn, sim_.now(), p.wire_bytes());
  }

  if (st.remaining > 1) {
    ++st.seq;
    --st.remaining;
    const double gap_ms =
        rng_.exponential(1.0 / std::max(1e-3, st.interval_ms));
    sim_.schedule_in(SimTime::from_ms(gap_ms),
                     [this, handle] { step_flow(handle); });
  } else {
    release_flow_state(handle);
  }
}

void FlowGenerator::emit_burst(Ipv4 src, Ipv4 dst, std::uint16_t dst_port,
                               std::uint32_t count,
                               std::size_t payload_bytes) {
  if (count == 0) return;
  FiveTuple tuple;
  tuple.src_ip = src;
  tuple.dst_ip = dst;
  tuple.src_port =
      static_cast<std::uint16_t>(rng_.uniform_u64(1024, 65535));
  tuple.dst_port = dst_port;
  tuple.proto = Protocol::kTcp;

  const std::uint64_t flow_id = sim_.next_flow_id();
  Transaction* txn = nullptr;
  if (ledger_ != nullptr) {
    txn = &ledger_->begin(flow_id, tuple, sim_.now(), /*is_attack=*/false);
  }
  ++stats_.flows_started;

  for (std::uint32_t seq = 0; seq < count; ++seq) {
    Packet p = netsim::make_packet(
        sim_.next_packet_id(), flow_id, sim_.now(), tuple,
        pool_->background(PayloadKind::kRandom, payload_bytes));
    p.seq = seq;
    p.flags.syn = (seq == 0);
    p.flags.ack = (seq != 0);
    p.flags.fin = (seq + 1 == count);
    net_.send(p);
    ++stats_.packets_emitted;
    stats_.bytes_emitted += p.wire_bytes();
    if (txn != nullptr) {
      TransactionLedger::touch(*txn, sim_.now(), p.wire_bytes());
    }
  }
}

}  // namespace idseval::traffic
