// Packet-trace record and replay. §4's second lesson: the only practical
// way to observe the false-negative ratio is to replay canned data with
// *known* attack content. A Trace captures packets (typically via a
// switch mirror), serializes to a text format, and replays into any
// network — optionally time-scaled, which gives a load knob with fully
// fixed content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"

namespace idseval::traffic {

struct TraceEntry {
  netsim::SimTime offset;  ///< Relative to trace start.
  netsim::Packet packet;
};

class Trace {
 public:
  Trace() = default;

  void append(netsim::SimTime offset, const netsim::Packet& packet);
  /// Appends with offset = when - first packet's absolute time.
  void append_absolute(netsim::SimTime when, const netsim::Packet& packet);

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  netsim::SimTime duration() const noexcept;

  /// Schedules every packet into `sim`, re-emitting through `net` starting
  /// at `start`. `time_scale` < 1 compresses the trace (higher load).
  /// Flow ids and packet ids are remapped to fresh ids from `sim`; the
  /// mapping old-flow -> new-flow is returned so ground truth can follow.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> replay(
      netsim::Simulator& sim, netsim::Network& net, netsim::SimTime start,
      double time_scale = 1.0) const;

  /// Line-oriented text serialization (hex-escaped payloads).
  std::string serialize() const;
  static Trace deserialize(const std::string& text);

 private:
  std::vector<TraceEntry> entries_;
  bool have_base_ = false;
  netsim::SimTime base_;
};

}  // namespace idseval::traffic
