// Per-simulation payload interning. Synthesizing a fresh payload string
// for every packet was the traffic generator's dominant allocation cost:
// each packet paid for string building plus a shared_ptr control block.
// The pool interns payloads by content family and hands out
// shared_ptr<const std::string> references from a deterministic, seeded
// variant cycle — after the first cycle through a family, packet emission
// performs no allocation beyond a refcount bump.
//
// Realism is preserved the way the paper's §4 lesson demands: pooled
// payloads are produced by the same synthesizers (protocol-shaped
// content, signature-bearing attack bytes), only their diversity is
// bounded to `variants` realizations per family. Determinism: content
// depends solely on (pool seed, family, variant index), and the cycle
// position advances in simulation order, so a fixed-seed run replays
// byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/registry.hpp"
#include "traffic/payload.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace idseval::traffic {

class PayloadPool {
 public:
  using Ref = std::shared_ptr<const std::string>;
  using Refs = std::vector<Ref>;
  /// Builds one variant of an attack payload; all randomness must come
  /// from the provided rng so the variant is a pure function of its seed.
  using Builder = std::function<std::string(util::Rng&)>;
  using MultiBuilder = std::function<std::vector<std::string>(util::Rng&)>;

  explicit PayloadPool(std::uint64_t seed, std::size_t variants = 32);

  /// Background-traffic payload of the given kind, interned by
  /// (kind, length bucket). Lengths are quantized to kLengthGranularity
  /// so nearby jittered sizes share cache entries.
  Ref background(PayloadKind kind, std::size_t target_len);

  /// Attack payload interned by call-site family name. `build` runs only
  /// on the first touch of each (family, variant); afterwards the cached
  /// string is cycled. Signature bytes placed by the builder are
  /// therefore present in every handout.
  Ref attack(std::string_view family, const Builder& build);

  /// Multi-packet attack payloads whose pieces must stay mutually
  /// consistent (e.g. fragments cut from one reassembled request).
  /// Returns the variant's full piece list; the reference is valid until
  /// the next attack_family call for the same family.
  const Refs& attack_family(std::string_view family,
                            const MultiBuilder& build);

  /// Enables adaptive growth for one background payload kind: once a
  /// family of that kind has cycled through all of its variants, its
  /// variant count doubles (up to `max_variants`) and the new slots are
  /// minted lazily with the same deterministic per-slot seeds. Low-entropy
  /// kinds (ICS control frames, CAN frames) need this — with the default
  /// 32-variant cycle an anomaly engine would see a frozen payload
  /// universe and learn an artificially tight baseline. Kinds without a
  /// policy keep the exact legacy fixed-cycle behavior. Call before
  /// traffic starts; growing mid-run is deterministic but changes the
  /// handout sequence relative to a non-growing pool.
  void enable_growth(PayloadKind kind, std::size_t max_variants);

  /// Upper bound on extra variants growth may mint beyond the base cycle,
  /// summed over enabled kinds. Near-constant payload sizes confine each
  /// grown kind to a handful of length buckets, so the bound assumes at
  /// most kGrownBucketsPerKind buckets per kind. Engines pre-size their
  /// interned-payload scan memos by this amount (ids::PayloadMemo), so
  /// freshly minted variants never overflow into uncached full scans.
  std::size_t growth_headroom() const noexcept;

  /// Variants actually minted beyond the base cycle so far.
  std::size_t grown_variants() const noexcept { return grown_; }

  std::size_t variants() const noexcept { return variants_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  /// Number of distinct interned strings (all families, all variants).
  std::size_t interned_strings() const noexcept { return interned_; }
  std::uint64_t interned_bytes() const noexcept { return interned_bytes_; }

  /// Length quantum for background payload interning.
  static constexpr std::size_t kLengthGranularity = 32;
  static constexpr std::size_t kMinLen = 16;
  static constexpr std::size_t kMaxLen = 1400;
  /// Length buckets a growable kind is assumed to span (see
  /// growth_headroom): grown kinds have near-constant payload sizes, so
  /// jitter reaches at most a couple of granules around the mean.
  static constexpr std::size_t kGrownBucketsPerKind = 4;
  /// Default growth ceiling for low-entropy kinds (the harness's choice):
  /// 8× the base cycle keeps entropy estimates honest without unbounded
  /// memory.
  static constexpr std::size_t kGrowthMaxVariants = 256;
  static std::size_t bucket_len(std::size_t target_len) noexcept;

 private:
  struct Family {
    std::vector<Ref> slots;
    std::size_t cursor = 0;
  };
  struct MultiFamily {
    std::vector<Refs> slots;
    std::size_t cursor = 0;
  };

  /// `limit` > variants_ marks the family growable up to that count;
  /// 0 (the default everywhere but growth-enabled background kinds)
  /// reproduces the fixed-cycle legacy behavior bit-exactly.
  Ref intern(Family& family, std::uint64_t family_seed,
             const std::function<std::string(util::Rng&)>& build,
             std::size_t limit = 0);
  void note_hit() noexcept;
  void note_miss(std::size_t strings, std::uint64_t bytes) noexcept;

  std::uint64_t seed_;
  std::size_t variants_;
  /// Growth policy per background kind: max variant count.
  util::FlatMap<PayloadKind, std::size_t> growth_;
  std::size_t grown_ = 0;
  /// Background families keyed by (kind << 32) | bucket.
  std::unordered_map<std::uint64_t, Family> background_;
  /// Attack families keyed by name (heterogeneous lookup, no per-call
  /// string construction).
  std::map<std::string, Family, std::less<>> attacks_;
  std::map<std::string, MultiFamily, std::less<>> multi_attacks_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t interned_ = 0;
  std::uint64_t interned_bytes_ = 0;
  telemetry::Counter* tele_hits_ = nullptr;
  telemetry::Counter* tele_misses_ = nullptr;
  telemetry::Counter* tele_grown_ = nullptr;
};

}  // namespace idseval::traffic
