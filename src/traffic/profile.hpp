// Environment traffic profiles. §4 of the paper: "IDSs perform
// differently in the presence of different kinds of network traffic.
// Distributed systems with high levels of inter-host trust on a
// high-speed LAN will have distinctive traffic compared to that of a web
// server in an e-commerce shop." Each profile captures one such
// environment; the harness evaluates every product under the profile the
// procurer actually runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/address.hpp"
#include "traffic/payload.hpp"

namespace idseval::traffic {

/// One protocol's share of the traffic mix.
struct ProtocolShare {
  PayloadKind kind = PayloadKind::kHttpRequest;
  netsim::Protocol proto = netsim::Protocol::kTcp;
  std::uint16_t dst_port = netsim::ports::kHttp;
  double weight = 1.0;
};

/// A Markov-modulated Poisson arrival process plus flow-shape parameters.
struct EnvironmentProfile {
  std::string name;
  std::vector<ProtocolShare> mix;

  double flows_per_sec = 50.0;       ///< Mean arrival rate, normal state.
  double burst_factor = 1.0;         ///< Rate multiplier in burst state.
  double burst_fraction = 0.0;       ///< Long-run fraction of time bursty.
  double mean_burst_sec = 0.5;       ///< Mean sojourn in burst state.

  double mean_packets_per_flow = 12.0;
  double flow_tail_alpha = 1.8;      ///< Pareto shape for flow lengths.
  double mean_payload_bytes = 300.0;
  double payload_jitter = 0.35;      ///< Relative stddev of payload size.
  double mean_pkt_interval_ms = 2.0; ///< Pacing within a flow.
  double external_fraction = 0.3;    ///< Flows originating off-LAN.
  /// Zipf exponent for destination popularity (0 = uniform): real
  /// networks concentrate traffic on a few busy servers, which is what
  /// separates placement-based load balancing from dynamic balancing.
  double dest_zipf_s = 0.0;
};

/// Distributed real-time cluster (the paper's motivating environment):
/// dominated by regular cluster-RPC bus traffic among trusted hosts,
/// little external traffic, tight payload regularity.
EnvironmentProfile rt_cluster_profile();

/// E-commerce web front: external HTTP-heavy, bursty, diverse payloads —
/// the environment commercial IDSes are typically tuned for.
EnvironmentProfile ecommerce_profile();

/// General office LAN: mixed mail/web/ftp/telnet.
EnvironmentProfile office_profile();

/// Meaningless random-payload flood at web-like rates — the §4 negative
/// example. Used by the X3 ablation to show why it mis-measures
/// payload-inspecting IDSes.
EnvironmentProfile random_flood_profile();

/// Flow-table stress environment: a data-center front at flow-arrival
/// rates where the *number of concurrently live flows* is the scaling
/// variable (~10^6 live at the bench's rate scale). Long-lived pure-TCP
/// flows with slow pacing, so live-flow count ≈ rate × duration dwarfs
/// the per-tick packet load. Drives the megaflow bench section.
EnvironmentProfile megaflow_profile();

/// Industrial control enclave (SoK on ICS IDS evaluation): periodic
/// control-loop register traffic at a fixed rate — no bursts, tight
/// inter-arrival jitter, tiny low-entropy Modbus-style payloads, almost
/// no external flows. Stresses anomaly engines with a near-degenerate
/// baseline where any payload variety stands out.
EnvironmentProfile ics_profile();

/// CAN-style embedded bus bridged onto the LAN: very high frame rate,
/// tiny fixed-size frames drawn from a small id space, zero payload size
/// variance. Stresses the per-packet fast path and the megaflow-era flow
/// table with many short identical-shape flows.
EnvironmentProfile canbus_profile();

/// Look up a built-in profile by name ("rt_cluster", "ecommerce",
/// "office", "random_flood", "megaflow", "ics", "canbus"); throws
/// std::invalid_argument otherwise.
EnvironmentProfile profile_by_name(const std::string& name);

}  // namespace idseval::traffic
