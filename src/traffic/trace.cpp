#include "traffic/trace.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace idseval::traffic {

using netsim::Packet;
using netsim::SimTime;

void Trace::append(SimTime offset, const Packet& packet) {
  entries_.push_back(TraceEntry{offset, packet});
}

void Trace::append_absolute(SimTime when, const Packet& packet) {
  if (!have_base_) {
    base_ = when;
    have_base_ = true;
  }
  append(when - base_, packet);
}

SimTime Trace::duration() const noexcept {
  return entries_.empty() ? SimTime::zero() : entries_.back().offset;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Trace::replay(
    netsim::Simulator& sim, netsim::Network& net, SimTime start,
    double time_scale) const {
  std::unordered_map<std::uint64_t, std::uint64_t> flow_map;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> mapping;
  for (const auto& entry : entries_) {
    auto [it, inserted] =
        flow_map.try_emplace(entry.packet.flow_id, 0);
    if (inserted) {
      it->second = sim.next_flow_id();
      mapping.emplace_back(entry.packet.flow_id, it->second);
    }
    Packet copy = entry.packet;
    copy.id = sim.next_packet_id();
    copy.flow_id = it->second;
    const SimTime when = start + entry.offset * time_scale;
    sim.schedule_at(when, [&net, copy, when]() mutable {
      copy.created = when;
      net.send(copy);
    });
  }
  return mapping;
}

namespace {

std::string hex_encode(const std::string& raw) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(raw.size() * 2);
  for (unsigned char c : raw) {
    out += kHex[c >> 4];
    out += kHex[c & 0xf];
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("Trace: bad hex digit");
}

std::string hex_decode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("Trace: odd hex length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out += static_cast<char>((hex_nibble(hex[i]) << 4) |
                             hex_nibble(hex[i + 1]));
  }
  return out;
}

}  // namespace

std::string Trace::serialize() const {
  std::ostringstream out;
  out << "idseval-trace v1\n";
  for (const auto& e : entries_) {
    const Packet& p = e.packet;
    out << e.offset.ns() << ' ' << p.flow_id << ' '
        << p.tuple.src_ip.value() << ' ' << p.tuple.src_port << ' '
        << p.tuple.dst_ip.value() << ' ' << p.tuple.dst_port << ' '
        << static_cast<int>(p.tuple.proto) << ' ' << p.flags.to_string()
        << ' ' << p.seq << ' ' << hex_encode(p.payload_view()) << '\n';
  }
  return out.str();
}

Trace Trace::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "idseval-trace v1") {
    throw std::invalid_argument("Trace: bad header: " + header);
  }
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::int64_t offset_ns = 0;
    std::uint64_t flow_id = 0;
    std::uint32_t src = 0, dst = 0;
    std::uint16_t sport = 0, dport = 0;
    int proto = 0;
    std::string flags, hex;
    std::uint32_t seq = 0;
    if (!(fields >> offset_ns >> flow_id >> src >> sport >> dst >> dport >>
          proto >> flags >> seq)) {
      throw std::invalid_argument("Trace: malformed line: " + line);
    }
    fields >> hex;  // may be empty for zero-payload packets

    netsim::FiveTuple tuple;
    tuple.src_ip = netsim::Ipv4(src);
    tuple.dst_ip = netsim::Ipv4(dst);
    tuple.src_port = sport;
    tuple.dst_port = dport;
    tuple.proto = static_cast<netsim::Protocol>(proto);

    netsim::TcpFlags f;
    f.syn = flags.find('S') != std::string::npos;
    f.ack = flags.find('A') != std::string::npos;
    f.fin = flags.find('F') != std::string::npos;
    f.rst = flags.find('R') != std::string::npos;

    Packet p = netsim::make_packet(0, flow_id, SimTime::zero(), tuple,
                                   hex.empty() ? "" : hex_decode(hex), f);
    p.seq = seq;
    trace.append(SimTime::from_ns(offset_ns), p);
  }
  return trace;
}

}  // namespace idseval::traffic
