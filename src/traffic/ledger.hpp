// Transaction ledger: the ground-truth record of every flow injected into
// the testbed. Transactions are the denominator |T| in the paper's error
// ratios (Figure 3): FP = |D - A| / |T|, FN = |A - D| / |T|, where A is
// the set of labeled attack transactions and D the set the IDS flagged.
// The ledger is invisible to IDS components by construction — only the
// harness reads it when scoring.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/address.hpp"
#include "netsim/sim_time.hpp"
#include "telemetry/registry.hpp"
#include "util/flow_table.hpp"

namespace idseval::traffic {

struct Transaction {
  std::uint64_t flow_id = 0;
  netsim::FiveTuple tuple;
  netsim::SimTime start;
  netsim::SimTime end;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  bool is_attack = false;
  /// Attack kind id (attack::AttackKind cast to int); -1 for benign.
  int attack_kind = -1;
  /// Kill-chain stage id (attack::Stage cast to int); -1 for benign or
  /// flat scenarios predating campaigns (scorers fall back to the kind's
  /// default stage from AttackTraits).
  int attack_stage = -1;
};

class TransactionLedger {
 public:
  TransactionLedger();

  /// Opens a transaction. Duplicate flow ids are rejected.
  Transaction& begin(std::uint64_t flow_id, const netsim::FiveTuple& tuple,
                     netsim::SimTime start, bool is_attack = false,
                     int attack_kind = -1, int attack_stage = -1);

  /// Accounts one emitted packet against the transaction.
  void touch(std::uint64_t flow_id, netsim::SimTime when,
             std::uint64_t bytes);
  /// Hash-free variant for hot emit loops: `by_flow_`'s values live in a
  /// stable slab, so the Transaction& from begin() stays valid across
  /// later inserts and callers may cache it.
  static void touch(Transaction& txn, netsim::SimTime when,
                    std::uint64_t bytes) noexcept {
    ++txn.packets;
    txn.bytes += bytes;
    if (when > txn.end) txn.end = when;
  }

  const Transaction* find(std::uint64_t flow_id) const;
  bool is_attack(std::uint64_t flow_id) const;

  std::size_t size() const noexcept { return order_.size(); }
  std::size_t attack_count() const noexcept { return attacks_; }
  std::size_t benign_count() const noexcept { return size() - attacks_; }

  /// Stable iteration in creation order.
  std::vector<const Transaction*> all() const;
  std::vector<const Transaction*> attacks() const;

  /// Flow-table access statistics (probes per lookup etc.).
  const util::FlowTableStats& table_stats() const noexcept {
    return by_flow_.stats();
  }

 private:
  util::FlowTable<std::uint64_t, Transaction> by_flow_;
  std::vector<std::uint64_t> order_;
  std::size_t attacks_ = 0;
};

}  // namespace idseval::traffic
