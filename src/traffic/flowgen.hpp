// Background traffic generation: turns an EnvironmentProfile into a
// stream of flows injected through the Network. Arrivals follow a
// two-state Markov-modulated Poisson process (normal/burst); flow lengths
// are Pareto; packets within a flow are paced with exponential gaps. All
// randomness flows from one seed, so a run is reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "traffic/ledger.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"

namespace idseval::traffic {

struct FlowGenStats {
  std::uint64_t flows_started = 0;
  std::uint64_t packets_emitted = 0;
  std::uint64_t bytes_emitted = 0;
};

class FlowGenerator {
 public:
  FlowGenerator(netsim::Simulator& sim, netsim::Network& net,
                TransactionLedger* ledger, EnvironmentProfile profile,
                std::uint64_t seed);

  /// Hosts that may source/sink flows. Internal hosts are both; external
  /// hosts only source (toward internal destinations) and receive replies.
  void set_internal_hosts(std::vector<netsim::Ipv4> hosts);
  void set_external_hosts(std::vector<netsim::Ipv4> hosts);

  /// Scales the profile's arrival rate — the load knob for throughput
  /// sweeps (Table 3's load-dependent metrics).
  void set_rate_scale(double scale) noexcept { rate_scale_ = scale; }
  double rate_scale() const noexcept { return rate_scale_; }

  /// Begins generating; flow arrivals stop at `until` (in-flight flows
  /// finish their remaining packets).
  void start(netsim::SimTime until);

  const FlowGenStats& stats() const noexcept { return stats_; }
  const EnvironmentProfile& profile() const noexcept { return profile_; }

 private:
  void schedule_next_arrival();
  void launch_flow();
  void emit_flow_packet(std::uint64_t flow_id, netsim::FiveTuple tuple,
                        PayloadKind kind, std::uint32_t seq,
                        std::uint32_t remaining, double interval_ms);
  netsim::Ipv4 pick_source();
  netsim::Ipv4 pick_destination(netsim::Ipv4 source);
  double current_rate() const noexcept;
  void toggle_burst();

  netsim::Simulator& sim_;
  netsim::Network& net_;
  TransactionLedger* ledger_;
  EnvironmentProfile profile_;
  util::Rng rng_;

  std::vector<netsim::Ipv4> internal_;
  std::vector<netsim::Ipv4> external_;
  std::vector<double> mix_weights_;

  double rate_scale_ = 1.0;
  bool in_burst_ = false;
  netsim::SimTime stop_time_;
  bool started_ = false;
  FlowGenStats stats_;
};

}  // namespace idseval::traffic
