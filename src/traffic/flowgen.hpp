// Background traffic generation: turns an EnvironmentProfile into a
// stream of flows injected through the Network. Arrivals follow a
// two-state Markov-modulated Poisson process (normal/burst); flow lengths
// are Pareto; packets within a flow are paced with exponential gaps. All
// randomness flows from one seed, so a run is reproducible.
//
// The per-packet path is allocation-free in steady state: live flows are
// FlowState records in a slab (freed records recycle through a free
// list), the scheduled continuation captures only {this, handle} so it
// fits the simulator's inline callback storage, and payloads come
// interned from a PayloadPool instead of being synthesized per packet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "traffic/ledger.hpp"
#include "traffic/payload_pool.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"

namespace idseval::traffic {

struct FlowGenStats {
  std::uint64_t flows_started = 0;
  std::uint64_t packets_emitted = 0;
  std::uint64_t bytes_emitted = 0;
};

class FlowGenerator {
 public:
  /// `pool` may be shared with other generators of the same simulation
  /// (the testbed shares one with the attack emitter); when null the
  /// generator owns a private pool derived from `seed`.
  FlowGenerator(netsim::Simulator& sim, netsim::Network& net,
                TransactionLedger* ledger, EnvironmentProfile profile,
                std::uint64_t seed, PayloadPool* pool = nullptr);

  /// Hosts that may source/sink flows. Internal hosts are both; external
  /// hosts only source (toward internal destinations) and receive replies.
  void set_internal_hosts(std::vector<netsim::Ipv4> hosts);
  void set_external_hosts(std::vector<netsim::Ipv4> hosts);
  /// Restricts internal SOURCES to `hosts` while set_internal_hosts keeps
  /// defining the destination pool. Distributed sharding uses this: each
  /// shard's generator sources flows only from hosts attached to its own
  /// Network (Network::send requires a local uplink) while destinations
  /// span the whole enclave, so flows cross shards over the trunk fabric.
  /// Empty (the default) means sources draw from the internal pool.
  void set_source_hosts(std::vector<netsim::Ipv4> hosts);

  /// Scales the profile's arrival rate — the load knob for throughput
  /// sweeps (Table 3's load-dependent metrics).
  void set_rate_scale(double scale) noexcept { rate_scale_ = scale; }
  double rate_scale() const noexcept { return rate_scale_; }

  /// Begins generating; flow arrivals stop at `until` (in-flight flows
  /// finish their remaining packets).
  void start(netsim::SimTime until);

  /// Emits `count` back-to-back packets of one flow right now (no pacing
  /// gaps), producing a same-tick arrival train on zero-bandwidth links —
  /// the worst-case fan-out that batched delivery coalesces. Intended for
  /// benches/tests; ledger and stats accounting match paced emission.
  void emit_burst(netsim::Ipv4 src, netsim::Ipv4 dst,
                  std::uint16_t dst_port, std::uint32_t count,
                  std::size_t payload_bytes);

  const FlowGenStats& stats() const noexcept { return stats_; }
  const EnvironmentProfile& profile() const noexcept { return profile_; }
  const PayloadPool& payload_pool() const noexcept { return *pool_; }

  /// Live (not yet completed) flows — slab occupancy, for tests.
  std::size_t live_flows() const noexcept { return live_flows_; }

 private:
  /// Index into the FlowState slab; fits a callback capture alongside
  /// `this` well inside the inline buffer.
  using FlowHandle = std::uint32_t;
  static constexpr FlowHandle kNilHandle = ~FlowHandle{0};

  /// Per-flow emission state. Recycled through a free list so steady
  /// state never grows the slab.
  struct FlowState {
    netsim::FiveTuple tuple;
    std::uint64_t flow_id = 0;
    /// Cached ledger record (node-based map => pointer-stable); skips the
    /// per-packet hash lookup on the emit path. Null when no ledger.
    Transaction* txn = nullptr;
    double interval_ms = 0.0;
    std::uint32_t seq = 0;
    std::uint32_t remaining = 0;
    PayloadKind kind = PayloadKind::kRandom;
    FlowHandle next_free = kNilHandle;
  };

  void schedule_next_arrival();
  void launch_flow();
  /// Emits the flow's next packet and reschedules itself until the flow
  /// is drained, then releases the record.
  void step_flow(FlowHandle handle);
  FlowHandle alloc_flow_state();
  void release_flow_state(FlowHandle handle);
  netsim::Ipv4 pick_source();
  netsim::Ipv4 pick_destination(netsim::Ipv4 source);
  double current_rate() const noexcept;
  void toggle_burst();

  netsim::Simulator& sim_;
  netsim::Network& net_;
  TransactionLedger* ledger_;
  EnvironmentProfile profile_;
  util::Rng rng_;
  std::unique_ptr<PayloadPool> owned_pool_;
  PayloadPool* pool_;

  std::vector<netsim::Ipv4> internal_;
  std::vector<netsim::Ipv4> external_;
  std::vector<netsim::Ipv4> sources_;  ///< Empty = internal_ sources.
  std::vector<double> mix_weights_;

  std::vector<FlowState> slab_;
  FlowHandle free_head_ = kNilHandle;
  std::size_t live_flows_ = 0;

  double rate_scale_ = 1.0;
  bool in_burst_ = false;
  netsim::SimTime stop_time_;
  bool started_ = false;
  FlowGenStats stats_;
};

}  // namespace idseval::traffic
