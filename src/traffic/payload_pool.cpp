#include "traffic/payload_pool.hpp"

#include <algorithm>

namespace idseval::traffic {

PayloadPool::PayloadPool(std::uint64_t seed, std::size_t variants)
    : seed_(seed),
      variants_(std::max<std::size_t>(1, variants)),
      tele_hits_(
          telemetry::counter_handle(telemetry::names::kPayloadPoolHits)),
      tele_misses_(
          telemetry::counter_handle(telemetry::names::kPayloadPoolMisses)),
      tele_grown_(
          telemetry::counter_handle(telemetry::names::kPayloadPoolGrown)) {}

void PayloadPool::enable_growth(PayloadKind kind,
                                std::size_t max_variants) {
  if (max_variants > variants_) growth_[kind] = max_variants;
}

std::size_t PayloadPool::growth_headroom() const noexcept {
  std::size_t headroom = 0;
  for (const auto& [kind, limit] : growth_) {
    headroom += (limit - variants_) * kGrownBucketsPerKind;
  }
  return headroom;
}

std::size_t PayloadPool::bucket_len(std::size_t target_len) noexcept {
  target_len = std::clamp(target_len, kMinLen, kMaxLen);
  // Round to the NEAREST granule, not up: quantization error is then
  // zero-mean over a smooth length distribution, so pooled traffic keeps
  // the profile's mean bytes/packet. Rounding up instead inflates every
  // payload, which raises per-packet scan cost and shifts sensor knees.
  const std::size_t rounded =
      ((target_len + kLengthGranularity / 2) / kLengthGranularity) *
      kLengthGranularity;
  return std::clamp(rounded, kLengthGranularity, kMaxLen);
}

void PayloadPool::note_hit() noexcept {
  ++hits_;
  telemetry::bump(tele_hits_);
}

void PayloadPool::note_miss(std::size_t strings,
                            std::uint64_t bytes) noexcept {
  ++misses_;
  interned_ += strings;
  interned_bytes_ += bytes;
  telemetry::bump(tele_misses_);
}

PayloadPool::Ref PayloadPool::intern(
    Family& family, std::uint64_t family_seed,
    const std::function<std::string(util::Rng&)>& build,
    std::size_t limit) {
  if (family.slots.empty()) family.slots.resize(variants_);
  const std::size_t slot = family.cursor;
  ++family.cursor;
  if (family.cursor >= family.slots.size()) {
    if (limit > family.slots.size()) {
      // Adaptive growth: the family has cycled through every existing
      // variant — double the cycle (capped at the policy limit). The new
      // slots mint lazily below with their deterministic per-slot seeds,
      // so content never depends on growth history.
      const std::size_t before = family.slots.size();
      family.slots.resize(std::min(limit, before * 2));
      const std::size_t added = family.slots.size() - before;
      grown_ += added;
      telemetry::bump(tele_grown_, added);
    } else {
      family.cursor = 0;
    }
  }
  Ref& ref = family.slots[slot];
  if (ref == nullptr) {
    util::Rng rng(util::derive_seed(family_seed, slot));
    auto built = std::make_shared<const std::string>(build(rng));
    note_miss(1, built->size());
    ref = std::move(built);
  } else {
    note_hit();
  }
  return ref;
}

PayloadPool::Ref PayloadPool::background(PayloadKind kind,
                                         std::size_t target_len) {
  const std::size_t bucket = bucket_len(target_len);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 32) | bucket;
  const std::size_t* limit = growth_.find(kind);
  return intern(background_[key], seed_ ^ util::derive_seed(key, 0),
                [kind, bucket](util::Rng& rng) {
                  return synthesize(kind, bucket, rng);
                },
                limit == nullptr ? 0 : *limit);
}

PayloadPool::Ref PayloadPool::attack(std::string_view family,
                                     const Builder& build) {
  auto it = attacks_.find(family);
  if (it == attacks_.end()) {
    it = attacks_.emplace(std::string(family), Family{}).first;
  }
  return intern(it->second, seed_ ^ util::hash64(family), build);
}

const PayloadPool::Refs& PayloadPool::attack_family(
    std::string_view family, const MultiBuilder& build) {
  auto it = multi_attacks_.find(family);
  if (it == multi_attacks_.end()) {
    it = multi_attacks_.emplace(std::string(family), MultiFamily{}).first;
  }
  MultiFamily& fam = it->second;
  if (fam.slots.empty()) fam.slots.resize(variants_);
  const std::size_t slot = fam.cursor;
  fam.cursor = (fam.cursor + 1) % variants_;
  Refs& refs = fam.slots[slot];
  if (refs.empty()) {
    util::Rng rng(
        util::derive_seed(seed_ ^ util::hash64(family), slot));
    std::vector<std::string> pieces = build(rng);
    refs.reserve(pieces.size());
    std::uint64_t bytes = 0;
    for (std::string& piece : pieces) {
      bytes += piece.size();
      refs.push_back(
          std::make_shared<const std::string>(std::move(piece)));
    }
    note_miss(refs.size(), bytes);
  } else {
    note_hit();
  }
  return refs;
}

}  // namespace idseval::traffic
