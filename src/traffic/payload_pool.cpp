#include "traffic/payload_pool.hpp"

#include <algorithm>

namespace idseval::traffic {

PayloadPool::PayloadPool(std::uint64_t seed, std::size_t variants)
    : seed_(seed),
      variants_(std::max<std::size_t>(1, variants)),
      tele_hits_(
          telemetry::counter_handle(telemetry::names::kPayloadPoolHits)),
      tele_misses_(
          telemetry::counter_handle(telemetry::names::kPayloadPoolMisses)) {}

std::size_t PayloadPool::bucket_len(std::size_t target_len) noexcept {
  target_len = std::clamp(target_len, kMinLen, kMaxLen);
  // Round to the NEAREST granule, not up: quantization error is then
  // zero-mean over a smooth length distribution, so pooled traffic keeps
  // the profile's mean bytes/packet. Rounding up instead inflates every
  // payload, which raises per-packet scan cost and shifts sensor knees.
  const std::size_t rounded =
      ((target_len + kLengthGranularity / 2) / kLengthGranularity) *
      kLengthGranularity;
  return std::clamp(rounded, kLengthGranularity, kMaxLen);
}

void PayloadPool::note_hit() noexcept {
  ++hits_;
  telemetry::bump(tele_hits_);
}

void PayloadPool::note_miss(std::size_t strings,
                            std::uint64_t bytes) noexcept {
  ++misses_;
  interned_ += strings;
  interned_bytes_ += bytes;
  telemetry::bump(tele_misses_);
}

PayloadPool::Ref PayloadPool::intern(
    Family& family, std::uint64_t family_seed,
    const std::function<std::string(util::Rng&)>& build) {
  if (family.slots.empty()) family.slots.resize(variants_);
  const std::size_t slot = family.cursor;
  family.cursor = (family.cursor + 1) % variants_;
  Ref& ref = family.slots[slot];
  if (ref == nullptr) {
    util::Rng rng(util::derive_seed(family_seed, slot));
    auto built = std::make_shared<const std::string>(build(rng));
    note_miss(1, built->size());
    ref = std::move(built);
  } else {
    note_hit();
  }
  return ref;
}

PayloadPool::Ref PayloadPool::background(PayloadKind kind,
                                         std::size_t target_len) {
  const std::size_t bucket = bucket_len(target_len);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 32) | bucket;
  return intern(background_[key], seed_ ^ util::derive_seed(key, 0),
                [kind, bucket](util::Rng& rng) {
                  return synthesize(kind, bucket, rng);
                });
}

PayloadPool::Ref PayloadPool::attack(std::string_view family,
                                     const Builder& build) {
  auto it = attacks_.find(family);
  if (it == attacks_.end()) {
    it = attacks_.emplace(std::string(family), Family{}).first;
  }
  return intern(it->second, seed_ ^ util::hash64(family), build);
}

const PayloadPool::Refs& PayloadPool::attack_family(
    std::string_view family, const MultiBuilder& build) {
  auto it = multi_attacks_.find(family);
  if (it == multi_attacks_.end()) {
    it = multi_attacks_.emplace(std::string(family), MultiFamily{}).first;
  }
  MultiFamily& fam = it->second;
  if (fam.slots.empty()) fam.slots.resize(variants_);
  const std::size_t slot = fam.cursor;
  fam.cursor = (fam.cursor + 1) % variants_;
  Refs& refs = fam.slots[slot];
  if (refs.empty()) {
    util::Rng rng(
        util::derive_seed(seed_ ^ util::hash64(family), slot));
    std::vector<std::string> pieces = build(rng);
    refs.reserve(pieces.size());
    std::uint64_t bytes = 0;
    for (std::string& piece : pieces) {
      bytes += piece.size();
      refs.push_back(
          std::make_shared<const std::string>(std::move(piece)));
    }
    note_miss(refs.size(), bytes);
  } else {
    note_hit();
  }
  return refs;
}

}  // namespace idseval::traffic
