#!/usr/bin/env bash
# One-command CI: build the plain and sanitizer presets, run ctest under
# both. A sanitizer run is exactly:  tools/ci.sh asan-ubsan
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j"${jobs}"
  ctest --preset "${preset}" -j"${jobs}"
done
