#!/usr/bin/env bash
# One-command CI: build the plain and sanitizer presets, run ctest under
# both. A sanitizer run is exactly:  tools/ci.sh asan-ubsan
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j"${jobs}"
  ctest --preset "${preset}" -j"${jobs}"
done

# Event-core benchmark smoke under the Release preset: checks the
# zero-heap-fallback invariant and archives the throughput report next to
# the build tree. Skipped when only specific presets were requested.
if [ $# -eq 0 ]; then
  echo "==== bench smoke (release) ===="
  cmake --preset release
  cmake --build --preset release -j"${jobs}" --target bench_netsim
  build-release/bench/bench_netsim --smoke --out BENCH_netsim.json
fi

# Traced-campaign smoke test under the sanitizer build: the example CI
# campaign must produce a well-formed JSONL trace with zero buffer drops
# (trace-check exits non-zero otherwise) and a per-stage latency CSV
# whose shape matches the grid exactly — campaign_ci.spec expands to
# 8 cells x 4 pipeline stages = 32 data rows, with no NaN/inf cells.
for preset in "${presets[@]}"; do
  if [ "${preset}" = "asan-ubsan" ]; then
    echo "==== traced campaign (${preset}) ===="
    out_dir=$(mktemp -d)
    trap 'rm -rf "${out_dir}"' EXIT
    "build-${preset}/tools/idseval_cli" campaign \
      --spec examples/campaign_ci.spec --jobs 2 \
      --out "${out_dir}" --trace "${out_dir}/trace.jsonl"
    "build-${preset}/tools/idseval_cli" trace-check "${out_dir}/trace.jsonl"
    "build-${preset}/tools/idseval_cli" trace-check \
      --csv "${out_dir}/ci_campaign_stages.csv" --expect-rows 32
    "build-${preset}/tools/idseval_cli" trace-check \
      --csv "${out_dir}/ci_campaign.csv"
    rm -rf "${out_dir}"
    trap - EXIT
    # Flow-table core focus run: the open-addressing FlowTable, packed
    # FlowTuple keys, the XOR-aliasing regressions, and the per-flow
    # eviction paths get an explicit sanitizer pass (they are also part
    # of the full suite above), plus the megaflow bench section in smoke
    # mode — its throughput floor is warn-only under instrumentation.
    echo "==== flow-table focus (${preset}) ===="
    ctest --preset "${preset}" --output-on-failure \
      -R 'flow_table_test|flow_tuple_test|key_aliasing_test|flow_state_eviction_test'
    "build-${preset}/bench/bench_netsim" --smoke \
      --out "build-${preset}/BENCH_netsim_smoke.json"
    # Single-pass score-ledger sweep under the sanitizers: exercises the
    # evidence sinks, the ledger finalize path, and the offline ROC walk
    # end to end (a short grid keeps the sanitizer run quick).
    echo "==== single-pass sweep (${preset}) ===="
    "build-${preset}/tools/idseval_cli" sweep --product SentryNID \
      --steps 5 --single-pass
  fi
done
