#!/usr/bin/env bash
# One-command CI: build the plain and sanitizer presets, run ctest under
# both. A sanitizer run is exactly:  tools/ci.sh asan-ubsan
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan tsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j"${jobs}"
  if [ "${preset}" = "tsan" ]; then
    # The thread-sanitizer leg targets the sharded engine. Force the
    # per-shard worker threads ON (a single-core CI machine would
    # otherwise fall back to the sequential round-robin and TSan would
    # watch exactly one thread), then run the focused race surface: the
    # golden-hash determinism suite (pins byte-identical output at
    # shards 1/2/4, threaded and sequential), the cross-shard engine
    # tests (mailboxes, lookahead windows, lane-order merges), and the
    # telemetry registry merge paths.
    IDSEVAL_SHARD_THREADS=1 ctest --preset "${preset}" \
      --output-on-failure --no-tests=error \
      -R 'DeterminismTest|ShardPlanTest|ShardedSimulatorTest|RegistryTest|ScopedRegistryTest'
  else
    ctest --preset "${preset}" -j"${jobs}"
  fi
done

# Event-core benchmark smoke under the Release preset: checks the
# zero-heap-fallback invariant and archives the throughput report next to
# the build tree. The smoke run includes the shard_scaling section at 1
# and 2 shards (2-shard throughput floor warn-only: wall-clock speedup
# needs >= N physical cores, which CI machines may not have) and the
# scan_cache section (cached-vs-legacy detection identity hard-fails;
# the >=1.5x speedup floor is warn-only — it is a wall-clock ratio).
# Skipped when only specific presets were requested.
if [ $# -eq 0 ]; then
  echo "==== bench smoke (release) ===="
  cmake --preset release
  cmake --build --preset release -j"${jobs}" --target bench_netsim
  build-release/bench/bench_netsim --smoke --out BENCH_netsim.json
fi

# Traced-campaign smoke test under the sanitizer build: the example CI
# campaign must produce a well-formed JSONL trace with zero buffer drops
# (trace-check exits non-zero otherwise) and a per-stage latency CSV
# whose shape matches the grid exactly — campaign_ci.spec expands to
# 8 cells x 4 pipeline stages = 32 data rows, with no NaN/inf cells.
for preset in "${presets[@]}"; do
  if [ "${preset}" = "asan-ubsan" ]; then
    echo "==== traced campaign (${preset}) ===="
    out_dir=$(mktemp -d)
    trap 'rm -rf "${out_dir}"' EXIT
    "build-${preset}/tools/idseval_cli" campaign \
      --spec examples/campaign_ci.spec --jobs 2 \
      --out "${out_dir}" --trace "${out_dir}/trace.jsonl"
    "build-${preset}/tools/idseval_cli" trace-check "${out_dir}/trace.jsonl"
    "build-${preset}/tools/idseval_cli" trace-check \
      --csv "${out_dir}/ci_campaign_stages.csv" --expect-rows 32
    "build-${preset}/tools/idseval_cli" trace-check \
      --csv "${out_dir}/ci_campaign.csv"
    rm -rf "${out_dir}"
    trap - EXIT
    # Flow-table core focus run: the open-addressing FlowTable, packed
    # FlowTuple keys, the XOR-aliasing regressions, and the per-flow
    # eviction paths get an explicit sanitizer pass (they are also part
    # of the full suite above), plus the megaflow bench section in smoke
    # mode — its throughput floor is warn-only under instrumentation.
    # (ctest names are the discovered gtest suites, not the binary
    # names; --no-tests=error keeps a filter typo from passing as a
    # silent no-op.)
    echo "==== flow-table focus (${preset}) ===="
    ctest --preset "${preset}" --output-on-failure --no-tests=error \
      -R 'FlowTableTest|FlowTupleTest|KeyAliasingTest|FlowStateEvictionTest'
    "build-${preset}/bench/bench_netsim" --smoke \
      --out "build-${preset}/BENCH_netsim_smoke.json"
    # Scan-cache focus run: the interned-payload memo, the flat-map port
    # windows, and the boundary-limited reassembly merge get an explicit
    # sanitizer pass, then a --no-scan-cache evaluation keeps the legacy
    # full-rescan detection path exercised end to end (the determinism
    # suite pins that both paths are byte-identical).
    echo "==== scan-cache focus (${preset}) ===="
    ctest --preset "${preset}" --output-on-failure --no-tests=error \
      -R 'ScanCacheTest|FlatMapTest|ReassemblyTest'
    "build-${preset}/tools/idseval_cli" evaluate --product SentryNID \
      --no-scan-cache
    # Single-pass score-ledger sweep under the sanitizers: exercises the
    # evidence sinks, the ledger finalize path, and the offline ROC walk
    # end to end (a short grid keeps the sanitizer run quick).
    echo "==== single-pass sweep (${preset}) ===="
    "build-${preset}/tools/idseval_cli" sweep --product SentryNID \
      --steps 5 --single-pass
    # Kill-chain focus run: the staged campaign machinery (preset
    # determinism, stage ordering, pivoting), the per-technique/per-stage
    # breakdown arithmetic, and the ics/canbus profile pins get an
    # explicit sanitizer pass, then one traced kill-chain evaluation
    # drives the whole staged path — emitter stage overrides, ledger
    # labels, breakdown rendering, and the "attack." counters the trace
    # checker now recognizes — end to end.
    echo "==== kill-chain focus (${preset}) ===="
    ctest --preset "${preset}" --output-on-failure --no-tests=error \
      -R 'KillChainTest|KillChainRunTest|BreakdownTest|ProfileProperty'
    out_dir=$(mktemp -d)
    trap 'rm -rf "${out_dir}"' EXIT
    "build-${preset}/tools/idseval_cli" evaluate --product SentryNID \
      --profile ics --kill-chain ics-takeover \
      --trace "${out_dir}/killchain_trace.jsonl"
    "build-${preset}/tools/idseval_cli" trace-check \
      "${out_dir}/killchain_trace.jsonl"
    rm -rf "${out_dir}"
    trap - EXIT
  fi
  if [ "${preset}" = "tsan" ]; then
    # End-to-end race check: the example CI campaign on two shards with
    # worker threads forced on, so every cross-shard mailbox hand-off,
    # barrier, and telemetry merge runs under the race detector. One job
    # keeps shard workers as the only concurrency TSan has to model.
    echo "==== sharded traced campaign (${preset}) ===="
    out_dir=$(mktemp -d)
    trap 'rm -rf "${out_dir}"' EXIT
    IDSEVAL_SHARD_THREADS=1 "build-${preset}/tools/idseval_cli" campaign \
      --spec examples/campaign_ci.spec --jobs 1 --shards 2 \
      --out "${out_dir}" --trace "${out_dir}/trace.jsonl"
    "build-${preset}/tools/idseval_cli" trace-check "${out_dir}/trace.jsonl"
    rm -rf "${out_dir}"
    trap - EXIT
  fi
done
