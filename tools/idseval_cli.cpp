// idseval command-line driver: run the methodology without writing C++.
//
//   idseval_cli products
//       list the evaluated-product catalog
//   idseval_cli catalog [substring]
//       print metric definitions (optionally filtered by name substring)
//   idseval_cli evaluate --product NAME [--profile P] [--sensitivity S]
//                        [--seed N] [--load-metrics] [--notes]
//       evaluate one product, print its scorecard
//   idseval_cli rank [--profile P] [--weights realtime|ecommerce]
//                    [--seed N] [--jobs N] [--load-metrics] [--robustness]
//       evaluate every product and print the weighted ranking
//   idseval_cli sweep --product NAME [--profile P] [--steps N] [--seed N]
//                     [--single-pass]
//       Figure-4 sensitivity sweep with EER; --single-pass derives the
//       grid from one evidence-recorded run instead of N simulations
//   idseval_cli campaign --spec FILE [--jobs N] [--resume] [--out DIR]
//                        [--out-html]
//       run a multi-seed evaluation grid, aggregate with dispersion;
//       --out-html adds HTML and markdown summary tables
//   idseval_cli trace-check FILE
//       validate a --trace JSONL file (well-formed JSON lines, known
//       event schemas, zero dropped events)
//   idseval_cli trace-check --csv FILE [--expect-rows N]
//       validate a CSV export (rectangular, finite numbers, row count)
//
// evaluate, rank, and campaign accept --trace FILE to write a JSONL
// event trace of the run's pipeline telemetry; --trace-sync forces the
// synchronous (caller-thread) writer instead of the background thread.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "attack/kind.hpp"
#include "campaign/aggregate.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/spec.hpp"
#include "campaign/store.hpp"
#include "core/report.hpp"
#include "core/sensitivity.hpp"
#include "harness/evaluate.hpp"
#include "harness/measure.hpp"
#include "harness/run_context.hpp"
#include "products/catalog.hpp"
#include "results/csv.hpp"
#include "results/doc.hpp"
#include "results/html.hpp"
#include "results/table.hpp"
#include "score/breakdown.hpp"
#include "score/scorecard.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace idseval;

namespace {

struct Args {
  std::string command;
  std::string positional;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  bool has_flag(const std::string& name) const {
    for (const auto& f : flags) {
      if (f == name) return true;
    }
    return false;
  }
  std::string opt(const std::string& name, std::string fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[name] = argv[++i];
      } else {
        args.flags.push_back(name);
      }
    } else if (args.positional.empty()) {
      args.positional = token;
    }
  }
  return args;
}

std::optional<products::ProductId> product_by_name(const std::string& name) {
  for (const auto& model : products::product_catalog()) {
    if (model.name == name) return model.id;
  }
  return std::nullopt;
}

/// Opens the --trace sink when requested; nullptr otherwise. The
/// background writer thread is the default; --trace-sync keeps all file
/// I/O on the emitting thread (the two modes produce identical files at
/// zero drops).
std::unique_ptr<telemetry::TraceSink> open_trace(const Args& args) {
  const std::string path = args.opt("trace", "");
  if (path.empty()) return nullptr;
  return std::make_unique<telemetry::TraceSink>(
      path, telemetry::TraceSink::kDefaultCapacity,
      /*background=*/!args.has_flag("trace-sync"));
}

void report_trace(const telemetry::TraceSink& trace) {
  std::printf("trace: %s (%llu events, %llu dropped)\n",
              trace.path().c_str(),
              static_cast<unsigned long long>(trace.emitted()),
              static_cast<unsigned long long>(trace.dropped()));
}

harness::TestbedConfig make_env(const Args& args) {
  harness::TestbedConfig env;
  env.profile = traffic::profile_by_name(args.opt("profile", "rt_cluster"));
  env.seed = static_cast<std::uint64_t>(
      std::stoull(args.opt("seed", "42")));
  // --shards N partitions each testbed over N event-queue shards
  // (results are byte-identical at any shard count; 1 = the legacy
  // single-queue engine).
  env.shards = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::stoull(args.opt("shards", "1"))));
  // --no-scan-cache replays the exact legacy full-rescan detection path
  // (regression pinning for the interned-payload scan cache). Results
  // are byte-identical either way; only wall-clock changes.
  env.scan_cache = !args.has_flag("no-scan-cache");
  return env;
}

/// The Iannacone-Bridges unified cost table for one evaluation, built
/// from the Doc view so the CLI and any file writer agree on values.
std::string render_unified_score(const score::UnifiedScore& unified) {
  results::TableBuilder table({"Unified cost component", "Value"},
                              {"left", "right"});
  table.title("Unified cost/capability (default weights)");
  const results::Doc doc = score::to_doc(unified);
  for (const auto& [key, value] : doc.items()) {
    table.row({key, util::fmt_double(value.as_double(), 4)});
  }
  return results::render_table_text(table.build());
}

int cmd_products() {
  results::TableBuilder table({"Product", "Class", "Description"},
                              {"left", "left", "left"});
  for (const auto& model : products::product_catalog()) {
    table.row({model.name,
               model.deploys_host_agents ? "host/hybrid" : "network",
               model.description});
  }
  std::printf("%s", results::render_table_text(table.build()).c_str());
  return 0;
}

int cmd_catalog(const Args& args) {
  for (const core::Metric& m : core::metric_catalog()) {
    if (!args.positional.empty() &&
        m.name.find(args.positional) == std::string::npos) {
      continue;
    }
    std::printf("%s\n", core::render_metric_definition(m.id).c_str());
  }
  return 0;
}

int cmd_evaluate(const Args& args) {
  const auto id = product_by_name(args.opt("product", ""));
  if (!id) {
    std::fprintf(stderr, "unknown --product (see 'idseval_cli products')\n");
    return 2;
  }
  const harness::TestbedConfig env = make_env(args);
  harness::EvaluationOptions options;
  options.sensitivity = std::stod(args.opt("sensitivity", "0.5"));
  options.include_load_metrics = args.has_flag("load-metrics");
  options.kill_chain = args.opt("kill-chain", "");

  const auto& model = products::product(*id);
  std::printf("evaluating %s on profile '%s' (seed %llu)...\n\n",
              model.name.c_str(), env.profile.name.c_str(),
              static_cast<unsigned long long>(env.seed));
  auto trace = open_trace(args);
  harness::RunContext ctx(trace.get());
  const harness::Evaluation eval =
      harness::evaluate_product(env, model, options, &ctx);

  const harness::RunResult& run = eval.measured.detection_run;
  std::printf("transactions=%zu attacks=%zu detected=%zu "
              "false-alarms=%zu missed=%zu\n",
              run.transactions, run.attacks, run.true_detections,
              run.false_alarms, run.missed_attacks);
  std::printf("FP=%.5f FN=%.5f timeliness=%.2fs peak-streams=%zu\n\n",
              run.fp_ratio, run.fn_ratio, run.timeliness_mean_sec,
              run.peak_concurrent_streams);

  // Per-technique / per-stage breakdown (always present when the run
  // launched labeled attacks; the stage column is the kill-chain ground
  // truth, or the kinds' default stages on a flat scenario).
  if (!run.breakdown.empty()) {
    const results::Doc technique_doc =
        score::technique_table_doc(run.breakdown);
    const results::Doc stage_doc = score::stage_table_doc(run.breakdown);
    std::printf("%s\n",
                results::render_table_text(technique_doc).c_str());
    std::printf("%s\n", results::render_table_text(stage_doc).c_str());
    if (run.breakdown.chain_broken_at >= 0) {
      std::printf("chain broken at stage: %s\n\n",
                  attack::to_string(static_cast<attack::Stage>(
                                        run.breakdown.chain_broken_at))
                      .c_str());
    }
    // --out DIR: the same Docs through the CSV and HTML writers.
    if (const std::string out = args.opt("out", ""); !out.empty()) {
      const std::filesystem::path out_dir = out;
      std::filesystem::create_directories(out_dir);
      const std::string csv_path =
          (out_dir / (model.name + "_breakdown.csv")).string();
      std::ofstream csv(csv_path);
      csv << results::table_to_csv(technique_doc);
      csv << "\n" << results::table_to_csv(stage_doc);
      const std::string html_path =
          (out_dir / (model.name + "_breakdown.html")).string();
      std::ofstream html(html_path);
      html << results::html_document(
          "Detection breakdown: " + model.name + " on " + env.profile.name,
          {technique_doc, stage_doc});
      std::printf("breakdown: %s, %s\n\n", csv_path.c_str(),
                  html_path.c_str());
    }
  }

  const bool notes = args.has_flag("notes");
  const core::Scorecard cards[] = {eval.card};
  std::printf("%s\n", core::render_metric_table(
                          "Logistical", core::table1_logistical_metrics(),
                          cards, notes)
                          .c_str());
  std::printf("%s\n",
              core::render_metric_table(
                  "Architectural", core::table2_architectural_metrics(),
                  cards, notes)
                  .c_str());
  std::printf("%s\n", core::render_metric_table(
                          "Performance", core::table3_performance_metrics(),
                          cards, notes)
                          .c_str());
  std::printf("%s\n", render_unified_score(eval.unified).c_str());
  std::printf(
      "%s\n",
      telemetry::render_telemetry(eval.measured.detection_telemetry,
                                  ctx.registry())
          .c_str());
  if (trace) {
    ctx.emit(harness::evaluation_event(model.name, env.profile.name,
                                       env.seed, ctx.registry()));
    // The load probes run in their own registry (harness.probes and the
    // per-stage probe telemetry), separate from the detection window.
    if (!eval.measured.load_probe_telemetry.empty()) {
      ctx.emit(harness::load_probes_event(
          model.name, env.profile.name, env.seed,
          eval.measured.load_probe_telemetry));
    }
    trace->close();
    report_trace(*trace);
  }
  return 0;
}

int cmd_rank(const Args& args) {
  const harness::TestbedConfig env = make_env(args);
  harness::EvaluationOptions options;
  options.sensitivity = std::stod(args.opt("sensitivity", "0.5"));
  options.include_load_metrics = args.has_flag("load-metrics");
  options.kill_chain = args.opt("kill-chain", "");

  // --jobs N spreads the per-product evaluations over the thread pool;
  // each evaluation is deterministic on its own, so the ranking is
  // identical at any job count.
  const std::size_t jobs = static_cast<std::size_t>(
      std::stoull(args.opt("jobs", "1")));
  const auto& catalog = products::product_catalog();
  auto trace = open_trace(args);
  // Full evaluations (not just cards) so the load-probe registries are
  // still around for the trace events below.
  std::vector<std::optional<harness::Evaluation>> slots(catalog.size());
  // One context per product so the telemetry of concurrent evaluations
  // stays separated; trace events are emitted in catalog order below.
  std::vector<std::unique_ptr<harness::RunContext>> ctxs(catalog.size());
  for (auto& ctx : ctxs) {
    ctx = std::make_unique<harness::RunContext>(trace.get());
  }
  {
    util::ThreadPool pool(jobs);
    pool.parallel_for(catalog.size(), [&](std::size_t i) {
      slots[i].emplace(harness::evaluate_product(env, catalog[i], options,
                                                 ctxs[i].get()));
    });
  }
  if (trace) {
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      ctxs[i]->emit(harness::evaluation_event(
          catalog[i].name, env.profile.name, env.seed,
          ctxs[i]->registry()));
      const telemetry::Registry& probes =
          slots[i]->measured.load_probe_telemetry;
      if (!probes.empty()) {
        ctxs[i]->emit(harness::load_probes_event(
            catalog[i].name, env.profile.name, env.seed, probes));
      }
    }
  }
  std::vector<core::Scorecard> cards;
  cards.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    std::printf("evaluated %s\n", catalog[i].name.c_str());
    cards.push_back(std::move(slots[i]->card));
  }

  const std::string profile = args.opt("weights", "realtime");
  const core::WeightSet weights =
      profile == "ecommerce"
          ? core::ecommerce_requirements().derive_weights()
          : core::realtime_distributed_requirements().derive_weights();
  std::printf("\n%s\n",
              core::render_weighted_summary(
                  "Ranking (" + profile + " requirement profile)", cards,
                  weights)
                  .c_str());
  {
    // The unified cost model ranks on one absolute number beside the
    // paper's weighted class scores: capability 1 = perfect, 0 = no
    // better than running no IDS.
    results::TableBuilder unified({"Product", "Total cost", "Capability"},
                                  {"left", "right", "right"});
    unified.title("Unified cost/capability (default weights)");
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      const score::UnifiedScore& u = slots[i]->unified;
      unified.row({catalog[i].name, util::fmt_double(u.total_cost, 2),
                   util::fmt_double(u.capability, 4)});
    }
    std::printf("%s\n",
                results::render_table_text(unified.build()).c_str());
  }
  if (!options.kill_chain.empty()) {
    // Cross-product per-stage view of the campaign: which stage each
    // product first loses track of the intrusion at.
    results::TableBuilder stages(
        {"Product", "Stage", "Launched", "Detected", "Det rate", "Chain"},
        {"left", "left", "right", "right", "right", "left"});
    stages.title("Per-stage detection ('" + options.kill_chain +
                 "' kill chain)");
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      const score::DetectionBreakdown& b =
          slots[i]->measured.detection_run.breakdown;
      for (const score::StageRow& row : b.stages) {
        stages.row(
            {catalog[i].name,
             attack::to_string(static_cast<attack::Stage>(row.stage)),
             row.launched, row.detected,
             util::fmt_double(row.detection_rate(), 3),
             row.stage == b.chain_broken_at ? "broken-here" : ""});
      }
    }
    std::printf("%s\n", results::render_table_text(stages.build()).c_str());
  }
  if (args.has_flag("robustness")) {
    std::printf("%s\n",
                core::render_weight_robustness(cards, weights).c_str());
  }
  if (trace) {
    trace->close();
    report_trace(*trace);
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto id = product_by_name(args.opt("product", ""));
  if (!id) {
    std::fprintf(stderr, "unknown --product (see 'idseval_cli products')\n");
    return 2;
  }
  const harness::TestbedConfig env = make_env(args);
  const int steps = std::stoi(args.opt("steps", "11"));
  std::vector<double> sensitivities;
  for (int i = 0; i < steps; ++i) {
    sensitivities.push_back(static_cast<double>(i) /
                            std::max(1, steps - 1));
  }
  // --single-pass records per-transaction evidence in ONE simulation and
  // derives every sweep point offline; the default re-simulates the
  // testbed once per grid point (the reference path).
  const bool single_pass = args.has_flag("single-pass");
  std::vector<harness::ErrorRatePoint> sweep;
  harness::SinglePassSweep recorded;
  if (single_pass) {
    recorded = harness::single_pass_sensitivity_sweep(
        env, products::product(*id), sensitivities, 4);
    sweep = recorded.points;
  } else {
    sweep = harness::sensitivity_sweep(env, products::product(*id),
                                       sensitivities, 4);
  }

  results::TableBuilder table({"Sensitivity", "Type I (% benign)",
                               "Type II (% attacks)"},
                              {"right", "right", "right"});
  table.title(products::to_string(*id) + " on " + env.profile.name +
              (single_pass ? " (single-pass)" : ""));
  for (const auto& p : sweep) {
    table.row({util::fmt_double(p.sensitivity, 2),
               util::fmt_double(p.fp_percent_of_benign, 2),
               util::fmt_double(p.fn_percent_of_attacks, 2)});
  }
  std::printf("%s", results::render_table_text(table.build()).c_str());
  const auto eer = harness::equal_error_rate(sweep);
  if (eer.found) {
    std::printf("Equal Error Rate: %.2f%% at sensitivity %.3f\n",
                eer.error_percent, eer.sensitivity);
  } else {
    std::printf("no Type I / Type II crossing in [0,1]\n");
  }
  if (single_pass) {
    std::printf("single-pass ledger: %zu transactions (%zu attacks), "
                "%llu evidence observations, ROC AUC %.4f\n",
                recorded.roc.transactions(), recorded.roc.attacks(),
                static_cast<unsigned long long>(
                    recorded.evidence_observations),
                recorded.roc.auc());
  }
  return 0;
}

int cmd_campaign(const Args& args) {
  const std::string spec_path = args.opt("spec", "");
  if (spec_path.empty()) {
    std::fprintf(stderr, "campaign: --spec FILE is required\n");
    return 2;
  }
  std::ifstream in(spec_path);
  if (!in.good()) {
    std::fprintf(stderr, "campaign: cannot read spec file %s\n",
                 spec_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  campaign::CampaignSpec spec = campaign::CampaignSpec::parse(text.str());
  // --shards overrides the spec before the store opens, so the engine
  // choice lands in the fingerprint and a mismatched --resume is refused.
  if (const std::string shards = args.opt("shards", ""); !shards.empty()) {
    spec.shards = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::stoull(shards)));
  }

  const std::filesystem::path out_dir = args.opt("out", "campaign-out");
  std::filesystem::create_directories(out_dir);
  const std::string store_path = (out_dir / (spec.name + ".jsonl")).string();
  const bool resume = args.has_flag("resume");

  campaign::ResultStore store(store_path, spec, /*fresh=*/!resume);
  std::printf("campaign '%s': %zu cells (%zu products x %zu profiles x "
              "%zu sensitivities x %zu replicates)\n",
              spec.name.c_str(), spec.cell_count(), spec.products.size(),
              spec.profiles.size(), spec.sensitivities.size(),
              spec.replicates);
  if (resume && store.ok_count() > 0) {
    std::printf("resuming: %zu cell(s) already complete in %s\n",
                store.ok_count(), store_path.c_str());
  }

  auto trace = open_trace(args);
  telemetry::Registry aggregate_telemetry;

  campaign::RunOptions run_options;
  run_options.jobs = static_cast<std::size_t>(
      std::stoull(args.opt("jobs", "1")));
  run_options.telemetry = &aggregate_telemetry;
  run_options.trace = trace.get();
  if (trace) {
    results::Doc event = results::Doc::object();
    event.set("type", "campaign_begin")
        .set("name", spec.name)
        .set("cells", spec.cell_count())
        .set("jobs", run_options.jobs);
    trace->emit(event);
  }
  run_options.on_cell = [](const campaign::CellResult& r, std::size_t done,
                           std::size_t total) {
    std::printf("[%zu/%zu] %-10s %-12s s=%.2f rep=%zu %6.2fs %s%s\n", done,
                total, products::product(r.cell.product).name.c_str(),
                r.cell.profile.c_str(), r.cell.sensitivity,
                r.cell.replicate, r.wall_sec,
                r.ok ? "ok" : "FAILED: ", r.ok ? "" : r.error.c_str());
    std::fflush(stdout);
  };
  const campaign::RunStats stats =
      campaign::run_campaign(spec, store, run_options);
  std::printf("\n%zu cells: %zu skipped (resumed), %zu executed, "
              "%zu failed, %.2fs wall (%.2f cells/sec)\n\n",
              stats.total_cells, stats.skipped, stats.executed,
              stats.failed,
              stats.wall_sec,
              stats.wall_sec > 0.0
                  ? static_cast<double>(stats.executed) / stats.wall_sec
                  : 0.0);

  const campaign::CampaignAggregate agg =
      campaign::aggregate(spec, store.results());
  const std::string summary = campaign::render_summary(spec, agg);
  const std::string eer = campaign::render_eer_summary(spec, agg);
  std::printf("%s\n", summary.c_str());
  if (!eer.empty()) std::printf("%s\n", eer.c_str());
  const results::Doc killchain_doc =
      campaign::killchain_table_doc(spec, agg);
  if (!killchain_doc.is_null()) {
    std::printf("%s\n",
                results::render_table_text(killchain_doc).c_str());
  }

  // Aggregate pipeline telemetry across this run's executed cells. The
  // snapshot is simulation-time-only, so it (and the .txt file) stays
  // byte-identical across worker counts; wall-clock cell times go to
  // stdout only.
  const std::string telemetry_section = telemetry::render_telemetry(
      telemetry::snapshot_pipeline(aggregate_telemetry));
  std::printf("%s\n", telemetry_section.c_str());
  if (const telemetry::LatencyStat* wall = aggregate_telemetry.find_latency(
          telemetry::names::kCampaignCellWall);
      wall != nullptr && wall->stats().count() > 0) {
    std::printf("cell wall clock: mean %s  p99 %s  max %s\n",
                telemetry::fmt_duration(wall->stats().mean()).c_str(),
                telemetry::fmt_duration(
                    wall->histogram().quantile(0.99))
                    .c_str(),
                telemetry::fmt_duration(wall->stats().max()).c_str());
  }

  const std::string csv_path = (out_dir / (spec.name + ".csv")).string();
  std::ofstream csv(csv_path);
  csv << campaign::to_csv(spec, agg);
  // Columnar per-stage latency export: one row per (cell, stage) across
  // the whole sensitivity grid, for latency-distribution-vs-sensitivity
  // plots without re-parsing the JSONL store.
  const std::string stages_path =
      (out_dir / (spec.name + "_stages.csv")).string();
  std::ofstream stages(stages_path);
  stages << campaign::stages_to_csv(spec, store.results());
  // Kill-chain per-stage rollup (kill-chain campaigns only): its own CSV
  // beside the aggregate, plus the text/HTML sections below.
  if (const std::string killchain_csv = campaign::killchain_to_csv(spec, agg);
      !killchain_csv.empty()) {
    const std::string killchain_path =
        (out_dir / (spec.name + "_killchain.csv")).string();
    std::ofstream kc(killchain_path);
    kc << killchain_csv;
    std::printf("kill-chain stages: %s\n", killchain_path.c_str());
  }
  const std::string summary_path =
      (out_dir / (spec.name + ".txt")).string();
  std::ofstream txt(summary_path);
  txt << summary;
  if (!eer.empty()) txt << "\n" << eer;
  if (!killchain_doc.is_null()) {
    txt << "\n" << results::render_table_text(killchain_doc);
  }
  txt << "\n" << telemetry_section;
  std::printf("results: %s\naggregate: %s, %s\nstages: %s\n",
              store_path.c_str(), csv_path.c_str(), summary_path.c_str(),
              stages_path.c_str());
  if (args.has_flag("out-html")) {
    // Same table Docs as the text summary, rendered by the HTML and
    // markdown writers — one Doc, every view.
    const results::Doc summary_doc = campaign::summary_table_doc(spec, agg);
    const results::Doc eer_doc = campaign::eer_table_doc(spec, agg);
    const std::string html_path =
        (out_dir / (spec.name + ".html")).string();
    std::ofstream html(html_path);
    html << results::html_document("Campaign '" + spec.name + "'",
                                   {summary_doc, eer_doc, killchain_doc});
    const std::string md_path = (out_dir / (spec.name + ".md")).string();
    std::ofstream md(md_path);
    md << results::table_to_markdown(summary_doc);
    if (!eer_doc.is_null()) {
      md << "\n" << results::table_to_markdown(eer_doc);
    }
    if (!killchain_doc.is_null()) {
      md << "\n" << results::table_to_markdown(killchain_doc);
    }
    std::printf("html: %s\nmarkdown: %s\n", html_path.c_str(),
                md_path.c_str());
  }
  if (trace) {
    // The trace, like the store, carries simulation-time telemetry only:
    // the wall-clock instrument would make fixed-seed trace files differ
    // between otherwise identical runs.
    telemetry::Registry traced_telemetry;
    for (const auto& [name, counter] : aggregate_telemetry.counters()) {
      traced_telemetry.counter(name).increment(counter.value());
    }
    for (const auto& [name, stat] : aggregate_telemetry.latencies()) {
      if (name == telemetry::names::kCampaignCellWall) continue;
      traced_telemetry.latency(name).merge(stat);
    }
    results::Doc event = results::Doc::object();
    event.set("type", "campaign_end")
        .set("name", spec.name)
        .set("executed", stats.executed)
        .set("failed", stats.failed)
        .set("telemetry", telemetry::to_doc(traced_telemetry));
    trace->emit(event);
    trace->close();
    report_trace(*trace);
    if (trace->dropped() > 0) {
      std::fprintf(stderr,
                   "warning: trace buffer dropped %llu event(s)\n",
                   static_cast<unsigned long long>(trace->dropped()));
    }
  }
  return 0;
}

/// --csv mode: structural validation through results::check_csv plus an
/// optional exact data-row count (campaign stage exports have a known
/// shape: cells x pipeline stages).
int check_csv_file(const Args& args) {
  const std::string path = args.opt("csv", "");
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "trace-check: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  results::CsvShape shape;
  try {
    shape = results::check_csv(text.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace-check: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  const std::string expect = args.opt("expect-rows", "");
  if (!expect.empty()) {
    const std::size_t want =
        static_cast<std::size_t>(std::stoull(expect));
    if (shape.data_rows != want) {
      std::fprintf(stderr,
                   "trace-check: %s has %zu data rows, expected %zu\n",
                   path.c_str(), shape.data_rows, want);
      return 1;
    }
  }
  std::printf("trace-check: %s ok (%zu columns, %zu rows)\n", path.c_str(),
              shape.columns.size(), shape.data_rows);
  return 0;
}

int cmd_trace_check(const Args& args) {
  if (!args.opt("csv", "").empty()) return check_csv_file(args);
  const std::string path =
      args.positional.empty() ? args.opt("file", "") : args.positional;
  if (path.empty()) {
    std::fprintf(stderr, "trace-check: FILE is required\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "trace-check: cannot read %s\n", path.c_str());
    return 2;
  }
  std::string line;
  std::size_t lines = 0;
  std::size_t events = 0;
  bool saw_summary = false;
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.empty()) {
      std::fprintf(stderr, "trace-check: line %zu is empty\n", lines);
      return 1;
    }
    results::Doc event;
    try {
      event = results::parse_json(line);
    } catch (const std::exception&) {
      std::fprintf(stderr, "trace-check: line %zu is not valid JSON\n",
                   lines);
      return 1;
    }
    try {
      telemetry::check_trace_event(event);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace-check: line %zu: %s\n", lines, e.what());
      return 1;
    }
    if (saw_summary) {
      std::fprintf(stderr,
                   "trace-check: line %zu follows the trace_summary "
                   "footer\n",
                   lines);
      return 1;
    }
    const results::Doc* type = event.find("type");
    if (event.is_object() && type != nullptr && type->is_string() &&
        type->as_string() == "trace_summary") {
      const results::Doc* e = event.find("emitted");
      const results::Doc* d = event.find("dropped");
      if (e == nullptr || !e->is_number() || d == nullptr ||
          !d->is_number()) {
        std::fprintf(stderr,
                     "trace-check: line %zu has a malformed "
                     "trace_summary footer\n",
                     lines);
        return 1;
      }
      saw_summary = true;
      emitted = e->as_u64();
      dropped = d->as_u64();
    } else {
      ++events;
    }
  }
  if (!saw_summary) {
    std::fprintf(stderr,
                 "trace-check: no trace_summary footer (truncated "
                 "trace?)\n");
    return 1;
  }
  if (emitted != events) {
    std::fprintf(stderr,
                 "trace-check: footer claims %llu emitted events but "
                 "%zu are present\n",
                 static_cast<unsigned long long>(emitted), events);
    return 1;
  }
  if (dropped != 0) {
    std::fprintf(stderr, "trace-check: %llu event(s) were dropped\n",
                 static_cast<unsigned long long>(dropped));
    return 1;
  }
  std::printf("trace-check: %s ok (%zu events, 0 dropped)\n", path.c_str(),
              events);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: idseval_cli <command> [options]\n"
      "  products                                list evaluated products\n"
      "  catalog [substring]                     metric definitions\n"
      "  evaluate --product NAME [--profile P] [--sensitivity S]\n"
      "           [--seed N] [--shards N] [--load-metrics] [--notes]\n"
      "           [--no-scan-cache] [--kill-chain NAME] [--out DIR]\n"
      "           [--trace FILE]\n"
      "  rank [--profile P] [--weights realtime|ecommerce] [--seed N]\n"
      "       [--jobs N] [--shards N] [--load-metrics] [--robustness]\n"
      "       [--no-scan-cache] [--kill-chain NAME] [--trace FILE]\n"
      "  sweep --product NAME [--profile P] [--steps N] [--seed N]\n"
      "        [--shards N] [--single-pass] [--no-scan-cache]\n"
      "  campaign --spec FILE [--jobs N] [--shards N] [--resume]\n"
      "           [--out DIR] [--out-html] [--trace FILE]\n"
      "  trace-check FILE                        validate a trace file\n"
      "  trace-check --csv FILE [--expect-rows N] validate a CSV export\n"
      "--trace-sync writes trace events on the emitting thread (default\n"
      "is a background writer thread; both produce identical files)\n"
      "--no-scan-cache replays the legacy full-rescan detection path\n"
      "(results byte-identical to the default cached path)\n"
      "--kill-chain runs a staged campaign (recon -> exploit -> lateral\n"
      "-> exfil) instead of the flat mixed scenario and reports the\n"
      "per-ATT&CK-technique / per-stage detection breakdown\n"
      "kill chains: intrusion, ics-takeover, canbus-storm\n"
      "profiles: rt_cluster, ecommerce, office, random_flood, megaflow, "
      "ics, canbus\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "products") return cmd_products();
    if (args.command == "catalog") return cmd_catalog(args);
    if (args.command == "evaluate") return cmd_evaluate(args);
    if (args.command == "rank") return cmd_rank(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "campaign") return cmd_campaign(args);
    if (args.command == "trace-check") return cmd_trace_check(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
