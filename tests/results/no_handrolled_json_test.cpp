// Guardrail for the unified results layer: every JSON artifact must be
// built as a results::Doc and rendered by results::to_json. Hand-rolled
// JSON in a string literal is recognizable in source text by an escaped
// quote next to JSON punctuation — the byte sequences {\" and \": — so
// this test walks the shipped source trees and fails on any line that
// contains them outside src/results/ (the one place allowed to know
// what JSON looks like).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

bool cpp_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

// The needles, assembled so this file would pass its own scan.
const std::string kBrace = std::string("{") + '\\' + '"';
const std::string kColon = std::string("\\") + '"' + ':';

std::vector<std::string> scan_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> offenders;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find(kBrace) != std::string::npos ||
        line.find(kColon) != std::string::npos) {
      std::ostringstream msg;
      msg << path.string() << ":" << lineno << ": " << line;
      offenders.push_back(msg.str());
    }
  }
  return offenders;
}

TEST(NoHandRolledJsonTest, ShippedSourcesBuildJsonThroughDocWriters) {
  const fs::path root = IDSEVAL_SOURCE_DIR;
  ASSERT_TRUE(fs::exists(root / "src")) << root;
  const fs::path allowed = root / "src" / "results";
  std::vector<std::string> offenders;
  std::size_t scanned = 0;
  for (const char* tree : {"src", "bench", "tools"}) {
    for (const auto& entry :
         fs::recursive_directory_iterator(root / tree)) {
      if (!entry.is_regular_file() || !cpp_source(entry.path())) continue;
      const auto rel = fs::relative(entry.path(), allowed);
      if (!rel.empty() && rel.begin()->string() != "..") continue;
      ++scanned;
      const auto found = scan_file(entry.path());
      offenders.insert(offenders.end(), found.begin(), found.end());
    }
  }
  EXPECT_GT(scanned, 20u) << "source walk found suspiciously few files";
  std::string report;
  for (const auto& line : offenders) report += line + "\n";
  EXPECT_TRUE(offenders.empty())
      << "hand-rolled JSON string literals found (use results::Doc + "
         "results::to_json instead):\n"
      << report;
}

}  // namespace
