#include "results/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/table.hpp"

namespace idseval::results {
namespace {

// The Doc-backed renderer must be byte-identical to driving
// util::TextTable directly — report regressions hide in whitespace.
TEST(TableDocTest, RenderMatchesDirectTextTableByteForByte) {
  TableBuilder builder({"Metric", "GuardSecure", "NetWatch"},
                       {"left", "right", "right"});
  builder.title("Performance metrics");
  builder.row({"Timeliness", "3 (fast)", "1"});
  builder.rule();
  builder.row({"Throughput", "4", "-"});
  const std::string rendered = render_table_text(builder.build());

  util::TextTable expected(
      {"Metric", "GuardSecure", "NetWatch"},
      {util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  expected.set_title("Performance metrics");
  expected.add_row({"Timeliness", "3 (fast)", "1"});
  expected.add_rule();
  expected.add_row({"Throughput", "4", "-"});
  EXPECT_EQ(rendered, expected.render());
}

TEST(TableDocTest, MissingAlignsDefaultToLeft) {
  TableBuilder builder({"a", "b"});
  builder.row({"x", "y"});
  util::TextTable expected({"a", "b"},
                           {util::Align::kLeft, util::Align::kLeft});
  expected.add_row({"x", "y"});
  EXPECT_EQ(render_table_text(builder.build()), expected.render());
}

TEST(TableDocTest, NumericCellsRenderLikeCsvCells) {
  TableBuilder builder({"n", "v"});
  builder.row({3u, 0.5});
  const Doc table = builder.build();
  EXPECT_NE(render_table_text(table).find("0.5"), std::string::npos);
  EXPECT_EQ(table_to_csv(table), "n,v\n3,0.5\n");
}

TEST(TableDocTest, CsvViewDropsTitleAndRules) {
  TableBuilder builder({"a", "b"});
  builder.title("Title line");
  builder.row({"1", "2"});
  builder.rule();
  builder.row({"3", "4"});
  EXPECT_EQ(table_to_csv(builder.build()), "a,b\n1,2\n3,4\n");
}

TEST(TableDocTest, RowWidthMismatchThrows) {
  TableBuilder builder({"a", "b"});
  EXPECT_THROW(builder.row({"only-one"}), std::invalid_argument);
}

TEST(TableDocTest, RendererRejectsMalformedTableDoc) {
  EXPECT_THROW(render_table_text(Doc("not a table")),
               std::invalid_argument);
  EXPECT_THROW(render_table_text(Doc::object()), std::invalid_argument);
}

}  // namespace
}  // namespace idseval::results
