#include "results/doc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace idseval::results {
namespace {

TEST(DocTest, KindsAndScalarAccessors) {
  EXPECT_TRUE(Doc().is_null());
  EXPECT_TRUE(Doc(true).as_bool());
  EXPECT_EQ(Doc(-7).as_i64(), -7);
  EXPECT_EQ(Doc(std::uint64_t{18446744073709551615ull}).as_u64(),
            18446744073709551615ull);
  EXPECT_DOUBLE_EQ(Doc(2.5).as_double(), 2.5);
  EXPECT_EQ(Doc("text").as_string(), "text");
  EXPECT_THROW(Doc(1).as_string(), std::invalid_argument);
  EXPECT_THROW(Doc("x").as_double(), std::invalid_argument);
  // A negative integer does not fit the unsigned accessor.
  EXPECT_THROW(Doc(-1).as_u64(), std::invalid_argument);
}

TEST(DocTest, ObjectKeepsInsertionOrderAndOverwritesInPlace) {
  Doc doc = Doc::object();
  doc.set("zebra", 1).set("apple", 2).set("mango", 3);
  doc.set("zebra", 9);  // overwrite must not move the key
  ASSERT_EQ(doc.size(), 3u);
  EXPECT_EQ(doc.items()[0].first, "zebra");
  EXPECT_EQ(doc.items()[0].second.as_i64(), 9);
  EXPECT_EQ(doc.items()[1].first, "apple");
  EXPECT_EQ(doc.items()[2].first, "mango");
  EXPECT_EQ(to_json(doc), "{\"zebra\":9,\"apple\":2,\"mango\":3}");
}

TEST(DocTest, BuildSerializeParseCompareRoundTrip) {
  Doc doc = Doc::object();
  Doc arr = Doc::array();
  arr.push(1).push(-2).push(2.5).push("three").push(nullptr).push(false);
  Doc nested = Doc::object();
  nested.set("seed", std::uint64_t{0x8ebff14e691bfd72ull})
      .set("ratio", 0.016949152542372881)
      .set("empty_obj", Doc::object())
      .set("empty_arr", Doc::array());
  doc.set("type", "cell")
      .set("values", std::move(arr))
      .set("nested", std::move(nested))
      .set("note", "tabs\tand\nnewlines \"quoted\" \\slash");
  const std::string json = to_json(doc);
  EXPECT_TRUE(validate_json_line(json));
  const Doc parsed = parse_json(json);
  EXPECT_EQ(parsed, doc);
  // Serialization is a fixed point: parse → serialize is byte-stable.
  EXPECT_EQ(to_json(parsed), json);
}

TEST(DocTest, IntegerKindsSurviveRoundTrip) {
  Doc doc = Doc::object();
  doc.set("u", std::numeric_limits<std::uint64_t>::max())
      .set("i", std::numeric_limits<std::int64_t>::min());
  const Doc parsed = parse_json(to_json(doc));
  EXPECT_EQ(parsed.find("u")->as_u64(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(parsed.find("i")->as_i64(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(DocTest, DoublesRoundTripExactly) {
  const double values[] = {0.0,        -0.0,   1.0 / 3.0, 6.02e23,
                           5e-324,     1e308,  0.1,       2.2250738585072014e-308,
                           123456789.123456789};
  for (const double v : values) {
    Doc doc = Doc::array();
    doc.push(v);
    const Doc parsed = parse_json(to_json(doc));
    const double back = parsed.elements()[0].as_double();
    EXPECT_EQ(back, v) << to_json(doc);
  }
}

TEST(DocTest, NonFiniteDoublesSerializeAsNull) {
  Doc doc = Doc::array();
  doc.push(std::numeric_limits<double>::quiet_NaN())
      .push(std::numeric_limits<double>::infinity());
  EXPECT_EQ(to_json(doc), "[null,null]");
}

TEST(DocTest, NumericEqualityCrossesKinds) {
  // An integral double that round-trips through JSON re-parses as an
  // integer and must still compare equal.
  EXPECT_EQ(Doc(3.0), Doc(3));
  EXPECT_EQ(Doc(3u), Doc(3));
  EXPECT_NE(Doc(3.5), Doc(3));
}

TEST(JsonEscapeTest, EscapesPerRfc8259) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string("\b\f\r\t")), "\\b\\f\\r\\t");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");  // UTF-8 untouched
}

// Fuzz-ish escaping check: every byte pattern we can legally hold in a
// JSON string (all ASCII incl. controls, plus multi-byte UTF-8) must
// survive serialize → parse unchanged.
TEST(JsonEscapeTest, RandomStringsRoundTrip) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string utf8[] = {"\xc3\xa9", "\xe2\x82\xac", "\xf0\x9f\x99\x82"};
  for (int round = 0; round < 200; ++round) {
    std::string s;
    const int len = static_cast<int>(next() % 40);
    for (int i = 0; i < len; ++i) {
      const std::uint64_t pick = next();
      if (pick % 8 == 0) {
        s += utf8[pick % 3];
      } else {
        s += static_cast<char>(pick % 0x80);  // any ASCII incl. controls
      }
    }
    Doc doc = Doc::object();
    doc.set("s", s);
    const std::string json = to_json(doc);
    EXPECT_TRUE(validate_json_line(json)) << json;
    EXPECT_EQ(parse_json(json).find("s")->as_string(), s) << json;
  }
}

TEST(ParseJsonTest, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse_json("\"\\ud83d\\ude42\"").as_string(),
            "\xf0\x9f\x99\x82");
  EXPECT_EQ(parse_json("\"\\n\\t\\\\\\\"\\/\"").as_string(), "\n\t\\\"/");
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",            "{",          "{\"a\":}",     "{\"a\":1,}",
      "[1,]",        "01",         "1.",           ".5",
      "+1",          "1e",         "nulL",         "tru",
      "\"open",      "\"bad\\q\"", "{\"a\":1} x",  "{'a':1}",
      "{\"a\" 1}",   "[1 2]",      "\"\\ud83d\"",  "{\"a\":1}{",
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_json(text), std::invalid_argument) << text;
    EXPECT_FALSE(validate_json_line(text)) << text;
  }
}

TEST(ParseJsonTest, AcceptsPaddedCompleteValues) {
  EXPECT_TRUE(validate_json_line("  {\"x\":[1,2.5,-3e-2],\"y\":null} "));
  EXPECT_TRUE(validate_json_line("true"));
  EXPECT_TRUE(validate_json_line("-0.5"));
  EXPECT_EQ(parse_json(" 42 ").as_i64(), 42);
}

}  // namespace
}  // namespace idseval::results
