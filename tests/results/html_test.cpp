// HTML/markdown table writers: escaping, alignment, rule rows, and the
// standalone document wrapper over the shared table Doc shape.
#include "results/html.hpp"

#include <gtest/gtest.h>

#include "results/table.hpp"

namespace idseval::results {
namespace {

Doc sample_table() {
  TableBuilder table({"Product", "Score"}, {"left", "right"});
  table.title("Scores <2026>");
  table.row({"A|B", 42});
  table.rule();
  table.row({"plain", 7.5});
  return table.build();
}

TEST(HtmlTest, EscapesEntities) {
  EXPECT_EQ(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(html_escape("plain"), "plain");
}

TEST(HtmlTest, TableRendersCaptionAlignmentAndCells) {
  const std::string html = table_to_html(sample_table());
  EXPECT_NE(html.find("<caption>Scores &lt;2026&gt;</caption>"),
            std::string::npos);
  EXPECT_NE(html.find("<th>Product</th>"), std::string::npos);
  EXPECT_NE(html.find("<th style=\"text-align:right\">Score</th>"),
            std::string::npos);
  EXPECT_NE(html.find("<td>A|B</td>"), std::string::npos);
  EXPECT_NE(html.find("<td style=\"text-align:right\">42</td>"),
            std::string::npos);
}

TEST(HtmlTest, RuleRowSplitsTheBody) {
  const std::string html = table_to_html(sample_table());
  std::size_t bodies = 0;
  for (std::size_t pos = html.find("<tbody>"); pos != std::string::npos;
       pos = html.find("<tbody>", pos + 1)) {
    ++bodies;
  }
  EXPECT_EQ(bodies, 2u);
}

TEST(HtmlTest, MarkdownPipeTableWithAlignmentAndEscaping) {
  const std::string md = table_to_markdown(sample_table());
  EXPECT_NE(md.find("**Scores <2026>**"), std::string::npos);
  EXPECT_NE(md.find("| Product | Score |"), std::string::npos);
  EXPECT_NE(md.find("| --- | ---: |"), std::string::npos);
  // Literal pipes must be escaped inside pipe-table cells.
  EXPECT_NE(md.find("A\\|B"), std::string::npos);
  // Markdown tables have no mid-table rules; the rule row vanishes.
  EXPECT_EQ(md.find("rule"), std::string::npos);
}

TEST(HtmlTest, DocumentWrapsTablesAndSkipsNullDocs) {
  const std::string page =
      html_document("Report & Co", {sample_table(), Doc(), sample_table()});
  EXPECT_NE(page.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(page.find("<title>Report &amp; Co</title>"), std::string::npos);
  EXPECT_NE(page.find("<h1>Report &amp; Co</h1>"), std::string::npos);
  std::size_t tables = 0;
  for (std::size_t pos = page.find("<table>"); pos != std::string::npos;
       pos = page.find("<table>", pos + 1)) {
    ++tables;
  }
  EXPECT_EQ(tables, 2u);
}

TEST(HtmlTest, MalformedTableThrows) {
  EXPECT_THROW(table_to_html(Doc()), std::invalid_argument);
  EXPECT_THROW(table_to_html(Doc::object()), std::invalid_argument);
  EXPECT_THROW(table_to_markdown(Doc::object()), std::invalid_argument);
}

}  // namespace
}  // namespace idseval::results
