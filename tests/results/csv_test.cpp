#include "results/csv.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

namespace idseval::results {
namespace {

TEST(CsvTest, RendersHeaderAndRowsWithExactNumbers) {
  Csv csv({"product", "sensitivity", "score"});
  csv.add_row({"GuardSecure", 0.5, 42u});
  csv.add_row({"NetWatch", 0.25, -3});
  EXPECT_EQ(to_csv(csv),
            "product,sensitivity,score\n"
            "GuardSecure,0.5,42\n"
            "NetWatch,0.25,-3\n");
}

TEST(CsvTest, QuotesOnlyWhenRfc4180Requires) {
  EXPECT_EQ(csv_cell(Doc("plain")), "plain");
  EXPECT_EQ(csv_cell(Doc("with,comma")), "\"with,comma\"");
  EXPECT_EQ(csv_cell(Doc("say \"hi\"")), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_cell(Doc("line\nbreak")), "\"line\nbreak\"");
  EXPECT_EQ(csv_cell(Doc(nullptr)), "");
  EXPECT_EQ(csv_cell(Doc(true)), "true");
}

TEST(CsvTest, RejectsEmptySchema) {
  EXPECT_THROW(Csv({}), std::invalid_argument);
}

TEST(CsvTest, RejectsRowWidthMismatch) {
  Csv csv({"a", "b"});
  EXPECT_THROW(csv.add_row({1}), std::invalid_argument);
  EXPECT_THROW(csv.add_row({1, 2, 3}), std::invalid_argument);
  csv.add_row({1, 2});
  EXPECT_EQ(csv.rows().size(), 1u);
}

TEST(CsvTest, RejectsNonScalarCells) {
  Csv csv({"a", "b"});
  EXPECT_THROW(csv.add_row({1, Doc::object()}), std::invalid_argument);
  EXPECT_THROW(csv.add_row({Doc::array(), 2}), std::invalid_argument);
}

TEST(CheckCsvTest, ReportsShapeOfValidText) {
  const CsvShape shape = check_csv(
      "stage,events,mean_sec\n"
      "lb_wait,10,0.001\n"
      "\"sensor,service\",20,0.002\n");
  ASSERT_EQ(shape.columns.size(), 3u);
  EXPECT_EQ(shape.columns[0], "stage");
  EXPECT_EQ(shape.data_rows, 2u);
}

TEST(CheckCsvTest, RejectsRaggedRows) {
  EXPECT_THROW(check_csv("a,b\n1\n"), std::invalid_argument);
  EXPECT_THROW(check_csv("a,b\n1,2,3\n"), std::invalid_argument);
}

TEST(CheckCsvTest, RejectsEmptyAndHeaderlessText) {
  EXPECT_THROW(check_csv(""), std::invalid_argument);
  EXPECT_THROW(check_csv("\n"), std::invalid_argument);
}

TEST(CheckCsvTest, RejectsNonFiniteNumericCells) {
  // Both spellings a printf-based writer could leak: textual nan/inf and
  // their signed/case variants all strtod to non-finite values.
  EXPECT_THROW(check_csv("x\nnan\n"), std::invalid_argument);
  EXPECT_THROW(check_csv("x\nNaN\n"), std::invalid_argument);
  EXPECT_THROW(check_csv("x\ninf\n"), std::invalid_argument);
  EXPECT_THROW(check_csv("x\n-inf\n"), std::invalid_argument);
  EXPECT_THROW(check_csv("x\nInfinity\n"), std::invalid_argument);
  // Words merely containing those letters are not numbers — fine.
  const CsvShape shape = check_csv("x\ninformation\nbanana\n");
  EXPECT_EQ(shape.data_rows, 2u);
}

TEST(CheckCsvTest, RoundTripsWriterOutput) {
  Csv csv({"name", "value"});
  csv.add_row({"quoted \"cell\"", 1.25});
  csv.add_row({"comma,cell", std::numeric_limits<std::uint64_t>::max()});
  const CsvShape shape = check_csv(to_csv(csv));
  EXPECT_EQ(shape.columns.size(), 2u);
  EXPECT_EQ(shape.data_rows, 2u);
}

}  // namespace
}  // namespace idseval::results
