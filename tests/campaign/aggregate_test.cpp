#include "campaign/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "results/csv.hpp"

namespace idseval::campaign {
namespace {

CampaignSpec two_sens_spec() {
  CampaignSpec spec;
  spec.name = "agg-test";
  spec.products = {products::ProductId::kSentryNid};
  spec.profiles = {"rt_cluster"};
  spec.sensitivities = {0.2, 0.8};
  spec.replicates = 3;
  return spec;
}

CellResult make_cell(std::size_t index, double sensitivity,
                     std::size_t replicate, double total, double fp,
                     double fn) {
  CellResult r;
  r.cell.index = index;
  r.cell.product = products::ProductId::kSentryNid;
  r.cell.profile = "rt_cluster";
  r.cell.sensitivity = sensitivity;
  r.cell.replicate = replicate;
  r.ok = true;
  r.score_total = total;
  r.score_logistical = total / 2.0;
  r.score_architectural = total / 4.0;
  r.score_performance = total / 4.0;
  r.fp_percent_of_benign = fp;
  r.fn_percent_of_attacks = fn;
  r.timeliness_sec = 0.3;
  return r;
}

TEST(AggregateTest, GroupsByProductProfileSensitivity) {
  const CampaignSpec spec = two_sens_spec();
  std::map<std::size_t, CellResult> results;
  // sensitivity 0.2: totals 100, 110, 120 -> mean 110, sample sd 10
  results[0] = make_cell(0, 0.2, 0, 100.0, 1.0, 30.0);
  results[1] = make_cell(1, 0.2, 1, 110.0, 2.0, 28.0);
  results[2] = make_cell(2, 0.2, 2, 120.0, 3.0, 26.0);
  // sensitivity 0.8
  results[3] = make_cell(3, 0.8, 0, 90.0, 20.0, 5.0);
  results[4] = make_cell(4, 0.8, 1, 90.0, 22.0, 4.0);
  results[5] = make_cell(5, 0.8, 2, 90.0, 24.0, 3.0);

  const CampaignAggregate agg = aggregate(spec, results);
  EXPECT_EQ(agg.ok_cells, 6u);
  EXPECT_EQ(agg.failed_cells, 0u);
  ASSERT_EQ(agg.groups.size(), 2u);

  const GroupStats& low = agg.groups.at({"SentryNID", "rt_cluster", 0.2});
  EXPECT_EQ(low.score_total.count(), 3u);
  EXPECT_DOUBLE_EQ(low.score_total.mean(), 110.0);
  EXPECT_DOUBLE_EQ(low.score_total.min(), 100.0);
  EXPECT_DOUBLE_EQ(low.score_total.max(), 120.0);
  EXPECT_NEAR(dispersion(low.score_total), 10.0, 1e-9);

  const GroupStats& high = agg.groups.at({"SentryNID", "rt_cluster", 0.8});
  EXPECT_DOUBLE_EQ(high.score_total.mean(), 90.0);
  EXPECT_DOUBLE_EQ(dispersion(high.score_total), 0.0);
}

TEST(AggregateTest, FailedCellsAreCountedNotAggregated) {
  const CampaignSpec spec = two_sens_spec();
  std::map<std::size_t, CellResult> results;
  results[0] = make_cell(0, 0.2, 0, 100.0, 1.0, 30.0);
  CellResult failed;
  failed.cell.index = 1;
  failed.cell.product = products::ProductId::kSentryNid;
  failed.cell.profile = "rt_cluster";
  failed.cell.sensitivity = 0.2;
  failed.ok = false;
  failed.error = "boom";
  results[1] = failed;

  const CampaignAggregate agg = aggregate(spec, results);
  EXPECT_EQ(agg.ok_cells, 1u);
  EXPECT_EQ(agg.failed_cells, 1u);
  EXPECT_EQ(agg.groups.at({"SentryNID", "rt_cluster", 0.2})
                .score_total.count(),
            1u);
  const std::string summary = render_summary(spec, agg);
  EXPECT_NE(summary.find("1 cell(s) failed"), std::string::npos);
}

TEST(AggregateTest, EerComputedPerReplicateAcrossSensitivities) {
  const CampaignSpec spec = two_sens_spec();
  std::map<std::size_t, CellResult> results;
  // Replicate 0: FP rises 1 -> 21, FN falls 21 -> 1: crossing at 11.
  results[0] = make_cell(0, 0.2, 0, 100.0, 1.0, 21.0);
  results[1] = make_cell(1, 0.8, 0, 100.0, 21.0, 1.0);
  // Replicate 1: crossing at 16.
  results[2] = make_cell(2, 0.2, 1, 100.0, 6.0, 26.0);
  results[3] = make_cell(3, 0.8, 1, 100.0, 26.0, 6.0);

  const CampaignAggregate agg = aggregate(spec, results);
  ASSERT_EQ(agg.eer.size(), 1u);
  const EerStats& e = agg.eer.at({"SentryNID", "rt_cluster"});
  EXPECT_EQ(e.error_percent.count(), 2u);
  EXPECT_NEAR(e.error_percent.mean(), 13.5, 1e-9);
  EXPECT_EQ(e.replicates_without_crossing, 0u);
  EXPECT_FALSE(render_eer_summary(spec, agg).empty());
}

TEST(AggregateTest, NoEerWithSingleSensitivity) {
  CampaignSpec spec = two_sens_spec();
  spec.sensitivities = {0.5};
  std::map<std::size_t, CellResult> results;
  results[0] = make_cell(0, 0.5, 0, 100.0, 1.0, 30.0);
  const CampaignAggregate agg = aggregate(spec, results);
  EXPECT_TRUE(agg.eer.empty());
  EXPECT_TRUE(render_eer_summary(spec, agg).empty());
}

TEST(AggregateTest, CsvHasHeaderAndOneRowPerGroup) {
  const CampaignSpec spec = two_sens_spec();
  std::map<std::size_t, CellResult> results;
  results[0] = make_cell(0, 0.2, 0, 100.0, 1.0, 30.0);
  results[1] = make_cell(1, 0.8, 0, 90.0, 20.0, 5.0);
  const CampaignAggregate agg = aggregate(spec, results);
  const std::string csv = to_csv(spec, agg);

  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("product,profile,sensitivity,replicates", 0), 0u);
  EXPECT_NE(header.find("score_total_mean"), std::string::npos);
  EXPECT_NE(header.find("score_total_stddev"), std::string::npos);
  EXPECT_NE(header.find("fn_percent_max"), std::string::npos);
  std::string line;
  std::size_t rows = 0;
  std::size_t header_cols =
      static_cast<std::size_t>(
          std::count(header.begin(), header.end(), ',')) +
      1;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')) +
                  1,
              header_cols);
  }
  EXPECT_EQ(rows, agg.groups.size());
}

TEST(AggregateTest, StagesCsvHasFourRowsPerCellIncludingFailed) {
  const CampaignSpec spec = two_sens_spec();
  std::map<std::size_t, CellResult> results;
  results[0] = make_cell(0, 0.2, 0, 100.0, 1.0, 30.0);
  results[0].telemetry.sensor_offered = 50;
  results[0].telemetry.sensor_service = {50, 0.001, 0.002, 0.003};
  CellResult failed;
  failed.cell.index = 1;
  failed.cell.product = products::ProductId::kSentryNid;
  failed.cell.profile = "rt_cluster";
  failed.cell.sensitivity = 0.2;
  failed.cell.replicate = 1;
  failed.ok = false;
  failed.error = "boom";
  results[1] = failed;

  const std::string csv = stages_to_csv(spec, results);
  const results::CsvShape shape = results::check_csv(csv);
  // The row-count invariant tools/ci.sh checks: 4 stage rows per cell,
  // failed cells included with all-zero snapshots.
  EXPECT_EQ(shape.data_rows, 4 * results.size());
  ASSERT_GE(shape.columns.size(), 7u);
  EXPECT_EQ(shape.columns[0], "cell_index");
  EXPECT_EQ(shape.columns[6], "stage");
  EXPECT_NE(csv.find("lb_wait"), std::string::npos);
  EXPECT_NE(csv.find("sensor_service"), std::string::npos);
  EXPECT_NE(csv.find("analyzer_batch"), std::string::npos);
  EXPECT_NE(csv.find("monitor_alert"), std::string::npos);
}

TEST(AggregateTest, SummaryRendersEveryGroupRow) {
  const CampaignSpec spec = two_sens_spec();
  std::map<std::size_t, CellResult> results;
  results[0] = make_cell(0, 0.2, 0, 100.0, 1.0, 30.0);
  results[1] = make_cell(1, 0.8, 0, 90.0, 20.0, 5.0);
  const std::string summary =
      render_summary(spec, aggregate(spec, results));
  EXPECT_NE(summary.find("SentryNID"), std::string::npos);
  EXPECT_NE(summary.find("0.20"), std::string::npos);
  EXPECT_NE(summary.find("0.80"), std::string::npos);
  EXPECT_NE(summary.find("±"), std::string::npos);
}

}  // namespace
}  // namespace idseval::campaign
